"""Tests for SYCL generation, artifacts, packaging and the compiler."""

import pytest

from repro.core.backend.binary import Artifact, SoftwareBinary
from repro.core.backend.packaging import VariantPackage
from repro.core.backend.sycl_gen import generate_sycl
from repro.core.compiler import EverestCompiler
from repro.core.dse.space import DesignSpace
from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.dsl.workflow import Pipeline
from repro.core.dsl.annotations import (
    SecurityAnnotation,
    Sensitivity,
)
from repro.core.frontend import (
    export_model,
    import_model_json,
)
from repro.core.ir import F32, TensorType
from repro.core.ir.passes import (
    LowerTensorPass,
    PassManager,
    SecurityInstrumentationPass,
)
from repro.core.variants import CostEstimate, Variant, VariantKnobs
from repro.errors import BackendError, SpecificationError

KERNEL = """
kernel axpy(A: tensor<64xf32>, B: tensor<64xf32>, s: f32)
        -> tensor<64xf32> {
  C = A * s + B
  return C
}
"""


def lowered_module(src=KERNEL, secure=False):
    module = compile_kernel(src)
    manager = PassManager()
    if secure:
        manager.add(SecurityInstrumentationPass())
    manager.add(LowerTensorPass())
    manager.run(module)
    return module


class TestSyclGen:
    def test_tensor_form_rejected(self):
        module = compile_kernel(KERNEL)
        with pytest.raises(BackendError, match="tensor form"):
            generate_sycl(module, "axpy")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(BackendError):
            generate_sycl(lowered_module(), "ghost")

    def test_structure(self):
        text = generate_sycl(lowered_module(), "axpy")
        assert "#include <sycl/sycl.hpp>" in text
        assert "void axpy(sycl::queue &q" in text
        assert "parallel_for" in text
        assert text.count("{") == text.count("}")

    def test_pointer_parameters(self):
        text = generate_sycl(lowered_module(), "axpy")
        assert "float* " in text
        assert "float v" in text  # the scalar s parameter

    def test_sequential_mode(self):
        text = generate_sycl(lowered_module(), "axpy",
                             parallel_outer=False)
        assert "parallel_for" not in text
        assert "for (size_t" in text

    def test_row_major_flattening(self):
        src = """
        kernel mm(A: tensor<4x8xf32>, B: tensor<8x2xf32>)
                -> tensor<4x2xf32> {
          C = A @ B
          return C
        }
        """
        text = generate_sycl(lowered_module(src), "mm")
        assert "* 8" in text  # A row stride

    def test_secure_ops_rendered(self):
        module = lowered_module("""
        kernel s(A: tensor<8xf32> @sensitive) -> tensor<8xf32> {
          B = relu(A)
          return B
        }
        """, secure=True)
        text = generate_sycl(module, "s")
        assert "// taint" in text
        assert "dift_check" in text


class TestArtifacts:
    def test_software_binary_checksum_stable(self):
        a = SoftwareBinary("n", "x86", "int main(){}")
        b = SoftwareBinary("n", "x86", "int main(){}")
        assert a.checksum == b.checksum

    def test_checksum_changes_with_source(self):
        a = SoftwareBinary("n", "x86", "int main(){}")
        b = SoftwareBinary("n", "x86", "int main(){return 1;}")
        assert a.checksum != b.checksum

    def test_unsupported_arch(self):
        with pytest.raises(ValueError):
            SoftwareBinary("n", "sparc", "")

    def test_sign_and_verify(self):
        artifact = Artifact(
            variant_id=1, kind="binary",
            payload=SoftwareBinary("n", "x86", "code"),
        )
        artifact.sign("key")
        assert artifact.verify("key")
        assert not artifact.verify("wrong-key")

    def test_unsigned_never_verifies(self):
        artifact = Artifact(
            variant_id=1, kind="binary",
            payload=SoftwareBinary("n", "x86", "code"),
        )
        assert not artifact.verify("key")


class TestVariantPackage:
    def make_variant(self):
        return Variant(
            kernel="k", knobs=VariantKnobs(),
            cost=CostEstimate(latency_s=1.0, energy_j=1.0),
        )

    def test_manifest_roundtrip(self):
        package = VariantPackage("app")
        package.add_variant(self.make_variant())
        package.add_variant(self.make_variant())
        summary = VariantPackage.manifest_summary(package.manifest())
        assert summary == {"k": 2}

    def test_unknown_kernel_query(self):
        package = VariantPackage("app")
        with pytest.raises(BackendError):
            package.variants_for("ghost")

    def test_signing_on_add(self):
        package = VariantPackage("app", signing_key="secret")
        variant = self.make_variant()
        artifact = Artifact(
            variant_id=variant.variant_id, kind="binary",
            payload=SoftwareBinary("n", "x86", "code"),
        )
        package.add_variant(variant, artifact)
        assert package.verify_integrity()


class TestModelImport:
    def test_import_generates_valid_dsl(self):
        text = export_model("net", 8, 4, [
            {"type": "dense", "units": 2, "activation": "relu"},
        ])
        imported = import_model_json(text)
        module = compile_kernel(imported.dsl_source)
        assert module.find_function("net") is not None
        assert imported.parameter_names == ["X", "W0", "B0"]

    def test_scale_and_activation_layers(self):
        imported = import_model_json(export_model("m", 4, 4, [
            {"type": "scale", "factor": 2.0},
            {"type": "activation", "activation": "tanh"},
        ]))
        compile_kernel(imported.dsl_source)

    def test_malformed_json(self):
        with pytest.raises(SpecificationError):
            import_model_json("{not json")

    def test_missing_fields(self):
        with pytest.raises(SpecificationError):
            import_model_json("{}")

    def test_unknown_layer_type(self):
        with pytest.raises(SpecificationError):
            import_model_json(export_model("m", 4, 4, [
                {"type": "capsule"},
            ]))

    def test_unknown_activation(self):
        with pytest.raises(SpecificationError):
            import_model_json(export_model("m", 4, 4, [
                {"type": "dense", "units": 2, "activation": "swish"},
            ]))


class TestEverestCompiler:
    def build_pipeline(self, sensitive=False):
        pipeline = Pipeline("app")
        security = SecurityAnnotation(
            sensitivity=Sensitivity.CONFIDENTIAL
        ) if sensitive else None
        a = pipeline.source("a", TensorType((64,), F32),
                            security=security)
        b = pipeline.source("b", TensorType((64,), F32))
        task = pipeline.task("scale", """
        kernel scale(A: tensor<64xf32>, B: tensor<64xf32>)
                -> tensor<64xf32> {
          C = exp(A) * B
          return C
        }
        """, inputs=[a, b])
        pipeline.sink("out", task.output(0))
        return pipeline

    def test_compile_produces_variants(self):
        app = EverestCompiler(space=DesignSpace.small()).compile(
            self.build_pipeline()
        )
        assert "scale" in app.exploration
        assert app.package.variants_for("scale")
        assert app.package.verify_integrity()

    def test_sensitivity_forces_dift(self):
        app = EverestCompiler(space=DesignSpace.small()).compile(
            self.build_pipeline(sensitive=True)
        )
        assert "scale" in app.sensitive_kernels
        assert all(
            v.knobs.dift for v in app.package.variants_for("scale")
        )
        function = app.module.find_function("scale")
        assert function.op.attr("everest.sensitive_args") == [0]

    def test_artifact_kinds_match_targets(self):
        app = EverestCompiler(space=DesignSpace.small()).compile(
            self.build_pipeline()
        )
        for variant in app.package.variants_for("scale"):
            artifact = app.package.artifact_for(variant)
            assert artifact is not None
            expected = (
                "bitstream" if variant.is_hardware else "binary"
            )
            assert artifact.kind == expected

    def test_summary_text(self):
        app = EverestCompiler(space=DesignSpace.small()).compile(
            self.build_pipeline()
        )
        assert "scale" in app.summary()
