"""Static DSE-space pruning tests.

The explorer rejects knob points whose explicit ``hw.partition``
factors provably cannot serve the unrolled access pattern *before*
pricing them. The acceptance bar: pruning must change nothing but the
work done — a pruned exploration serializes byte-identically to an
unpruned one, because the cost model's own static gate produces the
exact same infeasibility verdicts.
"""

import pytest

from repro.core.dse.explorer import Explorer
from repro.core.dse.space import DesignSpace, static_conflict
from repro.core.ir.builder import Builder
from repro.core.ir.module import Module
from repro.core.ir.types import F32, FunctionType, MemRefType
from repro.core.variants import VariantKnobs
from repro.obs import MetricsRegistry, Observation, observe


def _partitioned_module():
    """Kernel-form function: cyclic factor-2 buffer, 8-trip loop."""
    module = Module("m")
    memref = MemRefType((8,), F32)
    function = module.add_function(
        "k", FunctionType((memref,), ()))
    b = Builder()
    b.set_insertion_point(function.entry_block)
    buffer = function.arguments[0]
    b.create(
        "hw.partition", operands=[buffer],
        attributes={"scheme": "cyclic", "factor": 2},
    )
    loop = b.for_loop(0, 8)
    with b.at_block(loop.body):
        iv = loop.induction_var
        value = b.load(buffer, [iv])
        b.store(value, buffer, [iv])
        b.yield_op()
    b.ret([])
    return module


def _space():
    # unroll 8 demands 2 x 8 = 16 ports; cyclic factor 2 offers 4.
    return DesignSpace(
        targets=("cpu", "fpga"), threads=(1,), unrolls=(1, 2, 8),
    )


class TestStaticConflict:
    def test_conflict_reason_matches_the_cost_model_wording(self):
        from repro.core.analysis.absint import function_facts

        module = _partitioned_module()
        facts = function_facts(module, "k")
        reason = static_conflict(
            VariantKnobs(target="fpga", unroll=8), facts)
        assert reason is not None
        assert reason.startswith("partition: ")
        assert "16 ports" in reason and "provides 4" in reason

    def test_no_facts_means_no_conflict(self):
        assert static_conflict(
            VariantKnobs(target="fpga", unroll=8), None) is None


@pytest.mark.parametrize("strategy", ["exhaustive", "random"])
class TestByteIdentity:
    def test_pruned_run_serializes_identically(self, strategy):
        module = _partitioned_module()
        pruned = Explorer(
            module, "k", space=_space(), prune=True,
        )
        result = pruned.run(strategy)
        baseline = Explorer(
            module, "k", space=_space(), prune=False,
        ).run(strategy)
        assert pruned._pruned > 0
        assert result.to_json() == baseline.to_json()

    def test_parallel_pruned_run_matches_serial(self, strategy):
        module = _partitioned_module()
        serial = Explorer(
            module, "k", space=_space(), workers=1).run(strategy)
        threaded = Explorer(
            module, "k", space=_space(), workers=4).run(strategy)
        assert serial.to_json() == threaded.to_json()


class TestPrunedPoints:
    def test_pruned_points_stay_in_the_result_as_infeasible(self):
        module = _partitioned_module()
        explorer = Explorer(module, "k", space=_space())
        result = explorer.run("exhaustive")
        rejected = [
            v for v in result.evaluated
            if v.cost.infeasible_reason
            and v.cost.infeasible_reason.startswith("partition: ")
        ]
        assert len(rejected) == explorer._pruned == 1
        (variant,) = rejected
        assert variant.knobs.unroll == 8
        assert not variant.cost.feasible
        assert variant.cost.latency_s == float("inf")

    def test_legal_points_are_never_pruned(self):
        module = _partitioned_module()
        space = DesignSpace(
            targets=("cpu", "fpga"), threads=(1,), unrolls=(1, 2),
        )
        explorer = Explorer(module, "k", space=space)
        result = explorer.run("exhaustive")
        assert explorer._pruned == 0
        assert all(
            not (v.cost.infeasible_reason or "").startswith(
                "partition: ")
            for v in result.evaluated
        )

    def test_prune_counter_reaches_the_metrics_registry(self):
        module = _partitioned_module()
        metrics = MetricsRegistry()
        with observe(Observation(metrics=metrics)):
            Explorer(module, "k", space=_space()).run("exhaustive")
        assert metrics.counter(
            "dse.pruned_points").value(kernel="k") == 1

    def test_cpu_only_model_keeps_the_no_fpga_reason(self):
        from repro.core.dse.cost_model import ArchitectureModel
        from repro.platform.resources import CPUDescription

        module = _partitioned_module()
        model = ArchitectureModel(
            name="cpu-only",
            cpu=CPUDescription(
                name="x", cores=4, frequency_hz=2e9,
                flops_per_cycle=4.0, tdp_watts=65.0, idle_watts=10.0,
            ),
        )
        # ArchitectureModel fills fpga fields with defaults; force the
        # CPU-only shape the compiler uses for pure-software nodes.
        model.fpga_role_capacity = None
        model.fpga_link = None
        explorer = Explorer(module, "k", space=_space(), model=model)
        result = explorer.run("exhaustive")
        assert explorer._pruned == 0
        fpga_points = [
            v for v in result.evaluated if v.knobs.target == "fpga"
        ]
        assert fpga_points
        assert all(
            v.cost.infeasible_reason == "no FPGA on this node"
            for v in fpga_points
        )
