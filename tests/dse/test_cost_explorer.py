"""Tests for the cost model and exploration strategies."""

import pytest

from repro.core.dse.cost_model import (
    ArchitectureModel,
    evaluate_variant,
)
from repro.core.dse.explorer import Explorer
from repro.core.dse.space import DesignSpace
from repro.core.dsl.annotations import Requirement, RequirementKind
from repro.core.variants import VariantKnobs
from repro.errors import DSEError
from repro.platform.resources import FPGAResources


class TestCostModel:
    def test_cpu_estimate_feasible(self, gemm_module):
        cost = evaluate_variant(
            gemm_module, "gemm", VariantKnobs(target="cpu", threads=4)
        )
        assert cost.feasible
        assert cost.latency_s > 0 and cost.energy_j > 0

    def test_threads_reduce_latency(self, gemm_module):
        one = evaluate_variant(
            gemm_module, "gemm", VariantKnobs(target="cpu", threads=1)
        )
        eight = evaluate_variant(
            gemm_module, "gemm", VariantKnobs(target="cpu", threads=8)
        )
        assert eight.latency_s < one.latency_s

    def test_software_dift_slows_down(self, gemm_module):
        plain = evaluate_variant(
            gemm_module, "gemm", VariantKnobs(target="cpu"))
        tracked = evaluate_variant(
            gemm_module, "gemm", VariantKnobs(target="cpu", dift=True))
        assert tracked.latency_s > 1.5 * plain.latency_s

    def test_fpga_estimate(self, stream_module):
        cost = evaluate_variant(
            stream_module, "stream",
            VariantKnobs(target="fpga", unroll=4),
        )
        assert cost.feasible
        assert cost.resources.luts > 0

    def test_fpga_without_fpga_infeasible(self, stream_module):
        model = ArchitectureModel(name="cpu-only")
        model.fpga_role_capacity = None
        model.fpga_link = None
        cost = evaluate_variant(
            stream_module, "stream", VariantKnobs(target="fpga"),
            model,
        )
        assert not cost.feasible
        assert "no FPGA" in cost.infeasible_reason

    def test_capacity_violation_infeasible(self, stream_module):
        model = ArchitectureModel(
            fpga_role_capacity=FPGAResources(
                luts=100, ffs=100, bram_kb=1, dsps=1
            )
        )
        cost = evaluate_variant(
            stream_module, "stream", VariantKnobs(target="fpga"),
            model,
        )
        assert not cost.feasible
        assert "capacity" in cost.infeasible_reason

    def test_timing_violation_infeasible(self, stream_module):
        cost = evaluate_variant(
            stream_module, "stream",
            VariantKnobs(target="fpga", clock_hz=900e6),
        )
        assert not cost.feasible
        assert "timing" in cost.infeasible_reason

    def test_unknown_kernel(self, gemm_module):
        with pytest.raises(DSEError):
            evaluate_variant(gemm_module, "ghost", VariantKnobs())

    def test_gpu_target_unsupported(self, gemm_module):
        with pytest.raises(DSEError):
            evaluate_variant(
                gemm_module, "gemm", VariantKnobs(target="gpu")
            )

    def test_achievable_clock_derates_with_density(self):
        model = ArchitectureModel()
        light = model.achievable_clock(FPGAResources(luts=1000))
        dense = model.achievable_clock(FPGAResources(luts=400_000))
        assert dense < light


class TestExplorer:
    def test_exhaustive_covers_space(self, stream_module):
        explorer = Explorer(stream_module, "stream",
                            DesignSpace.small())
        result = explorer.exhaustive()
        assert result.evaluations == DesignSpace.small().size()
        assert result.front

    def test_front_is_subset(self, stream_module):
        result = Explorer(stream_module, "stream",
                          DesignSpace.small()).exhaustive()
        evaluated_ids = {id(v) for v in result.evaluated}
        assert all(id(v) in evaluated_ids for v in result.front)

    def test_best_latency_and_energy(self, stream_module):
        result = Explorer(stream_module, "stream",
                          DesignSpace.small()).exhaustive()
        fastest = result.best_latency()
        frugal = result.best_energy()
        assert fastest.cost.latency_s <= frugal.cost.latency_s
        assert frugal.cost.energy_j <= fastest.cost.energy_j

    def test_random_respects_budget(self, stream_module):
        explorer = Explorer(stream_module, "stream",
                            DesignSpace.small())
        result = explorer.random(budget=2)
        assert result.evaluations == 2

    def test_random_deterministic_by_seed(self, stream_module):
        explorer = Explorer(stream_module, "stream",
                            DesignSpace.small())
        first = explorer.random(budget=3, seed="s1")
        second = explorer.random(budget=3, seed="s1")
        assert [v.knobs for v in first.evaluated] == \
            [v.knobs for v in second.evaluated]

    def test_evolutionary_budget(self, stream_module):
        explorer = Explorer(stream_module, "stream",
                            DesignSpace.small())
        result = explorer.evolutionary(budget=4, population=2)
        assert result.evaluations <= 4 + 2
        assert result.front

    def test_requirement_filters_variants(self, stream_module):
        tight = Requirement(RequirementKind.LATENCY, 1e-9)
        explorer = Explorer(
            stream_module, "stream", DesignSpace.small(),
            requirements=[tight],
        )
        result = explorer.exhaustive()
        assert all(not v.cost.feasible for v in result.evaluated)
        with pytest.raises(DSEError):
            result.best_latency()

    def test_unknown_strategy(self, stream_module):
        explorer = Explorer(stream_module, "stream")
        with pytest.raises(DSEError):
            explorer.run("simulated-annealing")
