"""Bound-guided exhaustive exploration.

The analytic lower bounds from the static performance analyzer let
the explorer skip points that provably cannot join the Pareto front
(their bound is already dominated by a priced front member, or it
already violates a latency/energy requirement). The hard contract:
the pruned exploration's front is byte-identical to the unpruned
one's — pruning may only remove work, never change the answer.
"""

import json

import pytest

from repro.core.dse.explorer import Explorer
from repro.core.dse.space import DesignSpace
from repro.core.dsl.annotations import Requirement, RequirementKind
from repro.errors import DSEError
from repro.obs import MetricsRegistry, Observation, observe


def space_16():
    """16 distinct points: 8 cpu (threads x tiles), 8 fpga
    (unrolls x tiles)."""
    return DesignSpace(
        targets=("cpu", "fpga"),
        threads=(1, 2, 4, 8),
        unrolls=(1, 2, 4, 8),
        tiles=(0, 8),
    )


DEADLINE = Requirement(kind=RequirementKind.LATENCY, value=2.5e-5)


class TestFrontIdentity:
    def test_pruned_front_matches_unpruned(self, gemm_module):
        plain = Explorer(
            gemm_module, "gemm", space=space_16(),
        ).run("exhaustive")
        guided_explorer = Explorer(
            gemm_module, "gemm", space=space_16(), bound_guided=True,
        )
        guided = guided_explorer.run("exhaustive")
        assert guided_explorer._bound_pruned > 0
        assert guided.front_json() == plain.front_json()
        assert guided.evaluations < plain.evaluations

    def test_identity_holds_under_requirements(self, gemm_module):
        plain = Explorer(
            gemm_module, "gemm", space=space_16(),
            requirements=[DEADLINE],
        ).run("exhaustive")
        guided_explorer = Explorer(
            gemm_module, "gemm", space=space_16(),
            requirements=[DEADLINE], bound_guided=True,
        )
        guided = guided_explorer.run("exhaustive")
        assert guided.front_json() == plain.front_json()
        # a deadline lets the pruner reject slow points before any
        # front member exists, so it skips at least as much.
        assert guided_explorer._bound_pruned > 0

    def test_fronts_identical_with_indentation(self, gemm_module):
        plain = Explorer(
            gemm_module, "gemm", space=space_16(),
        ).run("exhaustive")
        guided = Explorer(
            gemm_module, "gemm", space=space_16(), bound_guided=True,
        ).run("exhaustive")
        assert guided.front_json(indent=2) == plain.front_json(indent=2)
        # the pretty form parses back to the compact form's payload
        assert (json.loads(guided.front_json(indent=2))
                == json.loads(plain.front_json()))


class TestDeterminism:
    def test_serial_matches_parallel(self, gemm_module):
        serial = Explorer(
            gemm_module, "gemm", space=space_16(), bound_guided=True,
        ).run("exhaustive")
        parallel = Explorer(
            gemm_module, "gemm", space=space_16(), bound_guided=True,
            workers=4,
        ).run("exhaustive")
        assert serial.to_json() == parallel.to_json()

    def test_cold_matches_warm(self, gemm_module):
        cold = Explorer(
            gemm_module, "gemm", space=space_16(), bound_guided=True,
        ).run("exhaustive")
        warm = Explorer(
            gemm_module, "gemm", space=space_16(), bound_guided=True,
        ).run("exhaustive")
        assert cold.to_json() == warm.to_json()


class TestGuardsAndFallbacks:
    def test_non_exhaustive_strategy_rejected(self, gemm_module):
        explorer = Explorer(
            gemm_module, "gemm", space=space_16(), bound_guided=True,
        )
        with pytest.raises(DSEError, match="exhaustive"):
            explorer.run("random", budget=4)

    def test_missing_bounds_fall_back_to_plain(
        self, gemm_module, monkeypatch
    ):
        from repro.core.analysis import perf as perf_module

        monkeypatch.setattr(
            perf_module, "kernel_bounds", lambda *a, **k: None
        )
        explorer = Explorer(
            gemm_module, "gemm", space=space_16(), bound_guided=True,
        )
        result = explorer.run("exhaustive")
        assert explorer._bound_pruned == 0
        assert result.evaluations == space_16().size()

    def test_pruned_counter_reaches_metrics(self, gemm_module):
        metrics = MetricsRegistry()
        with observe(Observation(metrics=metrics)):
            Explorer(
                gemm_module, "gemm", space=space_16(),
                bound_guided=True,
            ).run("exhaustive")
        assert metrics.counter(
            "dse.bound_pruned_points").value(kernel="gemm") > 0
