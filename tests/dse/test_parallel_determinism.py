"""Determinism properties of the parallel, cached evaluation engine.

The explorer's contract is that neither the worker count nor the cache
temperature changes any output: ``ExplorationResult.to_json()`` must be
byte-identical across serial, parallel, cold and warm runs, and the
incremental :class:`ParetoFront` must agree exactly with a brute-force
batch front.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dse.cache import clear_caches, cost_cache
from repro.core.dse.explorer import Explorer
from repro.core.dse.pareto import ParetoFront, pareto_front
from repro.core.dse.space import DesignSpace
from repro.core.variants import CostEstimate, Variant, VariantKnobs

#: Big enough for several evaluation batches (BATCH_SIZE = 16) while
#: keeping HLS synthesis time reasonable.
SPACE = DesignSpace(
    targets=("cpu", "fpga"),
    threads=(1, 2, 4, 8),
    unrolls=(1, 2, 4, 8),
    tiles=(0, 8),
)

SEEDS = ["a", "b", "c", "d", "e"]


def explore(module, strategy, seed, workers):
    explorer = Explorer(module, "gemm", space=SPACE, workers=workers)
    kwargs = {} if strategy == "exhaustive" else {"seed": seed}
    return explorer.run(strategy, **kwargs)


class TestParallelMatchesSerial:
    @pytest.mark.parametrize("strategy",
                             ["exhaustive", "random", "evolutionary"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_byte_identical_results(self, gemm_module, strategy, seed):
        clear_caches()
        serial = explore(gemm_module, strategy, seed, workers=1)
        clear_caches()  # the parallel run starts equally cold
        wide = explore(gemm_module, strategy, seed, workers=4)
        assert serial.to_json() == wide.to_json()
        assert [v.knobs for v in serial.front] == \
            [v.knobs for v in wide.front]
        assert [v.knobs for v in serial.evaluated] == \
            [v.knobs for v in wide.evaluated]

    def test_warm_run_byte_identical_and_hit_only(self, gemm_module):
        """A re-exploration must reuse every cost (zero re-synthesis)
        and still serialize byte-identically."""
        cold = explore(gemm_module, "exhaustive", "a", workers=1)
        before = cost_cache().stats.snapshot()
        warm = explore(gemm_module, "exhaustive", "a", workers=1)
        delta = cost_cache().stats.delta(before)
        assert warm.to_json() == cold.to_json()
        assert delta.misses == 0
        assert delta.hits == warm.evaluations

    def test_seed_determinism_across_repeats(self, gemm_module):
        """Same seed, same draws: the evolutionary search (with its
        incremental unseen set) repeats itself exactly."""
        clear_caches()
        first = explore(gemm_module, "evolutionary", "pin", workers=1)
        clear_caches()
        second = explore(gemm_module, "evolutionary", "pin", workers=1)
        assert first.to_json() == second.to_json()

    def test_evolutionary_covers_space_on_stall(self, gemm_module):
        """The incremental unseen set must still let a stalled search
        jump to arbitrary unexplored points (budget >= space)."""
        explorer = Explorer(gemm_module, "gemm",
                            space=DesignSpace.small())
        result = explorer.run("evolutionary", budget=99)
        assert result.evaluations == DesignSpace.small().size()


# -- incremental front == batch front ---------------------------------

def make_variant(latency, energy, feasible=True):
    return Variant(
        kernel="k",
        knobs=VariantKnobs(),
        cost=CostEstimate(latency_s=latency, energy_j=energy,
                          feasible=feasible),
    )


def brute_force_front(variants):
    """Reference batch implementation: O(n^2) dominance scan plus
    ordered dedupe on rounded cost coordinates."""
    feasible = [v for v in variants if v.cost.feasible]
    front = []
    seen = set()
    for variant in feasible:
        if any(other.cost.dominates(variant.cost)
               for other in feasible if other is not variant):
            continue
        key = (round(variant.cost.latency_s, 12),
               round(variant.cost.energy_j, 12))
        if key in seen:
            continue
        seen.add(key)
        front.append(variant)
    return front


#: Exact eighths keep dominance comparisons free of float fuzz while
#: still producing plenty of ties and duplicates.
grid_cost = st.integers(min_value=1, max_value=48).map(
    lambda n: n * 0.125
)
cost_points = st.lists(
    st.tuples(grid_cost, grid_cost, st.booleans()), max_size=40
)


class TestIncrementalFrontProperty:
    @settings(max_examples=300, deadline=None)
    @given(cost_points)
    def test_matches_brute_force(self, points):
        variants = [make_variant(lat, en, ok) for lat, en, ok in points]
        incremental = ParetoFront()
        for variant in variants:
            incremental.add(variant)
        expected = brute_force_front(variants)
        assert incremental.variants() == expected
        assert pareto_front(variants) == expected

    @settings(max_examples=100, deadline=None)
    @given(cost_points)
    def test_front_members_mutually_nondominated(self, points):
        variants = [make_variant(lat, en, ok) for lat, en, ok in points]
        front = ParetoFront(variants).variants()
        for a in front:
            assert a.cost.feasible
            for b in front:
                if a is not b:
                    assert not a.cost.dominates(b.cost)

    def test_add_reports_front_changes(self):
        front = ParetoFront()
        assert front.add(make_variant(2.0, 2.0)) is True
        assert front.add(make_variant(3.0, 3.0)) is False  # dominated
        assert front.add(make_variant(2.0, 2.0)) is False  # duplicate
        assert front.add(make_variant(1.0, 1.0)) is True   # dominates
        assert len(front) == 1
