"""The content-addressed DSE caches.

The headline regression here reproduces the bug that motivated them:
the old prepared-variant cache was keyed by ``id(module)``, so once a
module was garbage-collected and the interpreter recycled its id for a
*different* module, the cache served the stale prepared body of the
dead module. Content digests make that aliasing impossible.
"""

import gc

import pytest

from repro.core.dse.cache import (
    CostCache,
    PreparedModuleCache,
    clear_caches,
    configure,
    cost_cache,
    default_cache_dir,
    prepared_cache,
)
from repro.core.dse.cost_model import (
    ArchitectureModel,
    evaluate_variant,
    prepare_variant_module,
)
from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.ir import module_digest
from repro.core.ir.module import Module
from repro.core.ir.printer import print_module
from repro.core.variants import CostEstimate, VariantKnobs
from repro.errors import DSEError

ADD_SRC = """
kernel k(X: tensor<8xf32>) -> tensor<8xf32> {
  Y = X + X
  return Y
}
"""

MUL_SRC = """
kernel k(X: tensor<8xf32>) -> tensor<8xf32> {
  Y = X * X
  return Y
}
"""


def materialize_at_recycled_id(template, old_id):
    """A distinct :class:`Module` carrying ``template``'s content,
    allocated at the dead module's recycled ``id``.

    Bare ``Module`` allocations land in the same CPython size class as
    the freed object, so marching through fresh blocks (mismatches are
    kept alive) reaches the recycled address almost immediately.
    """
    hold = []
    for _ in range(200_000):
        candidate = object.__new__(Module)
        if id(candidate) == old_id:
            candidate.op = template.op
            return candidate
        hold.append(candidate)
    return None


class TestStaleIdentityRegression:
    def test_recycled_module_id_cannot_alias_cache_entries(self):
        """A new module at a dead module's recycled ``id`` must never
        be served the dead module's prepared body."""
        knobs = VariantKnobs(target="fpga", unroll=2)
        module_a = compile_kernel(ADD_SRC)
        prepared_a_text = print_module(
            prepare_variant_module(module_a, "k", knobs)
        )
        template = compile_kernel(MUL_SRC)  # allocate before freeing
        old_id = id(module_a)
        del module_a
        gc.collect()

        recycled = materialize_at_recycled_id(template, old_id)
        if recycled is None:
            pytest.skip("interpreter never recycled the module id")

        prepared_b = prepare_variant_module(recycled, "k", knobs)
        prepared_b_text = print_module(prepared_b)
        assert prepared_b_text != prepared_a_text
        assert "mul" in prepared_b_text

    def test_recycled_id_cannot_alias_cost_entries(self):
        """Same hazard for the cost cache: costs belong to content."""
        knobs = VariantKnobs(target="cpu", threads=4, tile=8)
        heavy = compile_kernel("""
kernel k(A: tensor<32x32xf32>, B: tensor<32x32xf32>)
        -> tensor<32x32xf32> {
  C = A @ B
  return C
}
""")
        heavy_cost = evaluate_variant(heavy, "k", knobs)
        template = compile_kernel(ADD_SRC)  # allocate before freeing
        old_id = id(heavy)
        del heavy
        gc.collect()

        recycled = materialize_at_recycled_id(template, old_id)
        if recycled is None:
            pytest.skip("interpreter never recycled the module id")

        light_cost = evaluate_variant(recycled, "k", knobs)
        assert light_cost.latency_s != heavy_cost.latency_s

    def test_equal_content_modules_share_entries(self):
        """Two distinct objects with identical content hit one entry —
        the flip side of content addressing (an id key would miss)."""
        knobs = VariantKnobs(target="fpga", unroll=2)
        first = compile_kernel(ADD_SRC)
        second = compile_kernel(ADD_SRC)
        assert first is not second
        assert module_digest(first) == module_digest(second)

        prepared_first = prepare_variant_module(first, "k", knobs)
        before = prepared_cache().stats.snapshot()
        prepared_second = prepare_variant_module(second, "k", knobs)
        delta = prepared_cache().stats.delta(before)
        assert prepared_second is prepared_first
        assert delta.hits == 1 and delta.misses == 0


class TestPreparedModuleCache:
    def test_lru_evicts_oldest(self, gemm_module):
        cache = PreparedModuleCache(capacity=2)
        cache.put(("a",), gemm_module)
        cache.put(("b",), gemm_module)
        cache.get(("a",))  # refresh: "b" is now the oldest
        cache.put(("c",), gemm_module)
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is gemm_module
        assert cache.stats.evictions == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(DSEError):
            PreparedModuleCache(capacity=0)

    def test_clear_reports_count(self, gemm_module):
        cache = PreparedModuleCache()
        cache.put(("a",), gemm_module)
        cache.put(("b",), gemm_module)
        assert cache.clear() == 2
        assert len(cache) == 0


class TestCostCache:
    def make_cost(self, latency=1.0):
        return CostEstimate(latency_s=latency, energy_j=2.0,
                            data_bytes=64, feasible=True)

    def test_get_returns_fresh_copies(self):
        """The explorer mutates feasibility in place; a shared cached
        instance would poison every later lookup."""
        cache = CostCache()
        cache.put("k1", self.make_cost())
        first = cache.get("k1")
        first.feasible = False
        first.infeasible_reason = "violates latency requirement"
        second = cache.get("k1")
        assert second.feasible is True
        assert second.infeasible_reason == ""

    def test_disk_persistence_across_instances(self, tmp_path):
        """A second process (modeled by a fresh instance) reads costs
        the first wrote — the cross-invocation warm start."""
        writer = CostCache(directory=tmp_path / "cc")
        writer.put("deadbeef", self.make_cost(latency=3.5))
        reader = CostCache(directory=tmp_path / "cc")
        cost = reader.get("deadbeef")
        assert cost is not None and cost.latency_s == 3.5
        assert reader.stats.hits == 1

    def test_incompatible_version_ignored(self, tmp_path):
        cache = CostCache(directory=tmp_path / "cc")
        cache.put("deadbeef", self.make_cost())
        path = cache._path_for("deadbeef")
        path.write_text(path.read_text().replace(
            '"version": "1"', '"version": "0"'
        ))
        fresh = CostCache(directory=tmp_path / "cc")
        assert fresh.get("deadbeef") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = CostCache(directory=tmp_path / "cc")
        cache.put("deadbeef", self.make_cost())
        cache._path_for("deadbeef").write_text("{not json")
        fresh = CostCache(directory=tmp_path / "cc")
        assert fresh.get("deadbeef") is None

    def test_disabled_cache_never_hits(self):
        cache = CostCache(enabled=False)
        cache.put("k", self.make_cost())
        assert cache.get("k") is None
        assert cache.stats.lookups == 0

    def test_clear_removes_memory_and_disk(self, tmp_path):
        cache = CostCache(directory=tmp_path / "cc")
        cache.put("aa" * 32, self.make_cost())
        cache.put("bb" * 32, self.make_cost())
        assert cache.entry_count() == 2
        assert cache.disk_bytes() > 0
        assert cache.clear() == 2
        assert cache.entry_count() == 0

    def test_key_is_sensitive_to_every_component(self):
        knobs = VariantKnobs(target="fpga", unroll=2)
        other_knobs = VariantKnobs(target="fpga", unroll=4)
        model = ArchitectureModel()
        other_model = ArchitectureModel(cpu_efficiency=0.25)
        base = CostCache.key("d1", "k", knobs, model.fingerprint())
        assert base == CostCache.key("d1", "k", knobs,
                                     model.fingerprint())
        assert base != CostCache.key("d2", "k", knobs,
                                     model.fingerprint())
        assert base != CostCache.key("d1", "other", knobs,
                                     model.fingerprint())
        assert base != CostCache.key("d1", "k", other_knobs,
                                     model.fingerprint())
        assert base != CostCache.key("d1", "k", knobs,
                                     other_model.fingerprint())

    def test_model_fingerprint_ignores_transfer_statistics(self):
        """Link traffic counters mutate during simulation; they must
        not change cost-cache identity."""
        model = ArchitectureModel()
        before = model.fingerprint()
        model.fpga_link.bytes_transferred += 4096
        model.fpga_link.messages += 1
        assert model.fingerprint() == before


class TestProcessWideConfiguration:
    def test_default_cache_dir_honors_xdg(self, monkeypatch, tmp_path):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / "repro-dse"

    def test_configure_replaces_cost_cache(self, tmp_path):
        replaced = configure(cache_dir=tmp_path / "cc")
        assert cost_cache() is replaced
        assert replaced.directory == tmp_path / "cc"
        configure(cache_dir=None)
        assert cost_cache().directory is None

    def test_clear_caches_counts_both_layers(self, gemm_module):
        knobs = VariantKnobs(target="fpga", unroll=2)
        evaluate_variant(gemm_module, "gemm", knobs)
        assert len(prepared_cache()) > 0
        assert cost_cache().entry_count() > 0
        assert clear_caches() >= 2
        assert len(prepared_cache()) == 0
        assert cost_cache().entry_count() == 0
