"""Process-pool evaluation parity with serial and threaded DSE.

``workers_mode="process"`` ships cache misses to a fork-based worker
pool; each child prices variants against its own parsed copy of the
module and returns the cost plus its prepared-cache counter delta.
The parent keeps sole ownership of the cost cache (get before dispatch,
put after) so fronts, traces and cache statistics are byte-identical
to a serial run at every worker count — the property this suite pins
across all three search strategies, cold and warm.
"""

import pytest

from repro.core.dse.cache import clear_caches, cost_cache, prepared_cache
from repro.core.dse.explorer import Explorer
from repro.core.dse.space import DesignSpace
from repro.errors import DSEError
from repro.obs import observe, session

#: Small enough that fork startup doesn't dominate the suite, big
#: enough to span several evaluation batches and both targets.
SPACE = DesignSpace(
    targets=("cpu", "fpga"),
    threads=(1, 2),
    unrolls=(1, 2, 4),
    tiles=(0, 8),
)

#: (workers, workers_mode) grid the parity tests sweep. Serial is the
#: reference; every other cell must reproduce it byte for byte.
MODES = [
    (1, "thread"),
    (4, "thread"),
    (2, "process"),
    (3, "process"),
]


def explore(module, strategy, workers, workers_mode):
    """One deterministic exploration; returns (result, trace json)."""
    with observe(session(deterministic=True)) as obs:
        explorer = Explorer(
            module, "gemm", space=SPACE,
            workers=workers, workers_mode=workers_mode,
        )
        kwargs = {} if strategy == "exhaustive" else {"seed": "pin"}
        result = explorer.run(strategy, **kwargs)
    return result, obs.tracer.to_json()


class TestProcessMatchesSerial:
    @pytest.mark.parametrize("strategy",
                             ["exhaustive", "random", "evolutionary"])
    def test_cold_byte_identical(self, gemm_module, strategy):
        clear_caches()
        reference, reference_trace = explore(
            gemm_module, strategy, 1, "thread"
        )
        for workers, workers_mode in MODES[1:]:
            clear_caches()
            result, trace = explore(
                gemm_module, strategy, workers, workers_mode
            )
            assert result.to_json() == reference.to_json(), (
                workers, workers_mode
            )
            assert trace == reference_trace, (workers, workers_mode)

    @pytest.mark.parametrize("strategy",
                             ["exhaustive", "random", "evolutionary"])
    def test_cache_stat_deltas_match_serial(self, gemm_module, strategy):
        """The parent-owned cost cache must count exactly the same
        hits/misses/stores whether misses are priced in-process or in
        pool children (whose prepared-cache work is merged back)."""
        deltas = []
        for workers, workers_mode in MODES:
            clear_caches()
            cost_before = cost_cache().stats.snapshot()
            prep_before = prepared_cache().stats.snapshot()
            explore(gemm_module, strategy, workers, workers_mode)
            deltas.append((
                cost_cache().stats.delta(cost_before),
                prepared_cache().stats.delta(prep_before),
            ))
        reference = deltas[0]
        for delta, (workers, workers_mode) in zip(deltas[1:], MODES[1:]):
            assert delta == reference, (workers, workers_mode)

    def test_warm_process_run_is_hit_only(self, gemm_module):
        """With the cost cache warm, the pool must never be consulted:
        every point resolves to a parent-side cache hit."""
        clear_caches()
        cold, _ = explore(gemm_module, "exhaustive", 2, "process")
        before = cost_cache().stats.snapshot()
        warm, _ = explore(gemm_module, "exhaustive", 2, "process")
        delta = cost_cache().stats.delta(before)
        assert warm.to_json() == cold.to_json()
        assert delta.misses == 0
        assert delta.hits == warm.evaluations

    def test_children_populate_parent_cost_cache(self, gemm_module):
        """Costs priced in children are stored by the parent: a serial
        re-run right after a process run must be all hits."""
        clear_caches()
        explore(gemm_module, "exhaustive", 3, "process")
        before = cost_cache().stats.snapshot()
        explore(gemm_module, "exhaustive", 1, "thread")
        assert cost_cache().stats.delta(before).misses == 0


class TestModeValidation:
    def test_bogus_mode_rejected(self, gemm_module):
        with pytest.raises(DSEError, match="workers_mode"):
            Explorer(gemm_module, "gemm", space=SPACE,
                     workers=2, workers_mode="bogus")

    def test_process_mode_serial_width_stays_inline(self, gemm_module):
        """workers=1 never spawns a pool, whatever the mode says."""
        clear_caches()
        explorer = Explorer(gemm_module, "gemm", space=SPACE,
                            workers=1, workers_mode="process")
        result = explorer.run("exhaustive")
        assert explorer._process_pool is None
        assert result.evaluations == SPACE.size()
