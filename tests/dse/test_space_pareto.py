"""Tests for the design space and Pareto utilities."""

import pytest

from repro.core.dse.pareto import (
    best_by,
    hypervolume_2d,
    knee_point,
    pareto_front,
)
from repro.core.dse.space import DesignSpace, neighborhood
from repro.core.variants import CostEstimate, Variant, VariantKnobs
from repro.errors import DSEError


def make_variant(latency, energy, feasible=True):
    return Variant(
        kernel="k",
        knobs=VariantKnobs(),
        cost=CostEstimate(latency_s=latency, energy_j=energy,
                          feasible=feasible),
    )


class TestDesignSpace:
    def test_small_space_size(self):
        space = DesignSpace.small()
        # cpu: 2 thread counts; fpga: 2 unrolls
        assert space.size() == 4

    def test_points_deduplicated(self):
        space = DesignSpace(targets=("cpu",), threads=(1,),
                            unrolls=(1, 2, 4))
        # unroll is irrelevant for cpu: one point
        assert space.size() == 1

    def test_invalid_target(self):
        with pytest.raises(DSEError):
            DesignSpace(targets=("quantum",))

    def test_thorough_space_large(self):
        assert DesignSpace.thorough().size() > 50

    def test_neighborhood_single_knob(self):
        space = DesignSpace.small()
        point = next(iter(space.points()))
        for neighbor in neighborhood(point, space):
            differences = sum(
                1 for attribute in (
                    "target", "threads", "tile", "unroll",
                    "memory_strategy", "layout", "clock_hz", "dift",
                )
                if getattr(neighbor, attribute)
                != getattr(point, attribute)
            )
            assert differences == 1


class TestPareto:
    def test_dominated_removed(self):
        good = make_variant(1.0, 1.0)
        bad = make_variant(2.0, 2.0)
        front = pareto_front([bad, good])
        assert front == [good]

    def test_trade_off_both_kept(self):
        fast = make_variant(1.0, 10.0)
        frugal = make_variant(10.0, 1.0)
        front = pareto_front([fast, frugal])
        assert set(id(v) for v in front) == {id(fast), id(frugal)}

    def test_infeasible_excluded(self):
        feasible = make_variant(5.0, 5.0)
        infeasible = make_variant(1.0, 1.0, feasible=False)
        assert pareto_front([infeasible, feasible]) == [feasible]

    def test_duplicate_costs_deduped(self):
        a = make_variant(1.0, 1.0)
        b = make_variant(1.0, 1.0)
        assert len(pareto_front([a, b])) == 1

    def test_hypervolume_monotone(self):
        small_front = [make_variant(5.0, 5.0)]
        bigger_front = [make_variant(1.0, 5.0), make_variant(5.0, 1.0),
                        make_variant(2.0, 2.0)]
        reference = (10.0, 10.0)
        assert hypervolume_2d(bigger_front, reference) > \
            hypervolume_2d(small_front, reference)

    def test_hypervolume_empty(self):
        assert hypervolume_2d([], (1.0, 1.0)) == 0.0

    def test_knee_point_prefers_balance(self):
        fast = make_variant(1.0, 100.0)
        frugal = make_variant(100.0, 1.0)
        balanced = make_variant(5.0, 5.0)
        assert knee_point([fast, frugal, balanced]) is balanced

    def test_knee_point_empty_raises(self):
        with pytest.raises(DSEError, match="no feasible variants"):
            knee_point([make_variant(1, 1, feasible=False)])

    def test_best_by_empty_raises(self):
        with pytest.raises(DSEError, match="no feasible variants"):
            best_by([make_variant(1, 1, feasible=False)],
                    lambda v: v.cost.latency_s)

    def test_no_feasible_error_carries_dse001(self):
        try:
            knee_point([])
        except DSEError as exc:
            codes = [d.code for d in exc.diagnostics.items]
            assert codes == ["DSE001"]
        else:
            pytest.fail("expected DSEError")

    def test_best_by(self):
        a = make_variant(1.0, 9.0)
        b = make_variant(9.0, 1.0)
        assert best_by([a, b], lambda v: v.cost.latency_s) is a
        assert best_by([a, b], lambda v: v.cost.energy_j) is b


class TestVariantMetadata:
    def test_describe_cpu(self):
        knobs = VariantKnobs(target="cpu", threads=8)
        assert "cpu" in knobs.describe()
        assert "t8" in knobs.describe()

    def test_describe_fpga(self):
        knobs = VariantKnobs(target="fpga", unroll=4, dift=True)
        text = knobs.describe()
        assert "fpga" in text and "u4" in text and "dift" in text

    def test_to_metadata_roundtrip_fields(self):
        variant = make_variant(1.5, 2.5)
        metadata = variant.to_metadata()
        assert metadata["latency_s"] == 1.5
        assert metadata["energy_j"] == 2.5
        assert metadata["kernel"] == "k"

    def test_dominates_requires_feasibility(self):
        feasible = CostEstimate(1.0, 1.0)
        infeasible = CostEstimate(0.1, 0.1, feasible=False)
        assert not infeasible.dominates(feasible)
        assert feasible.dominates(infeasible)
