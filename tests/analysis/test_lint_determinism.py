"""Regression tests: ``repro lint`` output is byte-identical across
runs, worker counts and formats.

The report is the interface scripts and CI grep against, so the
ordering guarantee (sorted directory walk + fully-sorted rendering) is
load-bearing: any nondeterminism here breaks diffable lint baselines.
"""

import os

import pytest

from repro.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

KERNEL = """
kernel k{n}(X: tensor<8xf32>) -> tensor<8xf32> {{
  Y = relu(X)
  return Y
}}
"""

SENSITIVE = """
kernel leak(X: tensor<4xf32> @sensitive) -> tensor<4xf32> {
  Y = relu(X)
  return Y
}
"""


@pytest.fixture
def tree(tmp_path):
    """A nested spec tree mixing clean, warning and error targets."""
    root = tmp_path / "specs"
    (root / "deep" / "deeper").mkdir(parents=True)
    (root / "a.edsl").write_text(KERNEL.format(n=0))
    (root / "deep" / "b.edsl").write_text(KERNEL.format(n=1))
    (root / "deep" / "deeper" / "c.edsl").write_text(SENSITIVE)
    for fixture in ("cycle.json", "overcapacity.json",
                    "oob_access.ir", "dead_branch.ir",
                    "shape_mismatch.json"):
        source = os.path.join(FIXTURES, fixture)
        with open(source, "r", encoding="utf-8") as handle:
            (root / "deep" / fixture).write_text(handle.read())
    return str(root)


def _run(capsys, *argv):
    code = main(["lint", *argv])
    captured = capsys.readouterr()
    return code, captured.out


@pytest.mark.parametrize("format_", ["text", "json"])
def test_repeated_runs_are_byte_identical(capsys, tree, format_):
    first = _run(capsys, tree, "--format", format_)
    second = _run(capsys, tree, "--format", format_)
    assert first == second
    assert first[0] == 1


@pytest.mark.parametrize("workers", ["2", "4"])
def test_worker_count_does_not_change_a_byte(capsys, tree, workers):
    serial = _run(capsys, tree)
    threaded = _run(capsys, tree, "--workers", workers)
    assert serial == threaded


def test_incremental_warm_run_matches_cold_stdout(
    capsys, tree, tmp_path
):
    cache = str(tmp_path / "cache")
    cold = _run(capsys, tree, "--incremental", "--cache-dir", cache)
    warm = _run(capsys, tree, "--incremental", "--cache-dir", cache)
    plain = _run(capsys, tree)
    assert cold == warm == plain


def test_argument_order_does_not_reorder_findings(capsys, tree):
    # expansion sorts within each argument; equal argument lists in
    # any order over disjoint trees produce stable per-file blocks
    racy = os.path.join(FIXTURES, "conc_race_ww.json")
    cycle = os.path.join(FIXTURES, "cycle.json")
    first = _run(capsys, racy, cycle)
    second = _run(capsys, racy, cycle)
    assert first == second
