"""Workflow-DAG linter tests: the four defect classes + adapters."""

import json
import os

from repro.core.analysis.wfcheck import (
    TaskSpec,
    WorkerSpec,
    lint_task_graph,
    lint_workflow,
    lint_workflow_spec,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def _load(name):
    with open(os.path.join(FIXTURES, name), encoding="utf-8") as handle:
        return json.load(handle)


def _codes(diagnostics):
    return [item.code for item in diagnostics.sorted()]


class TestDefectClasses:
    def test_clean_graph(self):
        diagnostics = lint_workflow_spec(_load("clean.json"))
        assert not diagnostics.items

    def test_cycle_wf001(self):
        diagnostics = lint_workflow_spec(_load("cycle.json"))
        assert "WF001" in _codes(diagnostics)
        finding = next(
            item for item in diagnostics if item.code == "WF001"
        )
        # the message spells out the cycle path
        assert "->" in finding.message

    def test_unproducible_wf002_and_starvation_wf006(self):
        diagnostics = lint_workflow_spec(_load("unproducible.json"))
        codes = _codes(diagnostics)
        assert "WF002" in codes
        assert "WF006" in codes  # report depends on the missing input
        wf002 = next(
            item for item in diagnostics if item.code == "WF002"
        )
        assert "phantom" in wf002.message

    def test_overcapacity_wf003(self):
        diagnostics = lint_workflow_spec(_load("overcapacity.json"))
        assert "WF003" in _codes(diagnostics)
        finding = next(
            item for item in diagnostics if item.code == "WF003"
        )
        assert "64" in finding.message and "8" in finding.message

    def test_duplicate_output_wf004(self):
        diagnostics = lint_workflow_spec(_load("dup_output.json"))
        assert "WF004" in _codes(diagnostics)

    def test_duplicate_task_wf005(self):
        diagnostics = lint_workflow(
            [
                TaskSpec("t", outputs=["a"]),
                TaskSpec("t", outputs=["b"]),
            ]
        )
        assert "WF005" in _codes(diagnostics)

    def test_external_also_produced_wf004(self):
        diagnostics = lint_workflow(
            [TaskSpec("t", outputs=["raw"])], externals=["raw"]
        )
        assert "WF004" in _codes(diagnostics)

    def test_self_cycle(self):
        diagnostics = lint_workflow(
            [TaskSpec("t", inputs=["a"], outputs=["a"])]
        )
        assert "WF001" in _codes(diagnostics)


class TestAdapters:
    def test_task_graph_adapter_clean(self):
        from repro.workflow.graph import (
            DataObject,
            TaskGraph,
            WorkflowTask,
        )

        graph = TaskGraph("g")
        graph.add_object(DataObject("raw", size_bytes=64))
        graph.add_task(WorkflowTask(
            "a", inputs=["raw"], outputs=["mid"], cpus=1,
        ))
        graph.add_task(WorkflowTask(
            "b", inputs=["mid"], outputs=["out"], cpus=2,
        ))
        diagnostics = lint_task_graph(graph)
        assert not diagnostics.items

    def test_task_graph_adapter_capacity(self):
        from repro.workflow.graph import (
            DataObject,
            TaskGraph,
            WorkflowTask,
        )
        from repro.workflow.worker import Worker

        graph = TaskGraph("g")
        graph.add_object(DataObject("raw", size_bytes=64))
        graph.add_task(WorkflowTask(
            "a", inputs=["raw"], outputs=["out"], cpus=8,
        ))
        workers = [Worker("w0", node_name="n0", cpus=2)]
        diagnostics = lint_task_graph(graph, workers=workers)
        assert "WF003" in _codes(diagnostics)

    def test_worker_spec_capacity_boundary(self):
        tasks = [TaskSpec("t", outputs=["a"], cpus=4)]
        exact = lint_workflow(tasks, workers=[WorkerSpec("w", cpus=4)])
        assert "WF003" not in _codes(exact)
        tight = lint_workflow(tasks, workers=[WorkerSpec("w", cpus=3)])
        assert "WF003" in _codes(tight)


class TestSpecContracts:
    """WF010/WF011 over per-object ``types`` declarations."""

    def _spec(self, consumer_types):
        return {
            "name": "contracts",
            "externals": ["raw"],
            "types": {"raw": {"shape": [64, 32], "dtype": "f32"}},
            "tasks": [
                {
                    "name": "clean", "inputs": ["raw"],
                    "outputs": ["table"],
                    "types": {
                        "table": {"shape": [64, 16], "dtype": "f32"},
                    },
                },
                {
                    "name": "score", "inputs": ["table"],
                    "outputs": ["result"],
                    "types": consumer_types,
                },
            ],
            "workers": [{"name": "w0", "cpus": 4}],
        }

    def test_matching_contract_is_clean(self):
        spec = self._spec(
            {"table": {"shape": [64, 16], "dtype": "f32"}})
        assert not lint_workflow_spec(spec).items

    def test_shape_disagreement_is_wf010(self):
        spec = self._spec(
            {"table": {"shape": [64, 32], "dtype": "f32"}})
        diagnostics = lint_workflow_spec(spec)
        assert _codes(diagnostics) == ["WF010"]
        (item,) = diagnostics.sorted()
        assert "64x32" in item.message and "64x16" in item.message
        assert "clean" in item.message

    def test_dtype_disagreement_is_wf011(self):
        spec = self._spec(
            {"table": {"shape": [64, 16], "dtype": "f64"}})
        diagnostics = lint_workflow_spec(spec)
        assert _codes(diagnostics) == ["WF011"]

    def test_shape_mismatch_shadows_dtype_mismatch(self):
        spec = self._spec(
            {"table": {"shape": [8, 8], "dtype": "f64"}})
        assert _codes(lint_workflow_spec(spec)) == ["WF010"]

    def test_external_declaration_is_the_contract(self):
        spec = self._spec({})
        spec["tasks"][0]["types"]["raw"] = {
            "shape": [32, 32], "dtype": "f32",
        }
        diagnostics = lint_workflow_spec(spec)
        (item,) = diagnostics.sorted()
        assert item.code == "WF010"
        assert "externals" in item.message

    def test_one_sided_declarations_are_skipped(self):
        # consumer silent -> no contract to violate
        assert not lint_workflow_spec(self._spec({})).items
        # producer silent -> same
        spec = self._spec(
            {"table": {"shape": [1, 1], "dtype": "f64"}})
        del spec["tasks"][0]["types"]
        assert not lint_workflow_spec(spec).items

    def test_malformed_types_sections_are_ignored(self):
        spec = self._spec("not-a-dict")
        spec["types"] = ["also", "wrong"]
        assert not lint_workflow_spec(spec).items

    def test_shape_mismatch_fixture_round_trips_the_cli_path(self):
        diagnostics = lint_workflow_spec(_load("shape_mismatch.json"))
        assert "WF010" in _codes(diagnostics)
