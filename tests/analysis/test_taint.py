"""Static IFT tests: the secure.* policies checked at compile time."""

from repro.core.analysis import check_module_taint
from repro.core.analysis.taint import (
    check_function_taint,
    check_pipeline_taint,
)
from repro.core.ir.types import F32, MemRefType

from tests.analysis.conftest import new_function


def _codes(diagnostics):
    return [item.code for item in diagnostics.sorted()]


class TestReturnPolicy:
    def _leaky(self, module):
        """Kernel that returns an explicitly tainted value."""
        function, b = new_function(module, "leak", [F32], [F32])
        (x,) = function.arguments
        tainted = b.create(
            "secure.taint", [x], [F32], {"label": "pii"}
        ).result
        doubled = b.addf(tainted, tainted)
        b.ret([doubled])
        return function, b, doubled

    def test_policy_violation_flagged_sec001(self, module):
        function, _b, _v = self._leaky(module)
        diagnostics = check_function_taint(function)
        assert _codes(diagnostics) == ["SEC001"]
        finding = diagnostics.errors[0]
        assert "pii" in finding.message
        assert "leak" in finding.anchor

    def test_declassify_makes_it_clean(self, module):
        function, b = new_function(module, "ok", [F32], [F32])
        (x,) = function.arguments
        tainted = b.create(
            "secure.taint", [x], [F32], {"label": "pii"}
        ).result
        doubled = b.addf(tainted, tainted)
        cleared = b.create(
            "secure.declassify", [doubled], [F32]
        ).result
        b.ret([cleared])
        diagnostics = check_function_taint(function)
        assert not diagnostics.has_errors
        assert _codes(diagnostics) == []

    def test_encrypt_makes_it_clean(self, module):
        function, b = new_function(module, "ok", [F32], [F32])
        (x,) = function.arguments
        tainted = b.create(
            "secure.taint", [x], [F32], {"label": "pii"}
        ).result
        sealed = b.create(
            "secure.encrypt", [tainted], [F32],
            {"cipher": "aes128-gcm"},
        ).result
        b.ret([sealed])
        diagnostics = check_function_taint(function)
        assert not diagnostics.has_errors

    def test_dynamic_guard_downgrades_to_note(self, module):
        function, b = new_function(module, "guarded", [F32], [F32])
        (x,) = function.arguments
        tainted = b.create(
            "secure.taint", [x], [F32], {"label": "pii"}
        ).result
        b.create(
            "secure.check", [tainted], [],
            {"policy": "no-unclassified-egress"},
        )
        b.ret([tainted])
        diagnostics = check_function_taint(function)
        assert not diagnostics.has_errors
        assert _codes(diagnostics) == ["SEC003"]

    def test_stable_code_across_runs(self, module):
        function, _b, _v = self._leaky(module)
        first = check_function_taint(function).to_json()
        second = check_function_taint(function).to_json()
        assert first == second


class TestStorePolicy:
    def test_tainted_store_to_argument_memref_sec002(self, module):
        memref = MemRefType((8,), F32)
        function, b = new_function(module, "spill", [F32, memref], [])
        x, out = function.arguments
        tainted = b.create(
            "secure.taint", [x], [F32], {"label": "key"}
        ).result
        zero = b.index_const(0)
        b.store(tainted, out, [zero])
        b.ret([])
        diagnostics = check_function_taint(function)
        assert _codes(diagnostics) == ["SEC002"]
        assert "caller-visible" in diagnostics.errors[0].message

    def test_local_scratch_spill_allowed(self, module):
        memref = MemRefType((8,), F32)
        function, b = new_function(module, "scratch", [F32], [F32])
        (x,) = function.arguments
        tainted = b.create(
            "secure.taint", [x], [F32], {"label": "key"}
        ).result
        local = b.alloc(memref)
        zero = b.index_const(0)
        b.store(tainted, local, [zero])
        cleared = b.create(
            "secure.declassify", [b.load(local, [zero])], [F32]
        ).result
        b.ret([cleared])
        diagnostics = check_function_taint(function)
        assert not diagnostics.has_errors


class TestInstrumentationState:
    def test_sensitive_args_without_instrumentation_warns(self, module):
        function, b = new_function(
            module, "pending", [F32], [F32],
            attributes={"everest.sensitive_args": [0]},
        )
        (x,) = function.arguments
        b.ret([b.addf(x, x)])
        diagnostics = check_function_taint(function)
        # only the SEC005 warning: instrumentation has not run yet,
        # so the hard policies are not enforced
        assert _codes(diagnostics) == ["SEC005"]
        assert not diagnostics.has_errors

    def test_annotate_records_labels(self, module):
        function, b = new_function(module, "ann", [F32], [F32])
        (x,) = function.arguments
        tainted = b.create(
            "secure.taint", [x], [F32], {"label": "pii"}
        ).result
        doubled = b.addf(tainted, tainted)
        cleared = b.create(
            "secure.declassify", [doubled], [F32]
        ).result
        b.ret([cleared])
        check_function_taint(function, annotate=True)
        assert doubled.producer.attr("analysis.taint") == ["pii"]


class TestPipelineTaint:
    def _pipeline_module(self, sink_sensitivity):
        from repro.core.dsl.annotations import (
            SecurityAnnotation,
            Sensitivity,
        )
        from repro.core.dsl.workflow import Pipeline
        from repro.core.ir.types import TensorType

        source_code = """
        kernel ident(X: tensor<4xf32>) -> tensor<4xf32> {
          Y = relu(X)
          return Y
        }
        """
        pipeline = Pipeline("p")
        source = pipeline.source(
            "raw", TensorType((4,), F32),
            security=SecurityAnnotation(
                sensitivity=Sensitivity.SECRET
            ),
        )
        task = pipeline.task(
            "t", source_code, inputs=[source], kernel="ident"
        )
        pipeline.sink("out", task.output(0))
        module = pipeline.to_ir()
        pipeline_op = next(
            op for op in module.body.operations
            if op.name == "workflow.pipeline"
        )
        if sink_sensitivity is not None:
            for op in pipeline_op.regions[0].blocks[0].operations:
                if op.name == "workflow.sink":
                    op.set_attr("sensitivity", sink_sensitivity)
        return module, pipeline_op

    def test_public_sink_receiving_secret_is_sec004(self):
        module, pipeline_op = self._pipeline_module("public")
        diagnostics = check_pipeline_taint(module, pipeline_op)
        assert "SEC004" in _codes(diagnostics)
        assert diagnostics.has_errors

    def test_unannotated_sink_is_note_only(self):
        module, pipeline_op = self._pipeline_module(None)
        diagnostics = check_pipeline_taint(module, pipeline_op)
        assert not diagnostics.has_errors
        assert "SEC003" in _codes(diagnostics)

    def test_module_level_entry_point(self):
        module, _pipeline_op = self._pipeline_module("public")
        diagnostics = check_module_taint(module)
        assert "SEC004" in _codes(diagnostics)
