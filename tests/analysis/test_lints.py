"""Dead-value / unreachable-block / unused-function lint tests."""

from repro.core.analysis.lints import (
    check_dead_values,
    check_module_lints,
    check_unreachable_blocks,
    check_unused_functions,
)
from repro.core.ir.types import F32

from tests.analysis.conftest import new_function


def _codes(diagnostics):
    return [item.code for item in diagnostics.sorted()]


class TestDeadValues:
    def test_unused_pure_op_flagged(self, module):
        function, b = new_function(module, "f", [F32], [F32])
        (x,) = function.arguments
        b.mulf(x, x)  # dead
        b.ret([x])
        diagnostics = check_dead_values(function)
        assert _codes(diagnostics) == ["LINT001"]
        assert "never used" in diagnostics.warnings[0].message

    def test_used_chain_not_flagged(self, module):
        function, b = new_function(module, "f", [F32], [F32])
        (x,) = function.arguments
        y = b.mulf(x, x)
        b.ret([y])
        assert not check_dead_values(function)

    def test_effectful_op_without_results_not_flagged(self, module):
        function, b = new_function(module, "f", [F32], [])
        (x,) = function.arguments
        b.create("secure.check", [x], [], {"policy": "p"})
        b.ret([])
        assert not check_dead_values(function)


class TestUnreachableBlocks:
    def test_extra_block_flagged(self, module):
        function, b = new_function(module, "f", [], [])
        loop = b.for_loop(0, 4)
        with b.at_block(loop.body):
            b.yield_op()
        loop.op.regions[0].add_block([])  # never targeted
        b.ret([])
        diagnostics = check_unreachable_blocks(function)
        assert _codes(diagnostics) == ["LINT002"]

    def test_single_block_regions_clean(self, module):
        function, b = new_function(module, "f", [], [])
        loop = b.for_loop(0, 4)
        with b.at_block(loop.body):
            b.yield_op()
        b.ret([])
        assert not check_unreachable_blocks(function)


class TestUnusedFunctions:
    def test_unreferenced_kernel_flagged(self, module):
        used, b = new_function(module, "used", [F32], [F32])
        b.ret([used.arguments[0]])
        unused, b2 = new_function(module, "unused", [F32], [F32])
        b2.ret([unused.arguments[0]])
        # a reference makes the module "linked", exposing the orphan
        top, b3 = new_function(module, "top", [], [])
        b3.create("hw.accelerator", [], [], {"kernel": "used"})
        b3.ret([])
        diagnostics = check_unused_functions(module)
        flagged = {item.anchor for item in diagnostics}
        assert "unused" in flagged
        assert "used" not in flagged
        # 'top' itself is unreferenced too: also flagged
        assert "top" in flagged

    def test_pure_kernel_library_not_flagged(self, module):
        function, b = new_function(module, "lib", [F32], [F32])
        b.ret([function.arguments[0]])
        assert not check_unused_functions(module)


class TestModuleLints:
    def test_aggregator_combines_all(self, module):
        function, b = new_function(module, "f", [F32], [F32])
        (x,) = function.arguments
        b.mulf(x, x)  # dead
        b.ret([x])
        diagnostics = check_module_lints(module)
        assert "LINT001" in _codes(diagnostics)
        assert not diagnostics.has_errors  # lints are warnings
