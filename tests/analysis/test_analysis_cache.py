"""Digest-keyed incremental analysis cache tests."""

import json

from repro.core.analysis import analyze_module_cached
from repro.core.analysis.cache import (
    AnalysisCache,
    analysis_cache,
    clear_analysis_cache,
    configure_analysis_cache,
    default_analysis_cache_dir,
)
from repro.core.dsl.kernel_dsl import compile_kernel
from repro.obs import MetricsRegistry, Observation, observe

SRC = """
kernel f(X: tensor<8xf32>) -> tensor<8xf32> {
  Y = relu(X)
  return Y
}
"""

OTHER_SRC = """
kernel f(X: tensor<16xf32>) -> tensor<16xf32> {
  Y = relu(X)
  return Y
}
"""


class TestKeys:
    def test_module_key_is_deterministic(self):
        key = AnalysisCache.module_key("d1", ("absint", "taint"), False)
        assert key == AnalysisCache.module_key(
            "d1", ("absint", "taint"), False)

    def test_module_key_ignores_check_order(self):
        assert AnalysisCache.module_key(
            "d1", ("taint", "absint"),
        ) == AnalysisCache.module_key("d1", ("absint", "taint"))

    def test_module_key_varies_on_every_input(self):
        base = AnalysisCache.module_key("d1", ("absint",), False)
        assert AnalysisCache.module_key("d2", ("absint",), False) != base
        assert AnalysisCache.module_key("d1", ("taint",), False) != base
        assert AnalysisCache.module_key("d1", ("absint",), True) != base

    def test_source_key_varies_on_text_and_checks(self):
        base = AnalysisCache.source_key("spec-a", ("absint",))
        assert AnalysisCache.source_key("spec-a", ("absint",)) == base
        assert AnalysisCache.source_key("spec-b", ("absint",)) != base
        assert AnalysisCache.source_key("spec-a", ("taint",)) != base


class TestStore:
    def test_memory_round_trip(self):
        cache = AnalysisCache()
        assert cache.get("k") is None
        cache.put("k", {"value": 1})
        assert cache.get("k") == {"value": 1}
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)

    def test_disk_round_trip_across_instances(self, tmp_path):
        first = AnalysisCache(directory=tmp_path / "store")
        first.put("abcd", {"value": 2})
        second = AnalysisCache(directory=tmp_path / "store")
        assert second.get("abcd") == {"value": 2}
        # entries are sharded by key prefix
        assert (tmp_path / "store" / "ab" / "abcd.json").exists()

    def test_version_mismatch_reads_as_miss(self, tmp_path):
        cache = AnalysisCache(directory=tmp_path / "store")
        cache.put("abcd", {"value": 3})
        path = tmp_path / "store" / "ab" / "abcd.json"
        entry = json.loads(path.read_text())
        entry["version"] = "unreleased"
        path.write_text(json.dumps(entry))
        fresh = AnalysisCache(directory=tmp_path / "store")
        assert fresh.get("abcd") is None

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = AnalysisCache(directory=tmp_path / "store")
        cache.put("abcd", {"value": 4})
        (tmp_path / "store" / "ab" / "abcd.json").write_text("{oops")
        fresh = AnalysisCache(directory=tmp_path / "store")
        assert fresh.get("abcd") is None

    def test_disabled_cache_never_hits(self):
        cache = AnalysisCache(enabled=False)
        cache.put("k", {"value": 5})
        assert cache.get("k") is None

    def test_clear_drops_memory_and_disk(self, tmp_path):
        cache = AnalysisCache(directory=tmp_path / "store")
        cache.put("abcd", {"value": 6})
        cache.put("efgh", {"value": 7})
        assert cache.entry_count() == 2
        assert cache.disk_bytes() > 0
        assert cache.clear() == 2
        assert cache.entry_count() == 0
        assert cache.get("abcd") is None

    def test_default_dir_is_xdg_aware(self, tmp_path, monkeypatch):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_analysis_cache_dir() == (
            tmp_path / "xdg" / "repro-analysis")

    def test_configure_replaces_process_instance(self, tmp_path):
        configured = configure_analysis_cache(cache_dir=tmp_path / "a")
        assert analysis_cache() is configured
        configure_analysis_cache(cache_dir=None)
        assert analysis_cache().directory is None


class TestAnalyzeModuleCached:
    def test_warm_hit_replays_identical_results(self):
        clear_analysis_cache()
        cold_diag, cold_facts, cold_hit = analyze_module_cached(
            compile_kernel(SRC))
        # a fresh but structurally identical module hits the cache
        warm_diag, warm_facts, warm_hit = analyze_module_cached(
            compile_kernel(SRC))
        assert (cold_hit, warm_hit) == (False, True)
        assert [item.to_dict() for item in cold_diag] == [
            item.to_dict() for item in warm_diag]
        assert cold_facts.to_payload() == warm_facts.to_payload()

    def test_structural_change_misses(self):
        clear_analysis_cache()
        _, _, first = analyze_module_cached(compile_kernel(SRC))
        _, _, second = analyze_module_cached(compile_kernel(OTHER_SRC))
        assert (first, second) == (False, False)

    def test_check_subset_keys_separately(self):
        clear_analysis_cache()
        analyze_module_cached(compile_kernel(SRC))
        _, facts, hit = analyze_module_cached(
            compile_kernel(SRC), checks=("taint",))
        assert not hit
        _, _, again = analyze_module_cached(
            compile_kernel(SRC), checks=("taint",))
        assert again

    def test_traffic_reaches_the_metrics_registry(self):
        clear_analysis_cache()
        metrics = MetricsRegistry()
        with observe(Observation(metrics=metrics)):
            analyze_module_cached(compile_kernel(SRC))
            analyze_module_cached(compile_kernel(SRC))
        hits = metrics.counter("analysis.cache_hits")
        misses = metrics.counter("analysis.cache_misses")
        assert hits.value(layer="module") == 1
        assert misses.value(layer="module") == 1


class TestCompilerGateCaching:
    def _pipeline(self):
        from repro.core.dsl.workflow import Pipeline
        from repro.core.ir.types import F32, TensorType

        pipeline = Pipeline("app")
        source = pipeline.source("raw", TensorType((8,), F32))
        task = pipeline.task("t", SRC, inputs=[source], kernel="f")
        pipeline.sink("out", task.output(0))
        return pipeline

    def test_second_compile_hits_the_analysis_cache(self):
        from repro.core.compiler import EverestCompiler

        clear_analysis_cache()
        metrics = MetricsRegistry()
        compiler = EverestCompiler(emit_artifacts=False)
        with observe(Observation(metrics=metrics)):
            compiler.compile(self._pipeline())
            compiler.compile(self._pipeline())
        assert metrics.counter(
            "analysis.cache_hits").value(layer="module") == 1
        assert metrics.counter(
            "analysis.cache_misses").value(layer="module") == 1
