"""Memory-partition legality and static bounds tests."""

from repro.core.analysis.partition import (
    check_function_partitioning,
    check_module_partitioning,
)
from repro.core.ir.types import F32, MemRefType

from tests.analysis.conftest import new_function


def _codes(diagnostics):
    return [item.code for item in diagnostics.sorted()]


def _loop_over(b, buffer, upper, unroll=1, offset=0, stride=1):
    """for i in [0, upper): load buffer[stride*i + offset]."""
    attributes = {"unroll": unroll} if unroll > 1 else None
    loop = b.for_loop(0, upper, attributes=attributes)
    with b.at_block(loop.body):
        index = loop.induction_var
        if stride != 1:
            index = b._binary(
                "kernel.muli", index, b.index_const(stride)
            )
        if offset:
            index = b._binary(
                "kernel.addi", index, b.index_const(offset)
            )
        b.load(buffer, [index])
        b.yield_op()
    return loop


class TestBounds:
    def test_in_bounds_loop_is_clean(self, module):
        memref = MemRefType((8,), F32)
        function, b = new_function(module, "f", [memref], [])
        (buffer,) = function.arguments
        _loop_over(b, buffer, upper=8)
        b.ret([])
        assert not check_function_partitioning(function)

    def test_off_by_one_flagged_mem001(self, module):
        memref = MemRefType((8,), F32)
        function, b = new_function(module, "f", [memref], [])
        (buffer,) = function.arguments
        _loop_over(b, buffer, upper=8, offset=1)
        b.ret([])
        diagnostics = check_function_partitioning(function)
        assert _codes(diagnostics) == ["MEM001"]
        assert "outside dimension" in diagnostics.errors[0].message

    def test_negative_offset_flagged(self, module):
        memref = MemRefType((8,), F32)
        function, b = new_function(module, "f", [memref], [])
        (buffer,) = function.arguments
        loop = b.for_loop(0, 8)
        with b.at_block(loop.body):
            index = b._binary(
                "kernel.subi", loop.induction_var, b.index_const(1)
            )
            b.load(buffer, [index])
            b.yield_op()
        b.ret([])
        diagnostics = check_function_partitioning(function)
        assert _codes(diagnostics) == ["MEM001"]

    def test_2d_row_major_in_bounds(self, module):
        memref = MemRefType((4, 8), F32)
        function, b = new_function(module, "f", [memref], [])
        (buffer,) = function.arguments
        outer = b.for_loop(0, 4)
        with b.at_block(outer.body):
            inner = b.for_loop(0, 8)
            with b.at_block(inner.body):
                b.load(
                    buffer,
                    [outer.induction_var, inner.induction_var],
                )
                b.yield_op()
            b.yield_op()
        b.ret([])
        assert not check_function_partitioning(function)

    def test_non_affine_index_skipped(self, module):
        memref = MemRefType((8,), F32)
        function, b = new_function(module, "f", [memref, F32], [])
        buffer, scalar = function.arguments
        loop = b.for_loop(0, 8)
        with b.at_block(loop.body):
            # i*i is not affine: the analysis must stay silent
            index = b._binary(
                "kernel.muli", loop.induction_var, loop.induction_var
            )
            b.load(buffer, [index])
            b.yield_op()
        b.ret([])
        assert not check_function_partitioning(function)


class TestPartitionLegality:
    def _partitioned(self, b, buffer, scheme, factor):
        b.create(
            "hw.partition", [buffer], [],
            {"scheme": scheme, "factor": factor},
        )

    def test_conflict_free_cyclic_is_clean(self, module):
        memref = MemRefType((16,), F32)
        function, b = new_function(module, "f", [memref], [])
        (buffer,) = function.arguments
        self._partitioned(b, buffer, "cyclic", 4)
        _loop_over(b, buffer, upper=16, unroll=4)
        b.ret([])
        assert not check_function_partitioning(function)

    def test_stride_collides_with_cyclic_banks_mem002(self, module):
        memref = MemRefType((16,), F32)
        function, b = new_function(module, "f", [memref], [])
        (buffer,) = function.arguments
        self._partitioned(b, buffer, "cyclic", 2)
        # addresses 0, 2, 4, ... with 2 banks: every access lands in
        # bank 0, so unroll 2 needs 2 simultaneous ports of one bank
        # plus the same again next cycle — legal; use stride 2 with
        # unroll 2: addresses i*2 and (i+1)*2 are both even -> bank 0
        _loop_over(b, buffer, upper=8, unroll=2, stride=2)
        b.ret([])
        diagnostics = check_function_partitioning(function)
        assert "MEM002" in _codes(diagnostics)
        assert "colliding banks" in diagnostics.warnings[0].message

    def test_port_demand_exceeds_banks_mem002(self, module):
        memref = MemRefType((64,), F32)
        function, b = new_function(module, "f", [memref], [])
        (buffer,) = function.arguments
        self._partitioned(b, buffer, "block", 2)
        # one access under unroll 16 needs 16 ports; 2 banks give 4
        _loop_over(b, buffer, upper=64, unroll=16)
        b.ret([])
        diagnostics = check_function_partitioning(function)
        assert "MEM002" in _codes(diagnostics)
        assert "ports" in diagnostics.warnings[0].message

    def test_wasteful_factor_mem003(self, module):
        memref = MemRefType((4,), F32)
        function, b = new_function(module, "f", [memref], [])
        (buffer,) = function.arguments
        self._partitioned(b, buffer, "cyclic", 16)
        _loop_over(b, buffer, upper=4)
        b.ret([])
        diagnostics = check_function_partitioning(function)
        assert "MEM003" in _codes(diagnostics)

    def test_complete_partition_never_conflicts(self, module):
        memref = MemRefType((16,), F32)
        function, b = new_function(module, "f", [memref], [])
        (buffer,) = function.arguments
        self._partitioned(b, buffer, "complete", 16)
        _loop_over(b, buffer, upper=8, unroll=8, stride=2)
        b.ret([])
        assert not check_function_partitioning(function)

    def test_module_entry_point(self, module):
        memref = MemRefType((8,), F32)
        function, b = new_function(module, "f", [memref], [])
        (buffer,) = function.arguments
        _loop_over(b, buffer, upper=8, offset=1)
        b.ret([])
        diagnostics = check_module_partitioning(module)
        assert _codes(diagnostics) == ["MEM001"]
