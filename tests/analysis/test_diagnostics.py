"""Tests for the unified diagnostics layer."""

import json

import pytest

from repro.core.analysis.diagnostics import (
    CODES,
    Diagnostics,
    Severity,
    describe_code,
    raise_if_errors,
)
from repro.errors import AnalysisError


class TestRegistry:
    def test_all_codes_described(self):
        for code, description in CODES.items():
            assert description, code
            assert describe_code(code) == description

    def test_code_families_present(self):
        families = {code[:2] for code in CODES}
        assert {"IR", "TY", "SE", "ME", "LI", "WF", "PM", "DS"} <= families

    def test_unregistered_code_rejected(self):
        with pytest.raises(ValueError, match="unregistered"):
            Diagnostics().error("XX999", "nope")


class TestCollection:
    def test_shorthands_set_severity(self):
        diagnostics = Diagnostics()
        diagnostics.error("IR001", "a")
        diagnostics.warning("LINT001", "b")
        diagnostics.note("SEC003", "c")
        assert [item.severity for item in diagnostics] == [
            Severity.ERROR, Severity.WARNING, Severity.NOTE,
        ]
        assert diagnostics.has_errors
        assert len(diagnostics.errors) == 1
        assert len(diagnostics.warnings) == 1

    def test_sorted_orders_by_severity_then_code(self):
        diagnostics = Diagnostics()
        diagnostics.note("SEC003", "last")
        diagnostics.error("WF001", "second")
        diagnostics.error("IR003", "first")
        codes = [item.code for item in diagnostics.sorted()]
        assert codes == ["IR003", "WF001", "SEC003"]

    def test_suppress_drops_codes(self):
        diagnostics = Diagnostics()
        diagnostics.error("IR001", "kept")
        diagnostics.warning("LINT001", "dropped")
        kept = diagnostics.suppress(["LINT001"])
        assert [item.code for item in kept] == ["IR001"]
        # original untouched
        assert len(diagnostics) == 2

    def test_render_text_counts(self):
        diagnostics = Diagnostics()
        diagnostics.error("IR001", "boom", anchor="func.func")
        text = diagnostics.render_text("header")
        assert "header" in text
        assert "error[IR001] @ func.func: boom" in text
        assert "1 error" in text

    def test_render_clean(self):
        assert "clean" in Diagnostics().render_text()

    def test_json_stable_and_parseable(self):
        diagnostics = Diagnostics()
        diagnostics.error("WF002", "m", anchor="wf/t", analysis="dag-lint")
        payload = json.loads(diagnostics.to_json())
        assert payload["counts"]["error"] == 1
        entry = payload["diagnostics"][0]
        assert entry["code"] == "WF002"
        assert entry["anchor"] == "wf/t"
        # two renders are byte-identical
        assert diagnostics.to_json() == diagnostics.to_json()

    def test_loc_rendered(self):
        diagnostics = Diagnostics()
        item = diagnostics.error("TY001", "bad", loc=("k.edsl", 3))
        assert "(k.edsl:3)" in item.render()
        assert json.loads(diagnostics.to_json())["diagnostics"][0][
            "line"] == 3


class TestRaiseIfErrors:
    def test_raises_with_attached_collection(self):
        diagnostics = Diagnostics()
        diagnostics.error("SEC001", "leak")
        with pytest.raises(AnalysisError, match="SEC001"):
            raise_if_errors(diagnostics, AnalysisError)
        try:
            raise_if_errors(diagnostics, AnalysisError)
        except AnalysisError as exc:
            assert exc.diagnostics is diagnostics

    def test_no_errors_no_raise(self):
        diagnostics = Diagnostics()
        diagnostics.warning("LINT001", "meh")
        raise_if_errors(diagnostics, AnalysisError)
