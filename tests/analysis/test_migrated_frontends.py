"""The verifier and typechecker now report through diagnostics."""

import pytest

from repro.core.dsl.parser import parse
from repro.core.dsl.typecheck import (
    check_program,
    check_program_diagnostics,
)
from repro.core.ir.types import F32
from repro.core.ir.verifier import verify, verify_diagnostics
from repro.errors import TypeCheckError, VerificationError

from tests.analysis.conftest import new_function


class TestVerifierDiagnostics:
    def _missing_terminator(self, module):
        function, b = new_function(module, "f", [F32], [F32])
        b.mulf(function.arguments[0], function.arguments[0])
        return module

    def test_fail_fast_message_carries_code(self, module):
        self._missing_terminator(module)
        with pytest.raises(VerificationError, match=r"IR005"):
            verify(module)
        with pytest.raises(
            VerificationError, match="block must end with"
        ):
            verify(module)

    def test_raised_error_carries_collection(self, module):
        self._missing_terminator(module)
        try:
            verify(module)
        except VerificationError as exc:
            assert exc.diagnostics.has_errors
        else:
            pytest.fail("expected VerificationError")

    def test_collect_mode_finds_multiple_defects(self, module):
        # two independent functions, each missing its terminator
        for name in ("f", "g"):
            function, b = new_function(module, name, [F32], [F32])
            b.mulf(function.arguments[0], function.arguments[0])
        diagnostics = verify_diagnostics(module)
        assert len(diagnostics.errors) == 2
        assert {item.code for item in diagnostics} == {"IR005"}

    def test_clean_module_collects_nothing(self, module):
        function, b = new_function(module, "f", [F32], [F32])
        b.ret([function.arguments[0]])
        assert not verify_diagnostics(module)


class TestTypecheckDiagnostics:
    BAD_TWO_KERNELS = """
kernel one(A: tensor<4xf32>) -> tensor<4xf32> {
  return missing
}
kernel two(A: tensor<4xf32>, A: tensor<4xf32>) -> tensor<4xf32> {
  return A
}
"""

    def test_raise_mode_keeps_line_prefix_and_code(self):
        program = parse("""
kernel k(A: tensor<4xf32>) -> tensor<4xf32> {
  return missing
}
""")
        with pytest.raises(TypeCheckError, match="undefined") as info:
            check_program(program)
        assert getattr(info.value, "code") == "TY001"
        assert "line " in str(info.value)

    def test_declaration_errors_are_ty002(self):
        program = parse("""
kernel k(A: tensor<4xf32>, A: tensor<4xf32>) -> tensor<4xf32> {
  return A
}
""")
        with pytest.raises(TypeCheckError) as info:
            check_program(program)
        assert getattr(info.value, "code") == "TY002"

    def test_collect_mode_reports_every_kernel(self):
        program = parse(self.BAD_TWO_KERNELS)
        diagnostics = check_program_diagnostics(program)
        assert len(diagnostics.errors) == 2
        codes = sorted(item.code for item in diagnostics)
        assert codes == ["TY001", "TY002"]
        anchors = {item.anchor for item in diagnostics}
        assert anchors == {"one", "two"}

    def test_collect_mode_clean(self):
        program = parse("""
kernel k(A: tensor<4xf32>) -> tensor<4xf32> {
  Y = relu(A)
  return Y
}
""")
        assert not check_program_diagnostics(program)
