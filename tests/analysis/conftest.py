"""Builders shared by the static-analysis tests."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import pytest

from repro.core.ir.builder import Builder
from repro.core.ir.module import Function, Module
from repro.core.ir.types import FunctionType, Type


def new_function(
    module: Module,
    name: str,
    inputs: Sequence[Type] = (),
    results: Sequence[Type] = (),
    attributes: Optional[dict] = None,
) -> Tuple[Function, Builder]:
    """A fresh function with a builder parked on its entry block."""
    function = module.add_function(
        name,
        FunctionType(tuple(inputs), tuple(results)),
        attributes=dict(attributes or {}),
    )
    builder = Builder()
    builder.set_insertion_point(function.entry_block)
    return function, builder


@pytest.fixture
def module() -> Module:
    return Module("test")
