"""Static concurrency analyzer: RACE001-004 / DL001-003."""

import json
import os

import pytest

from repro.cli import main
from repro.core.analysis import (
    ConcurrencyTask,
    Diagnostics,
    ResourceSpec,
    analyze_concurrency,
    check_task_graph_concurrency,
    lint_concurrency_spec,
)
from repro.workflow.graph import DataObject, TaskGraph, WorkflowTask

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def codes(diagnostics):
    return sorted({item.code for item in diagnostics})


class TestRaces:
    def test_unordered_writers_are_race001(self):
        diags = analyze_concurrency([
            ConcurrencyTask("produce", writes=["acc"]),
            ConcurrencyTask("upd_a", updates=["acc"]),
            ConcurrencyTask("upd_b", updates=["acc"]),
        ])
        assert codes(diags) == ["RACE001"]
        assert "upd_a" in diags.items[0].message
        assert "upd_b" in diags.items[0].message

    def test_ordered_writers_are_clean(self):
        # chain: produce -> refine (reads acc, writes refined)
        diags = analyze_concurrency([
            ConcurrencyTask("produce", writes=["acc"]),
            ConcurrencyTask("refine", reads=["acc"],
                            writes=["refined"]),
        ])
        assert len(diags) == 0

    def test_reader_vs_unordered_writer_is_race002(self):
        diags = analyze_concurrency([
            ConcurrencyTask("produce", writes=["acc"]),
            ConcurrencyTask("upd", updates=["acc"]),
            ConcurrencyTask("read", reads=["acc"]),
        ])
        assert codes(diags) == ["RACE002"]

    def test_torn_multi_object_read_is_race003(self):
        diags = analyze_concurrency([
            ConcurrencyTask("produce", writes=["left", "right"]),
            ConcurrencyTask("rebalance", updates=["left", "right"]),
            ConcurrencyTask("snapshot", reads=["left", "right"]),
        ])
        assert "RACE003" in codes(diags)
        torn = [i for i in diags if i.code == "RACE003"]
        assert len(torn) == 1
        assert "snapshot" in torn[0].message

    def test_order_sensitive_tie_is_race004(self):
        diags = analyze_concurrency([
            ConcurrencyTask("p1", writes=["x"], duration_s=1.0),
            ConcurrencyTask("p2", writes=["y"], duration_s=1.0),
            ConcurrencyTask("merge", reads=["x", "y"],
                            order_sensitive=True),
        ])
        assert codes(diags) == ["RACE004"]

    def test_unequal_priorities_silence_race004(self):
        diags = analyze_concurrency([
            ConcurrencyTask("p1", writes=["x"], duration_s=1.0),
            ConcurrencyTask("p2", writes=["y"], duration_s=2.0),
            ConcurrencyTask("merge", reads=["x", "y"],
                            order_sensitive=True),
        ])
        assert len(diags) == 0

    def test_order_insensitive_merge_is_clean(self):
        diags = analyze_concurrency([
            ConcurrencyTask("p1", writes=["x"], duration_s=1.0),
            ConcurrencyTask("p2", writes=["y"], duration_s=1.0),
            ConcurrencyTask("merge", reads=["x", "y"]),
        ])
        assert len(diags) == 0


class TestDeadlocks:
    def test_lock_order_inversion_is_dl001(self):
        diags = analyze_concurrency(
            [
                ConcurrencyTask("t1", acquires=[("r1", 1), ("r2", 1)]),
                ConcurrencyTask("t2", acquires=[("r2", 1), ("r1", 1)]),
            ],
            [ResourceSpec("r1"), ResourceSpec("r2")],
        )
        assert codes(diags) == ["DL001"]

    def test_consistent_order_is_clean(self):
        diags = analyze_concurrency(
            [
                ConcurrencyTask("t1", acquires=[("r1", 1), ("r2", 1)]),
                ConcurrencyTask("t2", acquires=[("r1", 1), ("r2", 1)]),
            ],
            [ResourceSpec("r1"), ResourceSpec("r2")],
        )
        assert len(diags) == 0

    def test_ordered_tasks_do_not_deadlock(self):
        # t2 depends on t1, so the inverted order can never interleave
        diags = analyze_concurrency(
            [
                ConcurrencyTask("t1", writes=["x"],
                                acquires=[("r1", 1), ("r2", 1)]),
                ConcurrencyTask("t2", reads=["x"],
                                acquires=[("r2", 1), ("r1", 1)]),
            ],
            [ResourceSpec("r1"), ResourceSpec("r2")],
        )
        assert len(diags) == 0

    def test_overcapacity_request_is_dl002(self):
        diags = analyze_concurrency(
            [ConcurrencyTask("greedy", acquires=[("r", 3)])],
            [ResourceSpec("r", 2)],
        )
        assert codes(diags) == ["DL002"]

    def test_unknown_resource_is_dl002(self):
        diags = analyze_concurrency(
            [ConcurrencyTask("ghostly", acquires=[("phantom", 1)])],
        )
        assert codes(diags) == ["DL002"]

    def test_hold_and_wait_exhaustion_is_dl003(self):
        diags = analyze_concurrency(
            [
                ConcurrencyTask("left", acquires=[("pool", 2)]),
                ConcurrencyTask("right", acquires=[("pool", 2)]),
            ],
            [ResourceSpec("pool", 2)],
        )
        assert codes(diags) == ["DL003"]

    def test_ample_capacity_is_clean(self):
        diags = analyze_concurrency(
            [
                ConcurrencyTask("left", acquires=[("pool", 2)]),
                ConcurrencyTask("right", acquires=[("pool", 2)]),
            ],
            [ResourceSpec("pool", 4)],
        )
        assert len(diags) == 0

    def test_ordered_claimants_cannot_exhaust(self):
        diags = analyze_concurrency(
            [
                ConcurrencyTask("left", writes=["x"],
                                acquires=[("pool", 2)]),
                ConcurrencyTask("right", reads=["x"],
                                acquires=[("pool", 2)]),
            ],
            [ResourceSpec("pool", 2)],
        )
        assert len(diags) == 0

    def test_checks_filter(self):
        tasks = [
            ConcurrencyTask("produce", writes=["acc"]),
            ConcurrencyTask("upd_a", updates=["acc"]),
            ConcurrencyTask("upd_b", updates=["acc"]),
            ConcurrencyTask("greedy", acquires=[("r", 3)]),
        ]
        race_only = analyze_concurrency(
            tasks, [ResourceSpec("r", 2)], checks=["race"]
        )
        dl_only = analyze_concurrency(
            tasks, [ResourceSpec("r", 2)], checks=["dl"]
        )
        assert codes(race_only) == ["RACE001"]
        assert codes(dl_only) == ["DL002"]
        with pytest.raises(ValueError):
            analyze_concurrency(tasks, checks=["bogus"])


class TestAdapters:
    def test_task_graph_adapter_sees_updates_and_constraints(self):
        graph = TaskGraph("adapter")
        graph.add_object(DataObject("seed"))
        graph.add_task(WorkflowTask(
            "produce", inputs=["seed"], outputs=["acc"],
        ))
        graph.add_task(WorkflowTask("upd_a", updates=["acc"]))
        graph.add_task(WorkflowTask(
            "upd_b", updates=["acc"],
            constraints={"acquires": [("role", 3)]},
        ))
        diags = check_task_graph_concurrency(
            graph, [ResourceSpec("role", 2)]
        )
        assert codes(diags) == ["DL002", "RACE001"]

    def test_spec_adapter_accepts_dict_acquires(self):
        diags = lint_concurrency_spec({
            "name": "spec",
            "resources": [{"name": "role", "capacity": 2}],
            "tasks": [
                {"name": "greedy",
                 "acquires": [{"resource": "role", "units": 3}]},
            ],
        })
        assert codes(diags) == ["DL002"]

    def test_diagnostics_carry_analysis_and_anchor(self):
        diags = Diagnostics()
        analyze_concurrency(
            [
                ConcurrencyTask("produce", writes=["acc"]),
                ConcurrencyTask("upd_a", updates=["acc"]),
                ConcurrencyTask("upd_b", updates=["acc"]),
            ],
            name="wf",
            diagnostics=diags,
        )
        item = diags.items[0]
        assert item.analysis == "concurrency"
        assert item.anchor == "wf/acc"


class TestGraphUpdates:
    def test_updater_depends_on_producer(self):
        graph = TaskGraph("deps")
        graph.add_object(DataObject("seed"))
        graph.add_task(WorkflowTask(
            "produce", inputs=["seed"], outputs=["acc"],
        ))
        graph.add_task(WorkflowTask("upd", updates=["acc"]))
        assert graph.dependencies("upd") == ["produce"]
        assert "upd" in graph.consumers("produce")

    def test_unknown_update_object_rejected(self):
        from repro.errors import WorkflowError

        graph = TaskGraph("deps")
        with pytest.raises(WorkflowError, match="unknown updated"):
            graph.add_task(WorkflowTask("upd", updates=["ghost"]))


class TestCompilerGate:
    def test_clean_pipeline_compiles(self):
        from repro.core.compiler import EverestCompiler
        from repro.core.dsl.workflow import Pipeline
        from repro.core.ir import F32, TensorType

        source = """
        kernel smooth(X: tensor<16xf32>) -> tensor<16xf32> {
          Y = relu(X)
          return Y
        }
        """
        pipeline = Pipeline("gate")
        src = pipeline.source("x", TensorType((16,), F32))
        task = pipeline.task("stage", source, inputs=[src],
                             kernel="smooth")
        pipeline.sink("out", task.output(0))
        app = EverestCompiler(emit_artifacts=False).compile(pipeline)
        assert not app.diagnostics.has_errors

    def test_pipeline_concurrency_gate_runs_clean(self):
        from repro.core.analysis import check_pipeline_concurrency
        from repro.core.dsl.workflow import Pipeline
        from repro.core.ir import F32, TensorType

        pipeline = Pipeline("gate2")
        src = pipeline.source("x", TensorType((16,), F32))
        task = pipeline.task("stage", "kernel k() -> f32 {}",
                             inputs=[src])
        pipeline.sink("out", task.output(0))
        diags = check_pipeline_concurrency(pipeline)
        assert len(diags) == 0


class TestLintCLIConcurrency:
    @pytest.mark.parametrize(
        "fixture,code",
        [
            ("conc_race_ww.json", "RACE001"),
            ("conc_race_rw.json", "RACE002"),
            ("conc_race_torn.json", "RACE003"),
            ("conc_race_tie.json", "RACE004"),
            ("conc_dl_order.json", "DL001"),
            ("conc_dl_capacity.json", "DL002"),
            ("conc_dl_holdwait.json", "DL003"),
        ],
    )
    def test_fixture_true_positive(self, capsys, fixture, code):
        path = os.path.join(FIXTURES, fixture)
        assert main(["lint", path, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        found = {item["code"] for item in payload["diagnostics"]}
        assert code in found

    def test_only_race_dl_filters_other_checks(self, capsys):
        path = os.path.join(FIXTURES, "conc_race_ww.json")
        assert main([
            "lint", path, "--only", "RACE,DL", "--format", "json",
        ]) == 1
        payload = json.loads(capsys.readouterr().out)
        found = {item["code"] for item in payload["diagnostics"]}
        assert found == {"RACE001"}

    def test_only_race_dl_skips_wf_findings(self, capsys):
        path = os.path.join(FIXTURES, "cycle.json")
        assert main([
            "lint", path, "--only", "RACE,DL", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"] == []

    def test_clean_fixture_stays_clean(self):
        path = os.path.join(FIXTURES, "clean.json")
        assert main(["lint", path]) == 0

    def test_suppress_clears_exit_code(self, capsys):
        path = os.path.join(FIXTURES, "conc_dl_holdwait.json")
        assert main(["lint", path, "--suppress", "DL003"]) == 0
