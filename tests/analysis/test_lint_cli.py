"""`python -m repro lint` behavior: exit codes, formats, suppression."""

import json
import os

import pytest

from repro.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
EXAMPLES = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)

CLEAN_KERNEL = """
kernel smooth(X: tensor<16xf32>) -> tensor<16xf32> {
  Y = relu(X)
  return Y
}
"""


def run_lint(*argv):
    return main(["lint", *argv])


class TestExitCodes:
    def test_shipped_examples_are_clean(self, capsys):
        assert run_lint(EXAMPLES) == 0
        out = capsys.readouterr().out
        assert "lint:" in out

    def test_clean_edsl_exits_zero(self, tmp_path, capsys):
        spec = tmp_path / "k.edsl"
        spec.write_text(CLEAN_KERNEL)
        assert run_lint(str(spec)) == 0

    @pytest.mark.parametrize(
        "fixture,code",
        [
            ("cycle.json", "WF001"),
            ("unproducible.json", "WF002"),
            ("overcapacity.json", "WF003"),
            ("dup_output.json", "WF004"),
            ("oob_access.ir", "MEM004"),
            ("dead_branch.ir", "LINT004"),
            ("shape_mismatch.json", "WF010"),
        ],
    )
    def test_defect_fixture_exits_one_with_json(
        self, capsys, fixture, code
    ):
        path = os.path.join(FIXTURES, fixture)
        assert run_lint(path, "--format", "json") == 1
        payload = json.loads(capsys.readouterr().out)
        codes = {item["code"] for item in payload["diagnostics"]}
        assert code in codes
        assert payload["counts"]["error"] >= 1

    def test_unloadable_spec_exits_two(self, capsys):
        path = os.path.join(FIXTURES, "bad_kernel.edsl")
        assert run_lint(path, "--format", "json") == 2
        payload = json.loads(capsys.readouterr().out)
        codes = {item["code"] for item in payload["diagnostics"]}
        assert codes == {"DSL001"}

    def test_missing_path_exits_two(self, capsys):
        assert run_lint("/no/such/spec.edsl") == 2


class TestMultiTargetRobustness:
    def test_bad_target_does_not_abort_the_run(
        self, tmp_path, capsys
    ):
        # a non-UTF8 blob among good targets: the whole run exits 2,
        # but the remaining targets are still linted
        good = tmp_path / "k.edsl"
        good.write_text(CLEAN_KERNEL)
        blob = tmp_path / "garbage.edsl"
        blob.write_bytes(b"\xff\xfe\x00kernel")
        racy = os.path.join(FIXTURES, "conc_race_ww.json")
        assert run_lint(
            str(blob), str(good), racy, "--format", "json"
        ) == 2
        payload = json.loads(capsys.readouterr().out)
        codes = {item["code"] for item in payload["diagnostics"]}
        assert "DSL001" in codes  # the unreadable blob
        assert "RACE001" in codes  # later target still linted

    def test_loader_failure_outranks_lint_findings(self, capsys):
        bad = os.path.join(FIXTURES, "bad_kernel.edsl")
        racy = os.path.join(FIXTURES, "conc_race_ww.json")
        assert run_lint(racy, bad) == 2

    def test_all_good_targets_keep_code_one(self, tmp_path, capsys):
        good = tmp_path / "k.edsl"
        good.write_text(CLEAN_KERNEL)
        racy = os.path.join(FIXTURES, "conc_race_ww.json")
        assert run_lint(str(good), racy) == 1


class TestOptions:
    def test_suppress_turns_error_into_clean_exit(self, capsys):
        path = os.path.join(FIXTURES, "overcapacity.json")
        assert run_lint(path) == 1
        capsys.readouterr()
        assert run_lint(path, "--suppress", "WF003") == 0

    def test_text_format_mentions_code_and_anchor(self, capsys):
        path = os.path.join(FIXTURES, "cycle.json")
        run_lint(path)
        out = capsys.readouterr().out
        assert "error[WF001]" in out
        assert "cycle" in out

    def test_json_is_machine_readable(self, tmp_path, capsys):
        spec = tmp_path / "k.edsl"
        spec.write_text(CLEAN_KERNEL)
        assert run_lint(str(spec), "--format", "json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {
            "error": 0, "warning": 0, "note": 0
        }

    def test_dead_branch_fixture_names_both_defects(self, capsys):
        path = os.path.join(FIXTURES, "dead_branch.ir")
        assert run_lint(path) == 1
        out = capsys.readouterr().out
        assert "zero iterations" in out
        assert "always true" in out

    def test_oob_fixture_reports_the_inferred_range(self, capsys):
        path = os.path.join(FIXTURES, "oob_access.ir")
        assert run_lint(path) == 1
        out = capsys.readouterr().out
        assert "[0, 9]" in out and "size 8" in out

    def test_only_restricts_checks(self, tmp_path, capsys):
        # sensitive arg normally yields a SEC005 warning; --only
        # partition must not run the taint analysis
        spec = tmp_path / "k.edsl"
        spec.write_text("""
kernel score(X: tensor<4xf32> @sensitive) -> tensor<4xf32> {
  Y = relu(X)
  return Y
}
""")
        assert run_lint(
            str(spec), "--format", "json", "--only", "partition"
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["warning"] == 0


class TestIncremental:
    def _tree(self, root):
        root.mkdir(parents=True, exist_ok=True)
        (root / "k.edsl").write_text(CLEAN_KERNEL)
        (root / "nested").mkdir(exist_ok=True)
        (root / "nested" / "m.edsl").write_text(
            CLEAN_KERNEL.replace("smooth", "other"))
        return str(root)

    def test_warm_run_hits_and_keeps_stdout_identical(
        self, tmp_path, capsys
    ):
        tree = self._tree(tmp_path / "specs")
        cache_dir = str(tmp_path / "cache")
        assert run_lint(
            tree, "--incremental", "--cache-dir", cache_dir) == 0
        cold = capsys.readouterr()
        assert "0 hits, 2 misses" in cold.err
        assert run_lint(
            tree, "--incremental", "--cache-dir", cache_dir) == 0
        warm = capsys.readouterr()
        assert cold.out == warm.out
        assert "2 hits, 0 misses (100% hit ratio)" in warm.err

    def test_warm_run_replays_error_exit_codes(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        path = os.path.join(FIXTURES, "oob_access.ir")
        assert run_lint(
            path, "--incremental", "--cache-dir", cache_dir) == 1
        cold = capsys.readouterr()
        assert run_lint(
            path, "--incremental", "--cache-dir", cache_dir) == 1
        warm = capsys.readouterr()
        assert cold.out == warm.out
        assert "MEM004" in warm.out

    def test_editing_a_file_invalidates_only_it(
        self, tmp_path, capsys
    ):
        tree = self._tree(tmp_path / "specs")
        cache_dir = str(tmp_path / "cache")
        run_lint(tree, "--incremental", "--cache-dir", cache_dir)
        capsys.readouterr()
        (tmp_path / "specs" / "k.edsl").write_text(
            CLEAN_KERNEL.replace("relu", "sigmoid"))
        assert run_lint(
            tree, "--incremental", "--cache-dir", cache_dir) == 0
        assert "1 hits, 1 misses" in capsys.readouterr().err

    def test_without_incremental_nothing_is_cached(
        self, tmp_path, capsys
    ):
        spec = tmp_path / "k.edsl"
        spec.write_text(CLEAN_KERNEL)
        assert run_lint(str(spec)) == 0
        assert "analysis cache" not in capsys.readouterr().err

    def test_no_cache_keeps_the_store_in_memory(self, tmp_path, capsys):
        spec = tmp_path / "k.edsl"
        spec.write_text(CLEAN_KERNEL)
        cache_dir = tmp_path / "cache"
        assert run_lint(
            str(spec), "--incremental", "--no-cache",
            "--cache-dir", str(cache_dir),
        ) == 0
        assert not cache_dir.exists()


class TestStats:
    def test_stats_prints_per_pass_timings(self, tmp_path, capsys):
        spec = tmp_path / "k.edsl"
        spec.write_text(CLEAN_KERNEL)
        assert run_lint(str(spec), "--stats") == 0
        captured = capsys.readouterr()
        assert "analysis passes" in captured.err
        for name in ("analysis:absint", "analysis:taint",
                     "analysis:shapes"):
            assert name in captured.err
        # the table goes to stderr; stdout stays machine-consumable
        assert "analysis passes" not in captured.out

    def test_fully_cached_stats_run_says_so(self, tmp_path, capsys):
        spec = tmp_path / "k.edsl"
        spec.write_text(CLEAN_KERNEL)
        cache_dir = str(tmp_path / "cache")
        run_lint(str(spec), "--incremental", "--cache-dir", cache_dir)
        capsys.readouterr()
        assert run_lint(
            str(spec), "--incremental", "--cache-dir", cache_dir,
            "--stats",
        ) == 0
        assert "(all results cached)" in capsys.readouterr().err
