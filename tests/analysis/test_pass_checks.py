"""PassManager post-pass verification and linting tests."""

import pytest

from repro.core.analysis.diagnostics import Diagnostics
from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.ir.passes import Pass, PassManager
from repro.core.ir.types import F32
from repro.errors import AnalysisError, PassError

from tests.analysis.conftest import new_function

SRC = """
kernel f(X: tensor<8xf32>) -> tensor<8xf32> {
  Y = relu(X)
  return Y
}
"""


class NoOpPass(Pass):
    def run(self, module):
        return False


class DropTerminatorPass(Pass):
    """Deliberately broken: removes the function's terminator."""

    def run(self, module):
        function = next(iter(module.functions()))
        function.entry_block.operations.pop()
        return True


class TestVerifyEach:
    def test_broken_pass_caught_and_named(self):
        module = compile_kernel(SRC)
        manager = PassManager(verify_each=True)
        manager.add(DropTerminatorPass())
        with pytest.raises(
            PassError, match="after pass DropTerminatorPass"
        ):
            manager.run(module)

    def test_pass_error_carries_diagnostics(self):
        module = compile_kernel(SRC)
        manager = PassManager(verify_each=True)
        manager.add(DropTerminatorPass())
        try:
            manager.run(module)
        except PassError as exc:
            codes = {item.code for item in exc.diagnostics}
            assert "IR005" in codes  # missing func.return
            assert "PM001" in codes  # the pass-manager wrapper
        else:
            pytest.fail("expected PassError")

    def test_healthy_pipeline_unaffected(self):
        module = compile_kernel(SRC)
        manager = PassManager(verify_each=True)
        manager.add(NoOpPass())
        manager.run(module)
        assert not manager.diagnostics.has_errors

    def test_verify_each_off_lets_breakage_through(self):
        module = compile_kernel(SRC)
        manager = PassManager(verify_each=False)
        manager.add(DropTerminatorPass())
        manager.run(module)  # no exception: nothing checked


class TestLintEach:
    def _leaky_module(self):
        from repro.core.ir.module import Module

        module = Module("m")
        function, b = new_function(module, "leak", [F32], [F32])
        (x,) = function.arguments
        tainted = b.create(
            "secure.taint", [x], [F32], {"label": "pii"}
        ).result
        b.ret([tainted])
        return module

    def test_lint_each_catches_policy_violation(self):
        manager = PassManager(verify_each=True, lint_each=True)
        manager.add(NoOpPass())
        with pytest.raises(PassError, match="SEC001"):
            manager.run(self._leaky_module())
        pm_codes = {item.code for item in manager.diagnostics}
        assert "PM002" in pm_codes

    def test_lint_each_accumulates_warnings(self):
        module = compile_kernel(SRC)
        manager = PassManager(verify_each=True, lint_each=True)
        manager.add(NoOpPass()).add(NoOpPass())
        manager.run(module)
        assert not manager.diagnostics.has_errors


class TestCompilerGate:
    def _pipeline(self):
        from repro.core.dsl.workflow import Pipeline
        from repro.core.ir.types import TensorType

        pipeline = Pipeline("app")
        source = pipeline.source("raw", TensorType((8,), F32))
        task = pipeline.task("t", SRC, inputs=[source], kernel="f")
        pipeline.sink("out", task.output(0))
        return pipeline

    def test_compile_populates_diagnostics(self):
        from repro.core.compiler import EverestCompiler

        compiler = EverestCompiler(emit_artifacts=False)
        app = compiler.compile(self._pipeline())
        assert not app.diagnostics.has_errors

    def test_gate_blocks_statically_invalid_module(self, monkeypatch):
        from repro.core import compiler as compiler_module
        from repro.core.compiler import EverestCompiler

        def poisoned(module, **_kwargs):
            diagnostics = Diagnostics()
            diagnostics.error("SEC001", "injected violation")
            return diagnostics, None, False

        monkeypatch.setattr(
            compiler_module, "analyze_module_cached", poisoned
        )
        compiler = EverestCompiler(emit_artifacts=False)
        with pytest.raises(AnalysisError, match="SEC001"):
            compiler.compile(self._pipeline())

    def test_gate_can_be_disabled(self, monkeypatch):
        from repro.core import compiler as compiler_module
        from repro.core.compiler import EverestCompiler

        def exploding(*_args, **_kwargs):
            raise AssertionError("gate ran despite static_checks=False")

        monkeypatch.setattr(
            compiler_module, "analyze_module_cached", exploding
        )
        compiler = EverestCompiler(
            emit_artifacts=False, static_checks=False
        )
        app = compiler.compile(self._pipeline())
        assert app.package is not None


class TestGateBlocksFixtureModules:
    """The pre-DSE gate rejects the true-positive lint fixtures.

    Same functions the compiler's ``static-checks`` span runs:
    ``analyze_module_cached`` then ``raise_if_errors`` — so a module
    that fails ``repro lint`` can never reach exploration either.
    """

    @pytest.mark.parametrize(
        "fixture,code",
        [("oob_access.ir", "MEM004"), ("dead_branch.ir", "LINT004")],
    )
    def test_fixture_module_raises_analysis_error(self, fixture, code):
        import os

        from repro.core.analysis import (
            analyze_module_cached,
            raise_if_errors,
        )
        from repro.core.ir.parser import parse_module

        path = os.path.join(
            os.path.dirname(__file__), "fixtures", fixture)
        with open(path, "r", encoding="utf-8") as handle:
            module = parse_module(handle.read())
        diagnostics, _facts, _hit = analyze_module_cached(module)
        with pytest.raises(AnalysisError, match=code):
            raise_if_errors(diagnostics, AnalysisError)

    def test_mismatched_pipeline_edge_never_reaches_dse(self):
        from repro.core.compiler import EverestCompiler
        from repro.core.dsl.workflow import Pipeline
        from repro.core.ir.types import TensorType
        from repro.errors import SpecificationError

        pipeline = Pipeline("app")
        wrong = pipeline.source("raw", TensorType((16,), F32))
        pipeline.task("t", SRC, inputs=[wrong], kernel="f")
        with pytest.raises(SpecificationError, match="does not match"):
            EverestCompiler(emit_artifacts=False).compile(pipeline)
