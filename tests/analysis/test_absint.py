"""Interval abstract interpretation tests (MEM004/LINT004/WF010/11)."""

from repro.core.analysis.absint import (
    AnalysisFacts,
    Interval,
    check_module_contracts,
    check_module_ranges,
    compute_facts,
    compute_function_facts,
    function_facts,
    partition_conflict,
)
from repro.core.ir.module import Module
from repro.core.ir.types import F32, F64, MemRefType, TensorType
from repro.core.variants import VariantKnobs

from tests.analysis.conftest import new_function

INF = float("inf")


def _items(diagnostics, code):
    return [item for item in diagnostics.sorted() if item.code == code]


# ---------------------------------------------------------------------
# The abstract domain.


class TestInterval:
    def test_const_is_tight_point(self):
        i = Interval.const(3)
        assert (i.lo, i.hi, i.tight, i.is_const) == (3, 3, True, True)

    def test_top_is_unbounded_and_loose(self):
        top = Interval.top()
        assert top.lo == -INF and top.hi == INF
        assert not top.tight and not top.bounded

    def test_add_sums_bounds(self):
        a = Interval(0, 3, frozenset({1}), True)
        b = Interval(10, 20, frozenset({2}), True)
        out = a.add(b)
        assert (out.lo, out.hi) == (10, 23)
        assert out.vars == frozenset({1, 2})
        assert out.tight

    def test_sub_crosses_bounds(self):
        a = Interval(0, 3, frozenset({1}), True)
        b = Interval(1, 2, frozenset({2}), True)
        out = a.sub(b)
        assert (out.lo, out.hi) == (-2, 2)

    def test_mul_takes_extreme_corner(self):
        a = Interval(-2, 3, frozenset({1}), True)
        b = Interval(-5, 4, frozenset({2}), True)
        out = a.mul(b)
        # corners: 10, -8, -15, 12
        assert (out.lo, out.hi) == (-15, 12)
        assert out.tight

    def test_mul_with_unbounded_operand(self):
        out = Interval(0, 2, frozenset(), True).mul(Interval.top())
        assert out.lo == -INF and out.hi == INF

    def test_floordiv_constant_divisor_is_tight(self):
        a = Interval(0, 7, frozenset({1}), True)
        out = a.floordiv(Interval.const(2))
        assert (out.lo, out.hi, out.tight) == (0, 3, True)

    def test_floordiv_zero_crossing_divisor_is_top(self):
        a = Interval(0, 7, frozenset({1}), True)
        out = a.floordiv(Interval(-1, 1, frozenset(), True))
        assert not out.bounded

    def test_union_widens_and_loses_tightness(self):
        a = Interval(0, 3, frozenset({1}), True)
        b = Interval(10, 20, frozenset({2}), True)
        out = a.union(b)
        assert (out.lo, out.hi) == (0, 20)
        assert not out.tight

    def test_minimum_maximum(self):
        a = Interval(0, 10, frozenset({1}), True)
        b = Interval(4, 6, frozenset({2}), True)
        low = a.minimum(b)
        high = a.maximum(b)
        assert (low.lo, low.hi) == (0, 6)
        assert (high.lo, high.hi) == (4, 10)

    def test_shared_variable_breaks_tightness(self):
        # i - i is exactly 0; the corner rule would claim [-hi, hi].
        # Sharing a variable must therefore drop the tight flag.
        i = Interval(0, 7, frozenset({1}), True)
        assert not i.sub(i).tight
        assert not i.mul(i).tight
        assert i.mul(Interval(0, 7, frozenset({2}), True)).tight

    def test_bounds_stay_integers(self):
        out = Interval.const(3).add(Interval.const(4))
        assert isinstance(out.lo, int) and isinstance(out.hi, int)


# ---------------------------------------------------------------------
# Range facts and MEM004 / LINT004.


def _cross_product_store(b, buffer, n=4, m=4):
    """Nested loops storing through the non-affine index i*j."""
    outer = b.for_loop(0, n)
    with b.at_block(outer.body):
        inner = b.for_loop(0, m)
        with b.at_block(inner.body):
            index = b._binary(
                "kernel.muli",
                outer.induction_var, inner.induction_var,
            )
            value = b.load(buffer, [index])
            b.store(value, buffer, [index])
            b.yield_op()
        b.yield_op()


class TestRanges:
    def test_tight_nonaffine_overflow_is_error(self, module):
        # i*j over i,j in [0,4) attains 9; size 8 -> proven OOB.
        memref = MemRefType((8,), F32)
        function, b = new_function(module, "f", [memref], [])
        _cross_product_store(b, function.arguments[0])
        b.ret([])
        diagnostics = check_module_ranges(module)
        errors = _items(diagnostics, "MEM004")
        assert len(errors) == 2  # the load and the store
        assert all(item.severity.value == "error" for item in errors)
        assert "[0, 9]" in errors[0].message

    def test_tight_nonaffine_in_bounds_is_clean(self, module):
        memref = MemRefType((16,), F32)
        function, b = new_function(module, "f", [memref], [])
        _cross_product_store(b, function.arguments[0])
        b.ret([])
        diagnostics = check_module_ranges(module)
        assert not _items(diagnostics, "MEM004")

    def test_loose_square_overflow_is_warning(self, module):
        # i*i shares its variable with itself: the [0, 9] bound over
        # i in [0, 4) is not attained-proven, so only a warning.
        memref = MemRefType((8,), F32)
        function, b = new_function(module, "f", [memref], [])
        loop = b.for_loop(0, 4)
        with b.at_block(loop.body):
            iv = loop.induction_var
            b.load(function.arguments[0], [b._binary(
                "kernel.muli", iv, iv)])
            b.yield_op()
        b.ret([])
        diagnostics = check_module_ranges(module)
        (item,) = _items(diagnostics, "MEM004")
        assert item.severity.value == "warning"
        assert "may escape" in item.message

    def test_always_oob_is_error_even_when_loose(self, module):
        # i*i over i in [4, 8): lo is 16 >= size 8 on every corner, so
        # the whole interval misses the buffer — error despite loose.
        memref = MemRefType((8,), F32)
        function, b = new_function(module, "f", [memref], [])
        loop = b.for_loop(4, 8)
        with b.at_block(loop.body):
            iv = loop.induction_var
            b.load(function.arguments[0], [b._binary(
                "kernel.muli", iv, iv)])
            b.yield_op()
        b.ret([])
        (item,) = _items(check_module_ranges(module), "MEM004")
        assert item.severity.value == "error"
        assert "never enters" in item.message

    def test_affine_index_left_to_mem001(self, module):
        # A plain affine overflow is the affine pass's business: the
        # interval check must not double-report it.
        memref = MemRefType((8,), F32)
        function, b = new_function(module, "f", [memref], [])
        loop = b.for_loop(0, 9)
        with b.at_block(loop.body):
            b.load(function.arguments[0], [loop.induction_var])
            b.yield_op()
        b.ret([])
        assert not _items(check_module_ranges(module), "MEM004")

    def test_unknown_index_is_silent(self, module):
        # An index from outside any loop has a fully-top interval:
        # dynamic-check material, not a diagnostic.
        memref = MemRefType((8,), F32)
        from repro.core.ir.types import INDEX

        function, b = new_function(module, "f", [memref, INDEX], [])
        buffer, index = function.arguments
        b.load(buffer, [index])
        b.ret([])
        assert not _items(check_module_ranges(module), "MEM004")

    def test_minmax_select_refinement_keeps_access_clean(self, module):
        # clamp-style min(i*j, 15) stays within a size-16 buffer; the
        # plain union would be [0, 81] and wrongly warn.
        memref = MemRefType((16,), F32)
        function, b = new_function(module, "f", [memref], [])
        outer = b.for_loop(0, 10)
        with b.at_block(outer.body):
            inner = b.for_loop(0, 10)
            with b.at_block(inner.body):
                raw = b._binary(
                    "kernel.muli",
                    outer.induction_var, inner.induction_var,
                )
                limit = b.index_const(15)
                cond = b.cmplt(raw, limit)
                clamped = b.select(cond, raw, limit)
                b.load(function.arguments[0], [clamped])
                b.yield_op()
            b.yield_op()
        b.ret([])
        assert not _items(check_module_ranges(module), "MEM004")

    def test_constant_select_reports_dead_arm(self, module):
        memref = MemRefType((8,), F32)
        function, b = new_function(module, "f", [memref], [])
        loop = b.for_loop(0, 8)
        with b.at_block(loop.body):
            cond = b.cmplt(b.index_const(2), b.index_const(5))
            picked = b.select(
                cond, loop.induction_var, b.index_const(0))
            b.load(function.arguments[0], [picked])
            b.yield_op()
        b.ret([])
        (item,) = _items(check_module_ranges(module), "LINT004")
        assert item.severity.value == "error"
        assert "always true" in item.message
        assert "false arm" in item.message

    def test_zero_trip_loop_is_dead_and_body_not_checked(self, module):
        # The body would be OOB if it ran — but it never runs, so the
        # only finding is the dead loop itself.
        memref = MemRefType((8,), F32)
        function, b = new_function(module, "f", [memref], [])
        loop = b.for_loop(8, 4)
        with b.at_block(loop.body):
            iv = loop.induction_var
            b.load(function.arguments[0], [b._binary(
                "kernel.muli", iv, iv)])
            b.yield_op()
        b.ret([])
        diagnostics = check_module_ranges(module)
        (dead,) = _items(diagnostics, "LINT004")
        assert "zero iterations" in dead.message
        assert not _items(diagnostics, "MEM004")


# ---------------------------------------------------------------------
# Facts: loops, demands, serialization, memoization.


class TestFacts:
    def test_loop_facts_record_bounds_and_nesting(self, module):
        memref = MemRefType((8, 8), F32)
        function, b = new_function(module, "f", [memref], [])
        outer = b.for_loop(0, 8)
        with b.at_block(outer.body):
            inner = b.for_loop(0, 6, step=2)
            with b.at_block(inner.body):
                b.yield_op()
            b.yield_op()
        b.ret([])
        facts = compute_function_facts(function)
        assert [loop.depth for loop in facts.loops] == [0, 1]
        assert not facts.loops[0].innermost
        inner_facts = facts.loops[1]
        assert inner_facts.innermost
        assert (inner_facts.trip, inner_facts.last) == (3, 4)

    def test_signature_recorded_as_printed_types(self, module):
        function, _ = new_function(
            module, "f",
            [TensorType((4, 4), F32)], [TensorType((4, 4), F32)],
        )
        facts = compute_function_facts(function)
        assert facts.inputs == ["tensor<4x4xf32>"]
        assert facts.results == ["tensor<4x4xf32>"]

    def test_partition_demand_counts_innermost_accesses(self, module):
        memref = MemRefType((8,), F32)
        function, b = new_function(module, "f", [memref], [])
        buffer = function.arguments[0]
        b.create(
            "hw.partition", operands=[buffer],
            attributes={"scheme": "cyclic", "factor": 2},
        )
        loop = b.for_loop(0, 8)
        with b.at_block(loop.body):
            iv = loop.induction_var
            value = b.load(buffer, [iv])
            b.store(value, buffer, [iv])
            b.yield_op()
        b.ret([])
        facts = compute_function_facts(function)
        (demand,) = facts.demands
        assert (demand.buffer, demand.scheme) == (buffer.name, "cyclic")
        assert (demand.factor, demand.accesses, demand.trip) == (2, 2, 8)

    def test_complete_partition_has_no_demand(self, module):
        memref = MemRefType((8,), F32)
        function, b = new_function(module, "f", [memref], [])
        buffer = function.arguments[0]
        b.create(
            "hw.partition", operands=[buffer],
            attributes={"scheme": "complete", "factor": 8},
        )
        loop = b.for_loop(0, 8)
        with b.at_block(loop.body):
            b.load(buffer, [loop.induction_var])
            b.yield_op()
        b.ret([])
        assert not compute_function_facts(function).demands

    def test_payload_round_trip(self, module):
        memref = MemRefType((8,), F32)
        function, b = new_function(module, "f", [memref], [])
        buffer = function.arguments[0]
        b.create(
            "hw.partition", operands=[buffer],
            attributes={"scheme": "cyclic", "factor": 2},
        )
        _cross_product_store(b, buffer)
        loop = b.for_loop(8, 4)
        with b.at_block(loop.body):
            b.yield_op()
        b.ret([])
        facts = compute_facts(module)
        restored = AnalysisFacts.from_payload(facts.to_payload())
        original = facts.function("f")
        copy = restored.function("f")
        assert copy.loops == original.loops
        assert copy.accesses == original.accesses
        assert copy.dead == original.dead
        assert copy.demands == original.demands
        assert copy.inputs == original.inputs
        # op_vars is runtime-only: gone after the round trip.
        assert original.op_vars and not copy.op_vars

    def test_unbounded_dim_survives_round_trip(self, module):
        from repro.core.ir.types import INDEX

        memref = MemRefType((8,), F32)
        function, b = new_function(module, "f", [memref, INDEX], [])
        buffer, index = function.arguments
        b.load(buffer, [index])
        b.ret([])
        facts = compute_facts(module)
        restored = AnalysisFacts.from_payload(facts.to_payload())
        (access,) = restored.function("f").accesses
        assert access.dims[0].lo == -INF
        assert access.dims[0].hi == INF

    def test_function_facts_memoized_by_digest(self, module):
        memref = MemRefType((8,), F32)
        function, b = new_function(module, "f", [memref], [])
        loop = b.for_loop(0, 8)
        with b.at_block(loop.body):
            b.load(function.arguments[0], [loop.induction_var])
            b.yield_op()
        b.ret([])
        first = function_facts(module, "f")
        second = function_facts(module, "f")
        assert first is second
        assert function_facts(module, "missing") is None


# ---------------------------------------------------------------------
# Interprocedural contracts (WF010/WF011) at the IR level.


def _declared_kernel(module, name, inputs, results):
    # Only the declared signature matters to the contract check; the
    # body is never interpreted.
    function, b = new_function(module, name, inputs, results)
    b.ret([])
    return function


class TestContracts:
    def test_call_with_matching_signature_is_clean(self, module):
        tensor = TensorType((4, 4), F32)
        _declared_kernel(module, "k", [tensor], [tensor])
        _, b = new_function(module, "caller", [tensor], [])
        b.call("k", [module.find_function("caller").arguments[0]],
               [tensor])
        b.ret([])
        assert not check_module_contracts(module).items

    def test_call_shape_mismatch_is_wf010(self, module):
        _declared_kernel(
            module, "k",
            [TensorType((4, 4), F32)], [TensorType((4, 4), F32)],
        )
        caller, b = new_function(
            module, "caller", [TensorType((8, 4), F32)], [])
        b.call("k", [caller.arguments[0]], [TensorType((4, 4), F32)])
        b.ret([])
        (item,) = _items(check_module_contracts(module), "WF010")
        assert "8x4" in item.message and "4x4" in item.message

    def test_call_dtype_mismatch_is_wf011(self, module):
        _declared_kernel(
            module, "k",
            [TensorType((4, 4), F32)], [TensorType((4, 4), F32)],
        )
        caller, b = new_function(
            module, "caller", [TensorType((4, 4), F64)], [])
        b.call("k", [caller.arguments[0]], [TensorType((4, 4), F32)])
        b.ret([])
        diagnostics = check_module_contracts(module)
        (item,) = _items(diagnostics, "WF011")
        assert "f64" in item.message and "f32" in item.message
        assert not _items(diagnostics, "WF010")

    def test_result_shape_mismatch_is_wf010(self, module):
        _declared_kernel(
            module, "k",
            [TensorType((4, 4), F32)], [TensorType((4, 4), F32)],
        )
        caller, b = new_function(
            module, "caller", [TensorType((4, 4), F32)], [])
        b.call("k", [caller.arguments[0]], [TensorType((2, 2), F32)])
        b.ret([])
        (item,) = _items(check_module_contracts(module), "WF010")
        assert "result 0" in item.message

    def test_arity_mismatch_is_wf010(self, module):
        tensor = TensorType((4, 4), F32)
        _declared_kernel(module, "k", [tensor, tensor], [tensor])
        caller, b = new_function(module, "caller", [tensor], [])
        b.call("k", [caller.arguments[0]], [tensor])
        b.ret([])
        (item,) = _items(check_module_contracts(module), "WF010")
        assert "passes 1 operands" in item.message

    def test_unknown_callee_is_skipped(self, module):
        tensor = TensorType((4, 4), F32)
        caller, b = new_function(module, "caller", [tensor], [])
        b.call("ghost", [caller.arguments[0]], [tensor])
        b.ret([])
        assert not check_module_contracts(module).items


# ---------------------------------------------------------------------
# DSE pruning predicate.


def _demand_facts(module):
    memref = MemRefType((8,), F32)
    function, b = new_function(module, "f", [memref], [])
    buffer = function.arguments[0]
    b.create(
        "hw.partition", operands=[buffer],
        attributes={"scheme": "cyclic", "factor": 2},
    )
    loop = b.for_loop(0, 8)
    with b.at_block(loop.body):
        iv = loop.induction_var
        value = b.load(buffer, [iv])
        b.store(value, buffer, [iv])
        b.yield_op()
    b.ret([])
    return compute_function_facts(function)


class TestPartitionConflict:
    def test_oversubscribed_unroll_is_rejected_with_reason(self):
        facts = _demand_facts(Module("m"))
        reason = partition_conflict(
            facts, VariantKnobs(target="fpga", unroll=8))
        # 2 accesses x unroll 8 = 16 ports > cyclic factor 2 x 2 = 4.
        assert reason is not None
        assert "16 ports" in reason and "provides 4" in reason

    def test_servable_unroll_is_accepted(self):
        facts = _demand_facts(Module("m"))
        assert partition_conflict(
            facts, VariantKnobs(target="fpga", unroll=2)) is None

    def test_unroll_capped_by_trip_count(self):
        facts = _demand_facts(Module("m"))
        # unroll 64 over an 8-trip loop only replicates 8 bodies.
        reason = partition_conflict(
            facts, VariantKnobs(target="fpga", unroll=64))
        assert "unroll 8" in reason

    def test_cpu_targets_never_conflict(self):
        facts = _demand_facts(Module("m"))
        assert partition_conflict(
            facts, VariantKnobs(target="cpu", threads=8)) is None

    def test_missing_facts_never_conflict(self):
        assert partition_conflict(
            None, VariantKnobs(target="fpga", unroll=64)) is None
