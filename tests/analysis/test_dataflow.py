"""Tests for the generic dataflow fixpoint engine."""

from repro.core.analysis.dataflow import (
    FlagLattice,
    Liveness,
    SetLattice,
    TaintPropagation,
)
from repro.core.ir.types import F32, MemRefType

from tests.analysis.conftest import new_function


class TestLattices:
    def test_set_lattice(self):
        lattice = SetLattice()
        assert lattice.bottom() == frozenset()
        joined = lattice.join(frozenset({"a"}), frozenset({"b"}))
        assert joined == frozenset({"a", "b"})
        assert lattice.le(frozenset({"a"}), joined)
        assert not lattice.le(joined, frozenset({"a"}))

    def test_flag_lattice(self):
        lattice = FlagLattice()
        assert lattice.bottom() is False
        assert lattice.join(False, True) is True
        assert lattice.le(False, True)


class TestTaintPropagation:
    def test_labels_flow_through_arithmetic(self, module):
        function, b = new_function(module, "f", [F32, F32], [F32])
        x, y = function.arguments
        tainted = b.create(
            "secure.taint", [x], [F32], {"label": "pii"}
        ).result
        total = b.addf(tainted, y)
        b.ret([total])

        state = TaintPropagation().run(function)
        assert state.get(total) == frozenset({"pii"})
        assert state.get(y) == frozenset()

    def test_declassify_clears(self, module):
        function, b = new_function(module, "f", [F32], [F32])
        (x,) = function.arguments
        tainted = b.create(
            "secure.taint", [x], [F32], {"label": "pii"}
        ).result
        cleared = b.create("secure.declassify", [tainted], [F32]).result
        b.ret([cleared])

        state = TaintPropagation().run(function)
        assert state.get(cleared) == frozenset()

    def test_seed_from_arguments(self, module):
        function, b = new_function(module, "f", [F32], [F32])
        (x,) = function.arguments
        doubled = b.addf(x, x)
        b.ret([doubled])

        analysis = TaintPropagation(
            seed={id(x): frozenset({"arg0"})}
        )
        state = analysis.run(function)
        assert state.get(doubled) == frozenset({"arg0"})

    def test_taint_survives_memory_roundtrip(self, module):
        memref = MemRefType((4,), F32)
        function, b = new_function(module, "f", [F32], [F32])
        (x,) = function.arguments
        tainted = b.create(
            "secure.taint", [x], [F32], {"label": "pii"}
        ).result
        buffer = b.alloc(memref, "scratch")
        zero = b.index_const(0)
        b.store(tainted, buffer, [zero])
        reloaded = b.load(buffer, [zero])
        b.ret([reloaded])

        state = TaintPropagation().run(function)
        assert "pii" in state.get(reloaded)


class TestLiveness:
    def test_returned_chain_is_live(self, module):
        function, b = new_function(module, "f", [F32], [F32])
        (x,) = function.arguments
        doubled = b.addf(x, x)
        b.ret([doubled])

        state = Liveness().run(function)
        assert state.get(doubled) is True
        assert state.get(x) is True

    def test_unused_value_is_dead(self, module):
        function, b = new_function(module, "f", [F32], [F32])
        (x,) = function.arguments
        dead = b.mulf(x, x)
        b.ret([x])

        state = Liveness().run(function)
        assert state.get(dead) is False

    def test_store_roots_its_operands(self, module):
        memref = MemRefType((4,), F32)
        function, b = new_function(module, "f", [F32], [])
        (x,) = function.arguments
        buffer = b.alloc(memref)
        index = b.index_const(1)
        stored = b.addf(x, x)
        b.store(stored, buffer, [index])
        b.ret([])

        state = Liveness().run(function)
        assert state.get(stored) is True
        assert state.get(index) is True

    def test_loop_body_values_live(self, module):
        memref = MemRefType((8,), F32)
        function, b = new_function(module, "f", [], [])
        buffer = b.alloc(memref)
        loop = b.for_loop(0, 8)
        with b.at_block(loop.body):
            value = b.const(1.0)
            b.store(value, buffer, [loop.induction_var])
            b.yield_op()
        b.ret([])

        state = Liveness().run(function)
        values = {
            op.name: op for op in function.walk()
        }
        const_op = values["kernel.const"]
        assert state.get(const_op.results[0]) is True
