"""The static performance analyzer: bounds, PERF diagnostics, CLI.

Three surfaces are covered here:

* :func:`compute_kernel_bounds` / :func:`kernel_bounds` — the analytic
  record itself (work, traffic with reuse credit, II floors, roofline
  verdict) plus its payload round-trip and cache behavior.
* ``repro lint`` — every PERF code has a true-positive fixture under
  ``fixtures/`` that must fire, error codes must exit 1, and the
  ``--only`` / ``--suppress`` / ``--stats`` plumbing must treat the
  perf pass like any other analysis.
* ``repro perf`` and ``repro cache`` — the report CLI and the cache
  breakdown rows that account for persisted bounds.
"""

import json
import math
import os

import pytest

from repro.cli import main
from repro.core.analysis.cache import (
    AnalysisCache,
    configure_analysis_cache,
)
from repro.core.analysis.perf import (
    BufferInfo,
    NestBounds,
    StaticBounds,
    bound_for,
    check_module_perf,
    compute_kernel_bounds,
    kernel_bounds,
)
from repro.core.dse.cost_model import ArchitectureModel
from repro.core.ir import module_digest
from repro.core.variants import VariantKnobs

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture(name):
    return os.path.join(FIXTURES, name)


def forget_memoized_bounds():
    """Drop the in-process bounds LRU so cache writes are observable."""
    from repro.core.analysis import perf as perf_module

    with perf_module._BOUNDS_LOCK:
        perf_module._BOUNDS_MEMO.clear()


# ---------------------------------------------------------------------------
# The analytic record


class TestKernelBounds:
    def test_gemm_work_and_traffic(self, gemm_module):
        bounds = compute_kernel_bounds(gemm_module, "gemm")
        assert bounds.kernel == "gemm"
        # 16x16x16 matmul: 2 flops per MAC.
        assert bounds.work == 8192.0
        # three 16x16 f32 tensors.
        assert bounds.data_bytes == 3 * 16 * 16 * 4
        assert bounds.arg_bytes == 3 * 16 * 16 * 4
        assert bounds.verdict == "compute-bound"

    def test_gemm_nests(self, gemm_module):
        bounds = compute_kernel_bounds(gemm_module, "gemm")
        # init nest (fill C) + the contraction nest.
        assert len(bounds.nests) == 2
        fill, matmul = bounds.nests
        assert fill.trip == 16 and fill.outer_iters == 16
        assert matmul.trip == 16 and matmul.outer_iters == 256
        # the accumulation chain: load + addf + store.
        assert matmul.chain_latency > 0
        assert matmul.ops.get("fmul") == 1
        assert matmul.ops.get("fadd") == 1

    def test_reuse_credit_shrinks_traffic(self, gemm_module):
        bounds = compute_kernel_bounds(gemm_module, "gemm")
        assert bounds.traffic
        # The accumulator row is invariant in the contraction loop, so
        # at least one buffer must get reuse credit...
        assert any(
            t.bytes_moved < t.bytes_naive for t in bounds.traffic
        )
        # ...and credit never inflates traffic.
        for t in bounds.traffic:
            assert 0 < t.bytes_moved <= t.bytes_naive

    def test_payload_roundtrip(self, gemm_module):
        bounds = compute_kernel_bounds(gemm_module, "gemm")
        payload = json.loads(json.dumps(bounds.to_payload()))
        again = StaticBounds.from_payload(payload)
        assert again.to_payload() == bounds.to_payload()
        assert payload["kind"] == "perf"

    def test_unknown_kernel_is_none(self, gemm_module):
        assert kernel_bounds(gemm_module, "nope") is None

    def test_memoized_by_digest(self, gemm_module):
        configure_analysis_cache(cache_dir=None)
        digest = module_digest(gemm_module)
        first = kernel_bounds(gemm_module, "gemm", digest=digest)
        second = kernel_bounds(gemm_module, "gemm", digest=digest)
        assert first is second

    def test_persists_in_analysis_cache(self, gemm_module, tmp_path):
        configure_analysis_cache(cache_dir=tmp_path)
        forget_memoized_bounds()
        try:
            digest = module_digest(gemm_module)
            bounds = kernel_bounds(gemm_module, "gemm", digest=digest)
            assert bounds is not None
            store = AnalysisCache(directory=tmp_path)
            breakdown = store.breakdown()
            assert breakdown["perf"]["entries"] >= 1
        finally:
            configure_analysis_cache(cache_dir=None)


class TestNestBounds:
    def test_min_ii_unlimited_ports(self):
        nest = NestBounds("k/nest0", 1, 16, 1,
                          accesses={"%0": 4}, chain_latency=0)
        assert nest.min_ii(8, {"%0": 0}) == 1

    def test_min_ii_port_pressure(self):
        nest = NestBounds("k/nest0", 1, 16, 1, accesses={"%0": 2})
        # 2 accesses x 8 copies over 4 ports -> II >= 4.
        assert nest.min_ii(8, {"%0": 4}) == 4

    def test_min_ii_chain_floor(self):
        nest = NestBounds("k/nest0", 1, 16, 1,
                          accesses={"%0": 1}, chain_latency=6)
        assert nest.min_ii(1, {"%0": 4}) == 6

    def test_effective_unroll_clamped_to_trip(self):
        nest = NestBounds("k/nest0", 1, 4, 1, accesses={"%0": 1})
        # unroll 16 on a trip-4 loop only replicates 4 bodies.
        assert nest.min_ii(16, {"%0": 2}) == math.ceil(4 / 2)


class TestBufferPorts:
    def test_explicit_complete_is_unlimited(self):
        info = BufferInfo("%0", 16, 32, total_accesses=2,
                          scheme="complete", factor=0)
        assert info.ports("auto", 8) == 0

    def test_explicit_factor_caps_ports(self):
        info = BufferInfo("%0", 16, 32, total_accesses=2,
                          scheme="cyclic", factor=2)
        assert info.ports("auto", 8) == 4

    def test_strategy_none_single_bank(self):
        info = BufferInfo("%0", 1024, 32, total_accesses=6)
        assert info.ports("none", 8) == 2

    def test_small_alloc_registers(self):
        info = BufferInfo("%0", 4, 32, total_accesses=3,
                          small_alloc=True)
        assert info.ports("auto", 8) == 0

    def test_auto_doubles_to_demand(self):
        info = BufferInfo("%0", 1024, 32, total_accesses=3)
        # needed = 3 accesses x unroll 2 = 6 -> factor 4 -> 8 ports.
        assert info.ports("auto", 2) == 8


class TestBoundFor:
    def test_cpu_bound_is_exact(self, gemm_module):
        from repro.core.dse.cost_model import cpu_cost_terms

        bounds = compute_kernel_bounds(gemm_module, "gemm")
        model = ArchitectureModel()
        knobs = VariantKnobs(target="cpu", threads=4)
        lat, en = bound_for(bounds, knobs, model)
        exact = cpu_cost_terms(
            bounds.work, bounds.data_bytes, knobs, model
        )
        assert (lat, en) == (exact[0], exact[1] * exact[0]) or \
            (lat, en) == exact
        assert lat > 0 and en > 0

    def test_fpga_without_fpga_is_infeasible(self, gemm_module):
        bounds = compute_kernel_bounds(gemm_module, "gemm")
        model = ArchitectureModel()
        model.fpga_role_capacity = None
        model.fpga_link = None
        knobs = VariantKnobs(target="fpga", unroll=2)
        lat, en = bound_for(bounds, knobs, model)
        assert lat == math.inf and en == math.inf

    def test_fpga_bound_positive(self, gemm_module):
        bounds = compute_kernel_bounds(gemm_module, "gemm")
        knobs = VariantKnobs(target="fpga", unroll=1)
        lat, en = bound_for(bounds, knobs, ArchitectureModel())
        assert 0 < lat < math.inf
        assert 0 < en < math.inf


# ---------------------------------------------------------------------------
# PERF diagnostics through the lint CLI


def run_lint(*argv):
    return main(["lint", *argv])


class TestPerfFixtures:
    @pytest.mark.parametrize(
        "name,code,exit_code",
        [
            ("perf_unroll_ports.ir", "PERF001", 1),
            ("perf_invariant_load.ir", "PERF002", 0),
            ("perf_nonaffine.ir", "PERF003", 0),
            ("perf_memory_bound.ir", "PERF004", 0),
            ("perf_recurrence_ii.ir", "PERF005", 1),
        ],
    )
    def test_true_positive(self, capsys, name, code, exit_code):
        rc = run_lint(fixture(name), "--only", "perf",
                      "--format", "json", "--no-cache")
        assert rc == exit_code
        payload = json.loads(capsys.readouterr().out)
        codes = {item["code"] for item in payload["diagnostics"]}
        assert code in codes

    def test_unroll_ports_message_names_the_numbers(self, capsys):
        run_lint(fixture("perf_unroll_ports.ir"), "--only", "perf",
                 "--no-cache")
        out = capsys.readouterr().out
        assert "unroll 8 demands 16 concurrent ports" in out
        assert "cyclic factor 2 provides only 4" in out

    def test_only_excludes_perf(self, capsys):
        rc = run_lint(fixture("perf_unroll_ports.ir"),
                      "--only", "taint", "--format", "json",
                      "--no-cache")
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert not any(
            item["code"].startswith("PERF")
            for item in payload["diagnostics"]
        )

    def test_suppress_perf_codes(self, capsys):
        rc = run_lint(fixture("perf_unroll_ports.ir"),
                      "--only", "perf", "--format", "json",
                      "--suppress", "PERF001", "--suppress", "PERF005",
                      "--no-cache")
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["error"] == 0

    def test_stats_shows_perf_pass(self, capsys):
        rc = run_lint(fixture("perf_memory_bound.ir"), "--stats",
                      "--no-cache")
        assert rc == 0
        err = capsys.readouterr().err
        assert "analysis:perf" in err

    def test_examples_clean_under_only_perf(self, capsys):
        examples = os.path.join(
            os.path.dirname(__file__), os.pardir, os.pardir,
            "examples",
        )
        assert run_lint(examples, "--only", "perf", "--no-cache") == 0


class TestCheckModulePerf:
    def test_tensor_form_is_skipped(self, gemm_module):
        diags = check_module_perf(gemm_module)
        assert diags.summary() == {"error": 0, "warning": 0, "note": 0}


# ---------------------------------------------------------------------------
# ``repro perf`` and the cache breakdown


QUICKSTART = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir,
    "examples", "quickstart.py",
)


class TestPerfCommand:
    def test_text_report(self, capsys):
        rc = main(["perf", QUICKSTART, "--kernel", "score",
                   "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "static bounds for 'score'" in out
        assert "loop-nest bounds (unroll 1)" in out
        assert "buffer traffic per invocation" in out

    def test_json_report(self, capsys):
        rc = main(["perf", QUICKSTART, "--kernel", "score",
                   "--format", "json", "--no-cache"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "perf"
        assert payload["kernel"] == "score"
        assert payload["work"] > 0
        assert payload["nests"]

    def test_unknown_kernel_fails(self):
        with pytest.raises(SystemExit):
            main(["perf", QUICKSTART, "--kernel", "nope",
                  "--no-cache"])

    def test_cache_stats_roundtrip(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "analysis")
        forget_memoized_bounds()
        rc = main(["perf", QUICKSTART, "--kernel", "score",
                   "--cache-dir", cache_dir])
        assert rc == 0
        capsys.readouterr()
        try:
            assert main(["cache", "stats",
                         "--cache-dir", cache_dir]) == 0
            out = capsys.readouterr().out
            assert "perf entries" in out
            assert "perf disk bytes" in out

            assert main(["cache", "clear",
                         "--cache-dir", cache_dir]) == 0
            capsys.readouterr()
            assert main(["cache", "stats",
                         "--cache-dir", cache_dir]) == 0
            out = capsys.readouterr().out
            assert "perf entries" not in out
        finally:
            configure_analysis_cache(cache_dir=None)
