"""Property-based soundness of the static performance bounds.

The contract under test: for every kernel and every knob point, the
cost model's priced latency and energy are never *below* the analytic
lower bound :func:`bound_for` derives for that point. CPU bounds are
float-exact (they share :func:`cpu_cost_terms` with the model); FPGA
bounds must stay below the scheduled cost by construction.

Kernels come from two sources: the shipped example kernels (gemm, mlp,
stream) over a dense knob grid, and hypothesis-generated random DSL
programs (matmul seeds plus elementwise chains) over sampled knobs.
"""

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.analysis.perf import (  # noqa: E402
    bound_for,
    compute_kernel_bounds,
)
from repro.core.dse.cost_model import (  # noqa: E402
    ArchitectureModel,
    evaluate_variant,
)
from repro.core.dsl.kernel_dsl import compile_kernel  # noqa: E402
from repro.core.variants import VariantKnobs  # noqa: E402

_REL_TOL = 1e-9


def assert_sound(module, kernel, knobs_list):
    bounds = compute_kernel_bounds(module, kernel)
    assert bounds is not None
    model = ArchitectureModel()
    for knobs in knobs_list:
        cost = evaluate_variant(module, kernel, knobs, model)
        if not cost.feasible:
            # infeasible points price at +inf: vacuously above any
            # bound, and the explorer never admits them anyway.
            continue
        lat_lb, en_lb = bound_for(bounds, knobs, model)
        assert lat_lb < math.inf, (
            f"{kernel}/{knobs.describe()}: bound says infeasible but "
            f"the cost model priced it"
        )
        assert (
            cost.latency_s >= lat_lb
            or math.isclose(cost.latency_s, lat_lb, rel_tol=_REL_TOL)
        ), (
            f"{kernel}/{knobs.describe()}: latency {cost.latency_s!r}"
            f" below bound {lat_lb!r}"
        )
        assert (
            cost.energy_j >= en_lb
            or math.isclose(cost.energy_j, en_lb, rel_tol=_REL_TOL)
        ), (
            f"{kernel}/{knobs.describe()}: energy {cost.energy_j!r}"
            f" below bound {en_lb!r}"
        )


def knob_grid():
    """A dense deterministic grid over both targets."""
    points = []
    for threads in (1, 4, 16):
        for tile in (0, 8):
            for dift in (False, True):
                points.append(VariantKnobs(
                    target="cpu", threads=threads, tile=tile,
                    dift=dift,
                ))
    for unroll in (1, 2, 8):
        for tile in (0, 8):
            for clock in (150e6, 250e6):
                points.append(VariantKnobs(
                    target="fpga", unroll=unroll, tile=tile,
                    clock_hz=clock,
                ))
    points.append(VariantKnobs(
        target="fpga", unroll=4, matmul_order="ikj",
    ))
    points.append(VariantKnobs(
        target="fpga", unroll=4, interleave=8,
    ))
    points.append(VariantKnobs(
        target="fpga", unroll=2, memory_strategy="none",
    ))
    return points


class TestExampleKernelsAreSound:
    def test_gemm(self, gemm_module):
        assert_sound(gemm_module, "gemm", knob_grid())

    def test_mlp(self, mlp_module):
        assert_sound(mlp_module, "mlp", knob_grid())

    def test_stream(self, stream_module):
        assert_sound(stream_module, "stream", knob_grid())


# ---------------------------------------------------------------------------
# Random DSL kernels


_DIMS = (4, 8, 16)
_ELEMENTWISE = ("relu", "sigmoid", "exp", "+", "*")


@st.composite
def kernel_sources(draw):
    """A matmul seed followed by a short elementwise chain."""
    n = draw(st.sampled_from(_DIMS))
    k = draw(st.sampled_from(_DIMS))
    m = draw(st.sampled_from(_DIMS))
    chain = draw(st.lists(
        st.sampled_from(_ELEMENTWISE), min_size=0, max_size=3,
    ))
    lines = [
        f"kernel k(A: tensor<{n}x{k}xf32>, B: tensor<{k}x{m}xf32>,"
        f" C: tensor<{n}x{m}xf32>) -> tensor<{n}x{m}xf32> {{",
        "  T0 = A @ B",
    ]
    cur = "T0"
    for index, op in enumerate(chain, start=1):
        if op in ("+", "*"):
            lines.append(f"  T{index} = {cur} {op} C")
        else:
            lines.append(f"  T{index} = {op}({cur})")
        cur = f"T{index}"
    lines.append(f"  return {cur}")
    lines.append("}")
    return "\n".join(lines)


@st.composite
def knob_points(draw):
    if draw(st.booleans()):
        return VariantKnobs(
            target="cpu",
            threads=draw(st.sampled_from((1, 2, 4, 16))),
            tile=draw(st.sampled_from((0, 8))),
            dift=draw(st.booleans()),
        )
    return VariantKnobs(
        target="fpga",
        unroll=draw(st.sampled_from((1, 2, 4, 8))),
        tile=draw(st.sampled_from((0, 8))),
        clock_hz=draw(st.sampled_from((150e6, 250e6, 350e6))),
        memory_strategy=draw(st.sampled_from(("auto", "none"))),
        matmul_order=draw(st.sampled_from(("ijk", "ikj"))),
        interleave=draw(st.sampled_from((1, 8))),
    )


class TestRandomKernelsAreSound:
    @settings(max_examples=12, deadline=None)
    @given(
        source=kernel_sources(),
        knobs=st.lists(knob_points(), min_size=1, max_size=4),
    )
    def test_priced_cost_never_beats_bound(self, source, knobs):
        module = compile_kernel(source)
        assert_sound(module, "k", knobs)
