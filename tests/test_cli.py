"""Tests for the command-line interface."""

import pytest

from repro.cli import main

KERNEL = """
kernel scale(X: tensor<64xf32>, G: tensor<64xf32>)
        -> tensor<64xf32> {
  Y = relu(X * G)
  return Y
}
"""


@pytest.fixture
def dsl_file(tmp_path):
    path = tmp_path / "k.edsl"
    path.write_text(KERNEL)
    return str(path)


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "dialects" in out
        assert "tensor" in out

    def test_compile(self, dsl_file, capsys):
        assert main(["compile", dsl_file]) == 0
        out = capsys.readouterr().out
        assert "scale" in out
        assert "front" in out

    def test_synth(self, dsl_file, capsys):
        assert main(["synth", dsl_file, "--kernel", "scale",
                     "--unroll", "2"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out
        assert "resources" in out

    def test_explore(self, dsl_file, capsys):
        assert main(["explore", dsl_file, "--kernel", "scale"]) == 0
        out = capsys.readouterr().out
        assert "cpu/t1" in out
        assert "fpga" in out

    def test_emit_ir(self, dsl_file, capsys):
        assert main(["emit", dsl_file, "--kernel", "scale"]) == 0
        out = capsys.readouterr().out
        assert "builtin.module" in out
        assert "tensor.relu" in out

    def test_emit_sycl(self, dsl_file, capsys):
        assert main(["emit", dsl_file, "--kernel", "scale",
                     "--what", "sycl"]) == 0
        out = capsys.readouterr().out
        assert "sycl::queue" in out

    def test_emit_rtl(self, dsl_file, capsys):
        assert main(["emit", dsl_file, "--kernel", "scale",
                     "--what", "rtl"]) == 0
        out = capsys.readouterr().out
        assert "module scale" in out

    def test_emit_lowered(self, dsl_file, capsys):
        assert main(["emit", dsl_file, "--kernel", "scale",
                     "--what", "lowered-ir"]) == 0
        out = capsys.readouterr().out
        assert "kernel.for" in out

    def test_bad_space(self, dsl_file):
        with pytest.raises(SystemExit):
            main(["compile", dsl_file, "--space", "galactic"])

    def test_missing_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
