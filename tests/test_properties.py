"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold for *any* input, exercised with generated
workloads: scheduling bounds on random DAGs, print/parse round-trips
on random DSL programs, Pareto-front laws, and physical-model
monotonicities.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dse.pareto import pareto_front
from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.ir import parse_module, print_module, verify
from repro.core.variants import CostEstimate, Variant, VariantKnobs
from repro.utils.rng import deterministic_rng
from repro.workflow.graph import DataObject, TaskGraph, WorkflowTask
from repro.workflow.scheduler import make_policy
from repro.workflow.server import WorkflowServer
from repro.workflow.worker import Worker

# ----------------------------------------------------------------------
# random DAG scheduling invariants
# ----------------------------------------------------------------------


@st.composite
def random_dag(draw):
    """A random layered DAG with 3-14 tasks."""
    num_tasks = draw(st.integers(min_value=3, max_value=14))
    durations = draw(st.lists(
        st.floats(min_value=0.05, max_value=3.0),
        min_size=num_tasks, max_size=num_tasks,
    ))
    graph = TaskGraph("random")
    graph.add_object(DataObject("in", size_bytes=1000))
    produced = ["in"]
    for index in range(num_tasks):
        max_inputs = min(3, len(produced))
        count = draw(st.integers(min_value=1, max_value=max_inputs))
        picks = draw(st.lists(
            st.integers(min_value=0, max_value=len(produced) - 1),
            min_size=count, max_size=count, unique=True,
        ))
        inputs = [produced[i] for i in picks]
        graph.add_task(WorkflowTask(
            f"t{index}", inputs=inputs, outputs=[f"o{index}"],
            duration_s=durations[index],
        ))
        produced.append(f"o{index}")
    return graph


@settings(max_examples=25, deadline=None)
@given(random_dag(), st.integers(min_value=1, max_value=4),
       st.sampled_from(["fifo", "b-level", "locality"]))
def test_property_makespan_bounds(graph, workers, policy_name):
    """critical path <= makespan <= total work + staging."""
    server = WorkflowServer(
        [Worker(f"w{i}", node_name=f"n{i}", cpus=1)
         for i in range(workers)],
        policy=make_policy(policy_name),
    )
    trace = server.run(graph)
    assert len(trace.records) == len(graph.tasks)
    assert trace.makespan >= graph.critical_path_length() - 1e-9
    slack = trace.total_transfer_seconds() + 1e-9
    assert trace.makespan <= graph.total_work() + slack


@settings(max_examples=25, deadline=None)
@given(random_dag())
def test_property_dependencies_never_violated(graph):
    server = WorkflowServer(
        [Worker("w0", node_name="n0", cpus=2),
         Worker("w1", node_name="n1", cpus=2)],
    )
    trace = server.run(graph)
    ends = {record.task: record.end for record in trace.records}
    starts = {record.task: record.start for record in trace.records}
    for task_name in graph.tasks:
        for dependency in graph.dependencies(task_name):
            assert starts[task_name] >= ends[dependency] - 1e-9


@settings(max_examples=25, deadline=None)
@given(random_dag())
def test_property_blevel_dominates_duration(graph):
    levels = graph.b_levels()
    for name, task in graph.tasks.items():
        assert levels[name] >= task.duration_s - 1e-12


# ----------------------------------------------------------------------
# random DSL programs round-trip and execute consistently
# ----------------------------------------------------------------------

_UNARY = ["relu", "exp", "tanh", "sigmoid"]
_BINOPS = ["+", "-", "*"]


@st.composite
def random_kernel(draw):
    """A random single-kernel DSL program over one 1-D shape."""
    size = draw(st.sampled_from([4, 8, 16]))
    num_statements = draw(st.integers(min_value=1, max_value=5))
    names = ["A", "B"]
    lines = []
    for index in range(num_statements):
        kind = draw(st.integers(min_value=0, max_value=2))
        lhs = draw(st.sampled_from(names))
        if kind == 0:
            rhs = draw(st.sampled_from(names))
            op = draw(st.sampled_from(_BINOPS))
            expr = f"{lhs} {op} {rhs}"
        elif kind == 1:
            fn = draw(st.sampled_from(_UNARY))
            expr = f"{fn}({lhs})"
        else:
            literal = draw(st.floats(min_value=-2.0, max_value=2.0))
            expr = f"{lhs} * {literal:.3f}"
        new_name = f"v{index}"
        lines.append(f"  {new_name} = {expr}")
        names.append(new_name)
    result = names[-1]
    src = (
        f"kernel gen(A: tensor<{size}xf32>, B: tensor<{size}xf32>)"
        f" -> tensor<{size}xf32> {{\n"
        + "\n".join(lines)
        + f"\n  return {result}\n}}"
    )
    return src, size


@settings(max_examples=30, deadline=None)
@given(random_kernel())
def test_property_text_roundtrip_random_kernels(kernel):
    src, _size = kernel
    module = compile_kernel(src)
    text = print_module(module)
    reparsed = parse_module(text)
    verify(reparsed)
    assert print_module(reparsed) == text


@settings(max_examples=15, deadline=None)
@given(random_kernel())
def test_property_lowering_preserves_semantics(kernel):
    from repro.core.ir.interp import Interpreter, run_function
    from repro.core.ir.passes import (
        CanonicalizePass,
        ElementwiseFusionPass,
        LowerTensorPass,
        PassManager,
    )

    src, size = kernel
    rng = deterministic_rng("prop-lower", src)
    a = rng.normal(size=size).astype(np.float32)
    b = rng.normal(size=size).astype(np.float32)

    tensor_module = compile_kernel(src)
    expected = run_function(tensor_module, "gen", a, b)[0]

    lowered = compile_kernel(src)
    manager = PassManager()
    manager.add(ElementwiseFusionPass())
    manager.add(LowerTensorPass())
    manager.add(CanonicalizePass())
    manager.run(lowered)
    out = np.zeros(size, np.float32)
    Interpreter(lowered).run("gen", a, b, out)
    assert np.allclose(out, expected, atol=1e-3, equal_nan=True)


# ----------------------------------------------------------------------
# Pareto laws
# ----------------------------------------------------------------------

costs = st.tuples(
    st.floats(min_value=1e-9, max_value=1.0),
    st.floats(min_value=1e-9, max_value=1.0),
)


def _variants(points):
    return [
        Variant(kernel="k", knobs=VariantKnobs(),
                cost=CostEstimate(latency_s=l, energy_j=e))
        for l, e in points
    ]


@settings(max_examples=50, deadline=None)
@given(st.lists(costs, min_size=1, max_size=20))
def test_property_front_members_not_dominated(points):
    variants = _variants(points)
    front = pareto_front(variants)
    assert front
    for member in front:
        assert not any(
            other.cost.dominates(member.cost) for other in variants
        )


@settings(max_examples=50, deadline=None)
@given(st.lists(costs, min_size=1, max_size=20))
def test_property_front_idempotent(points):
    variants = _variants(points)
    front = pareto_front(variants)
    assert pareto_front(front) == front


@settings(max_examples=50, deadline=None)
@given(st.lists(costs, min_size=2, max_size=20))
def test_property_front_invariant_to_order(points):
    forward = pareto_front(_variants(points))
    backward = pareto_front(_variants(list(reversed(points))))
    as_set = {
        (round(v.cost.latency_s, 12), round(v.cost.energy_j, 12))
        for v in forward
    }
    as_set_b = {
        (round(v.cost.latency_s, 12), round(v.cost.energy_j, 12))
        for v in backward
    }
    assert as_set == as_set_b


# ----------------------------------------------------------------------
# physical model monotonicities
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=1.0, max_value=10.0),
       st.floats(min_value=500.0, max_value=8000.0))
def test_property_plume_decays_downwind_far_field(wind, distance):
    from repro.apps.airquality.emissions import EmissionSource
    from repro.apps.airquality.plume import (
        GaussianPlume,
        StabilityClass,
    )

    source = EmissionSource("s", 0, 0, 50.0, 100.0)
    plume = GaussianPlume(source, wind, 0.0, StabilityClass.D)
    near = plume.concentration(
        np.array([distance]), np.array([0.0])
    )[0]
    far = plume.concentration(
        np.array([distance * 2.0]), np.array([0.0])
    )[0]
    # beyond the concentration peak, doubling distance reduces C
    if near > 0 and distance > 1500.0:
        assert far <= near * 1.05


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=0.0, max_value=3000.0),
       st.floats(min_value=100.0, max_value=2000.0))
def test_property_bpr_monotone_in_volume(volume, capacity):
    from repro.apps.traffic.simulator import bpr_time

    base = bpr_time(10.0, volume, capacity)
    more = bpr_time(10.0, volume + 100.0, capacity)
    assert more >= base
    assert base >= 10.0 - 1e-9


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=0.0, max_value=40.0))
def test_property_power_curve_bounded(wind):
    from repro.apps.weather.wind import power_curve

    value = power_curve(np.array([wind]))[0]
    assert 0.0 <= value <= 1.0
