"""Tests for node builders, ecosystem topology, and energy metering."""

import pytest

from repro.errors import PlatformError
from repro.platform.node import (
    build_cloudfpga_node,
    build_edge_node,
    build_gpu_node,
    build_power9_node,
)
from repro.platform.power import EnergyMeter
from repro.platform.topology import (
    Ecosystem,
    Tier,
    build_reference_ecosystem,
)
from repro.platform.interconnect import EthernetLink
from repro.platform.node import Node


class TestNodeBuilders:
    def test_power9_has_coherent_fpga(self):
        node = build_power9_node()
        assert node.has_fpga and node.has_coherent_fpga
        assert node.arch == "ppc64le"

    def test_power9_multi_fpga(self):
        node = build_power9_node(num_fpgas=3)
        assert len(node.fpgas) == 3

    def test_cloudfpga_has_no_cpu(self):
        node = build_cloudfpga_node()
        assert node.cpu is None
        assert node.network_link is not None
        assert node.has_fpga

    def test_edge_node_arch_variants(self):
        arm = build_edge_node("e0", arch="arm")
        riscv = build_edge_node("e1", arch="riscv")
        assert arm.cpu.name == "ARM"
        assert riscv.cpu.name == "RISCV"

    def test_edge_invalid_arch(self):
        with pytest.raises(PlatformError):
            build_edge_node(arch="mips")

    def test_edge_without_fpga(self):
        node = build_edge_node(with_fpga=False)
        assert not node.has_fpga

    def test_gpu_node(self):
        node = build_gpu_node()
        assert node.gpu is not None
        assert not node.has_fpga

    def test_idle_watts_positive(self):
        for node in (build_power9_node(), build_edge_node(),
                     build_gpu_node()):
            assert node.idle_watts() > 0

    def test_duplicate_memory_rejected(self):
        node = build_power9_node()
        memory = next(iter(node.memories.values()))
        with pytest.raises(PlatformError):
            node.add_memory(memory)

    def test_describe_mentions_fpgas(self):
        assert "fpgas=1" in build_power9_node().describe()


class TestEcosystem:
    def test_reference_ecosystem_tiers(self):
        eco = build_reference_ecosystem()
        assert len(eco.nodes_in_tier(Tier.ENDPOINT)) == 8
        assert len(eco.nodes_in_tier(Tier.INNER_EDGE)) == 2
        assert len(eco.nodes_in_tier(Tier.CLOUD)) >= 6

    def test_duplicate_node_rejected(self):
        eco = Ecosystem()
        eco.add_node(Node(name="n"), Tier.CLOUD)
        with pytest.raises(PlatformError):
            eco.add_node(Node(name="n"), Tier.CLOUD)

    def test_connect_unknown_node_rejected(self):
        eco = Ecosystem()
        eco.add_node(Node(name="a"), Tier.CLOUD)
        with pytest.raises(PlatformError):
            eco.connect("a", "ghost", EthernetLink())

    def test_path_and_transfer(self):
        eco = build_reference_ecosystem()
        path = eco.path("endpoint-0", "power9-0")
        assert path[0] == "endpoint-0"
        assert path[-1] == "power9-0"
        assert len(path) >= 3  # via edge gateway and switch
        assert eco.transfer_time("endpoint-0", "power9-0", 1000) > 0

    def test_transfer_to_self_is_free(self):
        eco = build_reference_ecosystem()
        assert eco.transfer_time("power9-0", "power9-0", 10**6) == 0.0

    def test_no_path_raises(self):
        eco = Ecosystem()
        eco.add_node(Node(name="a"), Tier.CLOUD)
        eco.add_node(Node(name="b"), Tier.CLOUD)
        with pytest.raises(PlatformError):
            eco.path("a", "b")

    def test_edge_closer_than_cloud(self):
        eco = build_reference_ecosystem()
        to_edge = eco.transfer_time("endpoint-0", "edge-0", 10**4)
        to_cloud = eco.transfer_time("endpoint-0", "power9-0", 10**4)
        assert to_edge < to_cloud

    def test_bottleneck_bandwidth(self):
        eco = build_reference_ecosystem()
        # endpoint link is the bottleneck toward the cloud
        sensor_bw = eco.bottleneck_bandwidth("endpoint-0", "power9-0")
        dc_bw = eco.bottleneck_bandwidth("power9-0", "gpu-0")
        assert sensor_bw < dc_bw

    def test_record_transfer_accounts_all_hops(self):
        eco = build_reference_ecosystem()
        eco.record_transfer("endpoint-0", "power9-0", 500)
        hops = eco.path("endpoint-0", "power9-0")
        for a, b in zip(hops, hops[1:]):
            assert eco.link_between(a, b).bytes_transferred == 500

    def test_transfer_energy_positive(self):
        eco = build_reference_ecosystem()
        assert eco.transfer_energy("endpoint-0", "edge-0", 1000) > 0


class TestEnergyMeter:
    def test_accumulates_by_device_and_category(self):
        meter = EnergyMeter()
        meter.add("fpga0", 2.0, category="compute")
        meter.add("fpga0", 1.0, category="transfer")
        meter.add("cpu0", 3.0)
        assert meter.device_total("fpga0") == pytest.approx(3.0)
        assert meter.category_total("compute") == pytest.approx(5.0)
        assert meter.total_joules == pytest.approx(6.0)

    def test_add_power_integrates(self):
        meter = EnergyMeter()
        meter.add_power("n", watts=10.0, seconds=2.0)
        assert meter.device_total("n") == pytest.approx(20.0)

    def test_negative_rejected(self):
        meter = EnergyMeter()
        with pytest.raises(ValueError):
            meter.add("n", -1.0)

    def test_merge(self):
        a, b = EnergyMeter(), EnergyMeter()
        a.add("x", 1.0)
        b.add("x", 2.0, category="transfer")
        a.merge(b)
        assert a.device_total("x") == pytest.approx(3.0)
        assert a.breakdown()["transfer"] == pytest.approx(2.0)
