"""Tests for the discrete-event simulation engine."""

import pytest

from repro.errors import PlatformError
from repro.platform.simulator import Simulator, all_of, delayed_call


class TestTimeouts:
    def test_single_timeout_advances_clock(self):
        sim = Simulator()

        def body():
            yield sim.timeout(2.5)
            return sim.now

        assert sim.run_process(body()) == 2.5

    def test_sequential_timeouts_accumulate(self):
        sim = Simulator()

        def body():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)
            return sim.now

        assert sim.run_process(body()) == 3.0

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.timeout(-1)

    def test_zero_timeout_allowed(self):
        sim = Simulator()

        def body():
            yield sim.timeout(0)
            return "done"

        assert sim.run_process(body()) == "done"

    def test_run_until_stops_early(self):
        sim = Simulator()

        def body():
            yield sim.timeout(100.0)

        sim.process(body())
        sim.run(until=10.0)
        assert sim.now == 10.0


class TestDeterminism:
    def test_same_timestamp_fires_in_insertion_order(self):
        sim = Simulator()
        order = []

        def make(tag):
            def body():
                yield sim.timeout(1.0)
                order.append(tag)
            return body

        for tag in ("a", "b", "c"):
            sim.process(make(tag)())
        sim.run()
        assert order == ["a", "b", "c"]


class TestEvents:
    def test_event_wakes_waiter_with_value(self):
        sim = Simulator()
        event = sim.event()
        results = []

        def waiter():
            value = yield event
            results.append(value)

        def trigger():
            yield sim.timeout(5.0)
            event.trigger("payload")

        sim.process(waiter())
        sim.process(trigger())
        sim.run()
        assert results == ["payload"]
        assert sim.now == 5.0

    def test_already_triggered_event_resumes_immediately(self):
        sim = Simulator()
        event = sim.event()
        event.trigger(42)

        def waiter():
            value = yield event
            return value

        assert sim.run_process(waiter()) == 42

    def test_double_trigger_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.trigger()
        with pytest.raises(PlatformError):
            event.trigger()


class TestResources:
    def test_capacity_serializes_holders(self):
        sim = Simulator()
        resource = sim.resource(1)
        finish_times = []

        def worker():
            yield resource.request()
            yield sim.timeout(10.0)
            resource.release()
            finish_times.append(sim.now)

        for _ in range(3):
            sim.process(worker())
        sim.run()
        assert finish_times == [10.0, 20.0, 30.0]

    def test_capacity_two_overlaps(self):
        sim = Simulator()
        resource = sim.resource(2)
        finish_times = []

        def worker():
            yield resource.request()
            yield sim.timeout(10.0)
            resource.release()
            finish_times.append(sim.now)

        for _ in range(4):
            sim.process(worker())
        sim.run()
        assert finish_times == [10.0, 10.0, 20.0, 20.0]

    def test_release_without_request_rejected(self):
        sim = Simulator()
        resource = sim.resource(1)
        with pytest.raises(PlatformError):
            resource.release()

    def test_queue_statistics(self):
        sim = Simulator()
        resource = sim.resource(1)

        def worker():
            yield resource.request()
            yield sim.timeout(1.0)
            resource.release()

        for _ in range(3):
            sim.process(worker())
        sim.run()
        assert resource.total_grants == 3
        assert resource.total_waits == 2


class TestProcessComposition:
    def test_waiting_on_process_result(self):
        sim = Simulator()

        def child():
            yield sim.timeout(3.0)
            return "child-result"

        def parent():
            handle = sim.process(child())
            result = yield handle
            return result

        assert sim.run_process(parent()) == "child-result"

    def test_all_of_collects_results(self):
        sim = Simulator()

        def child(delay, value):
            yield sim.timeout(delay)
            return value

        children = [sim.process(child(i + 1, i)) for i in range(3)]
        results = sim.run_process(all_of(sim, children))
        assert results == [0, 1, 2]
        assert sim.now == 3.0

    def test_delayed_call(self):
        sim = Simulator()
        handle = delayed_call(sim, 7.0, lambda: "fired")
        sim.run()
        assert handle.result == "fired"
        assert sim.now == 7.0

    def test_deadlock_detected(self):
        sim = Simulator()
        event = sim.event()  # never triggered

        def stuck():
            yield event

        with pytest.raises(PlatformError, match="deadlock"):
            sim.run_process(stuck())

    def test_invalid_yield_rejected(self):
        sim = Simulator()

        def bad():
            yield "not-an-event"

        with pytest.raises(PlatformError, match="unsupported"):
            sim.run_process(bad())
