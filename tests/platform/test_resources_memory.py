"""Tests for resource bundles and memory models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CapacityError
from repro.platform.memory import MemoryModel, MemoryTechnology
from repro.platform.resources import (
    CPUDescription,
    FPGAResources,
    GPUDescription,
)
from repro.utils.units import GB

small = st.integers(min_value=0, max_value=10**6)


class TestFPGAResources:
    def test_add(self):
        total = FPGAResources(luts=10, dsps=1) + FPGAResources(luts=5)
        assert total.luts == 15 and total.dsps == 1

    def test_scaled(self):
        assert FPGAResources(luts=10).scaled(3).luts == 30

    def test_fits_in(self):
        small_fp = FPGAResources(luts=10, ffs=10)
        big = FPGAResources(luts=100, ffs=100, bram_kb=10, dsps=10)
        assert small_fp.fits_in(big)
        assert not big.fits_in(small_fp)

    def test_utilization(self):
        footprint = FPGAResources(luts=50, ffs=10)
        capacity = FPGAResources(luts=100, ffs=100, bram_kb=10, dsps=10)
        assert footprint.utilization_of(capacity) == pytest.approx(0.5)

    def test_utilization_missing_resource_raises(self):
        footprint = FPGAResources(dsps=1)
        capacity = FPGAResources(luts=100)
        with pytest.raises(CapacityError):
            footprint.utilization_of(capacity)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FPGAResources(luts=-1)

    def test_is_empty(self):
        assert FPGAResources().is_empty()
        assert not FPGAResources(luts=1).is_empty()

    @given(small, small, small, small)
    def test_property_add_then_sub_roundtrip(self, a, b, c, d):
        x = FPGAResources(luts=a, ffs=b, bram_kb=c, dsps=d)
        y = FPGAResources(luts=a, ffs=b, bram_kb=c, dsps=d)
        assert (x + y) - y == x

    @given(small, small)
    def test_property_fits_is_reflexive(self, a, b):
        x = FPGAResources(luts=a, ffs=b)
        assert x.fits_in(x)


class TestCPUDescription:
    def test_peak_flops(self):
        cpu = CPUDescription("c", cores=4, frequency_hz=1e9,
                             flops_per_cycle=2.0)
        assert cpu.peak_flops == 8e9

    def test_time_for_flops_scales(self):
        cpu = CPUDescription("c", cores=1, frequency_hz=1e9)
        assert cpu.time_for_flops(2e9) == pytest.approx(
            2 * cpu.time_for_flops(1e9)
        )

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            CPUDescription("c", cores=0, frequency_hz=1e9)


class TestGPUDescription:
    def test_launch_latency_floor(self):
        gpu = GPUDescription("g", peak_flops=1e12,
                             memory_bandwidth=500e9)
        assert gpu.time_for_flops(0) == pytest.approx(
            gpu.kernel_launch_latency
        )


class TestMemoryModel:
    def make(self, **kwargs) -> MemoryModel:
        defaults = dict(
            name="m", technology=MemoryTechnology.DDR4,
            capacity_bytes=GB,
        )
        defaults.update(kwargs)
        return MemoryModel(**defaults)

    def test_defaults_filled_from_technology(self):
        memory = self.make()
        assert memory.latency_s > 0
        assert memory.bandwidth_per_channel > 0

    def test_allocate_and_free(self):
        memory = self.make()
        memory.allocate(1000)
        assert memory.free_bytes == GB - 1000
        memory.free(1000)
        assert memory.free_bytes == GB

    def test_over_allocation_rejected(self):
        memory = self.make()
        with pytest.raises(CapacityError):
            memory.allocate(GB + 1)

    def test_over_free_rejected(self):
        memory = self.make()
        memory.allocate(10)
        with pytest.raises(CapacityError):
            memory.free(20)

    def test_access_time_includes_latency(self):
        memory = self.make()
        assert memory.access_time(0) == pytest.approx(memory.latency_s)

    def test_access_time_bandwidth_bound(self):
        memory = self.make(channels=2)
        small_t = memory.access_time(10**6)
        big_t = memory.access_time(10**8)
        assert big_t > small_t

    def test_parallel_streams_share_bandwidth(self):
        memory = self.make(channels=1)
        alone = memory.access_time(10**8, parallel_streams=1)
        shared = memory.access_time(10**8, parallel_streams=4)
        assert shared > alone

    def test_streams_up_to_channels_are_free(self):
        memory = self.make(channels=4)
        assert memory.access_time(10**8, 4) == pytest.approx(
            memory.access_time(10**8, 1)
        )

    def test_access_energy(self):
        memory = self.make()
        assert memory.access_energy(10**6) > 0
        assert memory.access_energy(0) == 0

    def test_bram_faster_than_remote(self):
        bram = self.make(technology=MemoryTechnology.BRAM)
        remote = self.make(technology=MemoryTechnology.REMOTE)
        assert bram.access_time(1024) < remote.access_time(1024)
