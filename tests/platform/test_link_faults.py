"""Link degradation and partition overlay on the ecosystem topology."""

import pytest

from repro.errors import PlatformError
from repro.platform.topology import build_reference_ecosystem


@pytest.fixture
def eco():
    return build_reference_ecosystem()


class TestDegradation:
    def test_degradation_slows_transfer(self, eco):
        size = 10**8
        clean = eco.transfer_time("power9-0", "gpu-0", size)
        eco.degrade_link("dc-switch", "power9-0",
                         bandwidth_factor=0.25)
        degraded = eco.transfer_time("power9-0", "gpu-0", size)
        assert degraded > clean * 2
        eco.restore_link("dc-switch", "power9-0")
        assert eco.transfer_time("power9-0", "gpu-0", size) == clean

    def test_latency_add_applies_per_hop(self, eco):
        clean = eco.transfer_time("power9-0", "gpu-0", 1000)
        eco.degrade_link("dc-switch", "power9-0", latency_add_s=0.2)
        assert eco.transfer_time("power9-0", "gpu-0", 1000) == \
            pytest.approx(clean + 0.2, rel=1e-6)

    def test_pair_order_is_irrelevant(self, eco):
        eco.degrade_link("power9-0", "dc-switch", bandwidth_factor=0.5)
        assert eco.link_state("dc-switch", "power9-0") == (0.5, 0.0)
        eco.restore_link("dc-switch", "power9-0")
        assert eco.link_state("power9-0", "dc-switch") == (1.0, 0.0)

    def test_bottleneck_bandwidth_sees_degradation(self, eco):
        before = eco.bottleneck_bandwidth("power9-0", "gpu-0")
        eco.degrade_link("dc-switch", "gpu-0", bandwidth_factor=0.1)
        assert eco.bottleneck_bandwidth("power9-0", "gpu-0") == \
            pytest.approx(before * 0.1)

    def test_invalid_factor_rejected(self, eco):
        with pytest.raises(PlatformError, match="bandwidth_factor"):
            eco.degrade_link("dc-switch", "power9-0",
                             bandwidth_factor=0.0)
        with pytest.raises(PlatformError, match="bandwidth_factor"):
            eco.degrade_link("dc-switch", "power9-0",
                             bandwidth_factor=1.2)
        with pytest.raises(PlatformError, match="latency_add_s"):
            eco.degrade_link("dc-switch", "power9-0",
                             latency_add_s=-0.1)

    def test_unknown_edge_rejected(self, eco):
        with pytest.raises(PlatformError, match="no direct link"):
            eco.degrade_link("power9-0", "gpu-0",
                             bandwidth_factor=0.5)


class TestPartition:
    def test_partition_removes_only_route(self, eco):
        # power9-0 hangs off the switch by a single link
        eco.partition_link("dc-switch", "power9-0")
        assert eco.is_partitioned("power9-0", "dc-switch")
        with pytest.raises(PlatformError, match="no path"):
            eco.path("power9-0", "gpu-0")
        with pytest.raises(PlatformError, match="no path"):
            eco.transfer_time("power9-0", "gpu-0", 1000)

    def test_heal_restores_route(self, eco):
        clean = eco.transfer_time("power9-0", "gpu-0", 1000)
        eco.partition_link("dc-switch", "power9-0")
        eco.restore_link("dc-switch", "power9-0")
        assert not eco.is_partitioned("dc-switch", "power9-0")
        assert eco.transfer_time("power9-0", "gpu-0", 1000) == clean

    def test_unaffected_routes_keep_working(self, eco):
        clean = eco.transfer_time("edge-0", "dc-switch", 1000)
        eco.partition_link("dc-switch", "power9-0")
        assert eco.transfer_time("edge-0", "dc-switch", 1000) == clean

    def test_underlying_graph_is_untouched(self, eco):
        edges_before = set(eco.graph.edges)
        eco.partition_link("dc-switch", "power9-0")
        assert set(eco.graph.edges) == edges_before
