"""Determinism pins for the discrete-event engine.

The chaos replay guarantee (same seeds → byte-identical trace) rests
on one property of the simulator: events scheduled at the same
timestamp fire in insertion order. These tests pin that tie-breaking
contract — including resource request/release interleavings — so a
future heap or queue change cannot silently reorder same-time events.
"""

from repro.platform.simulator import Simulator, all_of


def test_same_timestamp_fires_in_insertion_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c", "d", "e"):
        sim.process(proc(tag))
    sim.run()
    assert order == ["a", "b", "c", "d", "e"]


def test_insertion_order_beats_registration_gymnastics():
    """Two processes reach t=2.0 via different schedules; the one whose
    *final* event was pushed first wins the tie."""
    sim = Simulator()
    order = []

    def late_then_short():
        # pushes its t=2.0 event at t=1.0 (after early's, pushed at 0.5)
        yield sim.timeout(1.0)
        yield sim.timeout(1.0)
        order.append("late")

    def early_then_long():
        yield sim.timeout(0.5)
        yield sim.timeout(1.5)
        order.append("early")

    sim.process(late_then_short())
    sim.process(early_then_long())
    sim.run()
    assert order == ["early", "late"]


def test_event_trigger_resumes_waiters_in_subscription_order():
    sim = Simulator()
    gate = sim.event()
    order = []

    def waiter(tag):
        yield gate
        order.append(tag)

    def opener():
        yield sim.timeout(1.0)
        gate.trigger()

    sim.process(waiter("first"))
    sim.process(waiter("second"))
    sim.process(waiter("third"))
    sim.process(opener())
    sim.run()
    assert order == ["first", "second", "third"]


def test_resource_grants_are_fifo_across_release():
    """Capacity-1 resource: A holds it, B and C queue in request
    order. A's release hands the unit to B, then B's to C."""
    sim = Simulator()
    resource = sim.resource(1, name="slot")
    order = []

    def holder(tag, hold_s):
        yield resource.request()
        order.append(f"{tag}:acquired@{sim.now}")
        yield sim.timeout(hold_s)
        resource.release()

    sim.process(holder("a", 5.0))
    sim.process(holder("b", 1.0))
    sim.process(holder("c", 1.0))
    sim.run()
    assert order == [
        "a:acquired@0.0",
        "b:acquired@5.0",
        "c:acquired@6.0",
    ]
    assert resource.total_waits == 2
    assert resource.total_grants == 3


def test_same_time_request_release_interleaving_is_stable():
    """A release and a new request land at the same timestamp: the
    release (scheduled first) wakes the queued process before the
    newcomer is considered, so the queue stays strictly FIFO."""
    sim = Simulator()
    resource = sim.resource(1)
    order = []

    def holder():
        yield resource.request()
        yield sim.timeout(1.0)
        resource.release()
        order.append("released")

    def queued():
        yield sim.timeout(0.5)
        yield resource.request()
        order.append("queued-acquired")
        resource.release()

    def newcomer():
        # arrives exactly when the holder releases
        yield sim.timeout(1.0)
        yield resource.request()
        order.append("newcomer-acquired")
        resource.release()

    sim.process(holder())
    sim.process(queued())
    sim.process(newcomer())
    sim.run()
    assert order == ["released", "queued-acquired",
                     "newcomer-acquired"]


def test_identical_runs_produce_identical_event_logs():
    """The full interleaving — timeouts, events, resources — replays
    identically across fresh simulator instances."""

    def run_once():
        sim = Simulator()
        resource = sim.resource(2)
        gate = sim.event()
        log = []

        def contender(tag, delay):
            yield sim.timeout(delay)
            yield resource.request()
            log.append((sim.now, f"{tag}:in"))
            yield sim.timeout(1.0)
            resource.release()
            log.append((sim.now, f"{tag}:out"))
            if tag == "c":
                gate.trigger()

        def watcher():
            yield gate
            log.append((sim.now, "gate"))

        sim.process(watcher())
        procs = [
            sim.process(contender(tag, delay))
            for tag, delay in (
                ("a", 0.0), ("b", 0.0), ("c", 0.0),
                ("d", 1.0), ("e", 1.0),
            )
        ]
        sim.run_process(all_of(sim, procs))
        return log

    first = run_once()
    second = run_once()
    assert first == second
    assert first  # the scenario actually logged something


def test_heap_order_invariant_under_many_processes():
    """100 processes all waking at the same three timestamps resume in
    registration order at every timestamp."""
    sim = Simulator()
    order = []

    def proc(index):
        for _ in range(3):
            yield sim.timeout(1.0)
            order.append((sim.now, index))

    for index in range(100):
        sim.process(proc(index))
    sim.run()
    for time in (1.0, 2.0, 3.0):
        at_time = [idx for when, idx in order if when == time]
        assert at_time == list(range(100))
