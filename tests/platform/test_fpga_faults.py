"""Injected partial-reconfiguration faults on the FPGA device model."""

import pytest

from repro.errors import ReconfigurationError
from repro.platform.fpga import Bitstream, make_ku060, make_vu9p
from repro.platform.resources import FPGAResources


def small_bitstream(name="acc") -> Bitstream:
    return Bitstream(
        name=name,
        footprint=FPGAResources(
            luts=50_000, ffs=80_000, bram_kb=1_000, dsps=100,
        ),
        clock_hz=200e6,
    )


class TestInjectedReconfigFaults:
    def test_armed_fault_fails_next_load(self):
        device = make_ku060("fpga0")
        device.inject_reconfig_failures(1)
        with pytest.raises(ReconfigurationError, match="retry the load"):
            device.load(small_bitstream())
        assert device.failed_reconfigurations == 1
        # the role was left untouched by the failed attempt
        assert device.roles[0].loaded is None
        assert device.roles[0].reconfigurations == 0

    def test_retry_after_fault_succeeds(self):
        device = make_ku060("fpga0")
        device.inject_reconfig_failures(1)
        image = small_bitstream()
        with pytest.raises(ReconfigurationError):
            device.load(image)
        role = device.load(image)
        assert role.loaded is image
        assert role.reconfigurations == 1
        assert device.failed_reconfigurations == 1

    def test_multiple_armed_faults_consumed_in_order(self):
        device = make_vu9p("fpga0", role_slots=2)
        device.inject_reconfig_failures(2)
        image = small_bitstream()
        for _ in range(2):
            with pytest.raises(ReconfigurationError):
                device.load(image)
        assert device.failed_reconfigurations == 2
        assert device.load(image).loaded is image

    def test_failed_attempt_still_costs_reconfig_time(self):
        """The image streams through the configuration port before the
        CRC/timeout bites, so the wasted seconds are accounted."""
        device = make_ku060("fpga0")
        image = small_bitstream()
        expected = device.reconfiguration_time(image)
        device.inject_reconfig_failures(1)
        with pytest.raises(ReconfigurationError):
            device.load(image)
        assert device.total_reconfig_time == pytest.approx(expected)
        device.load(image)
        assert device.total_reconfig_time == pytest.approx(2 * expected)

    def test_capacity_errors_do_not_consume_armed_faults(self):
        device = make_ku060("fpga0")
        device.inject_reconfig_failures(1)
        huge = Bitstream(
            name="huge",
            footprint=FPGAResources(
                luts=10**7, ffs=10**7, bram_kb=10**6, dsps=10**5,
            ),
            clock_hz=100e6,
        )
        from repro.errors import CapacityError

        with pytest.raises(CapacityError):
            device.load(huge)
        # the armed fault is still pending for the next real load
        with pytest.raises(ReconfigurationError):
            device.load(small_bitstream())

    def test_negative_count_rejected(self):
        device = make_ku060("fpga0")
        with pytest.raises(Exception):
            device.inject_reconfig_failures(-1)

    def test_reconfiguration_error_is_platform_error(self):
        from repro.errors import PlatformError

        assert issubclass(ReconfigurationError, PlatformError)
