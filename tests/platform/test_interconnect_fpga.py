"""Tests for links and the shell-role FPGA device model."""

import pytest

from repro.errors import CapacityError, PlatformError
from repro.platform.fpga import (
    Bitstream,
    FPGADevice,
    Shell,
    make_edge_fpga,
    make_ku060,
    make_vu9p,
)
from repro.platform.interconnect import (
    EdgeUplink,
    EthernetLink,
    OpenCAPILink,
    PCIeLink,
    SensorLink,
)
from repro.platform.resources import FPGAResources


class TestLinks:
    def test_opencapi_is_coherent(self):
        assert OpenCAPILink().coherent

    def test_ethernet_is_not_coherent(self):
        assert not EthernetLink().coherent

    def test_tcp_overhead_exceeds_udp(self):
        tcp = EthernetLink(protocol="tcp")
        udp = EthernetLink(protocol="udp")
        assert tcp.transfer_time(64) > udp.transfer_time(64)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            EthernetLink(protocol="sctp")

    def test_transfer_time_monotone_in_size(self):
        link = PCIeLink()
        assert link.transfer_time(10**6) < link.transfer_time(10**8)

    def test_opencapi_latency_below_ethernet(self):
        assert OpenCAPILink().transfer_time(64) < \
            EthernetLink().transfer_time(64)

    def test_record_transfer_accumulates(self):
        link = EdgeUplink()
        link.record_transfer(1000)
        link.record_transfer(500)
        assert link.bytes_transferred == 1500
        assert link.messages == 2

    def test_sensor_link_is_slowest(self):
        assert SensorLink().bandwidth < EdgeUplink().bandwidth


class TestFPGADevice:
    def test_shell_subtracted_from_capacity(self):
        device = make_vu9p("d")
        user = device.user_capacity
        assert user.luts < device.capacity.luts

    def test_shell_too_large_rejected(self):
        with pytest.raises(CapacityError):
            FPGADevice(
                "tiny",
                capacity=FPGAResources(luts=10, ffs=10),
                shell=Shell(footprint=FPGAResources(luts=100, ffs=100)),
            )

    def test_role_slots_partition_evenly(self):
        device = make_vu9p("d", role_slots=2)
        assert len(device.roles) == 2
        assert device.roles[0].capacity == device.roles[1].capacity

    def _small_bitstream(self) -> Bitstream:
        return Bitstream(
            name="k", footprint=FPGAResources(luts=1000, ffs=1000),
            clock_hz=200e6,
        )

    def test_load_and_find(self):
        device = make_ku060("d")
        role = device.load(self._small_bitstream())
        assert device.find_role("k") is role
        assert role.reconfigurations == 1

    def test_load_too_big_rejected(self):
        device = make_edge_fpga("d")
        huge = Bitstream(
            name="huge",
            footprint=FPGAResources(luts=10**7, ffs=10**7),
            clock_hz=100e6,
        )
        with pytest.raises(CapacityError):
            device.load(huge)

    def test_all_slots_full_rejected(self):
        device = make_ku060("d")  # one role slot
        device.load(self._small_bitstream())
        with pytest.raises(PlatformError):
            device.load(Bitstream(
                name="k2", footprint=FPGAResources(luts=10, ffs=10),
                clock_hz=100e6,
            ))

    def test_unload_frees_slot(self):
        device = make_ku060("d")
        role = device.load(self._small_bitstream())
        device.unload(role)
        assert device.free_role() is role

    def test_busy_role_cannot_reconfigure(self):
        device = make_ku060("d")
        role = device.load(self._small_bitstream())
        role.busy = True
        with pytest.raises(PlatformError):
            device.unload(role)

    def test_reconfiguration_time_partial_faster_than_full(self):
        device = make_ku060("d")
        partial = Bitstream("p", FPGAResources(luts=10), 1e8,
                            partial=True)
        full = Bitstream("f", FPGAResources(luts=10), 1e8, partial=False)
        assert device.reconfiguration_time(partial) < \
            device.reconfiguration_time(full)

    def test_power_includes_active_roles(self):
        device = make_ku060("d")
        idle = device.power_watts()
        role = device.load(self._small_bitstream())
        role.busy = True
        assert device.power_watts() > idle
