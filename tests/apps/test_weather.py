"""Tests for the weather/energy use-case substrate."""

import numpy as np
import pytest

from repro.apps.weather.downscaling import (
    downscale_field,
    downscaling_flops,
)
from repro.apps.weather.ensemble import (
    Ensemble,
    daily_ensembles,
    generate_ensemble,
)
from repro.apps.weather.grid import WeatherField, synth_truth
from repro.apps.weather.market import ImbalanceMarket, ramp_events
from repro.apps.weather.ml import MLP
from repro.apps.weather.wind import WindFarm, default_farm, power_curve


class TestWeatherField:
    def test_truth_is_physical(self):
        truth = synth_truth(size_cells=60)
        assert truth.data.min() >= 0.0
        assert truth.data.max() <= 40.0
        assert truth.data.std() > 0.5  # has structure

    def test_deterministic_by_seed(self):
        a = synth_truth(size_cells=40, seed="s")
        b = synth_truth(size_cells=40, seed="s")
        assert np.array_equal(a.data, b.data)
        c = synth_truth(size_cells=40, seed="other")
        assert not np.array_equal(a.data, c.data)

    def test_block_average_shapes(self):
        truth = synth_truth(size_cells=60)
        coarse = truth.block_average(4)
        assert coarse.shape == (15, 15)
        assert coarse.resolution_km == pytest.approx(10.0)
        assert coarse.data.mean() == pytest.approx(
            truth.data.mean(), rel=1e-6
        )

    def test_block_average_indivisible_rejected(self):
        truth = synth_truth(size_cells=60)
        with pytest.raises(ValueError):
            truth.block_average(7)

    def test_value_at_km_clamps(self):
        truth = synth_truth(size_cells=20)
        assert truth.value_at_km(-5.0, -5.0) == truth.data[0, 0]
        far = truth.extent_km[0] + 100
        assert truth.value_at_km(far, far) == truth.data[-1, -1]


class TestEnsemble:
    def test_members_and_spread(self):
        truth = synth_truth(size_cells=60)
        ensemble = generate_ensemble(truth, 10.0, members=6,
                                     lead_hours=12)
        assert ensemble.size == 6
        assert ensemble.spread() > 0
        assert ensemble.resolution_km == pytest.approx(10.0)

    def test_spread_grows_with_lead_time(self):
        truth = synth_truth(size_cells=60)
        near = generate_ensemble(truth, 10.0, members=8, lead_hours=3)
        far = generate_ensemble(truth, 10.0, members=8, lead_hours=24)
        assert far.spread() > near.spread()

    def test_error_grows_with_resolution(self):
        """The paper's core premise: coarse ensembles are worse."""
        farm = default_farm()
        errors = {}
        for resolution in (25.0, 5.0):
            per_hour = []
            for hour in range(0, 24, 3):
                truth = synth_truth(size_cells=120, hour=hour)
                ensemble = generate_ensemble(
                    truth, resolution, members=6,
                    lead_hours=hour + 1, seed=f"h{hour}",
                )
                true_power = farm.production_mw(truth)
                predicted = farm.production_distribution_mw(
                    ensemble).mean()
                per_hour.append(abs(predicted - true_power))
            errors[resolution] = np.mean(per_hour)
        assert errors[5.0] < errors[25.0]

    def test_invalid_resolution_rejected(self):
        truth = synth_truth(size_cells=60)
        with pytest.raises(ValueError):
            generate_ensemble(truth, 7.3)

    def test_daily_ensembles_count(self):
        day = daily_ensembles(25.0, members=3, hours=4,
                              truth_size_cells=40)
        assert len(day) == 4


class TestDownscaling:
    def test_shape_and_resolution(self):
        truth = synth_truth(size_cells=60)
        coarse = truth.block_average(4)
        fine = downscale_field(coarse, truth.resolution_km)
        assert fine.shape == truth.shape
        assert fine.resolution_km == truth.resolution_km

    def test_identity_when_same_resolution(self):
        truth = synth_truth(size_cells=40)
        assert downscale_field(truth, truth.resolution_km) is truth

    def test_restores_small_scale_variance(self):
        truth = synth_truth(size_cells=80)
        coarse = truth.block_average(8)
        from repro.apps.weather.downscaling import _bilinear_upsample

        smooth = _bilinear_upsample(coarse.data, 8)
        fine = downscale_field(coarse, truth.resolution_km)
        # downscaled field has more variance than plain interpolation
        assert fine.data.std() > smooth.std()

    def test_non_integer_factor_rejected(self):
        truth = synth_truth(size_cells=60)
        with pytest.raises(ValueError):
            downscale_field(truth.block_average(4), 3.7)

    def test_flops_grow_with_factor(self):
        assert downscaling_flops(100, 8) > downscaling_flops(100, 2)


class TestWindFarm:
    def test_power_curve_regions(self):
        wind = np.array([0.0, 2.9, 3.0, 8.0, 12.0, 20.0, 25.0, 30.0])
        power = power_curve(wind)
        assert power[0] == 0.0 and power[1] == 0.0  # below cut-in
        assert 0.0 <= power[3] < 1.0  # ramp
        assert power[4] == 1.0 and power[5] == 1.0  # rated
        assert power[6] == 0.0 and power[7] == 0.0  # cut-out

    def test_power_curve_monotone_in_ramp(self):
        wind = np.linspace(3.0, 12.0, 50)
        power = power_curve(wind)
        assert np.all(np.diff(power) >= 0)

    def test_farm_capacity(self):
        farm = default_farm(turbines=10)
        assert farm.capacity_mw == pytest.approx(30.0)

    def test_production_bounded(self):
        farm = default_farm()
        truth = synth_truth(size_cells=120)
        production = farm.production_mw(truth)
        assert 0.0 <= production <= farm.capacity_mw

    def test_schedule_quantile_ordering(self):
        farm = default_farm()
        day = daily_ensembles(25.0, members=5, hours=3,
                              truth_size_cells=40)
        low = farm.day_ahead_schedule_mw(day, quantile=0.2)
        high = farm.day_ahead_schedule_mw(day, quantile=0.8)
        assert np.all(low <= high + 1e-9)

    def test_empty_farm_rejected(self):
        with pytest.raises(ValueError):
            WindFarm("empty", [])


class TestMLP:
    def test_learns_linear_map(self, rng):
        x = rng.normal(size=(256, 4))
        true_w = rng.normal(size=(4, 1))
        y = x @ true_w
        model = MLP([4, 16, 1])
        initial = model.mse(x, y)
        model.fit(x, y, epochs=100, learning_rate=3e-3)
        final = model.mse(x, y)
        assert final < 0.1 * initial

    def test_forward_shape(self):
        model = MLP([3, 8, 2])
        out = model.forward(np.zeros((5, 3)))
        assert out.shape == (5, 2)

    def test_exchange_spec_compiles(self):
        from repro.core.frontend import import_model

        model = MLP([4, 8, 1])
        spec = model.to_exchange_spec("corr", batch=16)
        imported = import_model(spec)
        from repro.core.dsl.kernel_dsl import compile_kernel

        module = compile_kernel(imported.dsl_source)
        assert module.find_function("corr") is not None

    def test_too_few_layers_rejected(self):
        with pytest.raises(ValueError):
            MLP([4])


class TestMarket:
    def test_perfect_forecast_costs_nothing(self):
        market = ImbalanceMarket()
        actual = [10.0, 20.0, 15.0]
        assert market.imbalance_cost(actual, actual) == pytest.approx(
            0.0)

    def test_errors_cost_money(self):
        market = ImbalanceMarket()
        actual = [10.0, 20.0, 15.0]
        committed = [15.0, 15.0, 15.0]
        assert market.imbalance_cost(committed, actual) > 0

    def test_shortfall_worse_than_surplus(self):
        market = ImbalanceMarket()
        actual = [10.0]
        over_commit = market.imbalance_cost([15.0], actual)
        under_commit = market.imbalance_cost([5.0], actual)
        assert over_commit > under_commit

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ImbalanceMarket().revenue([1.0], [1.0, 2.0])

    def test_ramp_events(self):
        assert ramp_events([0, 20, 21, 0], threshold_mwh=10) == 2
        assert ramp_events([5], threshold_mwh=10) == 0

    def test_better_forecast_lower_cost(self):
        market = ImbalanceMarket()
        actual = np.array([10.0, 30.0, 22.0, 5.0])
        good = actual + np.array([1.0, -1.0, 0.5, -0.5])
        bad = actual + np.array([8.0, -9.0, 6.0, -5.0])
        assert market.imbalance_cost(good, actual) < \
            market.imbalance_cost(bad, actual)
