"""Tests for the air-quality use-case substrate."""

import math

import numpy as np
import pytest

from repro.apps.airquality.emissions import (
    EmissionSource,
    IndustrialSite,
    default_site,
)
from repro.apps.airquality.forecast import (
    AirQualityForecast,
    ForecastDecision,
    synth_weather_members,
)
from repro.apps.airquality.plume import (
    GaussianPlume,
    StabilityClass,
    concentration_grid,
    sigma_y,
    sigma_z,
    stability_from_weather,
)
from repro.apps.airquality.sensors import SensorNetwork


class TestEmissions:
    def test_scaled_source(self):
        source = EmissionSource("s", 0, 0, 50.0, 100.0)
        assert source.scaled(0.5).rate_g_per_s == 50.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            EmissionSource("s", 0, 0, 50.0, -1.0)

    def test_site_activity_profile(self):
        site = default_site()
        night = site.total_rate_g_per_s(2)
        day = site.total_rate_g_per_s(10)
        assert day > night

    def test_throttle_scales(self):
        site = default_site()
        full = site.total_rate_g_per_s(10)
        sources = site.sources_at_hour(10, throttle=0.5)
        assert sum(s.rate_g_per_s for s in sources) == pytest.approx(
            full * 0.5
        )

    def test_empty_site_rejected(self):
        with pytest.raises(ValueError):
            IndustrialSite("x", sources=[])

    def test_bad_profile_rejected(self):
        with pytest.raises(ValueError):
            IndustrialSite(
                "x",
                sources=[EmissionSource("s", 0, 0, 10.0, 1.0)],
                activity_profile=np.ones(10),
            )


class TestPlumePhysics:
    def test_sigma_monotone_with_distance(self):
        x = np.array([100.0, 1000.0, 5000.0])
        for stability in StabilityClass:
            assert np.all(np.diff(sigma_y(x, stability)) > 0)
            assert np.all(np.diff(sigma_z(x, stability)) > 0)

    def test_unstable_disperses_more(self):
        x = np.array([2000.0])
        assert sigma_z(x, StabilityClass.A) > sigma_z(
            x, StabilityClass.F
        )

    def test_no_concentration_upwind(self):
        source = EmissionSource("s", 0, 0, 50.0, 100.0)
        plume = GaussianPlume(source, wind_ms=5.0, wind_dir_rad=0.0)
        upwind = plume.concentration(
            np.array([-1000.0]), np.array([0.0])
        )
        assert upwind[0] == 0.0

    def test_centerline_maximal(self):
        source = EmissionSource("s", 0, 0, 50.0, 100.0)
        plume = GaussianPlume(source, wind_ms=5.0, wind_dir_rad=0.0)
        x = np.array([2000.0, 2000.0, 2000.0])
        y = np.array([0.0, 300.0, -300.0])
        concentration = plume.concentration(x, y)
        assert concentration[0] > concentration[1]
        assert concentration[1] == pytest.approx(concentration[2])

    def test_stronger_wind_dilutes_far_field(self):
        source = EmissionSource("s", 0, 0, 50.0, 100.0)
        x = np.array([5000.0])
        y = np.array([0.0])
        weak = GaussianPlume(source, 2.0, 0.0,
                             StabilityClass.D).concentration(x, y)
        strong = GaussianPlume(source, 8.0, 0.0,
                               StabilityClass.D).concentration(x, y)
        assert strong[0] < weak[0]

    def test_higher_stack_lower_ground_level(self):
        x = np.array([1500.0])
        y = np.array([0.0])
        low = GaussianPlume(
            EmissionSource("l", 0, 0, 20.0, 100.0), 5.0, 0.0
        ).concentration(x, y)
        high = GaussianPlume(
            EmissionSource("h", 0, 0, 120.0, 100.0), 5.0, 0.0
        ).concentration(x, y)
        assert high[0] < low[0]

    def test_rate_linearity(self):
        x = np.array([2000.0])
        y = np.array([100.0])
        single = GaussianPlume(
            EmissionSource("s", 0, 0, 50.0, 100.0), 5.0, 0.0
        ).concentration(x, y)
        double = GaussianPlume(
            EmissionSource("s", 0, 0, 50.0, 200.0), 5.0, 0.0
        ).concentration(x, y)
        assert double[0] == pytest.approx(2 * single[0])

    def test_wind_direction_rotates_plume(self):
        source = EmissionSource("s", 0, 0, 50.0, 100.0)
        east = GaussianPlume(source, 5.0, 0.0)
        north = GaussianPlume(source, 5.0, math.pi / 2)
        x = np.array([2000.0])
        y = np.array([0.0])
        assert east.concentration(x, y)[0] > 0
        assert north.concentration(x, y)[0] == 0.0
        assert north.concentration(np.array([0.0]),
                                   np.array([2000.0]))[0] > 0

    def test_grid_superposition(self):
        site = default_site()
        _x, _y, field = concentration_grid(
            site.sources, 5.0, 0.3, StabilityClass.D, cells=50
        )
        assert field.shape == (50, 50)
        assert field.max() > 0

    def test_stability_classification(self):
        assert stability_from_weather(1.0, 0.9) is StabilityClass.A
        assert stability_from_weather(1.0, 0.0) is StabilityClass.F
        assert stability_from_weather(8.0, 0.5) is StabilityClass.D


class TestSensors:
    def field(self, x, y):
        return 100.0 * math.exp(-((x / 3000) ** 2 + (y / 3000) ** 2))

    def test_deployment(self):
        network = SensorNetwork.deploy_ring(count=12)
        assert len(network.sensors) == 12

    def test_readings_noisy_but_positive(self):
        network = SensorNetwork.deploy_ring(count=12)
        readings = network.observe(self.field)
        assert len(readings) == 12
        assert all(value >= 0 for _s, value in readings)

    def test_calibration_reduces_error(self):
        raw = SensorNetwork.deploy_ring(count=24, seed="cal")
        calibrated = SensorNetwork.deploy_ring(count=24, seed="cal")
        calibrated.calibrate(self.field, samples=64)
        raw_error = raw.mean_absolute_error(self.field)
        calibrated_error = calibrated.mean_absolute_error(self.field)
        assert calibrated_error < raw_error

    def test_idw_estimate_near_sensor(self):
        network = SensorNetwork.deploy_ring(count=8)
        readings = [(sensor, 50.0) for sensor in network.sensors]
        sensor = network.sensors[0]
        estimate = network.estimate_at(
            sensor.x_m, sensor.y_m, readings
        )
        assert estimate == pytest.approx(50.0)

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            SensorNetwork([])


class TestForecast:
    def test_day_has_24_assessments(self):
        forecast = AirQualityForecast(default_site(), grid_cells=30)
        day = forecast.forecast_day(members_per_hour=3)
        assert len(day) == 24
        assert all(0.0 <= a.exceedance_probability <= 1.0 for a in day)

    def test_some_exceedances_flagged(self):
        forecast = AirQualityForecast(default_site(), grid_cells=30)
        day = forecast.forecast_day(members_per_hour=4)
        decisions = {a.decision for a in day}
        assert ForecastDecision.NORMAL in decisions
        assert decisions - {ForecastDecision.NORMAL}  # some action

    def test_throttle_lowers_probability(self):
        forecast = AirQualityForecast(default_site(), grid_cells=30)
        members = synth_weather_members(7, members=6)
        full = forecast.assess_hour(7, members, throttle=1.0)
        reduced = forecast.assess_hour(7, members, throttle=0.2)
        assert reduced.peak_concentration < full.peak_concentration
        assert reduced.exceedance_probability <= \
            full.exceedance_probability

    def test_decisions_mitigate(self):
        forecast = AirQualityForecast(default_site(), grid_cells=30)
        day = forecast.forecast_day(members_per_hour=4)
        avoided, lost = forecast.apply_decisions(day)
        assert avoided > 0.5  # abatement works
        assert 0.0 <= lost < 0.5  # without shutting the plant

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            AirQualityForecast(
                default_site(),
                reduce_probability=0.8,
                abate_probability=0.2,
            )

    def test_weather_members_deterministic(self):
        a = synth_weather_members(5, members=4, seed="x")
        b = synth_weather_members(5, members=4, seed="x")
        assert a == b
