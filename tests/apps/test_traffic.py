"""Tests for the traffic use-case substrate."""

import numpy as np
import pytest

from repro.apps.traffic.fcd import (
    FCDGenerator,
    PROBE_PERIOD_S,
    aggregate_speeds,
)
from repro.apps.traffic.od_matrix import (
    ODMatrix,
    diurnal_profile,
    gravity_demand,
)
from repro.apps.traffic.prediction import SpeedModel
from repro.apps.traffic.road_graph import build_city
from repro.apps.traffic.routing import PTDRRouter, ptdr_flops
from repro.apps.traffic.simulator import TrafficSimulator, bpr_time
from repro.errors import SpecificationError


@pytest.fixture(scope="module")
def city():
    return build_city(grid=6)


@pytest.fixture(scope="module")
def rush_state(city):
    od = gravity_demand(city, zones=8, seed="t")
    return TrafficSimulator(city, od, increments=3).simulate_hour(8)


class TestCityGraph:
    def test_structure(self, city):
        assert city.num_nodes == 36
        assert city.num_segments > 100

    def test_ring_faster_than_streets(self, city):
        kinds = {
            segment.kind: segment.free_speed_ms
            for _a, _b, segment in city.segments()
        }
        assert kinds["ring"] > kinds["street"]

    def test_bidirectional(self, city):
        segment = city.segment((0, 0), (0, 1))
        reverse = city.segment((0, 1), (0, 0))
        assert segment.length_m == reverse.length_m

    def test_unknown_segment_rejected(self, city):
        with pytest.raises(SpecificationError):
            city.segment((0, 0), (5, 5))

    def test_k_shortest_distinct(self, city):
        paths = city.k_shortest_paths((0, 0), (5, 5), k=3)
        assert len(paths) == 3
        assert len({tuple(path) for path in paths}) == 3

    def test_tiny_grid_rejected(self):
        with pytest.raises(SpecificationError):
            build_city(grid=2)


class TestDemand:
    def test_diurnal_peaks(self):
        assert diurnal_profile(8) > diurnal_profile(3)
        assert diurnal_profile(17) > diurnal_profile(13)

    def test_gravity_total(self, city):
        od = gravity_demand(city, zones=8, daily_trips=240_000)
        assert od.total_trips() == pytest.approx(10_000.0)

    def test_scaled(self, city):
        od = gravity_demand(city, zones=6)
        assert od.scaled(2.0).total_trips() == pytest.approx(
            2 * od.total_trips()
        )

    def test_nearby_heavy_pairs(self, city):
        od = gravity_demand(city, zones=8, seed="t")
        top = od.top_pairs(3)
        assert all(trips > 0 for _pair, trips in top)

    def test_too_many_zones_rejected(self, city):
        with pytest.raises(ValueError):
            gravity_demand(city, zones=1000)


class TestSimulator:
    def test_bpr_monotone(self):
        assert bpr_time(10.0, 0.0, 1000.0) == pytest.approx(10.0)
        assert bpr_time(10.0, 2000.0, 1000.0) > bpr_time(
            10.0, 500.0, 1000.0
        )

    def test_rush_hour_congested(self, city, rush_state):
        assert rush_state.congestion_index(city) > 1.2

    def test_night_free_flow(self, city):
        od = gravity_demand(city, zones=8, seed="t")
        night = TrafficSimulator(city, od,
                                 increments=3).simulate_hour(3)
        assert night.congestion_index(city) < 1.1

    def test_congested_speed_below_free(self, city, rush_state):
        hot_edge = max(
            rush_state.volumes, key=rush_state.volumes.get
        )
        segment = city.segment(*hot_edge)
        assert rush_state.speed_ms(city, hot_edge) < \
            segment.free_speed_ms

    def test_travel_time_on_path(self, city, rush_state):
        od = gravity_demand(city, zones=8, seed="t")
        simulator = TrafficSimulator(city, od)
        path = city.shortest_path((0, 0), (5, 5))
        time_s = simulator.congested_travel_time(rush_state, path)
        free = sum(
            city.segment(*edge).free_flow_time_s
            for edge in city.path_segments(path)
        )
        assert time_s >= free


class TestFCD:
    def test_probe_cadence(self, city, rush_state):
        generator = FCDGenerator(city)
        path = city.shortest_path((0, 0), (5, 5))
        points = generator.drive(rush_state, path, vehicle_id=1)
        timestamps = [point.timestamp_s for point in points]
        deltas = np.diff(timestamps)
        assert np.allclose(deltas, PROBE_PERIOD_S)

    def test_positions_near_path(self, city, rush_state):
        generator = FCDGenerator(city, gps_noise_m=0.0)
        path = city.shortest_path((0, 0), (0, 5))
        points = generator.drive(rush_state, path, vehicle_id=2)
        # straight east-west path: y stays near zero
        assert all(abs(point.y_m) < 1.0 for point in points)

    def test_hour_generation_volume(self, city, rush_state):
        generator = FCDGenerator(city)
        points = generator.generate_hour(rush_state, vehicles=30)
        assert len(points) > 100

    def test_aggregate_speeds(self, city, rush_state):
        generator = FCDGenerator(city)
        points = generator.generate_hour(rush_state, vehicles=30)
        aggregated = aggregate_speeds(points)
        for edge, (mean, _std, count) in aggregated.items():
            assert count >= 1
            assert 0 <= mean <= 30


class TestSpeedModel:
    def test_training_improves_mae(self, city, rush_state):
        generator = FCDGenerator(city)
        model = SpeedModel(city)
        true_speeds = {
            edge: rush_state.speed_ms(city, edge)
            for edge in list(rush_state.times_s)[:60]
        }
        untrained = model.mean_absolute_error(8, true_speeds)
        for offset in range(3):
            points = generator.generate_hour(
                rush_state, vehicles=50, seed_offset=offset * 1000
            )
            model.train(8, points)
        trained = model.mean_absolute_error(8, true_speeds)
        assert trained < untrained

    def test_live_observation_blended(self, city):
        model = SpeedModel(city, recency_weight=0.5)
        edge = ((0, 0), (0, 1))
        baseline, _ = model.predict(edge, 8)
        model.observe_live(edge, baseline / 2)
        blended, _ = model.predict(edge, 8)
        assert blended < baseline
        model.clear_live()
        cleared, _ = model.predict(edge, 8)
        assert cleared == pytest.approx(baseline)

    def test_untrained_prior_reasonable(self, city):
        model = SpeedModel(city)
        edge = ((0, 0), (0, 1))
        mean, std = model.predict(edge, 8)
        free = city.segment(*edge).free_speed_ms
        assert 0 < mean <= free
        assert std > 0


class TestPTDR:
    @pytest.fixture(scope="class")
    def router(self, city, rush_state):
        generator = FCDGenerator(city)
        model = SpeedModel(city)
        model.train(
            8, generator.generate_hour(rush_state, vehicles=60)
        )
        return PTDRRouter(city, model, percentile=0.9)

    def test_route_returns_sorted_choices(self, router):
        choices = router.route((0, 0), (5, 5), depart_hour=8.0,
                               samples=100)
        percentiles = [choice.percentile_s for choice in choices]
        assert percentiles == sorted(percentiles)

    def test_percentile_above_mean(self, router):
        choice = router.best_route((0, 0), (5, 5), depart_hour=8.0,
                                   samples=200)
        assert choice.percentile_s >= choice.mean_s

    def test_on_time_probability_monotone(self, router):
        choice = router.best_route((0, 0), (5, 5), depart_hour=8.0,
                                   samples=200)
        tight = choice.on_time_probability(choice.mean_s * 0.8)
        loose = choice.on_time_probability(choice.mean_s * 1.5)
        assert tight <= loose

    def test_more_samples_converge(self, router, city):
        path = city.shortest_path((0, 0), (5, 5))
        errors = router.percentile_convergence(
            path, 8.0, [20, 2000], reference_samples=8000
        )
        assert errors[2000] < errors[20]

    def test_sampling_deterministic(self, router, city):
        path = city.shortest_path((0, 0), (5, 5))
        a = router.sample_path_times(path, 8.0, 50, seed_key=1)
        b = router.sample_path_times(path, 8.0, 50, seed_key=1)
        assert np.array_equal(a, b)

    def test_flops_model(self):
        assert ptdr_flops(1000, 10) > ptdr_flops(100, 10)
