"""Tests for DSL type checking and IR code generation."""

import numpy as np
import pytest

from repro.core.dsl.kernel_dsl import compile_kernel, kernel_names
from repro.core.dsl.parser import parse
from repro.core.dsl.typecheck import check_program
from repro.core.ir.interp import run_function
from repro.errors import TypeCheckError


def check(src: str):
    return check_program(parse(src))


class TestTypeChecking:
    def test_undefined_name(self):
        with pytest.raises(TypeCheckError, match="undefined"):
            check("""
            kernel f(A: tensor<4xf32>) -> tensor<4xf32> {
              return B
            }
            """)

    def test_single_assignment_enforced(self):
        with pytest.raises(TypeCheckError, match="redefinition"):
            check("""
            kernel f(A: tensor<4xf32>) -> tensor<4xf32> {
              B = A
              B = A + A
              return B
            }
            """)

    def test_shape_mismatch_elementwise(self):
        with pytest.raises(TypeCheckError, match="equal shapes"):
            check("""
            kernel f(A: tensor<4xf32>, B: tensor<8xf32>)
                    -> tensor<4xf32> {
              C = A + B
              return C
            }
            """)

    def test_matmul_inner_dim_mismatch(self):
        with pytest.raises(TypeCheckError, match="inner dimensions"):
            check("""
            kernel f(A: tensor<4x4xf32>, B: tensor<8x4xf32>)
                    -> tensor<4x4xf32> {
              C = A @ B
              return C
            }
            """)

    def test_matmul_requires_rank2(self):
        with pytest.raises(TypeCheckError, match="rank-2"):
            check("""
            kernel f(A: tensor<4xf32>) -> tensor<4xf32> {
              B = A @ A
              return B
            }
            """)

    def test_return_type_mismatch(self):
        with pytest.raises(TypeCheckError, match="does not match"):
            check("""
            kernel f(A: tensor<4xf32>) -> tensor<8xf32> {
              return A
            }
            """)

    def test_return_arity_mismatch(self):
        with pytest.raises(TypeCheckError, match="declares 1"):
            check("""
            kernel f(A: tensor<4xf32>) -> tensor<4xf32> {
              return A, A
            }
            """)

    def test_duplicate_kernel_names(self):
        with pytest.raises(TypeCheckError, match="duplicate kernel"):
            check("""
            kernel f(A: tensor<4xf32>) -> tensor<4xf32> { return A }
            kernel f(A: tensor<4xf32>) -> tensor<4xf32> { return A }
            """)

    def test_duplicate_params(self):
        with pytest.raises(TypeCheckError, match="duplicate parameter"):
            check("""
            kernel f(A: tensor<4xf32>, A: f32) -> tensor<4xf32> {
              return A
            }
            """)

    def test_reduce_axis_out_of_range(self):
        with pytest.raises(TypeCheckError, match="out of range"):
            check("""
            kernel f(A: tensor<4xf32>) -> tensor<1xf32> {
              B = sum(A, axes=[3])
              return B
            }
            """)

    def test_reshape_element_count(self):
        with pytest.raises(TypeCheckError, match="mismatch"):
            check("""
            kernel f(A: tensor<4x4xf32>) -> tensor<15xf32> {
              B = reshape(A, shape=[15])
              return B
            }
            """)

    def test_transpose_bad_perm(self):
        with pytest.raises(TypeCheckError, match="permutation"):
            check("""
            kernel f(A: tensor<4x4xf32>) -> tensor<4x4xf32> {
              B = transpose(A, perm=[0, 0])
              return B
            }
            """)

    def test_unknown_builtin(self):
        with pytest.raises(TypeCheckError, match="unknown builtin"):
            check("""
            kernel f(A: tensor<4xf32>) -> tensor<4xf32> {
              B = fourier(A)
              return B
            }
            """)

    def test_statement_after_return(self):
        with pytest.raises(TypeCheckError, match="after return"):
            check("""
            kernel f(A: tensor<4xf32>) -> tensor<4xf32> {
              return A
              B = A
            }
            """)


class TestCodegenExecution:
    def test_scalar_arithmetic(self):
        module = compile_kernel("""
        kernel f(a: f32, b: f32) -> f32 {
          c = a * b + a / b
          return c
        }
        """)
        result = run_function(module, "f", 6.0, 3.0)[0]
        assert result == pytest.approx(20.0)

    def test_scalar_tensor_mixed(self, rng):
        module = compile_kernel("""
        kernel f(A: tensor<8xf32>, s: f32) -> tensor<8xf32> {
          B = maximum(A * s, A)
          return B
        }
        """)
        a = rng.normal(size=8).astype(np.float32)
        out = run_function(module, "f", a, 2.0)[0]
        assert np.allclose(out, np.maximum(a * 2, a))

    def test_unary_negation_tensor(self, rng):
        module = compile_kernel("""
        kernel f(A: tensor<8xf32>) -> tensor<8xf32> {
          B = -A
          return B
        }
        """)
        a = rng.normal(size=8).astype(np.float32)
        assert np.allclose(run_function(module, "f", a)[0], -a)

    def test_multi_result_kernel(self, rng):
        module = compile_kernel("""
        kernel f(A: tensor<8xf32>) -> tensor<8xf32>, tensor<1xf32> {
          B = relu(A)
          s = sum(B)
          return B, s
        }
        """)
        a = rng.normal(size=8).astype(np.float32)
        relu_out, total = run_function(module, "f", a)
        assert np.allclose(relu_out, np.maximum(a, 0))
        assert np.allclose(total, np.maximum(a, 0).sum(), atol=1e-5)

    def test_kernel_names_helper(self):
        names = kernel_names("""
        kernel a(X: tensor<2xf32>) -> tensor<2xf32> { return X }
        kernel b(X: tensor<2xf32>) -> tensor<2xf32> { return X }
        """)
        assert names == ["a", "b"]

    def test_sensitive_annotation_recorded(self, sensitive_module):
        function = sensitive_module.find_function("score")
        assert function.op.attr("everest.sensitive_args") == [0]
