"""Tests for the kernel DSL lexer and parser."""

import pytest

from repro.core.dsl import ast_nodes as ast
from repro.core.dsl.lexer import tokenize
from repro.core.dsl.parser import parse, parse_tensor_type
from repro.core.ir.types import ScalarType, TensorType
from repro.errors import ParseError


class TestLexer:
    def test_tensor_type_single_token(self):
        tokens = tokenize("tensor<4x4xf32>")
        assert tokens[0].kind == "TENSORTYPE"
        assert tokens[0].text == "tensor<4x4xf32>"

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("kernel foo return bar")
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == ["KEYWORD", "ID", "KEYWORD", "ID"]

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e3 2.5e-2")
        texts = [t.text for t in tokens[:-1]]
        assert texts == ["1", "2.5", "1e3", "2.5e-2"]

    def test_comments_skipped(self):
        tokens = tokenize("a # comment to end\nb")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_arrow_symbol(self):
        tokens = tokenize("->")
        assert tokens[0].text == "->"

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("a $ b")

    def test_unterminated_tensor_type(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("tensor<4x4xf32")


class TestTensorTypeParsing:
    def test_basic(self):
        t = parse_tensor_type("tensor<4x8xf32>")
        assert t == TensorType((4, 8), ScalarType("f32"))

    def test_one_dim(self):
        assert parse_tensor_type("tensor<16xf64>").shape == (16,)

    def test_malformed(self):
        for bad in ("tensor<f32>", "tensor<4x>", "tensor<4x4xf16>"):
            with pytest.raises(ParseError):
                parse_tensor_type(bad)


VALID = """
kernel f(A: tensor<4x4xf32>, s: f32 @sensitive) -> tensor<4x4xf32> {
  B = A * s
  C = relu(B)
  return C
}
"""


class TestParser:
    def test_valid_program(self):
        program = parse(VALID)
        assert len(program.kernels) == 1
        kernel = program.kernels[0]
        assert kernel.name == "f"
        assert len(kernel.params) == 2
        assert kernel.params[1].sensitive
        assert isinstance(kernel.body[-1], ast.Return)

    def test_precedence_mul_over_add(self):
        program = parse("""
        kernel f(A: tensor<4xf32>) -> tensor<4xf32> {
          B = A + A * A
          return B
        }
        """)
        assignment = program.kernels[0].body[0]
        assert assignment.value.op == "+"
        assert assignment.value.rhs.op == "*"

    def test_matmul_precedence_over_mul(self):
        program = parse("""
        kernel f(A: tensor<4x4xf32>) -> tensor<4x4xf32> {
          B = A @ A * A
          return B
        }
        """)
        # '@' binds tighter: (A @ A) * A
        assignment = program.kernels[0].body[0]
        assert assignment.value.op == "*"
        assert assignment.value.lhs.op == "@"

    def test_parentheses_override(self):
        program = parse("""
        kernel f(A: tensor<4xf32>) -> tensor<4xf32> {
          B = (A + A) * A
          return B
        }
        """)
        assignment = program.kernels[0].body[0]
        assert assignment.value.op == "*"

    def test_call_with_kwarg_list(self):
        program = parse("""
        kernel f(A: tensor<4x4xf32>) -> tensor<4xf32> {
          B = sum(A, axes=[0])
          return B
        }
        """)
        call = program.kernels[0].body[0].value
        assert call.callee == "sum"
        assert call.int_lists["axes"] == [0]

    def test_unary_minus(self):
        program = parse("""
        kernel f(A: tensor<4xf32>) -> tensor<4xf32> {
          B = -A
          return B
        }
        """)
        assert isinstance(program.kernels[0].body[0].value, ast.UnaryOp)

    def test_missing_return_rejected(self):
        with pytest.raises(ParseError, match="no return"):
            parse("""
            kernel f(A: tensor<4xf32>) -> tensor<4xf32> {
              B = A
            }
            """)

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse("   ")

    def test_error_reports_position(self):
        try:
            parse("kernel f( -> f32 { return 1.0 }")
        except ParseError as exc:
            assert exc.line >= 1
        else:
            pytest.fail("expected ParseError")

    def test_multiple_results(self):
        program = parse("""
        kernel f(A: tensor<4xf32>) -> tensor<4xf32>, f32 {
          s = 1.0
          return A, s
        }
        """)
        assert len(program.kernels[0].result_types) == 2
