"""Tests for annotations and the pipeline builder."""

import pytest

from repro.core.dsl.annotations import (
    AnnotationSet,
    DataAnnotation,
    Locality,
    Requirement,
    RequirementKind,
    SecurityAnnotation,
    Sensitivity,
)
from repro.core.dsl.workflow import Pipeline
from repro.core.ir import F32, TensorType
from repro.errors import SpecificationError

KERNEL = """
kernel double(X: tensor<8xf32>) -> tensor<8xf32> {
  Y = X * 2.0
  return Y
}
"""


class TestDataAnnotation:
    def test_streaming_flag(self):
        streaming = DataAnnotation("s", velocity_bytes_per_s=100.0)
        at_rest = DataAnnotation("r", volume_bytes=100)
        assert streaming.is_streaming
        assert not at_rest.is_streaming

    def test_invalid_pattern(self):
        with pytest.raises(SpecificationError):
            DataAnnotation("x", access_pattern="spiral")

    def test_invalid_layout(self):
        with pytest.raises(SpecificationError):
            DataAnnotation("x", record_layout="interleaved")

    def test_negative_volume(self):
        with pytest.raises(SpecificationError):
            DataAnnotation("x", volume_bytes=-1)


class TestRequirement:
    def test_latency_is_upper_bound(self):
        req = Requirement(RequirementKind.LATENCY, 1.0)
        assert req.satisfied_by(0.5)
        assert not req.satisfied_by(2.0)

    def test_throughput_is_lower_bound(self):
        req = Requirement(RequirementKind.THROUGHPUT, 100.0)
        assert req.satisfied_by(200.0)
        assert not req.satisfied_by(50.0)

    def test_positive_value_required(self):
        with pytest.raises(ValueError):
            Requirement(RequirementKind.LATENCY, 0.0)


class TestSecurityAnnotation:
    def test_public_needs_nothing(self):
        assert not SecurityAnnotation().needs_protection

    def test_confidential_needs_dift(self):
        annotation = SecurityAnnotation(
            sensitivity=Sensitivity.CONFIDENTIAL
        )
        assert annotation.needs_protection
        assert annotation.needs_dift

    def test_internal_no_dift(self):
        annotation = SecurityAnnotation(sensitivity=Sensitivity.INTERNAL)
        assert annotation.needs_protection
        assert not annotation.needs_dift

    def test_annotation_set_sensitive_names(self):
        bundle = AnnotationSet()
        bundle.add_security("a", SecurityAnnotation(
            sensitivity=Sensitivity.SECRET))
        bundle.add_security("b", SecurityAnnotation())
        assert bundle.sensitive_names() == ["a"]


class TestPipelineBuilder:
    def test_minimal_pipeline(self):
        pipeline = Pipeline("p")
        source = pipeline.source("in", TensorType((8,), F32))
        task = pipeline.task("double", KERNEL, inputs=[source])
        pipeline.sink("out", task.output(0))
        module = pipeline.to_ir()
        assert module.find_function("double") is not None
        ops = [op.name for op in module.walk()]
        assert "workflow.pipeline" in ops
        assert "workflow.source" in ops
        assert "workflow.sink" in ops

    def test_empty_pipeline_rejected(self):
        with pytest.raises(SpecificationError, match="no tasks"):
            Pipeline("p").to_ir()

    def test_duplicate_source_rejected(self):
        pipeline = Pipeline("p")
        pipeline.source("in", TensorType((8,), F32))
        with pytest.raises(SpecificationError, match="duplicate"):
            pipeline.source("in", TensorType((8,), F32))

    def test_unknown_kernel_rejected(self):
        pipeline = Pipeline("p")
        source = pipeline.source("in", TensorType((8,), F32))
        pipeline.task("t", KERNEL, inputs=[source], kernel="ghost")
        with pytest.raises(SpecificationError, match="unknown kernel"):
            pipeline.to_ir()

    def test_arity_mismatch_rejected(self):
        pipeline = Pipeline("p")
        source = pipeline.source("in", TensorType((8,), F32))
        pipeline.task("double", KERNEL, inputs=[source, source])
        with pytest.raises(SpecificationError, match="takes 1"):
            pipeline.to_ir()

    def test_type_mismatch_rejected(self):
        pipeline = Pipeline("p")
        source = pipeline.source("in", TensorType((16,), F32))
        pipeline.task("double", KERNEL, inputs=[source])
        with pytest.raises(SpecificationError, match="does not match"):
            pipeline.to_ir()

    def test_chained_tasks(self):
        pipeline = Pipeline("p")
        source = pipeline.source("in", TensorType((8,), F32))
        first = pipeline.task("double", KERNEL, inputs=[source])
        second = pipeline.task(
            "again", KERNEL, inputs=[first.output(0)], kernel="double"
        )
        pipeline.sink("out", second.output(0))
        module = pipeline.to_ir()
        tasks = [
            op for op in module.walk() if op.name == "workflow.task"
        ]
        assert len(tasks) == 2
        assert pipeline.dependency_edges() == [("double", "again")]

    def test_annotations_propagate_to_ir(self):
        pipeline = Pipeline("p")
        source = pipeline.source(
            "in", TensorType((8,), F32),
            annotation=DataAnnotation(
                "in", volume_bytes=1024, locality=Locality.EDGE
            ),
            security=SecurityAnnotation(sensitivity=Sensitivity.SECRET),
        )
        task = pipeline.task("double", KERNEL, inputs=[source])
        pipeline.sink("out", task.output(0))
        module = pipeline.to_ir()
        source_op = next(
            op for op in module.walk() if op.name == "workflow.source"
        )
        assert source_op.attr("locality") == "edge"
        assert source_op.attr("sensitivity") == "secret"

    def test_requirements_recorded(self):
        pipeline = Pipeline("p")
        pipeline.require(Requirement(RequirementKind.DEADLINE, 5.0))
        source = pipeline.source("in", TensorType((8,), F32))
        pipeline.task(
            "double", KERNEL, inputs=[source],
            requirements=[Requirement(RequirementKind.LATENCY, 0.1)],
        )
        module = pipeline.to_ir()
        pipeline_op = next(
            op for op in module.walk() if op.name == "workflow.pipeline"
        )
        assert pipeline_op.attr("requirements") == [("deadline", 5.0, "")]
        task_op = next(
            op for op in module.walk() if op.name == "workflow.task"
        )
        assert task_op.attr("requirements") == [("latency", 0.1, "")]

    def test_out_of_order_task_rejected(self):
        pipeline = Pipeline("p")
        source = pipeline.source("in", TensorType((8,), F32))
        later = pipeline.task("b", KERNEL, inputs=[source],
                              kernel="double")
        # 'a' consumes b's output but tasks list order is a-then-b? No:
        # build a task consuming an output of a task added *after* it.
        pipeline.tasks.reverse()
        pipeline.tasks.insert(0, pipeline.task(
            "a", KERNEL, inputs=[later.output(0)], kernel="double"
        ))
        pipeline.tasks = [t for i, t in enumerate(pipeline.tasks)
                          if t.name != "a" or i == 0]
        with pytest.raises(SpecificationError, match="dataflow order"):
            pipeline.to_ir()
