"""Pipeline-level contract propagation tests (WF010/WF011).

``Pipeline.to_ir`` raises on the first incompatible edge;
``lint_pipeline_contracts`` instead reports every mismatch through the
diagnostics layer — the adapter the compiler's static gate and the
lint CLI share.
"""

from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.dsl.workflow import Pipeline, lint_pipeline_contracts
from repro.core.ir.types import F32, F64, TensorType

RELU_8 = """
kernel act(X: tensor<8xf32>) -> tensor<8xf32> {
  Y = relu(X)
  return Y
}
"""

RELU_16 = """
kernel wide(X: tensor<16xf32>) -> tensor<16xf32> {
  Y = relu(X)
  return Y
}
"""

TWO_INPUT = """
kernel blend(X: tensor<8xf32>, Y: tensor<8xf32>) -> tensor<8xf32> {
  Z = X + Y
  return Z
}
"""


def _codes(diagnostics):
    return [item.code for item in diagnostics.sorted()]


def test_clean_pipeline_has_no_findings():
    pipeline = Pipeline("app")
    raw = pipeline.source("raw", TensorType((8,), F32))
    task = pipeline.task("t", RELU_8, inputs=[raw], kernel="act")
    pipeline.sink("out", task.output(0))
    assert not lint_pipeline_contracts(pipeline).items


def test_source_shape_mismatch_is_wf010():
    pipeline = Pipeline("app")
    raw = pipeline.source("raw", TensorType((16,), F32))
    pipeline.task("t", RELU_8, inputs=[raw], kernel="act")
    diagnostics = lint_pipeline_contracts(pipeline)
    assert _codes(diagnostics) == ["WF010"]
    (item,) = diagnostics.sorted()
    assert "16" in item.message and "8" in item.message


def test_source_dtype_mismatch_is_wf011():
    pipeline = Pipeline("app")
    raw = pipeline.source("raw", TensorType((8,), F64))
    pipeline.task("t", RELU_8, inputs=[raw], kernel="act")
    assert _codes(lint_pipeline_contracts(pipeline)) == ["WF011"]


def test_arity_mismatch_is_wf010():
    pipeline = Pipeline("app")
    raw = pipeline.source("raw", TensorType((8,), F32))
    pipeline.task("t", TWO_INPUT, inputs=[raw], kernel="blend")
    diagnostics = lint_pipeline_contracts(pipeline)
    (item,) = diagnostics.sorted()
    assert item.code == "WF010"
    assert "wires 1 inputs" in item.message


def test_task_to_task_edge_is_checked():
    # act produces tensor<8xf32>; wide consumes tensor<16xf32>
    pipeline = Pipeline("app")
    raw = pipeline.source("raw", TensorType((8,), F32))
    first = pipeline.task("a", RELU_8, inputs=[raw], kernel="act")
    pipeline.task(
        "b", RELU_16, inputs=[first.output(0)], kernel="wide")
    diagnostics = lint_pipeline_contracts(pipeline)
    assert _codes(diagnostics) == ["WF010"]
    (item,) = diagnostics.sorted()
    assert "task 'b'" in item.message


def test_every_mismatch_is_collected_not_just_the_first():
    pipeline = Pipeline("app")
    wrong = pipeline.source("raw", TensorType((16,), F64))
    pipeline.task("a", RELU_8, inputs=[wrong], kernel="act")
    pipeline.task("b", RELU_8, inputs=[wrong], kernel="act")
    diagnostics = lint_pipeline_contracts(pipeline)
    assert len(diagnostics.items) == 2


def test_uncompilable_kernel_source_is_skipped():
    pipeline = Pipeline("app")
    raw = pipeline.source("raw", TensorType((8,), F32))
    pipeline.task("t", "kernel oops(", inputs=[raw], kernel="oops")
    # broken DSL text is DSL001's concern; no crash, no findings
    assert not lint_pipeline_contracts(pipeline).items


def test_precompiled_module_resolves_signatures():
    pipeline = Pipeline("app")
    raw = pipeline.source("raw", TensorType((16,), F32))
    pipeline.task("t", RELU_8, inputs=[raw], kernel="act")
    module = compile_kernel(RELU_8)
    diagnostics = lint_pipeline_contracts(pipeline, module=module)
    assert _codes(diagnostics) == ["WF010"]
