"""Tests for the runtime executor and tier placement."""

import pytest

from repro.core.compiler import EverestCompiler
from repro.core.dse.space import DesignSpace
from repro.core.dsl.workflow import Pipeline
from repro.core.ir import F32, TensorType
from repro.errors import RuntimeSystemError
from repro.platform.topology import build_reference_ecosystem
from repro.runtime.autotuner.data_features import DataFeatures
from repro.runtime.autotuner.manager import SystemState
from repro.runtime.executor import RuntimeExecutor, default_reality
from repro.runtime.scheduler import TierPlacer
from repro.workflow.graph import DataObject, TaskGraph, WorkflowTask
from repro.workflow.plan import build_task_graph

KERNEL = """
kernel scale(A: tensor<64xf32>, B: tensor<64xf32>) -> tensor<64xf32> {
  C = exp(A) * B
  return C
}
"""


@pytest.fixture(scope="module")
def app():
    pipeline = Pipeline("demo")
    a = pipeline.source("a", TensorType((64,), F32))
    b = pipeline.source("b", TensorType((64,), F32))
    task = pipeline.task("scale", KERNEL, inputs=[a, b])
    pipeline.sink("out", task.output(0))
    return EverestCompiler(space=DesignSpace.small()).compile(pipeline)


class TestBuildTaskGraph:
    def test_graph_structure(self, app):
        graph = build_task_graph(app)
        assert set(graph.tasks) == {"scale"}
        assert {obj.name for obj in graph.external_inputs()} == \
            {"a", "b"}

    def test_durations_from_variants(self, app):
        graph = build_task_graph(app)
        best = app.exploration["scale"].best_latency()
        assert graph.tasks["scale"].duration_s == pytest.approx(
            best.cost.latency_s
        )

    def test_object_sizes_from_types(self, app):
        graph = build_task_graph(app)
        assert graph.objects["a"].size_bytes == 64 * 4


class TestRuntimeExecutor:
    def test_rounds_complete(self, app):
        executor = RuntimeExecutor(app)
        report = executor.run(5)
        assert len(report.rounds) == 5
        assert report.total_latency_s > 0
        assert report.total_energy_j > 0

    def test_zero_rounds_rejected(self, app):
        with pytest.raises(RuntimeSystemError):
            RuntimeExecutor(app).run(0)

    def test_adaptation_switches_under_contention(self, app):
        executor = RuntimeExecutor(app)

        def schedule(index):
            if index < 8:
                return SystemState(), DataFeatures()
            return SystemState(fpga_available=False), DataFeatures()

        report = executor.run(16, schedule)
        timeline = report.selections_timeline("scale")
        assert "fpga" in timeline[0]
        assert "cpu" in timeline[-1]
        assert report.switches >= 1

    def test_static_executor_never_switches(self, app):
        executor = RuntimeExecutor(app, adaptive=False)

        def schedule(index):
            return (
                SystemState(fpga_contention=float(index % 2)),
                DataFeatures(),
            )

        report = executor.run(10, schedule)
        timeline = report.selections_timeline("scale")
        assert len(set(timeline)) == 1

    def test_reconfiguration_counted_once_for_stable_choice(self, app):
        executor = RuntimeExecutor(app)
        report = executor.run(6)
        # stable selection: at most one reconfiguration per role used
        assert report.reconfigurations <= 2

    def test_adaptive_beats_static_under_drift(self, app):
        """Feedback loop: reality degrades the FPGA far more than the
        decision maker's prior model expects; the adaptive executor
        learns from measurements and switches, the static one cannot.
        """

        def harsh_reality(point, state, features):
            latency = point.predicted_latency_s
            energy = point.predicted_energy_j
            if point.variant.is_hardware and \
                    state.fpga_contention > 0.5:
                latency *= 200.0
            return latency, energy

        def schedule(index):
            if index < 5:
                return SystemState(), DataFeatures()
            return SystemState(fpga_contention=1.0), DataFeatures()

        adaptive = RuntimeExecutor(
            app, reality=harsh_reality
        ).run(40, schedule)
        static = RuntimeExecutor(
            app, adaptive=False, reality=harsh_reality
        ).run(40, schedule)
        assert adaptive.total_latency_s < static.total_latency_s
        timeline = adaptive.selections_timeline("scale")
        assert "fpga" in timeline[0]
        assert "cpu" in timeline[-1]

    def test_energy_meter_populated(self, app):
        report = RuntimeExecutor(app).run(3)
        assert report.energy.total_joules == pytest.approx(
            report.total_energy_j
        )


class TestTierPlacer:
    def make_graph(self, size_bytes=10**6, duration=0.01):
        graph = TaskGraph("g")
        graph.add_object(DataObject(
            "sensor", size_bytes=size_bytes, locality="edge-0"
        ))
        graph.add_task(WorkflowTask(
            "filter", inputs=["sensor"], outputs=["filtered"],
            duration_s=duration,
        ))
        graph.tasks["filter"].outputs and graph.set_object_size(
            "filtered", size_bytes // 10
        )
        graph.add_task(WorkflowTask(
            "analyze", inputs=["filtered"], outputs=["result"],
            duration_s=duration * 10,
        ))
        return graph

    def test_assignments_cover_all_tasks(self):
        eco = build_reference_ecosystem()
        placement = TierPlacer(eco).place(self.make_graph())
        assert set(placement.assignments) == {"filter", "analyze"}

    def test_big_data_filter_stays_at_edge(self):
        eco = build_reference_ecosystem(uplink_mbps=10.0)
        placement = TierPlacer(eco).place(
            self.make_graph(size_bytes=50 * 10**6, duration=0.05)
        )
        assert placement.assignments["filter"].startswith("edge")

    def test_compute_heavy_small_data_goes_to_cloud(self):
        eco = build_reference_ecosystem()
        graph = TaskGraph("g")
        graph.add_object(DataObject("tiny", size_bytes=100,
                                    locality="edge-0"))
        graph.add_task(WorkflowTask(
            "train", inputs=["tiny"], outputs=["model"],
            duration_s=30.0,
        ))
        placement = TierPlacer(eco).place(graph)
        node = eco.nodes[placement.assignments["train"]]
        assert node.arch in ("ppc64le", "x86")

    def test_edge_placement_beats_cloud_for_streaming(self):
        eco = build_reference_ecosystem(uplink_mbps=10.0)
        graph = self.make_graph(size_bytes=20 * 10**6, duration=0.02)
        placer = TierPlacer(eco)
        smart = placer.place(graph)
        all_cloud = placer.place_fixed(graph, "power9-0")
        assert smart.total_seconds < all_cloud.total_seconds
        assert smart.bytes_moved <= all_cloud.bytes_moved

    def test_unknown_fixed_node(self):
        eco = build_reference_ecosystem()
        with pytest.raises(RuntimeSystemError):
            TierPlacer(eco).place_fixed(self.make_graph(), "ghost")
