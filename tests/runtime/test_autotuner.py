"""Tests for the mARGOt-style autotuner."""

import pytest

from repro.core.variants import CostEstimate, Variant, VariantKnobs
from repro.errors import RuntimeSystemError
from repro.runtime.autotuner.data_features import DataFeatures
from repro.runtime.autotuner.goals import Goal, GoalKind
from repro.runtime.autotuner.knowledge import KnowledgeBase
from repro.runtime.autotuner.manager import (
    ApplicationManager,
    SystemState,
)
from repro.runtime.autotuner.monitor import MetricWindow, RuntimeMonitor


def make_variant(kernel, target, latency, energy, dift=False,
                 threads=1, unroll=1):
    return Variant(
        kernel=kernel,
        knobs=VariantKnobs(target=target, threads=threads,
                           unroll=unroll, dift=dift),
        cost=CostEstimate(latency_s=latency, energy_j=energy),
    )


@pytest.fixture
def knowledge():
    base = KnowledgeBase()
    base.add_variant(make_variant("k", "cpu", 10e-6, 50e-6))
    base.add_variant(make_variant("k", "fpga", 4e-6, 5e-6))
    base.add_variant(make_variant("k", "cpu", 8e-6, 80e-6, dift=True,
                                  threads=4))
    return base


class TestGoals:
    def test_objective_directions(self):
        assert Goal(GoalKind.PERFORMANCE).objective(1.0, 100.0) == 1.0
        assert Goal(GoalKind.ENERGY).objective(1.0, 100.0) == 100.0
        assert Goal(GoalKind.BALANCED).objective(2.0, 3.0) == 6.0

    def test_constraints(self):
        goal = Goal(max_latency_s=1.0, max_energy_j=2.0)
        assert goal.satisfied(0.5, 1.0)
        assert not goal.satisfied(2.0, 1.0)
        assert not goal.satisfied(0.5, 3.0)


class TestKnowledgeBase:
    def test_points_registered(self, knowledge):
        assert len(knowledge.points_for("k")) == 3

    def test_unknown_kernel(self, knowledge):
        with pytest.raises(RuntimeSystemError):
            knowledge.points_for("ghost")

    def test_observe_corrects_prediction(self, knowledge):
        point = knowledge.points_for("k")[0]
        # reality is consistently 2x the prediction
        for _ in range(30):
            point.observe(20e-6, 100e-6)
        assert point.expected_latency_s == pytest.approx(20e-6,
                                                         rel=0.05)
        assert point.invocations == 30

    def test_find(self, knowledge):
        point = knowledge.points_for("k")[1]
        found = knowledge.find("k", point.variant.variant_id)
        assert found is point
        assert knowledge.find("k", 10**9) is None


class TestMonitor:
    def test_window_eviction(self):
        window = MetricWindow(capacity=4)
        for value in range(10):
            window.push(float(value))
        assert window.count == 4
        assert window.mean() == pytest.approx(7.5)

    def test_percentile(self):
        window = MetricWindow(capacity=10)
        for value in range(10):
            window.push(float(value))
        assert window.percentile(0.0) == 0.0
        assert window.percentile(0.99) == 9.0

    def test_trend_detects_drift(self):
        window = MetricWindow(capacity=8)
        for value in (1, 1, 1, 1, 5, 5, 5, 5):
            window.push(float(value))
        assert window.trend() == pytest.approx(4.0)

    def test_runtime_monitor_interface(self):
        monitor = RuntimeMonitor(window=8)
        for value in range(5):
            monitor.record("lat", float(value))
        assert monitor.mean("lat") == pytest.approx(2.0)
        assert monitor.count("lat") == 5
        assert monitor.mean("ghost") == 0.0
        assert monitor.metrics() == ["lat"]


class TestDataFeatures:
    def test_nominal_is_identity_scale(self):
        features = DataFeatures()
        assert features.latency_factor(True) == pytest.approx(1.0)
        assert features.latency_factor(False) == pytest.approx(1.0)

    def test_sparsity_helps_software_more(self):
        sparse = DataFeatures(sparsity=0.8)
        assert sparse.latency_factor(False) < \
            sparse.latency_factor(True)

    def test_burstiness_hurts_software_more(self):
        bursty = DataFeatures(burstiness=1.0)
        assert bursty.latency_factor(False) > \
            bursty.latency_factor(True)

    def test_validation(self):
        with pytest.raises(ValueError):
            DataFeatures(sparsity=1.5)
        with pytest.raises(ValueError):
            DataFeatures(size_scale=0.0)


class TestApplicationManager:
    def test_performance_goal_picks_fastest(self, knowledge):
        manager = ApplicationManager(knowledge)
        point = manager.select("k")
        assert point.variant.is_hardware

    def test_energy_goal_picks_frugal(self, knowledge):
        manager = ApplicationManager(
            knowledge, goal=Goal(GoalKind.ENERGY)
        )
        assert manager.select("k").variant.is_hardware  # 5uJ

    def test_fpga_unavailable_falls_back(self, knowledge):
        manager = ApplicationManager(knowledge)
        point = manager.select(
            "k", SystemState(fpga_available=False)
        )
        assert not point.variant.is_hardware

    def test_contention_flips_choice(self, knowledge):
        manager = ApplicationManager(knowledge)
        relaxed = manager.select("k", SystemState())
        contended = manager.select(
            "k", SystemState(fpga_contention=1.0)
        )
        assert relaxed.variant.is_hardware
        assert not contended.variant.is_hardware
        assert manager.switches == 1

    def test_security_alert_forces_dift(self, knowledge):
        manager = ApplicationManager(knowledge)
        point = manager.select(
            "k", SystemState(security_alert=True)
        )
        assert point.variant.knobs.dift

    def test_feedback_changes_selection(self, knowledge):
        manager = ApplicationManager(knowledge)
        fpga_point = manager.select("k")
        # FPGA turns out 10x slower than predicted
        for _ in range(40):
            manager.report("k", fpga_point, 20e-6, 5e-6)
        new_point = manager.select("k")
        assert not new_point.variant.is_hardware

    def test_report_unknown_point_rejected(self, knowledge):
        manager = ApplicationManager(knowledge)
        foreign = KnowledgeBase()
        foreign_point = foreign.add_variant(
            make_variant("k", "cpu", 1.0, 1.0)
        )
        with pytest.raises(RuntimeSystemError):
            manager.report("k", foreign_point, 1.0, 1.0)

    def test_goal_switch_changes_selection(self):
        """§IV: the optimization goal (performance vs energy) is a
        first-class selection input and can change at run time."""
        base = KnowledgeBase()
        base.add_variant(make_variant("k", "cpu", 2e-6, 300e-6,
                                      threads=8))
        base.add_variant(make_variant("k", "fpga", 6e-6, 4e-6))
        manager = ApplicationManager(base, goal=Goal(
            GoalKind.PERFORMANCE))
        fast = manager.select("k")
        assert not fast.variant.is_hardware  # cpu is faster here
        manager.set_goal(Goal(GoalKind.ENERGY))
        frugal = manager.select("k")
        assert frugal.variant.is_hardware
        assert manager.switches == 1

    def test_constraint_prunes_infeasible(self):
        base = KnowledgeBase()
        base.add_variant(make_variant("k", "cpu", 2e-6, 300e-6))
        base.add_variant(make_variant("k", "fpga", 6e-6, 4e-6))
        # performance goal, but with an energy cap only fpga meets
        manager = ApplicationManager(base, goal=Goal(
            GoalKind.PERFORMANCE, max_energy_j=10e-6))
        point = manager.select("k")
        assert point.variant.is_hardware

    def test_approximate_variants_respect_accuracy_floor(self):
        """mARGOt approximate computing: degraded variants win on
        latency only while they satisfy the quality constraint."""

        def approx_variant(latency, accuracy, samples):
            return Variant(
                kernel="ptdr",
                knobs=VariantKnobs(target="cpu", threads=samples),
                cost=CostEstimate(
                    latency_s=latency, energy_j=latency * 10,
                    accuracy=accuracy,
                ),
            )

        base = KnowledgeBase()
        base.add_variant(approx_variant(1e-4, 0.80, 1))   # 50 samples
        base.add_variant(approx_variant(4e-4, 0.95, 2))   # 200
        base.add_variant(approx_variant(2e-3, 0.99, 4))   # 1000
        base.add_variant(approx_variant(1e-2, 1.00, 8))   # 5000

        loose = ApplicationManager(base, goal=Goal(
            GoalKind.PERFORMANCE, min_accuracy=0.75))
        assert loose.select("ptdr").accuracy == pytest.approx(0.80)

        medium = ApplicationManager(base, goal=Goal(
            GoalKind.PERFORMANCE, min_accuracy=0.95))
        assert medium.select("ptdr").accuracy == pytest.approx(0.95)

        strict = ApplicationManager(base, goal=Goal(
            GoalKind.PERFORMANCE, min_accuracy=0.999))
        assert strict.select("ptdr").accuracy == pytest.approx(1.0)

    def test_regret_zero_when_correct(self, knowledge):
        manager = ApplicationManager(knowledge)
        regret = manager.regret_against_oracle(
            "k", SystemState(), DataFeatures(),
            lambda point: point.predicted_latency_s,
        )
        assert regret == pytest.approx(0.0)
