"""Tests for the virtualization layer."""

import pytest

from repro.errors import SecurityError, VirtualizationError
from repro.platform.fpga import Bitstream
from repro.platform.interconnect import EthernetLink
from repro.platform.node import build_cloudfpga_node, build_power9_node
from repro.platform.resources import FPGAResources
from repro.runtime.virt import (
    APIRemoting,
    Hypervisor,
    RemotingMode,
    VFPGAManager,
    VM,
    VMState,
)
from repro.utils.units import GB


def small_bitstream(name="k"):
    return Bitstream(
        name=name, footprint=FPGAResources(luts=5000, ffs=5000),
        clock_hz=200e6,
    )


class TestVM:
    def test_lifecycle(self):
        vm = VM("v", vcpus=2, memory_bytes=GB)
        vm.start()
        assert vm.state is VMState.RUNNING
        vm.pause()
        vm.resume()
        vm.stop()
        assert vm.state is VMState.STOPPED

    def test_double_start_rejected(self):
        vm = VM("v", vcpus=1, memory_bytes=GB)
        vm.start()
        with pytest.raises(VirtualizationError):
            vm.start()

    def test_pause_requires_running(self):
        vm = VM("v", vcpus=1, memory_bytes=GB)
        with pytest.raises(VirtualizationError):
            vm.pause()

    def test_device_attach_detach(self):
        vm = VM("v", vcpus=1, memory_bytes=GB)
        vm.attach_device("role0")
        with pytest.raises(VirtualizationError):
            vm.attach_device("role0")
        vm.detach_device("role0")
        with pytest.raises(VirtualizationError):
            vm.detach_device("role0")


class TestHypervisor:
    def test_admission_control_vcpus(self):
        hyper = Hypervisor(build_power9_node(), vcpu_overcommit=1.0)
        hyper.create_vm("a", vcpus=16, memory_bytes=GB)
        with pytest.raises(VirtualizationError, match="vCPU"):
            hyper.create_vm("b", vcpus=1, memory_bytes=GB)

    def test_admission_control_memory(self):
        hyper = Hypervisor(build_power9_node())
        with pytest.raises(VirtualizationError, match="memory"):
            hyper.create_vm("a", vcpus=1, memory_bytes=600 * GB)

    def test_overcommit_allows_more_vcpus(self):
        hyper = Hypervisor(build_power9_node(), vcpu_overcommit=2.0)
        hyper.create_vm("a", vcpus=16, memory_bytes=GB)
        hyper.create_vm("b", vcpus=16, memory_bytes=GB)
        assert hyper.vcpus_committed == 32

    def test_duplicate_name_rejected(self):
        hyper = Hypervisor(build_power9_node())
        hyper.create_vm("a", vcpus=1, memory_bytes=GB)
        with pytest.raises(VirtualizationError):
            hyper.create_vm("a", vcpus=1, memory_bytes=GB)

    def test_cloudfpga_node_not_virtualizable(self):
        with pytest.raises(VirtualizationError):
            Hypervisor(build_cloudfpga_node())

    def test_stopped_vm_frees_capacity(self):
        hyper = Hypervisor(build_power9_node(), vcpu_overcommit=1.0)
        vm = hyper.create_vm("a", vcpus=16, memory_bytes=GB)
        vm.stop()
        hyper.create_vm("b", vcpus=8, memory_bytes=GB)

    def test_migration_moves_vm(self):
        source = Hypervisor(build_power9_node("s"))
        target = Hypervisor(build_power9_node("t"))
        source.create_vm("a", vcpus=2, memory_bytes=GB)
        downtime = source.migrate("a", target, EthernetLink())
        assert "a" in target.vms and "a" not in source.vms
        assert downtime > 0

    def test_migration_blocked_by_passthrough(self):
        source = Hypervisor(build_power9_node("s"))
        target = Hypervisor(build_power9_node("t"))
        vm = source.create_vm("a", vcpus=2, memory_bytes=GB)
        vm.attach_device("role0")
        with pytest.raises(VirtualizationError, match="passthrough"):
            source.migrate("a", target, EthernetLink())

    def test_boot_time_grows_with_memory(self):
        hyper = Hypervisor(build_power9_node())
        small = hyper.create_vm("s", vcpus=1, memory_bytes=GB)
        large = hyper.create_vm("l", vcpus=1, memory_bytes=64 * GB)
        assert hyper.boot_time_s(large) > hyper.boot_time_s(small)


class TestVFPGAManager:
    def setup_method(self):
        self.node = build_power9_node(role_slots=2)
        self.manager = VFPGAManager(self.node)
        self.vm_a = VM("a", vcpus=1, memory_bytes=GB)
        self.vm_b = VM("b", vcpus=1, memory_bytes=GB)

    def test_allocate_leases_slot(self):
        lease = self.manager.allocate(self.vm_a, small_bitstream())
        assert lease.vm_name == "a"
        assert self.manager.utilization() == pytest.approx(0.5)
        assert lease.role.name in self.vm_a.devices

    def test_isolation_between_vms(self):
        lease = self.manager.allocate(self.vm_a, small_bitstream())
        with pytest.raises(SecurityError):
            self.manager.access(self.vm_b, lease.role.name)
        assert self.manager.access(self.vm_a, lease.role.name) is lease

    def test_foreign_release_rejected(self):
        lease = self.manager.allocate(self.vm_a, small_bitstream())
        with pytest.raises(SecurityError):
            self.manager.release(self.vm_b, lease)

    def test_release_frees_slot(self):
        lease = self.manager.allocate(self.vm_a, small_bitstream())
        self.manager.release(self.vm_a, lease)
        assert self.manager.utilization() == 0.0
        assert not self.vm_a.devices

    def test_exhaustion(self):
        self.manager.allocate(self.vm_a, small_bitstream("k1"))
        self.manager.allocate(self.vm_b, small_bitstream("k2"))
        with pytest.raises(VirtualizationError, match="no free role"):
            self.manager.allocate(self.vm_a, small_bitstream("k3"))

    def test_reconfigure_swaps_bitstream(self):
        lease = self.manager.allocate(self.vm_a, small_bitstream("k1"))
        before = self.manager.total_reconfig_seconds
        self.manager.reconfigure(self.vm_a, lease,
                                 small_bitstream("k2"))
        assert lease.bitstream_name == "k2"
        assert self.manager.total_reconfig_seconds > before

    def test_node_without_fpga_rejected(self):
        from repro.platform.node import build_gpu_node

        with pytest.raises(VirtualizationError):
            VFPGAManager(build_gpu_node())


class TestAPIRemoting:
    def test_passthrough_cheapest(self):
        passthrough = APIRemoting(RemotingMode.PASSTHROUGH)
        virtio = APIRemoting(RemotingMode.VIRTIO)
        remote = APIRemoting(RemotingMode.REMOTE, link=EthernetLink())
        payload = 64 * 1024
        assert passthrough.invocation_overhead(payload) < \
            virtio.invocation_overhead(payload) < \
            remote.invocation_overhead(payload)

    def test_remote_requires_link(self):
        with pytest.raises(VirtualizationError):
            APIRemoting(RemotingMode.REMOTE)

    def test_call_accounting(self):
        channel = APIRemoting(RemotingMode.VIRTIO)
        channel.call(1000)
        channel.call(3000)
        assert channel.calls == 2
        assert channel.bytes_forwarded == 4000
        assert channel.mean_overhead() > 0

    def test_virtio_scales_with_payload(self):
        channel = APIRemoting(RemotingMode.VIRTIO)
        assert channel.invocation_overhead(10**7) > \
            channel.invocation_overhead(10**3)
