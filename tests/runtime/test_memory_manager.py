"""Tests for the flexible memory manager."""

import pytest

from repro.errors import CapacityError, RuntimeSystemError
from repro.platform.interconnect import OpenCAPILink
from repro.platform.memory import MemoryModel, MemoryTechnology
from repro.runtime.memory_manager import (
    BufferRequest,
    MemoryManager,
    requests_from_design,
)
from repro.utils.units import GB, KB, MB


def hierarchy():
    return [
        MemoryModel("bram", MemoryTechnology.BRAM,
                    capacity_bytes=4 * MB, channels=8),
        MemoryModel("card-ddr", MemoryTechnology.DDR4,
                    capacity_bytes=8 * GB, channels=2),
        MemoryModel("host-ddr", MemoryTechnology.HOST_DDR,
                    capacity_bytes=256 * GB, channels=8),
    ]


def manager():
    return MemoryManager(hierarchy(), host_link=OpenCAPILink())


class TestBufferRequest:
    def test_intensity(self):
        request = BufferRequest("b", size_bytes=1000,
                                accesses_per_invocation=10)
        assert request.intensity == 10_000

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            BufferRequest("b", size_bytes=0,
                          accesses_per_invocation=1)


class TestPlacement:
    def test_hot_small_buffer_gets_bram(self):
        plan = manager().place([
            BufferRequest("hot", size_bytes=64 * KB,
                          accesses_per_invocation=1000),
            BufferRequest("cold", size_bytes=64 * KB,
                          accesses_per_invocation=1),
        ])
        assert plan.memory_of("hot") == "bram"

    def test_oversized_buffer_falls_outward(self):
        plan = manager().place([
            BufferRequest("huge", size_bytes=16 * MB,
                          accesses_per_invocation=100),
        ])
        assert plan.memory_of("huge") in ("card-ddr", "host-ddr")

    def test_capacity_respected_across_buffers(self):
        # two 3 MiB buffers cannot both sit in the 4 MiB BRAM
        plan = manager().place([
            BufferRequest("a", size_bytes=3 * MB,
                          accesses_per_invocation=100),
            BufferRequest("b", size_bytes=3 * MB,
                          accesses_per_invocation=90),
        ])
        memories = {plan.memory_of("a"), plan.memory_of("b")}
        assert len(memories) == 2

    def test_nothing_fits_raises(self):
        tiny = MemoryManager([
            MemoryModel("small-bram", MemoryTechnology.BRAM,
                        capacity_bytes=1 * KB),
        ])
        with pytest.raises(CapacityError):
            tiny.place([BufferRequest("big", size_bytes=1 * MB,
                                      accesses_per_invocation=1)])

    def test_smart_beats_host_only(self):
        requests = [
            BufferRequest("weights", size_bytes=1 * MB,
                          accesses_per_invocation=500,
                          resident=True),
            BufferRequest("activations", size_bytes=256 * KB,
                          accesses_per_invocation=200),
        ]
        smart = manager().place(requests)
        host_only = manager().place_all_in(
            requests, MemoryTechnology.HOST_DDR
        )
        assert smart.total_seconds < host_only.total_seconds
        assert smart.energy_j < host_only.energy_j

    def test_staging_charged_for_streaming_buffers(self):
        requests = [
            BufferRequest("stream", size_bytes=4 * MB,
                          accesses_per_invocation=2),
        ]
        plan = manager().place(requests)
        if plan.memory_of("stream") != "host-ddr":
            assert plan.staging_seconds > 0

    def test_resident_buffers_amortize_staging(self):
        resident = manager().place([
            BufferRequest("w", size_bytes=1 * MB,
                          accesses_per_invocation=100,
                          resident=True),
        ])
        assert resident.staging_seconds == 0.0

    def test_unplaced_query_raises(self):
        plan = manager().place([])
        with pytest.raises(RuntimeSystemError):
            plan.memory_of("ghost")

    def test_empty_memories_rejected(self):
        with pytest.raises(RuntimeSystemError):
            MemoryManager([])

    def test_place_all_in_missing_tech(self):
        only_host = MemoryManager([
            MemoryModel("h", MemoryTechnology.HOST_DDR,
                        capacity_bytes=GB),
        ])
        with pytest.raises(RuntimeSystemError):
            only_host.place_all_in([], MemoryTechnology.HBM)


class TestFromDesign:
    def test_requests_derived_from_hls_design(self):
        from repro.core.dsl.kernel_dsl import compile_kernel
        from repro.core.hls import HLSOptions, synthesize
        from repro.core.ir.passes import (
            LowerTensorPass,
            PassManager,
        )

        src = """
        kernel f(A: tensor<1024xf32>) -> tensor<1024xf32> {
          B = exp(A)
          C = relu(B)
          return C
        }
        """
        module = compile_kernel(src)
        PassManager().add(LowerTensorPass()).run(module)
        design = synthesize(module, "f", HLSOptions())
        requests = requests_from_design(design)
        assert requests
        plan = manager().place(requests)
        assert len(plan.assignments) == len(requests)
