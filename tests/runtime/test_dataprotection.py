"""Tests for crypto, anomaly monitors, flow tracking and auto-protection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SecurityError
from repro.runtime.dataprotection.anomaly import HardwareMonitor
from repro.runtime.dataprotection.crypto import (
    SoftwareAEAD,
    derive_key,
)
from repro.runtime.dataprotection.ift import FlowTracker
from repro.runtime.dataprotection.policy import (
    AutoProtection,
    Reaction,
)
from repro.utils.rng import deterministic_rng
from repro.workflow.graph import DataObject, TaskGraph, WorkflowTask


class TestSoftwareAEAD:
    def make(self):
        return SoftwareAEAD(key=derive_key(b"master", "test"))

    def test_roundtrip(self):
        aead = self.make()
        plaintext = b"weather ensemble member 7"
        payload = aead.encrypt(plaintext, b"nonce-01")
        assert aead.decrypt(payload, b"nonce-01") == plaintext

    def test_ciphertext_differs_from_plaintext(self):
        aead = self.make()
        plaintext = b"x" * 64
        payload = aead.encrypt(plaintext, b"nonce-01")
        assert payload[:64] != plaintext

    def test_tamper_detected(self):
        aead = self.make()
        payload = bytearray(aead.encrypt(b"data", b"nonce-01"))
        payload[0] ^= 0xFF
        with pytest.raises(SecurityError, match="tag"):
            aead.decrypt(bytes(payload), b"nonce-01")

    def test_wrong_nonce_rejected(self):
        aead = self.make()
        payload = aead.encrypt(b"data", b"nonce-01")
        with pytest.raises(SecurityError):
            aead.decrypt(payload, b"nonce-02")

    def test_wrong_key_rejected(self):
        payload = self.make().encrypt(b"data", b"nonce-01")
        other = SoftwareAEAD(key=derive_key(b"other", "test"))
        with pytest.raises(SecurityError):
            other.decrypt(payload, b"nonce-01")

    def test_empty_key_rejected(self):
        with pytest.raises(SecurityError):
            SoftwareAEAD(key=b"")

    def test_unknown_cipher_rejected(self):
        with pytest.raises(SecurityError):
            SoftwareAEAD(key=b"k", cipher="rot13")

    def test_short_nonce_rejected(self):
        with pytest.raises(SecurityError):
            self.make().encrypt(b"data", b"abc")

    def test_software_cost_scales(self):
        aead = self.make()
        assert aead.software_seconds(10**6) > aead.software_seconds(10)

    def test_derive_key_domain_separation(self):
        assert derive_key(b"m", "a") != derive_key(b"m", "b")

    @given(st.binary(min_size=0, max_size=300))
    def test_property_roundtrip(self, plaintext):
        aead = SoftwareAEAD(key=b"property-key")
        payload = aead.encrypt(plaintext, b"fixed-nonce")
        assert aead.decrypt(payload, b"fixed-nonce") == plaintext


class TestHardwareMonitor:
    def trained(self) -> HardwareMonitor:
        monitor = HardwareMonitor(threshold_sigma=4.0, min_training=16)
        rng = deterministic_rng("anomaly-test")
        for _ in range(64):
            monitor.train("timing", float(rng.normal(100.0, 5.0)))
        return monitor

    def test_normal_values_pass(self):
        monitor = self.trained()
        assert monitor.observe("timing", 102.0) is None
        assert monitor.detection_count() == 0

    def test_outlier_detected(self):
        monitor = self.trained()
        anomaly = monitor.observe("timing", 200.0)
        assert anomaly is not None
        assert anomaly.z_score > 4.0
        assert monitor.detection_count("timing") == 1

    def test_no_detection_before_training(self):
        monitor = HardwareMonitor(min_training=16)
        assert monitor.observe("m", 1e9) is None  # still training

    def test_constant_baseline_flags_any_change(self):
        monitor = HardwareMonitor(min_training=4)
        for _ in range(8):
            monitor.train("size", 128.0)
        assert monitor.observe("size", 128.0) is None
        assert monitor.observe("size", 129.0) is not None

    def test_frozen_monitor_does_not_adapt(self):
        monitor = self.trained()
        monitor.freeze()
        baseline_before = monitor.baseline_of("timing")["count"]
        monitor.observe("timing", 101.0)
        assert monitor.baseline_of("timing")["count"] == baseline_before

    def test_unfrozen_monitor_adapts(self):
        monitor = self.trained()
        before = monitor.baseline_of("timing")["count"]
        monitor.observe("timing", 101.0)
        assert monitor.baseline_of("timing")["count"] == before + 1


class TestFlowTracker:
    def graph(self) -> TaskGraph:
        graph = TaskGraph("secure")
        graph.add_object(DataObject("secret", size_bytes=100))
        graph.add_object(DataObject("public", size_bytes=100))
        graph.add_task(WorkflowTask(
            "mix", inputs=["secret", "public"], outputs=["mixed"],
        ))
        graph.add_task(WorkflowTask(
            "scrub", inputs=["mixed"], outputs=["clean"],
            constraints={"declassifies": True},
        ))
        graph.add_task(WorkflowTask(
            "pub", inputs=["public"], outputs=["derived"],
        ))
        return graph

    def test_propagation(self):
        tracker = FlowTracker(self.graph())
        tracker.taint_source("secret", "pii")
        tracker.propagate()
        assert tracker.labels_of("mixed") == {"pii"}
        assert tracker.labels_of("derived") == set()
        assert tracker.labels_of("clean") == set()

    def test_egress_blocked_for_tainted(self):
        tracker = FlowTracker(self.graph())
        tracker.taint_source("secret", "pii")
        tracker.propagate()
        with pytest.raises(SecurityError):
            tracker.check_egress("mixed")
        assert tracker.violations

    def test_encrypted_egress_allowed(self):
        tracker = FlowTracker(self.graph())
        tracker.taint_source("secret", "pii")
        tracker.propagate()
        assert tracker.check_egress("mixed", encrypted=True)

    def test_declassified_egress_allowed(self):
        tracker = FlowTracker(self.graph())
        tracker.taint_source("secret", "pii")
        tracker.propagate()
        assert tracker.check_egress("clean")

    def test_untainted_egress_allowed(self):
        tracker = FlowTracker(self.graph())
        tracker.propagate()
        assert tracker.check_egress("derived")

    def test_audit_lists_tainted(self):
        tracker = FlowTracker(self.graph())
        tracker.taint_source("secret", "pii")
        tracker.propagate()
        names = [name for name, _labels in tracker.audit()]
        assert names == ["mixed", "secret"]

    def test_unknown_object(self):
        tracker = FlowTracker(self.graph())
        with pytest.raises(SecurityError):
            tracker.taint_source("ghost", "x")


class TestAutoProtection:
    def test_timing_anomaly_forces_dift(self):
        engine = AutoProtection()
        monitor = HardwareMonitor(min_training=4)
        for _ in range(8):
            monitor.train("timing", 10.0)
        anomaly = monitor.observe("timing", 100.0)
        incident = engine.report_anomaly(anomaly, node="n0")
        assert incident.reaction is Reaction.FORCE_DIFT_VARIANTS
        assert engine.dift_forced

    def test_flow_violation_quarantines(self):
        engine = AutoProtection()
        engine.report("flow-violation", "leak", node="edge-1")
        assert not engine.node_allowed("edge-1")
        engine.release_node("edge-1")
        assert engine.node_allowed("edge-1")

    def test_tag_mismatch_rekeys(self):
        engine = AutoProtection()
        engine.report("tag-mismatch", "bad tag")
        assert engine.key_generation == 1

    def test_stand_down_clears_transient(self):
        engine = AutoProtection()
        engine.report("timing-anomaly", "x")
        engine.report("size-anomaly", "y")
        assert engine.dift_forced and engine.throttled
        engine.stand_down()
        assert not engine.dift_forced and not engine.throttled

    def test_summary_counts(self):
        engine = AutoProtection()
        engine.report("timing-anomaly", "a")
        engine.report("timing-anomaly", "b")
        engine.report("tag-mismatch", "c")
        summary = engine.summary()
        assert summary["force_dift_variants"] == 2
        assert summary["rekey"] == 1

    def test_custom_rules(self):
        engine = AutoProtection(
            rules={"timing-anomaly": Reaction.LOG_ONLY}
        )
        engine.report("timing-anomaly", "x")
        assert not engine.dift_forced
