"""Integration tests: compile → place → select → distributed run."""

import pytest

from repro.core.compiler import EverestCompiler
from repro.core.dse.space import DesignSpace
from repro.core.dsl.workflow import Pipeline
from repro.core.ir import F32, TensorType
from repro.errors import RuntimeSystemError
from repro.platform.topology import build_reference_ecosystem
from repro.runtime.autotuner.goals import Goal, GoalKind
from repro.runtime.orchestrator import Orchestrator
from repro.workflow.recovery import FailureInjection

KERNELS = """
kernel filter(X: tensor<512xf32>, T: tensor<512xf32>)
        -> tensor<512xf32> {
  Y = maximum(X - T, fill(0.0, shape=[512]))
  return Y
}
kernel analyze(X: tensor<512xf32>, W: tensor<512xf32>)
        -> tensor<1xf32> {
  S = sum(sigmoid(X * W))
  return S
}
"""


@pytest.fixture(scope="module")
def app():
    pipeline = Pipeline("deploy-app")
    raw = pipeline.source("raw", TensorType((512,), F32))
    threshold = pipeline.source("threshold", TensorType((512,), F32))
    weights = pipeline.source("weights", TensorType((512,), F32))
    filt = pipeline.task("filter", KERNELS, inputs=[raw, threshold])
    analyze = pipeline.task(
        "analyze", KERNELS, inputs=[filt.output(0), weights]
    )
    pipeline.sink("score", analyze.output(0))
    return EverestCompiler(space=DesignSpace.small()).compile(pipeline)


@pytest.fixture(scope="module")
def ecosystem():
    return build_reference_ecosystem()


class TestOrchestrator:
    def test_deploy_completes(self, app, ecosystem):
        orchestrator = Orchestrator(ecosystem)
        report = orchestrator.deploy(app)
        assert {r.task for r in report.trace.records} == \
            {"filter", "analyze"}
        assert report.makespan > 0
        assert report.energy.total_joules > 0

    def test_placement_covers_all_tasks(self, app, ecosystem):
        report = Orchestrator(ecosystem).deploy(app)
        assert set(report.placement) == {"filter", "analyze"}
        for node_name in report.placement.values():
            assert node_name in ecosystem.nodes

    def test_selections_per_task(self, app, ecosystem):
        report = Orchestrator(ecosystem).deploy(app)
        assert set(report.selections) == {"filter", "analyze"}
        assert all(report.selections.values())

    def test_data_locality_respected(self, app, ecosystem):
        report = Orchestrator(ecosystem).deploy(
            app, data_locality={"raw": "edge-0"}
        )
        assert {r.task for r in report.trace.records} == \
            {"filter", "analyze"}

    def test_energy_goal_changes_selections(self, app, ecosystem):
        perf = Orchestrator(
            ecosystem, goal=Goal(GoalKind.PERFORMANCE)
        ).deploy(app)
        energy = Orchestrator(
            ecosystem, goal=Goal(GoalKind.ENERGY)
        ).deploy(app)
        # at least the goal is honored structurally; selections may
        # coincide if one variant dominates, but both runs complete
        assert perf.selections and energy.selections

    def test_survives_worker_failure(self, app, ecosystem):
        orchestrator = Orchestrator(ecosystem)
        clean = orchestrator.deploy(app)
        victim = clean.trace.records[0].worker
        report = orchestrator.deploy(
            app,
            failures=[FailureInjection(victim, at_time=1e-7)],
        )
        assert report.recovery is not None
        assert report.recovery.failures == 1
        assert {r.task for r in report.trace.records} >= \
            {"filter", "analyze"}

    def test_multiple_rounds(self, app, ecosystem):
        report = Orchestrator(ecosystem).deploy(app, rounds=3)
        assert report.makespan > 0

    def test_zero_rounds_rejected(self, app, ecosystem):
        with pytest.raises(RuntimeSystemError):
            Orchestrator(ecosystem).deploy(app, rounds=0)
