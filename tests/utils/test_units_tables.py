"""Tests for unit formatting and table rendering."""

import pytest

from repro.utils.tables import Table
from repro.utils.units import GB, KB, MB, format_bytes, format_seconds


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kib(self):
        assert format_bytes(2 * KB) == "2.00 KiB"

    def test_mib(self):
        assert format_bytes(int(1.5 * MB)) == "1.50 MiB"

    def test_gib(self):
        assert format_bytes(3 * GB) == "3.00 GiB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestFormatSeconds:
    def test_zero(self):
        assert format_seconds(0) == "0 s"

    def test_nanoseconds(self):
        assert "ns" in format_seconds(5e-9)

    def test_microseconds(self):
        assert "us" in format_seconds(5e-6)

    def test_milliseconds(self):
        assert "ms" in format_seconds(5e-3)

    def test_seconds(self):
        assert format_seconds(1.5) == "1.50 s"

    def test_minutes(self):
        assert "min" in format_seconds(600)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_seconds(-0.1)


class TestTable:
    def test_render_contains_rows(self):
        table = Table("demo", ["name", "value"])
        table.add_row("alpha", 1.5)
        table.add_row("beta", 2)
        text = table.render()
        assert "demo" in text
        assert "alpha" in text
        assert "1.500" in text

    def test_row_arity_checked(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("demo", [])

    def test_extend(self):
        table = Table("demo", ["a"])
        table.extend([[1], [2], [3]])
        assert len(table.rows) == 3

    def test_scientific_for_extremes(self):
        table = Table("demo", ["v"])
        table.add_row(1e-9)
        assert "e-09" in table.render()
