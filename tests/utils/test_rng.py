"""Tests for deterministic RNG helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import deterministic_rng, stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_different_keys_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_order_matters(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_is_63_bit_non_negative(self):
        value = stable_hash("anything")
        assert 0 <= value < 2**63

    @given(st.text(), st.integers())
    def test_property_stable(self, text, number):
        assert stable_hash(text, number) == stable_hash(text, number)


class TestDeterministicRng:
    def test_same_keys_same_stream(self):
        a = deterministic_rng("x", 1).normal(size=8)
        b = deterministic_rng("x", 1).normal(size=8)
        assert np.allclose(a, b)

    def test_different_keys_different_stream(self):
        a = deterministic_rng("x", 1).normal(size=8)
        b = deterministic_rng("x", 2).normal(size=8)
        assert not np.allclose(a, b)

    def test_generators_independent(self):
        first = deterministic_rng("k")
        first.normal(size=100)  # advance
        second = deterministic_rng("k")
        assert np.allclose(
            second.normal(size=4), deterministic_rng("k").normal(size=4)
        )
