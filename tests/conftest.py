"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analysis.cache import configure_analysis_cache
from repro.core.dse.cache import clear_caches, configure
from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.ir.module import Module


@pytest.fixture(autouse=True)
def _isolated_dse_caches(tmp_path, monkeypatch):
    """Fresh DSE caches per test, and no writes to the real on-disk
    cache: ``default_cache_dir()`` is redirected into ``tmp_path`` and
    the process-global caches are reset to memory-only before and
    after each test."""
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg-cache"))
    configure(cache_dir=None)
    clear_caches()
    configure_analysis_cache(cache_dir=None)
    yield
    configure(cache_dir=None)
    clear_caches()
    configure_analysis_cache(cache_dir=None)

GEMM_SRC = """
kernel gemm(A: tensor<16x16xf32>, B: tensor<16x16xf32>)
        -> tensor<16x16xf32> {
  C = A @ B
  return C
}
"""

MLP_SRC = """
kernel mlp(X: tensor<16x8xf32>, W0: tensor<8x4xf32>,
           B0: tensor<16x4xf32>, W1: tensor<4x2xf32>,
           B1: tensor<16x2xf32>) -> tensor<16x2xf32> {
  H = relu(X @ W0 + B0)
  Y = sigmoid(H @ W1 + B1)
  return Y
}
"""

STREAM_SRC = """
kernel stream(X: tensor<256xf32>, Y: tensor<256xf32>)
        -> tensor<256xf32> {
  Z = exp(X) * Y + X
  return Z
}
"""

SENSITIVE_SRC = """
kernel score(X: tensor<8x8xf32> @sensitive, W: tensor<8x8xf32>)
        -> tensor<8x8xf32> {
  Y = relu(X @ W)
  return Y
}
"""


@pytest.fixture
def gemm_module() -> Module:
    return compile_kernel(GEMM_SRC)


@pytest.fixture
def mlp_module() -> Module:
    return compile_kernel(MLP_SRC)


@pytest.fixture
def stream_module() -> Module:
    return compile_kernel(STREAM_SRC)


@pytest.fixture
def sensitive_module() -> Module:
    return compile_kernel(SENSITIVE_SRC)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
