"""Heap scheduler equivalence against the O(n²) reference sweep.

The heap-based list scheduler must produce *byte-identical* start
cycles to the classical formulation it replaced: repeatedly sweep the
``(mobility, program index)``-sorted unscheduled list, schedule every
ready node at the first cycle its resource fits (probing cycles one by
one), until the list drains. ``_reference_list_schedule`` below is that
pre-replacement implementation, kept verbatim as the executable spec;
the property suite pins the production scheduler to it on seeded
random DFGs, and an end-to-end test grounds the comparison in real
CDFGs lowered from kernel sources.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dse.cost_model import prepare_variant_module
from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.hls import scheduling
from repro.core.hls.cdfg import build_cdfg
from repro.core.hls.memory import plan_memories
from repro.core.hls.scheduling import ResourceBudget, latency_of
from repro.core.variants import VariantKnobs
from repro.errors import SchedulingError

# -- the pre-replacement reference implementation ----------------------


def _reference_list_schedule(body, budget, memory_ports, unroll):
    """Verbatim O(n²·cycles) sweep scheduler this PR replaced."""
    asap = scheduling._asap(body)
    alap = scheduling._alap(
        body, max(asap[id(n)] + latency_of(n) for n in body)
    )
    mobility = {id(n): alap[id(n)] - asap[id(n)] for n in body}

    start = {}
    unscheduled = sorted(
        body, key=lambda node: (mobility[id(node)], node.index)
    )
    usage = {}

    def fits(node, cycle):
        key = scheduling._resource_key(node)
        if key is None:
            return True
        if key.startswith("memport:"):
            limit = scheduling._ports_for(node, budget, memory_ports)
        else:
            limit = budget.limit(key)
        return usage.get(cycle, {}).get(key, 0) + unroll <= limit

    guard = 0
    while unscheduled:
        guard += 1
        if guard > 100_000:
            raise SchedulingError("list scheduling did not converge")
        progressed = False
        for node in list(unscheduled):
            ready_at = 0
            ready = True
            for predecessor in node.predecessors:
                if id(predecessor) not in start:
                    ready = False
                    break
                ready_at = max(
                    ready_at,
                    start[id(predecessor)] + latency_of(predecessor),
                )
            if not ready:
                continue
            cycle = ready_at
            while not fits(node, cycle):
                cycle += 1
                if cycle > 100_000:
                    raise SchedulingError(
                        f"cannot place {node.op.name}: resource "
                        f"limits too tight"
                    )
            start[id(node)] = cycle
            key = scheduling._resource_key(node)
            if key is not None:
                cycle_usage = usage.setdefault(cycle, {})
                cycle_usage[key] = cycle_usage.get(key, 0) + unroll
            unscheduled.remove(node)
            progressed = True
        if not progressed:
            raise SchedulingError("dependence cycle in loop body")
    return start


# -- seeded random DFGs ------------------------------------------------


class _FakeOp:
    def __init__(self, name):
        self.name = name
        self.operands = []


class _FakeNode:
    """Duck-typed DFGNode: op name, program index, edges, buffer."""

    def __init__(self, name, index, buffer=None):
        self.op = _FakeOp(name)
        self.index = index
        self.predecessors = []
        self.successors = []
        self._buffer = buffer

    def buffer(self):
        return self._buffer


OP_NAMES = [
    "kernel.addf", "kernel.mulf", "kernel.divf", "kernel.expf",
    "kernel.tanhf", "kernel.load", "kernel.store", "kernel.addi",
    "kernel.select", "secure.encrypt",
]


class _Buffer:
    """Stand-in for a buffer Value (identity plus a name)."""

    def __init__(self, index):
        self.name = f"buf{index}"


def random_dfg(seed):
    """A random DAG in topological program order, plus budgets."""
    rng = random.Random(seed)
    count = rng.randint(1, 50)
    buffers = [_Buffer(i) for i in range(rng.randint(1, 3))]
    body = []
    for index in range(count):
        name = rng.choice(OP_NAMES)
        buffer = (
            rng.choice(buffers)
            if name in ("kernel.load", "kernel.store") else None
        )
        node = _FakeNode(name, index, buffer)
        for _ in range(rng.randint(0, min(3, index))):
            predecessor = body[rng.randrange(index)]
            if predecessor not in node.predecessors:
                node.predecessors.append(predecessor)
                predecessor.successors.append(node)
        body.append(node)
    budget = ResourceBudget(
        fadd=rng.randint(1, 4), fmul=rng.randint(1, 4),
        fdiv=rng.randint(1, 2), special=rng.randint(1, 4),
        crypto=1, memport=rng.randint(1, 2),
    )
    memory_ports = {
        id(buffer): rng.randint(1, 3)
        for buffer in buffers if rng.random() < 0.5
    }
    unroll = rng.choice([1, 1, 1, 2])
    return body, budget, memory_ports, unroll


class TestHeapMatchesReference:
    @settings(max_examples=150, deadline=None)
    @given(st.integers(min_value=0, max_value=10**9))
    def test_start_cycles_byte_identical(self, seed):
        body, budget, memory_ports, unroll = random_dfg(seed)
        try:
            expected = _reference_list_schedule(
                body, budget, memory_ports, unroll
            )
        except SchedulingError:
            # The reference exhausts its probe guard when a node's
            # unrolled demand exceeds the per-cycle limit; the new
            # scheduler must reject the same inputs (just sooner,
            # naming the resource).
            with pytest.raises(SchedulingError):
                scheduling._list_schedule(
                    body, budget, memory_ports, unroll
                )
            return
        actual = scheduling._list_schedule(
            body, budget, memory_ports, unroll
        )
        assert actual == expected

    def test_contended_serial_chain(self):
        """Dense single-resource pressure: every load fights for one
        port; placements must pack one per cycle in priority order."""
        buffer = _Buffer(0)
        body = [
            _FakeNode("kernel.load", i, buffer) for i in range(40)
        ]
        budget = ResourceBudget(memport=1)
        expected = _reference_list_schedule(body, budget, None, 1)
        actual = scheduling._list_schedule(body, budget, None, 1)
        assert actual == expected
        assert sorted(actual.values()) == list(range(40))

    def test_unroll_two_matches_reference(self):
        """Unrolled issue width doubles per-cycle demand; packing
        must still match the reference exactly."""
        body = [_FakeNode("kernel.mulf", i) for i in range(20)]
        budget = ResourceBudget(fmul=4)
        expected = _reference_list_schedule(body, budget, None, 2)
        actual = scheduling._list_schedule(body, budget, None, 2)
        assert actual == expected


class TestOversubscriptionError:
    def test_names_functional_unit(self):
        node = _FakeNode("secure.encrypt", 0)
        with pytest.raises(SchedulingError,
                           match=r"'crypto' oversubscribed"):
            scheduling._list_schedule(
                [node], ResourceBudget(crypto=1), None, 2
            )

    def test_names_memory_buffer(self):
        buffer = _Buffer(0)
        node = _FakeNode("kernel.load", 0, buffer)
        with pytest.raises(SchedulingError,
                           match=r"memport\(%buf0\).*oversubscribed"):
            scheduling._list_schedule(
                [node], ResourceBudget(memport=1), None, 2
            )

    def test_reports_demand_vs_limit(self):
        node = _FakeNode("kernel.mulf", 0)
        with pytest.raises(SchedulingError, match="4 .* vs .*2"):
            scheduling._list_schedule(
                [node], ResourceBudget(fmul=2), None, 4
            )


class TestRealKernelSchedules:
    """Ground the fake-node property in CDFGs from real kernels."""

    KERNELS = {
        "gemm": """
kernel gemm(A: tensor<16x16xf32>, B: tensor<16x16xf32>)
        -> tensor<16x16xf32> {
  C = A @ B
  return C
}
""",
        "stream": """
kernel stream(X: tensor<64xf32>, Y: tensor<64xf32>)
        -> tensor<64xf32> {
  Z = exp(X) * Y + X
  return Z
}
""",
    }

    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    @pytest.mark.parametrize("unroll", [1, 2, 4])
    def test_innermost_bodies_match_reference(self, kernel, unroll):
        module = compile_kernel(self.KERNELS[kernel])
        knobs = VariantKnobs(target="fpga", unroll=unroll)
        prepared = prepare_variant_module(module, kernel, knobs)
        function = prepared.find_function(kernel)
        cdfg = build_cdfg(function)
        plan = plan_memories(cdfg, unroll=unroll)
        ports = plan.ports_map()
        budget = ResourceBudget(fadd=4 * unroll, fmul=4 * unroll)
        checked = 0
        for loop in cdfg.innermost_loops():
            if not loop.body:
                continue
            effective = (
                budget.scaled(loop.unroll)
                if loop.unroll > 1 else budget
            )
            expected = _reference_list_schedule(
                loop.body, effective, ports, 1
            )
            actual = scheduling._list_schedule(
                loop.body, effective, ports, 1
            )
            assert actual == expected
            checked += 1
        assert checked > 0
