"""Tests for CDFG extraction and HLS scheduling."""

import pytest

from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.hls.cdfg import build_cdfg, loop_carried_chain
from repro.core.hls.scheduling import (
    OP_LATENCY,
    ResourceBudget,
    latency_of,
    nest_cycles,
    schedule_loop,
)
from repro.core.ir.passes import (
    LoopDirectivesPass,
    LowerTensorPass,
    PassManager,
)
from repro.errors import HLSError


def lowered(src: str, unroll: int = 1):
    module = compile_kernel(src)
    manager = PassManager()
    manager.add(LowerTensorPass())
    manager.add(LoopDirectivesPass(unroll_factor=unroll))
    manager.run(module)
    return module


VADD = """
kernel vadd(A: tensor<128xf32>, B: tensor<128xf32>) -> tensor<128xf32> {
  C = A + B
  return C
}
"""

GEMM = """
kernel gemm(A: tensor<8x8xf32>, B: tensor<8x8xf32>) -> tensor<8x8xf32> {
  C = A @ B
  return C
}
"""


class TestCDFG:
    def test_loop_tree_shape(self):
        module = lowered(GEMM)
        cdfg = build_cdfg(module.find_function("gemm"))
        loops = cdfg.all_loops()
        # zero-init (2) + matmul (3); the result writes its
        # out-parameter in place, so no copy nest
        assert len(loops) == 5
        inner = cdfg.innermost_loops()
        assert len(inner) == 2

    def test_tensor_form_rejected(self, gemm_module):
        with pytest.raises(HLSError, match="tensor ops"):
            build_cdfg(gemm_module.find_function("gemm"))

    def test_declaration_rejected(self):
        from repro.core.ir import FunctionType, Module

        module = Module("m")
        function = module.add_function(
            "decl", FunctionType((), ()), declaration=True
        )
        with pytest.raises(HLSError, match="declaration"):
            build_cdfg(function)

    def test_ssa_dependences_wired(self):
        module = lowered(VADD)
        cdfg = build_cdfg(module.find_function("vadd"))
        body = cdfg.innermost_loops()[0].body
        add_node = next(
            n for n in body if n.op.name == "kernel.addf"
        )
        assert len(add_node.predecessors) == 2  # the two loads

    def test_loop_carried_chain_detected_in_gemm(self):
        module = lowered(GEMM)
        cdfg = build_cdfg(module.find_function("gemm"))
        # the matmul inner loop accumulates into C[i,j]
        chains = [
            loop_carried_chain(loop)
            for loop in cdfg.innermost_loops()
        ]
        assert any(chains), "expected an accumulation recurrence"

    def test_no_chain_in_streaming_kernel(self):
        module = lowered(VADD)
        cdfg = build_cdfg(module.find_function("vadd"))
        for loop in cdfg.innermost_loops():
            assert not loop_carried_chain(loop)


class TestScheduling:
    def test_latencies_defined_for_core_ops(self):
        for name in ("kernel.load", "kernel.addf", "kernel.mulf"):
            assert OP_LATENCY[name] >= 1

    def test_schedule_respects_dependences(self):
        module = lowered(VADD)
        cdfg = build_cdfg(module.find_function("vadd"))
        loop = cdfg.innermost_loops()[0]
        schedule = schedule_loop(loop)
        for node in loop.body:
            for predecessor in node.predecessors:
                assert (
                    schedule.start_cycle[id(node)]
                    >= schedule.start_cycle[id(predecessor)]
                    + latency_of(predecessor)
                )

    def test_pipelined_ii_one_for_streaming(self):
        module = lowered(VADD)
        cdfg = build_cdfg(module.find_function("vadd"))
        compute_loop = cdfg.innermost_loops()[0]
        schedule = schedule_loop(
            compute_loop,
            memory_ports={
                id(n.buffer()): 4
                for n in compute_loop.body if n.buffer() is not None
            },
        )
        assert schedule.pipelined
        assert schedule.ii == 1

    def test_recurrence_raises_ii(self):
        module = lowered(GEMM)
        cdfg = build_cdfg(module.find_function("gemm"))
        accumulating = [
            loop for loop in cdfg.innermost_loops()
            if loop_carried_chain(loop)
        ][0]
        schedule = schedule_loop(accumulating)
        assert schedule.ii >= 6  # load + add + store chain

    def test_port_limits_raise_ii(self):
        module = lowered(VADD)
        cdfg = build_cdfg(module.find_function("vadd"))
        loop = cdfg.innermost_loops()[0]
        generous = schedule_loop(
            loop, memory_ports={
                id(n.buffer()): 8
                for n in loop.body if n.buffer() is not None
            },
        )
        starved = schedule_loop(
            loop, memory_ports={
                id(n.buffer()): 1
                for n in loop.body if n.buffer() is not None
            },
        )
        assert starved.ii >= generous.ii

    def test_unroll_reduces_total_cycles(self):
        plain = lowered(VADD, unroll=1)
        unrolled = lowered(VADD, unroll=8)

        def total(module):
            cdfg = build_cdfg(module.find_function("vadd"))
            schedules = {
                id(loop): schedule_loop(loop)
                for loop in cdfg.innermost_loops()
            }
            return nest_cycles(cdfg.root, schedules)

        assert total(unrolled) < total(plain)

    def test_cycles_for_trips_pipelined_formula(self):
        module = lowered(VADD)
        cdfg = build_cdfg(module.find_function("vadd"))
        loop = cdfg.innermost_loops()[0]
        schedule = schedule_loop(loop)
        cycles = schedule.cycles_for_trips(100)
        assert cycles == schedule.depth + 99 * schedule.ii

    def test_zero_trips(self):
        module = lowered(VADD)
        cdfg = build_cdfg(module.find_function("vadd"))
        schedule = schedule_loop(cdfg.innermost_loops()[0])
        assert schedule.cycles_for_trips(0) == 0

    def test_budget_scaling(self):
        budget = ResourceBudget(fadd=2)
        assert budget.scaled(4).fadd == 8
        assert budget.limit("unknown-resource") > 10**8
