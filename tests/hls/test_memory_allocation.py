"""Tests for memory planning, allocation and crypto/taint models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.hls.allocation import allocate
from repro.core.hls.cdfg import build_cdfg
from repro.core.hls.crypto import (
    CRYPTO_LIBRARY,
    core_for,
    lightest_core_fitting,
)
from repro.core.hls.memory import (
    cyclic_conflict_free,
    plan_memories,
)
from repro.core.hls.scheduling import schedule_loop
from repro.core.hls.taint import apply_taint_tracking
from repro.core.ir.passes import (
    LoopDirectivesPass,
    LowerTensorPass,
    PassManager,
)
from repro.errors import HLSError, SecurityError
from repro.platform.resources import FPGAResources

STREAM = """
kernel stream(A: tensor<1024xf32>, B: tensor<1024xf32>)
        -> tensor<1024xf32> {
  C = A * B + A
  return C
}
"""


def make_cdfg(src=STREAM, name="stream", unroll=1):
    module = compile_kernel(src)
    manager = PassManager()
    manager.add(LowerTensorPass())
    manager.add(LoopDirectivesPass(unroll_factor=unroll))
    manager.run(module)
    return build_cdfg(module.find_function(name))


class TestCyclicConflictFree:
    def test_unit_stride_pow2_banks(self):
        # unrolled copies access addresses base+k; distinct mod banks
        assert cyclic_conflict_free([0], stride=1, unroll=4, banks=4)

    def test_conflicting_offsets(self):
        assert not cyclic_conflict_free([0, 4], stride=1, unroll=1,
                                        banks=4)

    def test_distinct_offsets_ok(self):
        assert cyclic_conflict_free([0, 1, 2], stride=4, unroll=1,
                                    banks=4)

    @given(st.integers(1, 8))
    def test_property_single_access_always_free(self, banks):
        assert cyclic_conflict_free([0], stride=1, unroll=1, banks=banks)


class TestMemoryPlanning:
    def test_small_local_buffers_complete_partition(self):
        src = """
        kernel tiny(A: tensor<16xf32>) -> tensor<16xf32> {
          B = A + A
          C = relu(B)
          return C
        }
        """
        cdfg = make_cdfg(src, "tiny")
        plan = plan_memories(cdfg)
        schemes = {
            plan.buffers[key].value.producer.name
            if plan.buffers[key].value.producer else "arg":
            plan.buffers[key].scheme
            for key in plan.buffers
        }
        # the local intermediate becomes registers; interface buffers
        # stay addressable memories
        assert schemes.get("kernel.alloc") == "complete"
        assert schemes.get("arg") in ("cyclic", "block")
        assert plan.total_register_bits > 0

    def test_large_buffers_use_bram(self):
        cdfg = make_cdfg()
        plan = plan_memories(cdfg)
        assert plan.total_bram_blocks > 0

    def test_unroll_increases_banks(self):
        narrow = plan_memories(make_cdfg(unroll=1), unroll=1)
        wide = plan_memories(make_cdfg(unroll=8), unroll=8)
        assert sum(p.factor for p in wide.buffers.values()) > \
            sum(p.factor for p in narrow.buffers.values())

    def test_none_strategy_single_bank(self):
        plan = plan_memories(make_cdfg(unroll=8), unroll=8,
                             strategy="none")
        assert all(p.factor == 1 for p in plan.buffers.values())

    def test_unknown_strategy_rejected(self):
        with pytest.raises(HLSError):
            plan_memories(make_cdfg(), strategy="hexagonal")

    def test_ports_map_feeds_scheduler(self):
        cdfg = make_cdfg(unroll=4)
        plan = plan_memories(cdfg, unroll=4)
        ports = plan.ports_map()
        loop = cdfg.innermost_loops()[0]
        schedule = schedule_loop(loop, memory_ports=ports)
        assert schedule.ii >= 1

    def test_explicit_directive_honored(self):
        from repro.core.ir.ops import Operation

        cdfg = make_cdfg()
        function = cdfg.function
        buffer = function.arguments[0]
        directive = Operation(
            "hw.partition",
            operands=[buffer],
            attributes={"scheme": "block", "factor": 16},
        )
        first = function.entry_block.operations[0]
        function.entry_block.insert_before(first, directive)
        cdfg2 = build_cdfg(function)
        plan = plan_memories(cdfg2)
        assert plan.plan_for(buffer).scheme == "block"
        assert plan.plan_for(buffer).factor == 16


class TestAllocation:
    def test_resources_positive(self):
        cdfg = make_cdfg()
        plan = plan_memories(cdfg)
        schedules = {
            id(loop): schedule_loop(loop, memory_ports=plan.ports_map())
            for loop in cdfg.innermost_loops()
        }
        allocation = allocate(cdfg, schedules, plan)
        assert allocation.resources.luts > 0
        assert allocation.resources.ffs > 0

    def test_unroll_grows_units(self):
        def units(unroll):
            cdfg = make_cdfg(unroll=unroll)
            plan = plan_memories(cdfg, unroll=unroll)
            schedules = {
                id(loop): schedule_loop(
                    loop, memory_ports=plan.ports_map())
                for loop in cdfg.innermost_loops()
            }
            allocation = allocate(cdfg, schedules, plan)
            return sum(allocation.unit_counts.values())

        assert units(8) > units(1)

    def test_binding_assigns_every_constrained_op(self):
        cdfg = make_cdfg()
        plan = plan_memories(cdfg)
        schedules = {
            id(loop): schedule_loop(loop, memory_ports=plan.ports_map())
            for loop in cdfg.innermost_loops()
        }
        allocation = allocate(cdfg, schedules, plan)
        bound = sum(
            len(binding.assignments)
            for binding in allocation.bindings
        )
        assert bound > 0
        for binding in allocation.bindings:
            instances = max(1, binding.instances)
            assert all(
                0 <= unit < instances
                for unit in binding.assignments.values()
            )


class TestCrypto:
    def test_known_ciphers_present(self):
        for cipher in ("aes128-gcm", "aes256-gcm", "ascon128"):
            assert cipher in CRYPTO_LIBRARY

    def test_unknown_cipher_raises(self):
        with pytest.raises(SecurityError):
            core_for("rot13")

    def test_cycles_scale_with_bytes(self):
        core = core_for("aes128-gcm")
        assert core.cycles_for(4096) > core.cycles_for(64)
        assert core.cycles_for(0) == 0

    def test_throughput(self):
        core = core_for("aes128-gcm")
        assert core.throughput_at(250e6) == pytest.approx(16 * 250e6)

    def test_lightest_fitting(self):
        tiny = FPGAResources(luts=3000, ffs=3000, bram_kb=1, dsps=1)
        assert lightest_core_fitting(tiny).name == "ascon128"

    def test_no_core_fits(self):
        with pytest.raises(SecurityError):
            lightest_core_fitting(FPGAResources(luts=10, ffs=10))


class TestTaint:
    def test_overhead_single_digit_percent(self):
        cdfg = make_cdfg()
        plan = plan_memories(cdfg)
        report = apply_taint_tracking(
            {"fadd": 4, "fmul": 4}, inflight_values=20,
            memory_plan=plan, labels=["arg0"],
        )
        base = FPGAResources(luts=20_000, ffs=25_000)
        assert 0 < report.area_overhead_fraction(base) < 0.10

    def test_more_labels_more_area(self):
        cdfg = make_cdfg()
        plan = plan_memories(cdfg)
        one = apply_taint_tracking({"fadd": 2}, 10, plan, ["a"])
        three = apply_taint_tracking({"fadd": 2}, 10, plan,
                                     ["a", "b", "c"])
        assert three.extra.luts > one.extra.luts

    def test_latency_cost_is_one_cycle(self):
        cdfg = make_cdfg()
        plan = plan_memories(cdfg)
        report = apply_taint_tracking({}, 1, plan, ["a"])
        assert report.extra_latency_cycles == 1
