"""Tests for accelerator dataflow chaining."""

import pytest

from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.hls import HLSOptions, synthesize
from repro.core.hls.dataflow import (
    ChainedDesign,
    chain_designs,
    staged_total_time_s,
)
from repro.core.ir.passes import (
    ElementwiseFusionPass,
    LoopDirectivesPass,
    LowerTensorPass,
    PassManager,
)
from repro.errors import HLSError
from repro.platform.interconnect import OpenCAPILink

STAGE_A = """
kernel stage_a(X: tensor<2048xf32>) -> tensor<2048xf32> {
  Y = exp(X) * 0.5
  return Y
}
"""
STAGE_B = """
kernel stage_b(X: tensor<2048xf32>) -> tensor<2048xf32> {
  Y = tanh(X) + 1.0
  return Y
}
"""
STAGE_C = """
kernel stage_c(X: tensor<2048xf32>) -> tensor<2048xf32> {
  Y = relu(X - 0.2)
  return Y
}
"""


def design_for(src, name, clock_hz=250e6):
    module = compile_kernel(src)
    manager = PassManager()
    manager.add(ElementwiseFusionPass())
    manager.add(LowerTensorPass())
    manager.add(LoopDirectivesPass(unroll_factor=4))
    manager.run(module)
    return synthesize(module, name, HLSOptions(clock_hz=clock_hz))


@pytest.fixture(scope="module")
def stages():
    return [
        design_for(STAGE_A, "stage_a"),
        design_for(STAGE_B, "stage_b"),
        design_for(STAGE_C, "stage_c"),
    ]


class TestChaining:
    def test_empty_chain_rejected(self):
        with pytest.raises(HLSError):
            chain_designs([])

    def test_clock_mismatch_rejected(self):
        a = design_for(STAGE_A, "stage_a", clock_hz=250e6)
        b = design_for(STAGE_B, "stage_b", clock_hz=200e6)
        with pytest.raises(HLSError, match="clock"):
            chain_designs([a, b])

    def test_resources_sum_plus_fifos(self, stages):
        chain = chain_designs(stages)
        stage_luts = sum(s.resources.luts for s in stages)
        assert chain.resources.luts == stage_luts
        assert chain.fifo_bram_kb > 0
        assert chain.resources.bram_kb > sum(
            s.resources.bram_kb for s in stages
        )

    def test_interval_is_slowest_stage(self, stages):
        chain = chain_designs(stages)
        slowest = max(s.latency_cycles for s in stages)
        assert chain.batch_interval_s == pytest.approx(
            slowest / 250e6
        )

    def test_fill_latency_is_sum(self, stages):
        chain = chain_designs(stages)
        total = sum(s.latency_cycles for s in stages)
        assert chain.fill_latency_s == pytest.approx(total / 250e6)

    def test_total_time_formula(self, stages):
        chain = chain_designs(stages)
        assert chain.total_time_s(1) == pytest.approx(
            chain.fill_latency_s
        )
        assert chain.total_time_s(10) == pytest.approx(
            chain.fill_latency_s + 9 * chain.batch_interval_s
        )

    def test_external_traffic_smaller_than_sum(self, stages):
        chain = chain_designs(stages)
        external = chain.external_bytes_per_batch()
        total_if_staged = sum(s.data_bytes() for s in stages)
        assert external < total_if_staged
        # exactly: first input + last output = 2 buffers of 8 KiB
        assert external == 2 * 2048 * 4

    def test_chain_beats_staged_execution(self, stages):
        chain = chain_designs(stages)
        link = OpenCAPILink()
        batches = 64
        chained = chain.total_time_s(batches)
        staged = staged_total_time_s(stages, link, batches)
        assert chained < 0.6 * staged

    def test_single_stage_chain(self, stages):
        chain = chain_designs(stages[:1])
        assert chain.total_time_s(5) == pytest.approx(
            5 * stages[0].latency_seconds, rel=1e-6
        )
        assert chain.external_bytes_per_batch() == \
            stages[0].data_bytes()

    def test_power_sums(self, stages):
        chain = chain_designs(stages)
        assert chain.dynamic_watts == pytest.approx(
            sum(s.dynamic_watts for s in stages)
        )
