"""Tests for the HLS driver and accelerator designs."""

import pytest

from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.hls import HLSOptions, synthesize
from repro.core.hls.fsmd import emit_verilog
from repro.core.ir.passes import (
    CanonicalizePass,
    ElementwiseFusionPass,
    LoopDirectivesPass,
    LowerTensorPass,
    PassManager,
    SecurityInstrumentationPass,
)
from repro.errors import HLSError

STREAM = """
kernel stream(A: tensor<512xf32>, B: tensor<512xf32>)
        -> tensor<512xf32> {
  C = exp(A) * B
  return C
}
"""

SECRET = """
kernel secret(A: tensor<64xf32> @sensitive) -> tensor<64xf32> {
  B = relu(A)
  return B
}
"""


def prepared(src, unroll=1, dift=False, crypto=False):
    module = compile_kernel(src)
    manager = PassManager()
    manager.add(ElementwiseFusionPass())
    if dift:
        manager.add(SecurityInstrumentationPass(attach_crypto=crypto))
    manager.add(LowerTensorPass())
    manager.add(LoopDirectivesPass(unroll_factor=unroll))
    manager.add(CanonicalizePass())
    manager.run(module)
    return module


class TestSynthesize:
    def test_basic_design(self):
        design = synthesize(prepared(STREAM), "stream")
        assert design.latency_cycles > 0
        assert design.resources.luts > 0
        assert design.latency_seconds == pytest.approx(
            design.latency_cycles / design.options.clock_hz
        )

    def test_unknown_kernel(self):
        with pytest.raises(HLSError):
            synthesize(prepared(STREAM), "ghost")

    def test_unroll_trades_area_for_latency(self):
        slow = synthesize(prepared(STREAM, unroll=1), "stream")
        fast = synthesize(prepared(STREAM, unroll=8), "stream")
        assert fast.latency_cycles < slow.latency_cycles
        assert fast.resources.luts > slow.resources.luts

    def test_higher_clock_lower_latency_seconds(self):
        module = prepared(STREAM)
        slow = synthesize(module, "stream", HLSOptions(clock_hz=100e6))
        fast = synthesize(module, "stream", HLSOptions(clock_hz=300e6))
        assert fast.latency_seconds < slow.latency_seconds
        assert fast.latency_cycles == slow.latency_cycles

    def test_dift_adds_area_from_attr(self):
        # use a realistically sized kernel: on tiny designs the fixed
        # checker/shadow cost dominates and the ratio is meaningless
        big_secret = """
        kernel secret(A: tensor<2048xf32> @sensitive,
                      G: tensor<2048xf32>) -> tensor<2048xf32> {
          B = sigmoid(exp(A) * G + A)
          return B
        }
        """
        plain = synthesize(prepared(big_secret, unroll=4), "secret",
                           HLSOptions(enable_dift=False))
        tracked = synthesize(
            prepared(big_secret, unroll=4, dift=True), "secret"
        )
        assert tracked.taint_report is not None
        assert tracked.resources.luts > plain.resources.luts
        overhead = tracked.taint_report.area_overhead_fraction(
            tracked.resources - tracked.taint_report.extra
        )
        assert overhead < 0.15  # TaintHLS-like small overhead

    def test_crypto_core_added_for_cipher(self):
        design = synthesize(
            prepared(SECRET, dift=True, crypto=True), "secret",
        )
        # attach_crypto tags the function with the cipher
        assert design.crypto_core is not None
        assert design.crypto_core.name == "aes128-gcm"

    def test_dift_alone_has_no_crypto_core(self):
        design = synthesize(prepared(SECRET, dift=True), "secret")
        assert design.crypto_core is None
        assert design.taint_report is not None

    def test_bitstream_roundtrip(self):
        design = synthesize(prepared(STREAM), "stream")
        bitstream = design.bitstream()
        assert bitstream.footprint == design.resources
        assert bitstream.clock_hz == design.options.clock_hz

    def test_energy_positive(self):
        design = synthesize(prepared(STREAM), "stream")
        assert design.energy_per_invocation > 0
        assert design.dynamic_watts > 0

    def test_data_bytes(self):
        design = synthesize(prepared(STREAM), "stream")
        # two 512-float inputs + one 512-float out-param
        assert design.data_bytes() == 3 * 512 * 4

    def test_report_mentions_kernel(self):
        design = synthesize(prepared(STREAM), "stream")
        report = design.report()
        assert "stream" in report
        assert "latency" in report


class TestRTL:
    def test_emit_verilog_structure(self):
        design = synthesize(prepared(STREAM), "stream")
        rtl = design.rtl()
        assert "module stream" in rtl
        assert "endmodule" in rtl
        assert "state" in rtl
        assert "assert done" in rtl

    def test_memory_interfaces_listed(self):
        design = synthesize(prepared(STREAM), "stream")
        rtl = design.rtl()
        assert "memory interface" in rtl

    def test_fsmd_state_count_positive(self):
        design = synthesize(prepared(STREAM), "stream")
        assert design.fsmd.num_states >= 3  # entry + work + done
        assert emit_verilog(design.fsmd) == design.rtl()
