"""CLI `chaos` subcommand: summary, JSON output, replay verification."""

import json

from repro.cli import main


class TestChaosCommand:
    def test_summary_table(self, capsys):
        assert main([
            "chaos", "--graph-seed", "1", "--fault-seed", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "chaos run graph-seed=1 fault-seed=2" in out
        assert "tasks completed" in out
        assert "12/12" in out
        assert "trace digest" in out

    def test_verify_replay_is_byte_identical(self, capsys):
        assert main([
            "chaos", "--graph-seed", "3", "--fault-seed", "7",
            "--verify-replay",
        ]) == 0
        out = capsys.readouterr().out
        assert "replay verified: identical trace" in out

    def test_json_output_parses_and_replays(self, capsys):
        argv = [
            "chaos", "--graph-seed", "5", "--fault-seed", "11",
            "--json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["graph_name"] == "chaos-graph-5"
        assert len(payload["records"]) >= 12
        assert "faults" in payload and "recoveries" in payload

    def test_cli_matches_library_trace(self, capsys):
        """The CLI is a veneer: the same seeds through the library API
        must serialize to the exact bytes the CLI prints."""
        from repro.chaos import (
            ChaosConfig,
            generate_schedule,
            random_task_graph,
        )
        from repro.workflow.recovery import ResilientServer
        from repro.workflow.scheduler import make_policy
        from repro.workflow.worker import Worker

        assert main([
            "chaos", "--graph-seed", "2", "--fault-seed", "9", "--json",
        ]) == 0
        cli_json = capsys.readouterr().out.strip()

        graph = random_task_graph(2, num_tasks=12)
        workers = [
            Worker(f"w{index}", node_name=f"n{index}", cpus=2)
            for index in range(3)
        ]
        schedule = generate_schedule(
            graph, [w.name for w in workers], 9, ChaosConfig(),
        )
        server = ResilientServer(
            workers, policy=make_policy("b-level"),
        )
        trace, _stats = server.run(graph, chaos=schedule)
        assert trace.to_json() == cli_json

    def test_fault_knobs_reach_schedule(self, capsys):
        assert main([
            "chaos", "--graph-seed", "0", "--fault-seed", "0",
            "--crashes", "2", "--task-faults", "0",
            "--link-faults", "0", "--reconfig-faults", "0",
            "--stragglers", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "fault: worker-crash" in out
        assert "task-fault" not in out
