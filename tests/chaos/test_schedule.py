"""Tests for the seeded chaos schedule and graph generators."""

import pytest

from repro.chaos import (
    ChaosConfig,
    LinkFault,
    ReconfigFault,
    StragglerFault,
    TaskFault,
    WorkerCrash,
    generate_schedule,
    random_task_graph,
)
from repro.chaos.faults import ANY_LINK
from repro.errors import ChaosError

WORKERS = ["w0", "w1", "w2"]


class TestGraphGenerator:
    def test_same_seed_same_graph(self):
        a = random_task_graph(42)
        b = random_task_graph(42)
        assert set(a.tasks) == set(b.tasks)
        for name in a.tasks:
            assert a.tasks[name].inputs == b.tasks[name].inputs
            assert a.tasks[name].duration_s == b.tasks[name].duration_s
        assert {
            (o.name, o.size_bytes) for o in a.objects.values()
        } == {(o.name, o.size_bytes) for o in b.objects.values()}

    def test_different_seeds_differ(self):
        a = random_task_graph(1, num_tasks=20)
        b = random_task_graph(2, num_tasks=20)
        assert any(
            a.tasks[name].inputs != b.tasks[name].inputs
            or a.tasks[name].duration_s != b.tasks[name].duration_s
            for name in a.tasks
        )

    def test_generated_graph_is_valid_dag(self):
        for seed in range(10):
            graph = random_task_graph(seed)
            graph.validate()
            assert len(graph.topological_order()) == len(graph)

    def test_size_and_cpu_bounds_respected(self):
        graph = random_task_graph(7, num_tasks=30, max_cpus=2)
        assert all(t.cpus <= 2 for t in graph.tasks.values())
        assert all(
            obj.size_bytes < 2_000_000 for obj in graph.objects.values()
        )


class TestScheduleGenerator:
    def test_same_seed_same_schedule(self):
        graph = random_task_graph(0)
        a = generate_schedule(graph, WORKERS, 5)
        b = generate_schedule(graph, WORKERS, 5)
        assert a.faults == b.faults

    def test_different_seeds_differ(self):
        graph = random_task_graph(0)
        a = generate_schedule(graph, WORKERS, 5)
        b = generate_schedule(graph, WORKERS, 6)
        assert a.faults != b.faults

    def test_requested_counts_per_class(self):
        graph = random_task_graph(0)
        config = ChaosConfig(crashes=3, link_faults=2,
                             reconfig_faults=2, stragglers=1,
                             task_faults=2)
        schedule = generate_schedule(graph, WORKERS, 1, config)
        by_type = {}
        for fault in schedule.faults:
            by_type[type(fault)] = by_type.get(type(fault), 0) + 1
        assert by_type[WorkerCrash] == 3
        assert by_type[ReconfigFault] == 2
        assert by_type[StragglerFault] == 1
        assert by_type[LinkFault] == 2
        assert by_type[TaskFault] == 2

    def test_survivable_by_construction(self):
        """Crashes restart, links heal, stragglers recover."""
        graph = random_task_graph(3)
        config = ChaosConfig(crashes=5, link_faults=5,
                             reconfig_faults=5, stragglers=5)
        schedule = generate_schedule(graph, WORKERS, 9, config)
        for fault in schedule.faults:
            if isinstance(fault, WorkerCrash):
                assert fault.restart_after is not None
            if isinstance(fault, LinkFault):
                assert fault.duration_s <= config.max_link_duration_s
            if isinstance(fault, ReconfigFault):
                assert fault.repair_s <= config.max_repair_s

    def test_wildcard_link_targets_without_topology(self):
        graph = random_task_graph(0)
        schedule = generate_schedule(
            graph, WORKERS, 2, ChaosConfig(link_faults=3)
        )
        for fault in schedule.faults:
            if isinstance(fault, LinkFault):
                assert fault.node_a == ANY_LINK

    def test_explicit_link_pairs_used(self):
        graph = random_task_graph(0)
        schedule = generate_schedule(
            graph, WORKERS, 2, ChaosConfig(link_faults=4),
            link_pairs=[("edge-0", "dc-switch")],
        )
        link_faults = [
            f for f in schedule.faults if isinstance(f, LinkFault)
        ]
        assert link_faults
        assert all(f.node_a == "edge-0" for f in link_faults)

    def test_zero_workers_rejected(self):
        with pytest.raises(ChaosError):
            generate_schedule(random_task_graph(0), [], 1)

    def test_describe_lists_counts(self):
        graph = random_task_graph(0)
        schedule = generate_schedule(graph, WORKERS, 4)
        text = schedule.describe()
        assert "seed=4" in text
        assert "worker-crash" in text


class TestFaultValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ChaosError):
            WorkerCrash("w0", at_time=-1.0)

    def test_bad_bandwidth_factor_rejected(self):
        with pytest.raises(ChaosError):
            LinkFault("a", "b", at_time=0.0, duration_s=1.0,
                      bandwidth_factor=0.0)
        with pytest.raises(ChaosError):
            LinkFault("a", "b", at_time=0.0, duration_s=1.0,
                      bandwidth_factor=1.5)

    def test_partition_ignores_bandwidth_factor(self):
        fault = LinkFault("a", "b", at_time=0.0, duration_s=1.0,
                          partition=True)
        assert fault.kind == "link-partition"

    def test_straggler_needs_real_slowdown(self):
        with pytest.raises(ChaosError):
            StragglerFault("w0", at_time=0.0, duration_s=1.0,
                           slowdown=1.0)

    def test_task_fault_needs_positive_failures(self):
        with pytest.raises(ChaosError):
            TaskFault("t0", failures=0)
