"""Shared helpers for the chaos suite."""

from __future__ import annotations

import pytest

from repro.workflow.worker import Worker


def make_pool(count: int = 3, cpus: int = 2):
    """A fresh worker pool (never share Workers between runs: they
    carry mutable stores and slot accounting)."""
    return [
        Worker(f"w{index}", node_name=f"n{index}", cpus=cpus)
        for index in range(count)
    ]


@pytest.fixture
def pool():
    return make_pool()
