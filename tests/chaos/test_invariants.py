"""Property suite: chaos invariants over seeded (graph, fault) pairs.

For every combination of graph seed and fault seed the resilient
server must uphold:

* **liveness** — every task eventually completes;
* **lineage** — each completed task started only after all of its
  producers had a completed record (so no task consumed an object
  whose lineage was broken);
* **monotonic time** — records, faults and recoveries are logged in
  non-decreasing simulated time and every interval is well-formed;
* **accounting** — every fault in the schedule shows up in the trace;
* **replayability** — the same seed pair yields a byte-identical
  serialized trace.
"""

import pytest

from repro.chaos import (
    ChaosConfig,
    TaskFault,
    generate_schedule,
    random_task_graph,
)
from repro.errors import ChaosError
from repro.workflow.recovery import ResilientServer, RetryPolicy

from tests.chaos.conftest import make_pool

GRAPH_SEEDS = range(5)
FAULT_SEEDS = range(4)
CONFIG = ChaosConfig(crashes=2, link_faults=2, reconfig_faults=1,
                     stragglers=1, task_faults=2)


def run_seed_pair(graph_seed: int, fault_seed: int):
    graph = random_task_graph(graph_seed, num_tasks=10)
    pool = make_pool(3)
    schedule = generate_schedule(
        graph, [w.name for w in pool], fault_seed, CONFIG
    )
    trace, stats = ResilientServer(pool).run(graph, chaos=schedule)
    return graph, schedule, trace, stats


@pytest.mark.parametrize("graph_seed", GRAPH_SEEDS)
@pytest.mark.parametrize("fault_seed", FAULT_SEEDS)
class TestChaosInvariants:
    def test_every_task_completes(self, graph_seed, fault_seed):
        graph, _schedule, trace, _stats = run_seed_pair(
            graph_seed, fault_seed
        )
        assert {r.task for r in trace.records} == set(graph.tasks)

    def test_lineage_respected(self, graph_seed, fault_seed):
        """No completed task started before all its producers had
        completed — i.e. no object was consumed with broken lineage."""
        graph, _schedule, trace, _stats = run_seed_pair(
            graph_seed, fault_seed
        )
        ends = {}
        for record in trace.records:
            ends.setdefault(record.task, []).append(record.end)
        for record in trace.records:
            for dependency in graph.dependencies(record.task):
                assert any(
                    end <= record.start + 1e-9
                    for end in ends[dependency]
                ), (
                    f"{record.task} started at {record.start} before "
                    f"producer {dependency} ever finished"
                )

    def test_time_is_monotonic(self, graph_seed, fault_seed):
        _graph, _schedule, trace, _stats = run_seed_pair(
            graph_seed, fault_seed
        )
        for record in trace.records:
            assert 0.0 <= record.ready_at <= record.start <= record.end
        for series in (trace.records, trace.faults, trace.recoveries):
            times = [
                getattr(item, "end", None) or item.time
                for item in series
            ] if series is trace.records else [
                item.time for item in series
            ]
            assert times == sorted(times)

    def test_trace_accounts_for_every_fault(self, graph_seed,
                                            fault_seed):
        _graph, schedule, trace, _stats = run_seed_pair(
            graph_seed, fault_seed
        )
        observed = trace.faults_by_kind()
        scheduled = schedule.counts_by_kind()
        for kind, count in scheduled.items():
            if kind == "task-fault":
                continue
            assert observed.get(kind, 0) == count
        expected_task_events = sum(
            f.failures for f in schedule.task_faults()
        )
        assert observed.get("task-fault", 0) == expected_task_events

    def test_replay_is_byte_identical(self, graph_seed, fault_seed):
        _g1, _s1, first, _ = run_seed_pair(graph_seed, fault_seed)
        _g2, _s2, second, _ = run_seed_pair(graph_seed, fault_seed)
        assert first.to_json() == second.to_json()
        assert first.digest() == second.digest()


class TestAcrossPolicies:
    @pytest.mark.parametrize("policy", ["fifo", "b-level", "locality"])
    def test_invariants_hold_for_every_policy(self, policy):
        from repro.workflow.scheduler import make_policy

        graph = random_task_graph(11, num_tasks=10)
        pool = make_pool(3)
        schedule = generate_schedule(
            graph, [w.name for w in pool], 13, CONFIG
        )
        trace, _stats = ResilientServer(
            pool, policy=make_policy(policy)
        ).run(graph, chaos=schedule)
        assert {r.task for r in trace.records} == set(graph.tasks)


class TestRetryExhaustion:
    def test_budget_exhaustion_raises_chaos_error(self):
        from repro.chaos.schedule import ChaosSchedule

        graph = random_task_graph(0, num_tasks=3)
        pool = make_pool(2)
        hopeless = ChaosSchedule(seed=0, faults=[
            TaskFault(task="t0", failures=50),
        ])
        server = ResilientServer(
            pool, retry=RetryPolicy(max_attempts=4)
        )
        with pytest.raises(ChaosError, match="retry budget"):
            server.run(graph, chaos=hopeless)
