"""Each fault class exercised in isolation against ResilientServer.

The invariants suite throws everything at once; these tests pin down
the *mechanism* of each fault class — what breaks, what the recovery
path does, and what lands in the trace.
"""

import pytest

from repro.chaos import ChaosConfig  # noqa: F401  (re-export sanity)
from repro.chaos.faults import (
    ANY_LINK,
    LinkFault,
    ReconfigFault,
    StragglerFault,
    TaskFault,
    WorkerCrash,
)
from repro.chaos.schedule import ChaosSchedule
from repro.errors import WorkflowError
from repro.workflow.graph import DataObject, TaskGraph, WorkflowTask
from repro.workflow.recovery import ResilientServer, RetryPolicy
from repro.workflow.worker import Worker

from tests.chaos.conftest import make_pool


def chain_graph(length=4, duration=1.0) -> TaskGraph:
    graph = TaskGraph("chain")
    graph.add_object(DataObject("in", size_bytes=1000, locality="w0"))
    previous = "in"
    for index in range(length):
        graph.add_task(WorkflowTask(
            f"t{index}", inputs=[previous], outputs=[f"o{index}"],
            duration_s=duration,
        ))
        previous = f"o{index}"
    return graph


def fan_graph(width=6, duration=1.0) -> TaskGraph:
    graph = TaskGraph("fan")
    graph.add_object(DataObject("in", size_bytes=1000, locality="w0"))
    for index in range(width):
        graph.add_task(WorkflowTask(
            f"leaf{index}", inputs=["in"], outputs=[f"l{index}"],
            duration_s=duration,
        ))
    return graph


def big_input_graph(size_bytes=10**9) -> TaskGraph:
    """Two independent consumers of one large input: whichever task
    is placed off ``w0`` must stage the input over the (degradable)
    default path."""
    graph = TaskGraph("big")
    graph.add_object(DataObject(
        "in", size_bytes=size_bytes, locality="w0",
    ))
    for index in range(2):
        graph.add_task(WorkflowTask(
            f"t{index}", inputs=["in"], outputs=[f"o{index}"],
            duration_s=1.0,
        ))
    return graph


def schedule_of(*faults) -> ChaosSchedule:
    return ChaosSchedule(seed=0, faults=list(faults))


class TestWorkerCrashAndRestart:
    def test_restarted_worker_is_readmitted_and_reused(self):
        graph = fan_graph(width=10)
        pool = make_pool(2)
        trace, stats = ResilientServer(pool).run(
            graph, chaos=schedule_of(
                WorkerCrash("w0", at_time=0.5, restart_after=0.5),
            ),
        )
        assert {r.task for r in trace.records} == set(graph.tasks)
        assert stats.failures == 1
        assert stats.restarts == 1
        restarts = [
            r for r in trace.recoveries if r.action == "worker-restart"
        ]
        assert len(restarts) == 1
        restart_time = restarts[0].time
        # the restarted worker took on new work after re-admission
        assert any(
            r.worker == "w0" and r.start >= restart_time - 1e-9
            for r in trace.records
        )

    def test_crash_loses_store_and_triggers_recovery(self):
        graph = chain_graph(length=3, duration=1.0)
        pool = make_pool(2)
        trace, stats = ResilientServer(pool).run(
            graph, chaos=schedule_of(
                WorkerCrash("w0", at_time=1.5, restart_after=0.4),
            ),
        )
        assert {r.task for r in trace.records} == set(graph.tasks)
        # in + o0 (and the mid-flight t1 attempt) lived only on w0
        assert stats.objects_lost >= 1
        assert stats.tasks_relineaged + stats.inputs_refetched >= 1

    def test_permanent_crash_of_sole_worker_raises(self):
        graph = chain_graph(length=2, duration=2.0)
        server = ResilientServer(make_pool(1))
        with pytest.raises(WorkflowError, match="all workers failed"):
            server.run(graph, chaos=schedule_of(
                WorkerCrash("w0", at_time=0.5),
            ))

    def test_restart_pending_keeps_workflow_alive(self):
        """Every worker down at once — but a restart is scheduled, so
        the run must wait it out rather than abort."""
        graph = chain_graph(length=2, duration=1.0)
        pool = make_pool(1)
        trace, stats = ResilientServer(pool).run(
            graph, chaos=schedule_of(
                WorkerCrash("w0", at_time=0.5, restart_after=0.5),
            ),
        )
        assert {r.task for r in trace.records} == set(graph.tasks)
        assert stats.restarts == 1

    def test_unknown_crash_target_rejected_eagerly(self):
        server = ResilientServer(make_pool(2))
        with pytest.raises(WorkflowError, match="unknown worker"):
            server.run(chain_graph(), chaos=schedule_of(
                WorkerCrash("ghost", at_time=0.5),
            ))


class TestLinkFaults:
    def test_degradation_slows_staging(self):
        clean, _ = ResilientServer(make_pool(2, cpus=1)).run(
            big_input_graph()
        )
        degraded, stats = ResilientServer(make_pool(2, cpus=1)).run(
            big_input_graph(),
            chaos=schedule_of(LinkFault(
                ANY_LINK, ANY_LINK, at_time=0.0, duration_s=0.5,
                bandwidth_factor=0.1,
            )),
        )
        assert stats.link_faults == 1
        assert degraded.makespan > clean.makespan * 2
        assert degraded.faults_by_kind() == {"link-degradation": 1}
        assert any(
            r.action == "link-heal" for r in degraded.recoveries
        )

    def test_partition_forces_backoff_then_heals(self):
        graph = big_input_graph()
        pool = make_pool(2, cpus=1)
        trace, stats = ResilientServer(pool).run(
            graph, chaos=schedule_of(LinkFault(
                ANY_LINK, ANY_LINK, at_time=0.0, duration_s=0.6,
                partition=True,
            )),
        )
        assert {r.task for r in trace.records} == set(graph.tasks)
        assert trace.faults_by_kind() == {"link-partition": 1}
        # staging across the severed path was retried with backoff
        assert stats.retries >= 1
        assert stats.backoff_seconds > 0.0
        actions = trace.recoveries_by_action()
        assert actions.get("backoff", 0) >= 1
        assert actions.get("retry", 0) >= 1
        assert actions.get("link-heal", 0) == 1
        # no attempt finished a cross-worker staging while severed
        heal_time = next(
            r.time for r in trace.recoveries if r.action == "link-heal"
        )
        for record in trace.records:
            if record.transfer_seconds > 0.0:
                assert record.start >= heal_time - 1e-9

    def test_targeted_fault_needs_ecosystem(self):
        server = ResilientServer(make_pool(2))
        with pytest.raises(WorkflowError, match="no ecosystem"):
            server.run(chain_graph(), chaos=schedule_of(LinkFault(
                "edge-0", "dc-switch", at_time=0.0, duration_s=1.0,
                partition=True,
            )))

    def test_targeted_fault_on_reference_ecosystem(self):
        from repro.platform.topology import build_reference_ecosystem

        eco = build_reference_ecosystem()
        workers = [
            Worker("w0", node_name="edge-0", cpus=2),
            Worker("w1", node_name="power9-0", cpus=2),
        ]
        graph = TaskGraph("eco")
        graph.add_object(DataObject(
            "in", size_bytes=10**7, locality="edge-0",
        ))
        for index in range(4):
            graph.add_task(WorkflowTask(
                f"t{index}", inputs=["in"], outputs=[f"o{index}"],
                duration_s=0.5,
            ))
        trace, stats = ResilientServer(workers, ecosystem=eco).run(
            graph, chaos=schedule_of(LinkFault(
                "dc-switch", "power9-0", at_time=0.0, duration_s=0.5,
                partition=True,
            )),
        )
        assert {r.task for r in trace.records} == set(graph.tasks)
        assert stats.link_faults == 1
        # the overlay is cleaned up after healing
        assert not eco.is_partitioned("dc-switch", "power9-0")


class TestReconfigurationFaults:
    def test_store_survives_role_reconfiguration(self):
        """A vFPGA reconfig failure takes the worker out of the pool
        but the shell keeps serving its object store: nothing is lost,
        nothing is re-lineaged."""
        graph = chain_graph(length=3, duration=1.0)
        pool = make_pool(2)
        trace, stats = ResilientServer(pool).run(
            graph, chaos=schedule_of(
                ReconfigFault("w0", at_time=1.5, repair_s=0.5),
            ),
        )
        assert {r.task for r in trace.records} == set(graph.tasks)
        assert stats.reconfig_faults == 1
        assert stats.objects_lost == 0
        assert stats.tasks_relineaged == 0
        assert stats.inputs_refetched == 0
        assert trace.faults_by_kind() == {"reconfig-failure": 1}
        assert trace.recoveries_by_action().get("worker-readmit") == 1

    def test_midflight_attempt_on_reconfiguring_worker_requeued(self):
        graph = chain_graph(length=2, duration=2.0)
        pool = make_pool(2)
        trace, stats = ResilientServer(pool).run(
            graph, chaos=schedule_of(
                ReconfigFault("w0", at_time=1.0, repair_s=0.5),
            ),
        )
        assert {r.task for r in trace.records} == set(graph.tasks)
        assert stats.tasks_requeued >= 1


class TestStragglers:
    def test_straggler_stretches_execution(self):
        clean, _ = ResilientServer(make_pool(1)).run(
            chain_graph(length=3, duration=1.0)
        )
        slowed, stats = ResilientServer(make_pool(1)).run(
            chain_graph(length=3, duration=1.0),
            chaos=schedule_of(StragglerFault(
                "w0", at_time=0.0, duration_s=100.0, slowdown=2.0,
            )),
        )
        assert stats.stragglers == 1
        assert slowed.makespan == pytest.approx(
            clean.makespan * 2.0, rel=0.01
        )
        for record in slowed.records:
            assert record.end - record.start == pytest.approx(
                2.0, rel=0.01
            )

    def test_slowdown_cleared_after_window(self):
        pool = make_pool(1)
        trace, _stats = ResilientServer(pool).run(
            chain_graph(length=4, duration=1.0),
            chaos=schedule_of(StragglerFault(
                "w0", at_time=0.0, duration_s=2.5, slowdown=3.0,
            )),
        )
        assert pool[0].slowdown == 1.0
        assert any(
            r.action == "straggler-clear" for r in trace.recoveries
        )
        # tasks started after the window run at nominal speed again
        clear_time = next(
            r.time for r in trace.recoveries
            if r.action == "straggler-clear"
        )
        post = [r for r in trace.records if r.start >= clear_time]
        assert post
        for record in post:
            assert record.end - record.start == pytest.approx(
                1.0, rel=0.01
            )

    def test_timeout_watchdog_requeues_straggling_attempt(self):
        graph = fan_graph(width=4, duration=1.0)
        pool = make_pool(2)
        server = ResilientServer(
            pool, retry=RetryPolicy(task_timeout_s=1.5),
        )
        trace, stats = server.run(
            graph, chaos=schedule_of(StragglerFault(
                "w0", at_time=0.0, duration_s=2.0, slowdown=4.0,
            )),
        )
        assert {r.task for r in trace.records} == set(graph.tasks)
        assert stats.tasks_requeued >= 1
        assert any(
            "timeout" in r.detail for r in trace.recoveries
            if r.action == "backoff"
        )
        # no completed record ever exceeded the watchdog
        for record in trace.records:
            assert record.end - record.start <= 1.5 + 1e-9


class TestTransientTaskFaults:
    def test_faults_consume_budget_then_succeed(self):
        graph = chain_graph(length=2, duration=1.0)
        pool = make_pool(2)
        trace, stats = ResilientServer(pool).run(
            graph, chaos=schedule_of(TaskFault("t0", failures=2)),
        )
        assert {r.task for r in trace.records} == set(graph.tasks)
        assert stats.task_faults == 2
        assert trace.faults_by_kind() == {"task-fault": 2}
        # only the successful attempt is recorded
        assert len([r for r in trace.records if r.task == "t0"]) == 1

    def test_backoff_escalates_between_retries(self):
        graph = chain_graph(length=1, duration=1.0)
        pool = make_pool(1)
        server = ResilientServer(pool)
        trace, stats = server.run(
            graph, chaos=schedule_of(TaskFault("t0", failures=3)),
        )
        backoffs = [
            r for r in trace.recoveries
            if r.action == "backoff" and r.target == "t0"
        ]
        assert len(backoffs) == 3
        policy = server.retry
        expected = sum(policy.backoff_for(n) for n in (1, 2, 3))
        assert stats.backoff_seconds == pytest.approx(expected)
        # exponential: each backoff doubles
        assert policy.backoff_for(2) == 2 * policy.backoff_for(1)

    def test_unknown_task_fault_rejected_eagerly(self):
        server = ResilientServer(make_pool(2))
        with pytest.raises(WorkflowError, match="unknown task"):
            server.run(chain_graph(), chaos=schedule_of(
                TaskFault("ghost", failures=1),
            ))


class TestRetryPolicy:
    def test_backoff_is_capped(self):
        policy = RetryPolicy(base_backoff_s=0.1, backoff_factor=10.0,
                             max_backoff_s=1.0)
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(2) == pytest.approx(1.0)
        assert policy.backoff_for(9) == pytest.approx(1.0)
