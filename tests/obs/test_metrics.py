"""Metrics registry: bucketing edges, labels, snapshot determinism."""

import pytest

from repro.errors import EverestError
from repro.obs import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.metrics import Histogram


class TestCounter:
    def test_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("tasks")
        counter.inc(worker="a")
        counter.inc(2.0, worker="a")
        counter.inc(worker="b")
        assert counter.value(worker="a") == 3.0
        assert counter.value(worker="b") == 1.0
        assert counter.total() == 4.0

    def test_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(EverestError):
            counter.inc(-1.0)

    def test_label_order_is_irrelevant(self):
        counter = MetricsRegistry().counter("c")
        counter.inc(a="1", b="2")
        assert counter.value(b="2", a="1") == 1.0


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5.0)
        gauge.add(-2.0)
        assert gauge.value() == 3.0


class TestHistogramBucketing:
    def test_value_on_boundary_lands_in_that_bucket(self):
        """Cumulative le semantics: v == bound counts in that bucket."""
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        histogram.observe(2.0)
        counts = histogram.bucket_counts()
        assert counts[repr(1.0)] == 0
        assert counts[repr(2.0)] == 1
        assert counts[repr(4.0)] == 1
        assert counts["+Inf"] == 1

    def test_value_below_first_bound(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        counts = histogram.bucket_counts()
        assert counts[repr(1.0)] == 1
        assert counts[repr(2.0)] == 1

    def test_value_above_last_bound_only_in_inf(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        histogram.observe(100.0)
        counts = histogram.bucket_counts()
        assert counts[repr(1.0)] == 0
        assert counts[repr(2.0)] == 0
        assert counts["+Inf"] == 1

    def test_count_and_sum(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(0.5)
        histogram.observe(3.0)
        assert histogram.count() == 2
        assert histogram.sum() == pytest.approx(3.5)

    def test_counts_are_cumulative_across_buckets(self):
        histogram = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        counts = histogram.bucket_counts()
        assert counts[repr(1.0)] == 1
        assert counts[repr(10.0)] == 2
        assert counts[repr(100.0)] == 3
        assert counts["+Inf"] == 4

    def test_rejects_empty_buckets(self):
        with pytest.raises(EverestError):
            Histogram("h", buckets=())

    def test_rejects_non_increasing_buckets(self):
        with pytest.raises(EverestError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_rejects_infinite_bound(self):
        with pytest.raises(EverestError):
            Histogram("h", buckets=(1.0, float("inf")))

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(EverestError):
            registry.gauge("x")

    def test_snapshot_is_deterministic(self):
        def build() -> str:
            registry = MetricsRegistry()
            registry.counter("b").inc(worker="w2")
            registry.counter("b").inc(worker="w1")
            registry.gauge("a").set(3.0)
            registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
            return registry.to_json()

        first, second = build(), build()
        assert first == second

    def test_snapshot_sorted_by_name_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc(k="2")
        registry.counter("a").inc(k="1")
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a", "z"]
        assert list(snapshot["a"]["series"]) == ["{k=1}", "{k=2}"]

    def test_render_text_includes_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("c", "a counter").inc()
        registry.gauge("g").set(1.0)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        text = registry.render_text("snap")
        assert "# snap" in text
        assert "c (counter)" in text
        assert "g (gauge)" in text
        assert "h (histogram)" in text
        assert "le +Inf: 1" in text
