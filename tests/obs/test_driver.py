"""The spec-to-traced-run driver and the observability CLI."""

import json

import pytest

from repro.cli import main
from repro.errors import SpecificationError
from repro.obs import validate_chrome_trace
from repro.obs.driver import (
    load_kernel_sources,
    pipeline_from_sources,
    run_traced,
)

SPEC = """
kernel blur(X: tensor<64xf32>, W: tensor<64xf32>) -> tensor<64xf32> {
  Y = X * W
  return Y
}
"""


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "blur.edsl"
    path.write_text(SPEC)
    return str(path)


class TestPipelineSynthesis:
    def test_one_task_per_kernel(self):
        pipeline = pipeline_from_sources("p", [SPEC])
        assert [task.name for task in pipeline.tasks] == ["blur"]
        assert len(pipeline.sources) == 2
        assert len(pipeline.sinks) == 1

    def test_sources_typed_from_signature(self):
        pipeline = pipeline_from_sources("p", [SPEC])
        assert all(
            "64" in str(source.type) for source in pipeline.sources
        )

    def test_duplicate_kernels_taken_once(self):
        pipeline = pipeline_from_sources("p", [SPEC, SPEC])
        assert len(pipeline.tasks) == 1

    def test_rejects_sources_without_kernels(self):
        with pytest.raises(SpecificationError):
            pipeline_from_sources("p", [])

    def test_load_kernel_sources_from_python(self, tmp_path):
        path = tmp_path / "example.py"
        path.write_text(f'KERNEL = """{SPEC}"""\n')
        assert len(load_kernel_sources(str(path))) == 1

    def test_load_rejects_kernel_free_python(self, tmp_path):
        path = tmp_path / "empty.py"
        path.write_text("x = 1\n")
        with pytest.raises(SpecificationError):
            load_kernel_sources(str(path))


class TestRunTraced:
    def test_end_to_end_produces_valid_trace(self, spec_file):
        run = run_traced(spec_file)
        tracer = run.observation.tracer
        assert validate_chrome_trace(tracer.to_chrome()) == []
        categories = {event.category for event in tracer.events}
        assert "compiler.phase" in categories
        assert "dse.explore" in categories
        assert "runtime.orchestrate" in categories
        assert "workflow.task" in categories

    def test_trace_has_dse_batch_spans(self, spec_file):
        tracer = run_traced(spec_file).observation.tracer
        names = {event.name for event in tracer.events}
        assert any(name.startswith("batch:") for name in names)

    def test_logical_clock_runs_are_byte_identical(self, spec_file):
        # The second run hits the warm in-process cost cache; pricing
        # is hermetic, so the trace must not change.
        first = run_traced(spec_file).observation.tracer.to_json()
        second = run_traced(spec_file).observation.tracer.to_json()
        assert first == second

    def test_parallel_run_trace_matches_serial(self, spec_file):
        serial = run_traced(spec_file).observation.tracer.to_json()
        wide = run_traced(
            spec_file, workers=4
        ).observation.tracer.to_json()
        assert serial == wide

    def test_metrics_cover_all_layers(self, spec_file):
        metrics = run_traced(spec_file).observation.metrics
        names = metrics.names()
        assert "dse.evaluations" in names
        assert "dse.cache_hits" in names
        assert "dse.cache_misses" in names
        assert "workflow.tasks_executed" in names
        assert "runtime.deployments" in names

    def test_rejects_unknown_clock(self, spec_file):
        with pytest.raises(SpecificationError):
            run_traced(spec_file, clock="sundial")

    def test_deployment_report_complete(self, spec_file):
        report = run_traced(spec_file).report
        assert report.makespan > 0
        assert report.placement
        assert report.selections


class TestCLI:
    def test_trace_subcommand(self, spec_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", spec_file, "--out", str(out)]) == 0
        trace = json.loads(out.read_text())
        assert validate_chrome_trace(trace) == []
        captured = capsys.readouterr()
        assert "spans" in captured.out

    def test_run_subcommand(self, spec_file, capsys):
        assert main(["run", spec_file]) == 0
        captured = capsys.readouterr()
        assert "makespan" in captured.out
        assert "trace digest" in captured.out

    def test_metrics_subcommand_text(self, spec_file, capsys):
        assert main(["metrics", spec_file]) == 0
        captured = capsys.readouterr()
        assert "workflow.tasks_executed" in captured.out

    def test_metrics_subcommand_json(self, spec_file, capsys):
        assert main(["metrics", spec_file, "--format", "json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert "dse.evaluations" in snapshot

    def test_chaos_trace_export(self, tmp_path, capsys):
        out = tmp_path / "chaos.json"
        assert main([
            "chaos", "--graph-seed", "1", "--fault-seed", "2",
            "--trace", str(out),
        ]) == 0
        trace = json.loads(out.read_text())
        assert validate_chrome_trace(trace) == []

    def test_trace_byte_identical_via_cli(self, spec_file, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(["trace", spec_file, "--out", str(first)]) == 0
        assert main(["trace", spec_file, "--out", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
