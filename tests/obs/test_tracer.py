"""Tracer semantics: nesting, ordering, export, determinism."""

import json

import pytest

from repro.obs import (
    LogicalClock,
    Tracer,
    validate_chrome_trace,
)


def make_tracer() -> Tracer:
    return Tracer(clock=LogicalClock(), enabled=True, process="test")


class TestSpans:
    def test_nested_spans_get_parent_ids(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id == 0
        assert inner.parent_id == outer.span_id
        assert inner.span_id != outer.span_id

    def test_span_ids_are_sequential_and_deterministic(self):
        tracer = make_tracer()
        ids = []
        for index in range(3):
            with tracer.span(f"s{index}") as span:
                ids.append(span.span_id)
        assert ids == [1, 2, 3]

    def test_sibling_spans_share_parent(self):
        tracer = make_tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == parent.span_id
        assert b.parent_id == parent.span_id

    def test_spans_on_distinct_tracks_do_not_nest(self):
        tracer = make_tracer()
        with tracer.span("one", track="t1"):
            with tracer.span("two", track="t2") as other:
                pass
        assert other.parent_id == 0

    def test_events_emitted_in_close_order(self):
        tracer = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [event.name for event in tracer.events]
        assert names == ["inner", "outer"]

    def test_span_durations_non_negative_and_ordered(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        events = {event.name: event for event in tracer.events}
        assert events["inner"].dur >= 0
        assert events["outer"].dur >= events["inner"].dur
        assert events["outer"].ts <= events["inner"].ts

    def test_note_attaches_args(self):
        tracer = make_tracer()
        with tracer.span("s") as span:
            span.note(points=7)
        assert tracer.events[0].args["points"] == 7

    def test_complete_records_explicit_interval(self):
        tracer = make_tracer()
        tracer.complete("t", 2.0, 5.0, category="c", start=2.0)
        event = tracer.events[0]
        assert event.ts == 2.0
        assert event.dur == 3.0
        assert event.args["start"] == 2.0

    def test_total_durations_sums_per_name(self):
        tracer = make_tracer()
        tracer.complete("x", 0.0, 2.0, category="k")
        tracer.complete("x", 3.0, 4.0, category="k")
        tracer.complete("y", 0.0, 1.0, category="k")
        totals = tracer.total_durations("k")
        assert totals == {"x": 3.0, "y": 1.0}


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("s") as span:
            span.note(a=1)
        tracer.instant("i")
        tracer.counter("c", 1.0)
        tracer.complete("x", 0.0, 1.0)
        assert tracer.events == []

    def test_disabled_spans_share_one_object(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")


class TestAbsorb:
    def test_absorb_assigns_new_pid(self):
        host = make_tracer()
        guest = Tracer(clock=LogicalClock(), process="guest")
        guest.instant("hello", track="lane")
        host.absorb(guest, process="workflow:g")
        assert len(host.events) == 1
        assert host.events[0].pid != guest.events[0].pid

    def test_absorb_preserves_raw_timestamps(self):
        host = make_tracer()
        guest = Tracer(clock=LogicalClock(), process="guest")
        guest.complete("t", 1.5, 2.5)
        host.absorb(guest, process="workflow:g")
        assert host.events[0].ts == 1.5
        assert host.events[0].dur == 1.0

    def test_absorb_into_disabled_tracer_is_noop(self):
        host = Tracer(enabled=False)
        guest = make_tracer()
        guest.instant("i")
        host.absorb(guest, process="g")
        assert host.events == []

    def test_absorb_skips_foreign_processes(self):
        """Absorbing a tracer only takes its own events, not events it
        absorbed from elsewhere."""
        innermost = make_tracer()
        innermost.instant("deep")
        middle = make_tracer()
        middle.instant("own")
        middle.absorb(innermost, process="inner")
        host = make_tracer()
        host.absorb(middle, process="middle")
        assert [event.name for event in host.events] == ["own"]


class TestChromeExport:
    def test_export_is_valid_chrome_trace(self):
        tracer = make_tracer()
        with tracer.span("compile"):
            tracer.instant("fault")
            tracer.counter("queue", 3.0)
        trace = tracer.to_chrome()
        assert validate_chrome_trace(trace) == []

    def test_metadata_names_processes_and_threads(self):
        tracer = Tracer(clock=LogicalClock(), process="everest")
        tracer.instant("i", track="lane")
        trace = tracer.to_chrome()
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "everest") in names
        assert ("thread_name", "lane") in names

    def test_timestamps_scaled_to_microseconds(self):
        tracer = make_tracer()  # logical clock: scale 1.0
        tracer.complete("t", 10.0, 11.0)
        event = [
            e for e in tracer.to_chrome()["traceEvents"]
            if e["ph"] == "X"
        ][0]
        assert event["ts"] == 10.0
        assert event["dur"] == 1.0

    def test_json_is_deterministic(self):
        def build() -> str:
            tracer = make_tracer()
            with tracer.span("a"):
                tracer.counter("c", 1.0)
            return tracer.to_json()

        assert build() == build()

    def test_write_round_trips(self, tmp_path):
        tracer = make_tracer()
        tracer.instant("i")
        path = tmp_path / "trace.json"
        tracer.write(str(path))
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) != []

    def test_rejects_negative_duration(self):
        trace = {"traceEvents": [{
            "ph": "X", "name": "x", "pid": 1, "tid": 0,
            "ts": 0.0, "dur": -1.0,
        }]}
        problems = validate_chrome_trace(trace)
        assert any("dur" in p for p in problems)

    def test_rejects_non_numeric_counter(self):
        trace = {"traceEvents": [{
            "ph": "C", "name": "c", "pid": 1, "tid": 0,
            "ts": 0.0, "args": {"c": "high"},
        }]}
        problems = validate_chrome_trace(trace)
        assert any("numeric" in p for p in problems)

    def test_rejects_unknown_phase(self):
        trace = {"traceEvents": [{
            "ph": "Z", "name": "z", "pid": 1, "tid": 0, "ts": 0.0,
        }]}
        assert validate_chrome_trace(trace) != []


class TestClocks:
    def test_logical_clock_ticks_monotonically(self):
        clock = LogicalClock()
        readings = [clock.now() for _ in range(3)]
        assert readings == sorted(readings)
        assert len(set(readings)) == 3

    def test_logical_clock_scale_is_unity(self):
        assert LogicalClock().scale == pytest.approx(1.0)
