"""Ambient observation context: install, restore, session defaults."""

from repro.obs import (
    LogicalClock,
    Observation,
    current,
    current_metrics,
    current_tracer,
    observe,
    session,
)


class TestAmbient:
    def test_default_tracer_is_disabled(self):
        assert not current_tracer().enabled

    def test_default_metrics_registry_is_live(self):
        current_metrics().counter("ambient.test").inc()
        assert current_metrics().counter("ambient.test").total() >= 1

    def test_observe_installs_and_restores(self):
        before = current()
        obs = session()
        with observe(obs):
            assert current() is obs
            assert current_tracer() is obs.tracer
        assert current() is before

    def test_observe_restores_on_exception(self):
        before = current()
        try:
            with observe(session()):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current() is before

    def test_nested_observe(self):
        outer, inner = session(), session()
        with observe(outer):
            with observe(inner):
                assert current() is inner
            assert current() is outer


class TestSession:
    def test_session_tracer_is_enabled(self):
        assert session().tracer.enabled

    def test_deterministic_session_uses_logical_clock(self):
        obs = session(deterministic=True)
        assert isinstance(obs.tracer.clock, LogicalClock)

    def test_sessions_are_independent(self):
        a, b = session(), session()
        assert a.tracer is not b.tracer
        assert a.metrics is not b.metrics

    def test_observation_defaults(self):
        obs = Observation()
        assert not obs.tracer.enabled
        obs.metrics.counter("x").inc()
        assert obs.metrics.counter("x").total() == 1
