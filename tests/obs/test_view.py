"""ExecutionTrace as a view over the tracer: digest regression.

The servers now emit tracer events and derive the ``ExecutionTrace``
from them. These tests pin the two compatibility promises: chaos
digests are unaffected by whether an observation session is installed,
and traced replays of the same seeds are byte-identical.
"""

from repro.chaos import ChaosConfig, generate_schedule, random_task_graph
from repro.obs import (
    LogicalClock,
    Tracer,
    observe,
    session,
    validate_chrome_trace,
)
from repro.workflow.recovery import ResilientServer
from repro.workflow.server import WorkflowServer
from repro.workflow.tracing import (
    FAULT_CATEGORY,
    RECOVERY_CATEGORY,
    TASK_CATEGORY,
    ExecutionTrace,
)

from tests.chaos.conftest import make_pool

CONFIG = ChaosConfig(crashes=1, link_faults=1, reconfig_faults=1,
                     stragglers=1, task_faults=1)


def chaos_run(graph_seed: int = 3, fault_seed: int = 7):
    graph = random_task_graph(graph_seed, num_tasks=10)
    pool = make_pool(3)
    schedule = generate_schedule(
        graph, [w.name for w in pool], fault_seed, CONFIG
    )
    return ResilientServer(pool).run(graph, chaos=schedule)


class TestFromTracer:
    def test_maps_categories_to_records(self):
        tracer = Tracer(clock=LogicalClock(), process="w")
        tracer.complete(
            "t1", 0.0, 1.0, category=TASK_CATEGORY, track="w0",
            task="t1", worker="w0", ready_at=0.0, start=0.0, end=1.0,
            transfer_seconds=0.25, bytes_moved=64,
        )
        tracer.instant(
            "worker-crash", category=FAULT_CATEGORY,
            kind="worker-crash", target="w0", time=0.5, detail="",
        )
        tracer.instant(
            "retry", category=RECOVERY_CATEGORY,
            action="retry", target="t1", time=0.6, detail="attempt 2",
        )
        tracer.instant("noise", category="workflow.sched")
        trace = ExecutionTrace.from_tracer(tracer, "g", "p")
        assert len(trace.records) == 1
        assert trace.records[0].task == "t1"
        assert trace.records[0].bytes_moved == 64
        assert trace.makespan == 1.0
        assert trace.faults_by_kind() == {"worker-crash": 1}
        assert trace.recoveries_by_action() == {"retry": 1}

    def test_plain_server_trace_matches_view(self):
        from repro.workflow.graph import (
            DataObject,
            TaskGraph,
            WorkflowTask,
        )

        graph = TaskGraph("g")
        graph.add_object(DataObject("in", size_bytes=8))
        graph.add_task(WorkflowTask(
            "t", inputs=["in"], outputs=["out"], duration_s=0.1,
        ))
        trace = WorkflowServer(make_pool(2)).run(graph)
        assert [r.task for r in trace.records] == ["t"]
        assert trace.makespan > 0


class TestDigestRegression:
    def test_digest_same_with_and_without_session(self):
        """Installing an observation session must not change the
        serialized execution trace."""
        baseline, _ = chaos_run()
        with observe(session(deterministic=True)):
            observed, _ = chaos_run()
        assert observed.to_json() == baseline.to_json()
        assert observed.digest() == baseline.digest()

    def test_replay_digest_deterministic(self):
        first, _ = chaos_run()
        second, _ = chaos_run()
        assert first.to_json() == second.to_json()

    def test_traced_replays_byte_identical(self):
        """The exported Chrome trace of a seeded chaos run is itself
        byte-identical across replays."""

        def traced() -> str:
            obs = session(deterministic=True)
            with observe(obs):
                chaos_run()
            return obs.tracer.to_json()

        assert traced() == traced()

    def test_chaos_trace_is_valid_chrome_json(self):
        import json

        obs = session(deterministic=True)
        with observe(obs):
            chaos_run()
        trace = json.loads(obs.tracer.to_json())
        assert validate_chrome_trace(trace) == []
        # the run's faults and recoveries appear as instants
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert {"X", "i", "M"} <= phases


class TestExtraDetail:
    def test_session_receives_scheduler_and_fault_lanes(self):
        obs = session(deterministic=True)
        with observe(obs):
            trace, _ = chaos_run()
        categories = {e.category for e in obs.tracer.events}
        assert TASK_CATEGORY in categories
        assert "workflow.sched" in categories
        if trace.faults:
            assert FAULT_CATEGORY in categories

    def test_explicit_tracer_argument_wins(self):
        explicit = Tracer(clock=LogicalClock(), process="mine")
        graph = random_task_graph(1, num_tasks=6)
        pool = make_pool(2)
        schedule = generate_schedule(
            graph, [w.name for w in pool], 1, CONFIG
        )
        ResilientServer(pool).run(
            graph, chaos=schedule, tracer=explicit
        )
        assert any(
            e.category == TASK_CATEGORY for e in explicit.events
        )

    def test_metrics_accumulate_task_counts(self):
        obs = session(deterministic=True)
        with observe(obs):
            trace, _ = chaos_run()
        executed = obs.metrics.counter("workflow.tasks_executed")
        assert executed.total() == len(trace.records)
