"""End-to-end: static hazard -> chaos schedule -> dynamic confirmation.

The acceptance path of the concurrency analyzer: a workflow whose
``updates`` make a race statically *possible* (RACE001/RACE002) is
executed under a chaos fault schedule, and the happens-before checker
confirms the race actually manifests (SAN001/SAN002), with
byte-identical sanitizer reports across replays of the same seeds.
"""

import json

from repro.chaos import ChaosConfig, generate_schedule
from repro.chaos.graphgen import random_task_graph
from repro.cli import main
from repro.core.analysis import check_task_graph_concurrency
from repro.obs import observe, session
from repro.sanitize import sanitize_tracer
from repro.workflow.graph import DataObject, TaskGraph, WorkflowTask
from repro.workflow.recovery import ResilientServer
from repro.workflow.worker import Worker


def make_pool(count=3, cpus=2):
    return [
        Worker(f"w{index}", node_name=f"n{index}", cpus=cpus)
        for index in range(count)
    ]


def updates_graph() -> TaskGraph:
    """Producer + two in-place updaters + reader: statically racy."""
    graph = TaskGraph("updates-race")
    graph.add_object(DataObject("seed", size_bytes=64))
    graph.add_task(WorkflowTask(
        "produce", inputs=["seed"], outputs=["acc"], duration_s=0.01,
    ))
    graph.add_task(WorkflowTask("upd_a", updates=["acc"],
                                duration_s=0.01))
    graph.add_task(WorkflowTask("upd_b", updates=["acc"],
                                duration_s=0.01))
    graph.add_task(WorkflowTask(
        "read", inputs=["acc"], outputs=["out"], duration_s=0.01,
    ))
    return graph


def sanitized_chaos_run(graph, fault_seed: int):
    """Run ``graph`` under a seeded chaos schedule; sanitize trace."""
    pool = make_pool()
    schedule = generate_schedule(
        graph, [worker.name for worker in pool], fault_seed,
        ChaosConfig(crashes=1, link_faults=0, reconfig_faults=1,
                    stragglers=1, task_faults=1),
    )
    obs = session(deterministic=True)
    with observe(obs):
        server = ResilientServer(pool)
        server.run(graph, chaos=schedule)
    return sanitize_tracer(obs.tracer)


class TestStaticToDynamic:
    def test_static_layer_flags_the_hazard(self):
        diags = check_task_graph_concurrency(updates_graph())
        found = {item.code for item in diags}
        assert "RACE001" in found
        assert "RACE002" in found

    def test_chaos_schedule_confirms_the_race(self):
        findings = sanitized_chaos_run(updates_graph(), fault_seed=3)
        found = {item.code for item in findings}
        assert "SAN001" in found
        assert "SAN002" in found

    def test_reports_are_byte_identical_across_replays(self):
        first = sanitized_chaos_run(
            updates_graph(), fault_seed=3
        ).to_json(indent=2)
        second = sanitized_chaos_run(
            updates_graph(), fault_seed=3
        ).to_json(indent=2)
        assert first == second

    def test_clean_seed_graphs_stay_clean_under_chaos(self):
        # lineage re-execution must not masquerade as a race
        for fault_seed in (0, 1):
            graph = random_task_graph(2, num_tasks=12)
            findings = sanitized_chaos_run(graph, fault_seed)
            assert len(findings) == 0, findings.render_text()

    def test_fault_free_run_is_clean(self):
        graph = random_task_graph(5, num_tasks=10)
        pool = make_pool()
        obs = session(deterministic=True)
        with observe(obs):
            ResilientServer(pool).run(graph)
        assert len(sanitize_tracer(obs.tracer)) == 0


class TestCLISanitize:
    def test_chaos_sanitize_clean_seed_exits_zero(self, capsys):
        assert main([
            "chaos", "--graph-seed", "1", "--fault-seed", "2",
            "--sanitize",
        ]) == 0
        assert "clean" in capsys.readouterr().out

    def test_chaos_sanitize_json_report(self, capsys):
        assert main([
            "chaos", "--graph-seed", "1", "--fault-seed", "2",
            "--sanitize", "--format", "json", "--json",
        ]) == 0
        # last printed JSON object is the sanitizer report
        out = capsys.readouterr().out.strip().splitlines()
        payload = json.loads("\n".join(
            out[out.index("{"):]
        ))
        assert payload["diagnostics"] == []

    def test_run_sanitize_exits_zero(self, tmp_path, capsys):
        spec = tmp_path / "blur.edsl"
        spec.write_text(
            "kernel blur(X: tensor<64xf32>, W: tensor<64xf32>) "
            "-> tensor<64xf32> {\n  Y = X * W\n  return Y\n}\n"
        )
        assert main(["run", str(spec), "--sanitize"]) == 0
        assert "sanitize" in capsys.readouterr().out

    def test_verify_replay_with_sanitize(self, capsys):
        assert main([
            "chaos", "--graph-seed", "2", "--fault-seed", "1",
            "--sanitize", "--verify-replay",
        ]) == 0
        assert "replay verified" in capsys.readouterr().out
