"""Vector-clock semantics."""

from repro.sanitize import VectorClock


class TestVectorClock:
    def test_empty_clocks_dominate_each_other(self):
        a, b = VectorClock(), VectorClock()
        assert a.dominates(b) and b.dominates(a)
        assert not a.concurrent(b)

    def test_tick_orders_successive_attempts(self):
        first = VectorClock().tick("t", 1)
        second = first.copy().tick("t", 2)
        assert second.dominates(first)
        assert not first.dominates(second)

    def test_join_merges_componentwise(self):
        a = VectorClock({"x": 2, "y": 1})
        b = VectorClock({"y": 3, "z": 1})
        a.join(b)
        assert a.components == {"x": 2, "y": 3, "z": 1}

    def test_independent_ticks_are_concurrent(self):
        a = VectorClock().tick("a", 1)
        b = VectorClock().tick("b", 1)
        assert a.concurrent(b)

    def test_join_establishes_order(self):
        a = VectorClock().tick("a", 1)
        b = VectorClock().copy().join(a).tick("b", 1)
        assert b.dominates(a)
        assert not a.concurrent(b)

    def test_copy_is_independent(self):
        a = VectorClock({"a": 1})
        b = a.copy().tick("b", 1)
        assert "b" not in a.components
        assert "b" in b.components

    def test_repr_is_sorted_and_stable(self):
        clock = VectorClock({"b": 2, "a": 1})
        assert repr(clock) == "VC(a:1, b:2)"
