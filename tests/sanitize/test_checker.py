"""Happens-before checker unit behavior (synthetic event feeds)."""

from repro.sanitize import HappensBeforeChecker


def codes(diagnostics):
    return sorted({item.code for item in diagnostics})


class TestDataRaces:
    def test_producer_consumer_chain_is_clean(self):
        checker = HappensBeforeChecker()
        checker.observe_attempt("produce", reads=[], writes=["acc"])
        checker.observe_attempt("read", reads=["acc"], writes=["out"])
        assert len(checker.finish()) == 0

    def test_concurrent_writes_are_san001(self):
        checker = HappensBeforeChecker()
        checker.observe_attempt("produce", reads=[], writes=["acc"])
        checker.observe_attempt("upd_a", reads=["acc"],
                                writes=["acc"])
        checker.observe_attempt("upd_b", reads=["acc"],
                                writes=["acc"])
        assert "SAN001" in codes(checker.finish())

    def test_concurrent_read_write_is_san002(self):
        checker = HappensBeforeChecker()
        checker.observe_attempt("produce", reads=[], writes=["acc"])
        checker.observe_attempt("upd", reads=["acc"], writes=["acc"])
        checker.observe_attempt("read", reads=["acc"], writes=["out"])
        assert "SAN002" in codes(checker.finish())

    def test_duplicate_pairs_reported_once(self):
        checker = HappensBeforeChecker()
        checker.observe_attempt("produce", reads=[], writes=["acc"])
        checker.observe_attempt("upd_a", reads=["acc"],
                                writes=["acc"])
        checker.observe_attempt("upd_b", reads=["acc"],
                                writes=["acc"])
        findings = checker.finish()
        san001 = [i for i in findings if i.code == "SAN001"]
        assert len(san001) == 1

    def test_lineage_reexecution_opens_new_epoch(self):
        # a chaos recovery re-runs the producer and its consumer;
        # the second write must not race with the first epoch's reads
        checker = HappensBeforeChecker()
        checker.observe_attempt("produce", reads=[], writes=["acc"])
        checker.observe_attempt("read", reads=["acc"], writes=["out"])
        checker.observe_attempt("produce", reads=[], writes=["acc"])
        checker.observe_attempt("read", reads=["acc"], writes=["out"])
        assert len(checker.finish()) == 0

    def test_race_still_caught_after_lineage(self):
        checker = HappensBeforeChecker()
        checker.observe_attempt("produce", reads=[], writes=["acc"])
        checker.observe_attempt("upd_a", reads=["acc"],
                                writes=["acc"])
        checker.observe_attempt("produce", reads=[], writes=["acc"])
        checker.observe_attempt("upd_a", reads=["acc"],
                                writes=["acc"])
        checker.observe_attempt("upd_b", reads=["acc"],
                                writes=["acc"])
        assert "SAN001" in codes(checker.finish())


class TestResourceAudit:
    def test_balanced_lifecycle_is_clean(self):
        checker = HappensBeforeChecker()
        checker.observe_resource("request", "w0", 2, 4)
        checker.observe_resource("release", "w0", 2, 4)
        assert len(checker.finish()) == 0

    def test_release_without_request_is_san003(self):
        checker = HappensBeforeChecker()
        checker.observe_resource("release", "w0", 1, 4)
        findings = checker.finish()
        assert codes(findings) == ["SAN003"]
        assert "released" in findings.items[0].message

    def test_overcommit_is_san003(self):
        checker = HappensBeforeChecker()
        checker.observe_resource("request", "w0", 3, 4)
        checker.observe_resource("request", "w0", 3, 4)
        assert "SAN003" in codes(checker.finish())

    def test_leaked_units_at_end_are_san003(self):
        checker = HappensBeforeChecker()
        checker.observe_resource("request", "w0", 2, 4)
        findings = checker.finish()
        assert codes(findings) == ["SAN003"]
        assert "unreleased" in findings.items[0].message

    def test_crash_reset_forgives_held_units(self):
        checker = HappensBeforeChecker()
        checker.observe_resource("request", "w0", 2, 4)
        checker.observe_resource("reset", "w0", 0, 4)
        assert len(checker.finish()) == 0

    def test_findings_carry_sanitize_analysis(self):
        checker = HappensBeforeChecker()
        checker.observe_resource("release", "w0", 1, 4)
        item = checker.finish().items[0]
        assert item.analysis == "sanitize"
        assert item.anchor == "w0"
