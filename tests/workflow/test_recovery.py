"""Tests for crash recovery, lineage re-execution and migration."""

import pytest

from repro.errors import WorkflowError
from repro.workflow.graph import DataObject, TaskGraph, WorkflowTask
from repro.workflow.recovery import (
    FailureInjection,
    ResilientServer,
    migrate_task,
)
from repro.workflow.server import WorkflowServer
from repro.workflow.worker import Worker


def chain_graph(length=4, duration=1.0) -> TaskGraph:
    graph = TaskGraph("chain")
    graph.add_object(DataObject("in", size_bytes=1000, locality="w0"))
    previous = "in"
    for index in range(length):
        graph.add_task(WorkflowTask(
            f"t{index}", inputs=[previous], outputs=[f"o{index}"],
            duration_s=duration,
        ))
        previous = f"o{index}"
    return graph


def fan_graph(width=6) -> TaskGraph:
    graph = TaskGraph("fan")
    graph.add_object(DataObject("in", size_bytes=1000, locality="w0"))
    for index in range(width):
        graph.add_task(WorkflowTask(
            f"leaf{index}", inputs=["in"], outputs=[f"l{index}"],
            duration_s=1.0,
        ))
    graph.add_task(WorkflowTask(
        "join", inputs=[f"l{index}" for index in range(width)],
        outputs=["out"], duration_s=0.5,
    ))
    return graph


def pool(count=3):
    return [
        Worker(f"w{index}", node_name=f"n{index}", cpus=2)
        for index in range(count)
    ]


class TestNoFailures:
    def test_matches_plain_server_semantics(self):
        graph = fan_graph()
        trace, stats = ResilientServer(pool()).run(graph)
        assert len(trace.records) == 7
        assert stats.failures == 0
        assert stats.tasks_requeued == 0
        plain = WorkflowServer(pool()).run(fan_graph())
        # same work completes; makespans comparable
        assert trace.makespan == pytest.approx(plain.makespan,
                                               rel=0.5)

    def test_all_tasks_complete(self):
        graph = chain_graph()
        trace, _stats = ResilientServer(pool()).run(graph)
        assert {r.task for r in trace.records} == set(graph.tasks)


class TestCrashRecovery:
    def test_running_task_requeued(self):
        graph = chain_graph(length=3, duration=2.0)
        server = ResilientServer(pool(2))
        trace, stats = server.run(
            graph, failures=[FailureInjection("w0", at_time=1.0)]
        )
        assert stats.failures == 1
        # the mid-flight task was re-run elsewhere
        assert stats.tasks_requeued + stats.tasks_relineaged >= 1
        executed_workers = {r.worker for r in trace.records}
        assert "w0" not in executed_workers or all(
            r.end <= 1.0 + 1e-9 for r in trace.records
            if r.worker == "w0"
        )
        assert {r.task for r in trace.records} >= set(graph.tasks)

    def test_lost_intermediate_recomputed_via_lineage(self):
        # kill the worker after it produced o0/o1 but before the end
        graph = chain_graph(length=4, duration=1.0)
        server = ResilientServer(pool(2))
        trace, stats = server.run(
            graph, failures=[FailureInjection("w0", at_time=2.5)]
        )
        completed = {r.task for r in trace.records}
        assert completed >= set(graph.tasks)
        # some producer ran twice (lineage re-execution) or the input
        # was re-fetched
        assert stats.objects_lost >= 1
        assert stats.tasks_relineaged + stats.inputs_refetched >= 1

    def test_external_input_refetched(self):
        # kill the input's home before any other worker finished
        # staging a copy: the only copy dies and must be re-fetched
        # from durable storage
        graph = fan_graph()
        server = ResilientServer(pool(3))
        trace, stats = server.run(
            graph, failures=[FailureInjection("w0", at_time=0.0005)]
        )
        assert {r.task for r in trace.records} >= set(graph.tasks)
        assert stats.objects_lost >= 1
        assert stats.inputs_refetched >= 1

    def test_surviving_copy_avoids_refetch(self):
        # by 0.5 s every worker staged a copy of the input: losing the
        # home costs nothing
        graph = fan_graph()
        server = ResilientServer(pool(3))
        trace, stats = server.run(
            graph, failures=[FailureInjection("w0", at_time=0.5)]
        )
        assert {r.task for r in trace.records} >= set(graph.tasks)
        assert stats.objects_lost == 0
        assert stats.inputs_refetched == 0

    def test_makespan_degrades_gracefully(self):
        graph = fan_graph(width=8)
        clean, _ = ResilientServer(pool(3)).run(fan_graph(width=8))
        crashed, stats = ResilientServer(pool(3)).run(
            graph, failures=[FailureInjection("w1", at_time=0.5)]
        )
        assert stats.failures == 1
        assert crashed.makespan >= clean.makespan
        # but not catastrophically: bounded by a serial re-run
        assert crashed.makespan < graph.total_work() * 2

    def test_all_workers_dead_raises(self):
        graph = chain_graph(length=3, duration=5.0)
        server = ResilientServer(pool(2))
        with pytest.raises(WorkflowError, match="all workers failed"):
            server.run(graph, failures=[
                FailureInjection("w0", at_time=1.0),
                FailureInjection("w1", at_time=1.5),
            ])

    def test_unknown_worker_failure_rejected(self):
        server = ResilientServer(pool(2))
        with pytest.raises(WorkflowError, match="unknown worker"):
            server.run(
                chain_graph(),
                failures=[FailureInjection("ghost", at_time=0.1)],
            )

    def test_two_failures_survived(self):
        graph = fan_graph(width=10)
        server = ResilientServer(pool(4))
        trace, stats = server.run(graph, failures=[
            FailureInjection("w0", at_time=0.4),
            FailureInjection("w3", at_time=1.2),
        ])
        assert stats.failures == 2
        assert {r.task for r in trace.records} >= set(graph.tasks)


class TestEdgeCases:
    def test_crash_loses_only_copy_of_multi_consumer_object(self):
        """The producer's worker dies holding the sole copy of an
        object three consumers need: lineage must re-run the producer
        and every consumer must still complete."""
        from repro.chaos.faults import WorkerCrash
        from repro.chaos.schedule import ChaosSchedule

        graph = TaskGraph("multi-consumer")
        graph.add_object(DataObject("in", size_bytes=1000,
                                    locality="w0"))
        graph.add_task(WorkflowTask(
            "producer", inputs=["in"], outputs=["shared"],
            duration_s=1.0,
        ))
        # big enough that consumers are still staging at crash time
        graph.set_object_size("shared", 10**8)
        for index in range(3):
            graph.add_task(WorkflowTask(
                f"consumer{index}", inputs=["shared"],
                outputs=[f"r{index}"], duration_s=1.0,
            ))
        trace, stats = ResilientServer(pool(3)).run(
            graph,
            chaos=ChaosSchedule(seed=0, faults=[
                WorkerCrash("w0", at_time=1.05),
            ]),
        )
        assert {r.task for r in trace.records} == set(graph.tasks)
        assert stats.objects_lost >= 1
        assert stats.tasks_relineaged >= 1
        # the producer ran once before the crash and once for lineage
        assert len([
            r for r in trace.records if r.task == "producer"
        ]) >= 2

    def test_crash_during_final_sink_task(self):
        """The worker running the last task of the chain dies
        mid-flight: the sink is re-executed on the survivor."""
        graph = chain_graph(length=2, duration=1.0)
        trace, stats = ResilientServer(pool(2)).run(
            graph, failures=[FailureInjection("w0", at_time=1.5)]
        )
        assert {r.task for r in trace.records} == set(graph.tasks)
        sink_records = [r for r in trace.records if r.task == "t1"]
        # the aborted attempt leaves no record; the retry ran on the
        # survivor after the crash
        assert len(sink_records) == 1
        assert sink_records[0].worker == "w1"
        assert sink_records[0].start > 1.5

    def test_two_workers_crash_at_same_timestamp(self):
        from repro.chaos.faults import WorkerCrash
        from repro.chaos.schedule import ChaosSchedule

        def run_once():
            graph = fan_graph(width=8)
            return ResilientServer(pool(3)).run(
                graph,
                chaos=ChaosSchedule(seed=0, faults=[
                    WorkerCrash("w0", at_time=0.5),
                    WorkerCrash("w1", at_time=0.5),
                ]),
            )

        trace, stats = run_once()
        assert stats.failures == 2
        assert {r.task for r in trace.records} >= {
            f"leaf{index}" for index in range(8)
        }
        assert all(
            r.worker == "w2" for r in trace.records if r.end > 0.5
        )
        crash_times = [
            f.time for f in trace.faults if f.kind == "worker-crash"
        ]
        assert crash_times == [0.5, 0.5]
        # same-timestamp crashes resolve deterministically
        replay, _stats = run_once()
        assert replay.to_json() == trace.to_json()


class TestMigration:
    def test_zero_cost_when_target_holds_inputs(self):
        graph = chain_graph()
        source = Worker("a", node_name="n1")
        target = Worker("b", node_name="n2")
        target.store.add("in")
        assert migrate_task(graph, "t0", source, target) == 0.0

    def test_cost_scales_with_input_size(self):
        graph = TaskGraph("m")
        graph.add_object(DataObject("small", size_bytes=1000))
        graph.add_object(DataObject("big", size_bytes=10**8))
        graph.add_task(WorkflowTask("ts", inputs=["small"],
                                    outputs=["os"]))
        graph.add_task(WorkflowTask("tb", inputs=["big"],
                                    outputs=["ob"]))
        source = Worker("a", node_name="n1")
        target = Worker("b", node_name="n2")
        assert migrate_task(graph, "tb", source, target) > \
            migrate_task(graph, "ts", source, target)

    def test_unknown_task_rejected(self):
        with pytest.raises(WorkflowError):
            migrate_task(chain_graph(), "ghost",
                         Worker("a", node_name="n1"),
                         Worker("b", node_name="n2"))

    def test_ecosystem_costs_used(self):
        from repro.platform.topology import build_reference_ecosystem

        eco = build_reference_ecosystem()
        graph = TaskGraph("m")
        graph.add_object(DataObject("d", size_bytes=10**7))
        graph.add_task(WorkflowTask("t", inputs=["d"], outputs=["o"]))
        edge = Worker("e", node_name="edge-0")
        cloud = Worker("c", node_name="power9-0")
        wan_cost = migrate_task(graph, "t", edge, cloud, eco)
        assert wan_cost > 0.1  # 10 MB over the WAN uplink