"""CLI surface of durable runs: --journal-dir/--resume and `repro runs`.

Exercises the full kill/resume round trip the way a user would drive
it: a journaled `repro chaos` run, a simulated crash (journal
truncated at a record boundary and mid-record), `repro chaos --resume`
reproducing the original digest, and the `repro runs list|show|gc`
store management commands.
"""

from __future__ import annotations

import re

import pytest

from repro.cli import main
from repro.workflow.journal import JOURNAL_FILE
from repro.workflow.runstore import RunStore


def chaos_args(journal_dir, *extra):
    return [
        "chaos", "--graph-seed", "2", "--fault-seed", "1",
        "--tasks", "9", "--journal-dir", str(journal_dir), *extra,
    ]


def digest_of(output: str) -> str:
    match = re.search(r"trace digest\s+([0-9a-f]{16})", output)
    assert match, f"no digest in output:\n{output}"
    return match.group(1)


def truncate(journal_path, keep_lines: int, torn_bytes: int = 0):
    """Crash simulation: keep a prefix, optionally tear the next line."""
    lines = journal_path.read_bytes().splitlines(keepends=True)
    raw = b"".join(lines[:keep_lines])
    if torn_bytes:
        raw += lines[keep_lines][:torn_bytes]
    journal_path.write_bytes(raw)


class TestDurableCLI:
    def test_kill_and_resume_round_trip(self, tmp_path, capsys):
        assert main(chaos_args(tmp_path, "--run-id", "victim")) == 0
        expected = digest_of(capsys.readouterr().out)

        journal = tmp_path / "victim" / JOURNAL_FILE
        total = len(journal.read_bytes().splitlines())
        truncate(journal, total // 3)

        assert main(["chaos", "--resume", "victim",
                     "--journal-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert digest_of(out) == expected
        assert "run id: victim" in out

        meta = RunStore(tmp_path).load_meta("victim")
        assert meta["attempts"] == 2
        assert (tmp_path / "victim" / "archive-1" / JOURNAL_FILE).exists()

    def test_resume_with_torn_tail(self, tmp_path, capsys):
        assert main(chaos_args(tmp_path, "--run-id", "torn")) == 0
        expected = digest_of(capsys.readouterr().out)
        journal = tmp_path / "torn" / JOURNAL_FILE
        total = len(journal.read_bytes().splitlines())
        truncate(journal, total // 2, torn_bytes=11)
        assert main(["chaos", "--resume", "torn",
                     "--journal-dir", str(tmp_path)]) == 0
        assert digest_of(capsys.readouterr().out) == expected

    def test_resume_complete_run_short_circuits(self, tmp_path, capsys):
        assert main(chaos_args(tmp_path, "--run-id", "done")) == 0
        expected = digest_of(capsys.readouterr().out)
        assert main(["chaos", "--resume", "done",
                     "--journal-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "already complete" in out
        assert expected in out
        # no re-execution happened: still attempt 1, nothing archived
        assert RunStore(tmp_path).load_meta("done")["attempts"] == 1

    def test_resume_ignores_conflicting_seed_flags(self, tmp_path,
                                                   capsys):
        """--resume reloads the recorded recipe; stray seed flags on
        the resume invocation must not change what re-executes."""
        assert main(chaos_args(tmp_path, "--run-id", "pinned")) == 0
        expected = digest_of(capsys.readouterr().out)
        journal = tmp_path / "pinned" / JOURNAL_FILE
        truncate(journal, 5)
        assert main(["chaos", "--graph-seed", "7", "--fault-seed", "9",
                     "--tasks", "3", "--resume", "pinned",
                     "--journal-dir", str(tmp_path)]) == 0
        assert digest_of(capsys.readouterr().out) == expected

    def test_runs_list_show_gc(self, tmp_path, capsys):
        assert main(chaos_args(tmp_path, "--run-id", "complete")) == 0
        assert main(chaos_args(tmp_path, "--run-id", "crashed")) == 0
        capsys.readouterr()
        truncate(tmp_path / "crashed" / JOURNAL_FILE, 10)

        assert main(["runs", "list",
                     "--journal-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "complete" in out and "crashed" in out
        assert "in-flight" in out

        assert main(["runs", "show", "complete",
                     "--journal-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "recipe: graph_seed" in out
        assert "journal records" in out

        # default gc keeps the resumable run
        assert main(["runs", "gc",
                     "--journal-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "complete" in out and "crashed" not in out
        assert (tmp_path / "crashed").exists()
        assert not (tmp_path / "complete").exists()

        assert main(["runs", "gc", "--all",
                     "--journal-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert not (tmp_path / "crashed").exists()

    def test_runs_show_requires_run_id(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["runs", "show", "--journal-dir", str(tmp_path)])

    def test_resume_unknown_run_fails(self, tmp_path):
        from repro.errors import JournalError

        with pytest.raises(JournalError):
            main(["chaos", "--resume", "ghost",
                  "--journal-dir", str(tmp_path)])

    def test_chaos_json_mode_omits_run_id_line(self, tmp_path, capsys):
        assert main(chaos_args(tmp_path, "--run-id", "quiet",
                               "--json")) == 0
        out = capsys.readouterr().out
        assert "run id" not in out
        assert out.lstrip().startswith("{")
