"""Job-store edge cases: idempotency, leases, state machine, gc.

The store is the service's single source of truth, so these tests pin
the contracts everything else leans on: duplicate submissions never
create duplicate work, a lease is an exclusive claim (even under
concurrent launchers), expiry returns a dead launcher's jobs instead
of losing them, and the per-job state machine rejects illegal jumps
with stable JOB00x codes.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import JobStoreError
from repro.workflow.jobstore import (
    JOB_STATES,
    LEGAL_TRANSITIONS,
    JobSpec,
    JobStore,
    job_key,
)


class FakeClock:
    """A settable time source: lease expiry without sleeping."""

    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def store(tmp_path, clock):
    with JobStore(tmp_path / "jobs.db", clock=clock) as jobstore:
        yield jobstore


def submit_n(store, count, owner="", tags=(), kind="noop",
             ready=True, max_attempts=3):
    return store.submit(
        [JobSpec(name=f"job-{i}", kind=kind, spec={"i": i},
                 max_attempts=max_attempts) for i in range(count)],
        owner=owner, tags=tags, ready=ready,
    )


class TestSubmission:
    def test_batch_insert_and_counts(self, store):
        result = submit_n(store, 10, owner="alice", tags=("t1",))
        assert len(result.inserted) == 10
        assert result.duplicates == []
        assert store.counts()["ready"] == 10
        assert store.counts(owner="alice")["ready"] == 10
        assert store.counts(owner="bob")["ready"] == 0
        assert store.counts(tag="t1")["ready"] == 10
        assert store.counts(tag="t2")["ready"] == 0

    def test_duplicate_submission_is_idempotent(self, store):
        first = submit_n(store, 5, owner="alice")
        again = submit_n(store, 5, owner="alice")
        assert again.inserted == []
        assert sorted(again.duplicates) == sorted(first.inserted)
        assert store.counts()["ready"] == 5

    def test_duplicate_does_not_reset_state(self, store, clock):
        job_id = submit_n(store, 1).inserted[0]
        lease = store.lease("l1", 1)
        store.complete(job_id, lease.lease_id, {"digest": "d"})
        again = submit_n(store, 1)
        assert again.duplicates == [job_id]
        assert store.job(job_id).state == "done"

    def test_same_name_different_owner_is_distinct(self, store):
        a = submit_n(store, 3, owner="alice")
        b = submit_n(store, 3, owner="bob")
        assert len(a.inserted) == 3 and len(b.inserted) == 3
        assert store.counts()["ready"] == 6

    def test_explicit_key_wins(self, store):
        spec = JobSpec(name="x", spec={"i": 1}, key="fixed")
        first = store.submit([spec])
        other = JobSpec(name="y", spec={"i": 2}, key="fixed")
        again = store.submit([other])
        assert again.duplicates == first.inserted

    def test_job_key_is_content_derived(self):
        assert job_key("a", "n", "noop", {"x": 1}) == job_key(
            "a", "n", "noop", {"x": 1}
        )
        assert job_key("a", "n", "noop", {"x": 1}) != job_key(
            "a", "n", "noop", {"x": 2}
        )

    def test_staged_then_release(self, store):
        ids = submit_n(store, 4, ready=False).inserted
        assert store.counts()["staged"] == 4
        assert len(store.lease("l1", 10).jobs) == 0
        assert store.release(ids[:2]) == 2
        assert store.counts() == {
            **{state: 0 for state in JOB_STATES},
            "staged": 2, "ready": 2,
        }


class TestLeasing:
    def test_lease_claims_oldest_ready_first(self, store):
        ids = submit_n(store, 6).inserted
        lease = store.lease("l1", 4)
        assert [job.id for job in lease.jobs] == sorted(ids)[:4]
        for job in lease.jobs:
            assert job.state == "running"
            assert job.attempts == 1
            assert job.launcher == "l1"

    def test_two_leases_partition_the_queue(self, store):
        submit_n(store, 6)
        first = store.lease("l1", 4)
        second = store.lease("l2", 4)
        ids_a = {job.id for job in first.jobs}
        ids_b = {job.id for job in second.jobs}
        assert len(ids_a) == 4 and len(ids_b) == 2
        assert not ids_a & ids_b

    def test_concurrent_leases_never_double_assign(self, tmp_path,
                                                   clock):
        with JobStore(tmp_path / "jobs.db", clock=clock) as seed:
            submit_n(seed, 200)
        claimed = {}

        def grab(name):
            got = []
            with JobStore(tmp_path / "jobs.db",
                          clock=clock) as local:
                while True:
                    lease = local.lease(name, 7)
                    if not lease.jobs:
                        break
                    got.extend(job.id for job in lease.jobs)
            claimed[name] = got

        threads = [
            threading.Thread(target=grab, args=(f"l{i}",))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        all_ids = [jid for ids in claimed.values() for jid in ids]
        assert len(all_ids) == 200
        assert len(set(all_ids)) == 200  # no double assignment

    def test_lease_expiry_requeues_jobs(self, store, clock):
        submit_n(store, 3)
        store.lease("dead", 3, ttl_s=30.0)
        clock.advance(10)
        assert store.expire_leases() == ([], [])
        clock.advance(25)
        requeued, failed = store.expire_leases()
        assert len(requeued) == 3 and failed == []
        assert store.counts()["ready"] == 3
        # the re-lease sees attempts carried over
        again = store.lease("alive", 3)
        assert all(job.attempts == 2 for job in again.jobs)

    def test_expiry_exhausts_attempts_to_failed(self, store, clock):
        submit_n(store, 1, max_attempts=2)
        store.lease("l1", 1, ttl_s=5.0)
        clock.advance(6)
        assert store.expire_leases()[0] != []
        store.lease("l2", 1, ttl_s=5.0)
        clock.advance(6)
        requeued, failed = store.expire_leases()
        assert requeued == [] and len(failed) == 1
        job = store.job(failed[0])
        assert job.state == "failed"
        assert "lease expired" in job.result["error"]

    def test_heartbeat_extends_the_lease(self, store, clock):
        submit_n(store, 2)
        lease = store.lease("l1", 2, ttl_s=10.0)
        clock.advance(8)
        refreshed, cancels = store.heartbeat(lease.lease_id,
                                             ttl_s=10.0)
        assert refreshed == 2 and cancels == []
        clock.advance(8)  # 16s after lease, 8s after heartbeat
        assert store.expire_leases() == ([], [])
        clock.advance(3)
        assert len(store.expire_leases()[0]) == 2

    def test_stale_lease_cannot_complete(self, store, clock):
        job_id = submit_n(store, 1).inserted[0]
        old = store.lease("dead", 1, ttl_s=5.0)
        clock.advance(6)
        store.expire_leases()
        new = store.lease("alive", 1)
        with pytest.raises(JobStoreError) as excinfo:
            store.complete(job_id, old.lease_id, {"digest": "x"})
        assert excinfo.value.code == "JOB003"
        # the rightful owner still can
        store.complete(job_id, new.lease_id, {"digest": "y"})
        assert store.job(job_id).result == {"digest": "y"}


class TestStateMachine:
    def test_legal_transition_table_shape(self):
        for source, target in LEGAL_TRANSITIONS:
            assert source in JOB_STATES and target in JOB_STATES
        # terminal states have no outgoing edges
        assert not [
            edge for edge in LEGAL_TRANSITIONS
            if edge[0] in ("done", "failed", "cancelled")
        ]

    def test_ready_cannot_jump_to_done(self, store):
        job_id = submit_n(store, 1).inserted[0]
        with pytest.raises(JobStoreError) as excinfo:
            store.complete(job_id, None)
        assert excinfo.value.code == "JOB002"
        assert store.job(job_id).state == "ready"

    def test_done_is_terminal(self, store):
        job_id = submit_n(store, 1).inserted[0]
        lease = store.lease("l1", 1)
        store.complete(job_id, lease.lease_id)
        with pytest.raises(JobStoreError) as excinfo:
            store.fail(job_id, None, "late failure")
        assert excinfo.value.code == "JOB002"
        assert store.job(job_id).state == "done"

    def test_staged_cannot_be_leased_or_completed(self, store):
        job_id = submit_n(store, 1, ready=False).inserted[0]
        assert store.lease("l1", 5).jobs == []
        with pytest.raises(JobStoreError) as excinfo:
            store.complete(job_id, None)
        assert excinfo.value.code == "JOB002"

    def test_unknown_job(self, store):
        with pytest.raises(JobStoreError) as excinfo:
            store.job(999)
        assert excinfo.value.code == "JOB001"
        with pytest.raises(JobStoreError):
            store.complete(999, "lease")

    def test_failure_retries_until_attempts_exhausted(self, store):
        job_id = submit_n(store, 1, max_attempts=2).inserted[0]
        lease = store.lease("l1", 1)
        assert store.fail(job_id, lease.lease_id, "boom") == "ready"
        lease = store.lease("l1", 1)
        assert store.fail(job_id, lease.lease_id, "boom") == "failed"
        job = store.job(job_id)
        assert job.state == "failed" and job.attempts == 2

    def test_fail_without_retry_is_final(self, store):
        job_id = submit_n(store, 1).inserted[0]
        lease = store.lease("l1", 1)
        state = store.fail(job_id, lease.lease_id, "fatal",
                           retry=False)
        assert state == "failed"


class TestCancellation:
    def test_cancel_queued_jobs_by_tag(self, store):
        submit_n(store, 4, tags=("nightly",))
        submit_n(store, 2, tags=("other",), owner="bob")
        cancelled, requested = store.cancel(tag="nightly")
        assert (cancelled, requested) == (4, 0)
        assert store.counts()["cancelled"] == 4
        assert store.counts(tag="other")["ready"] == 2

    def test_cancel_running_is_a_request(self, store):
        job_id = submit_n(store, 1, owner="alice").inserted[0]
        lease = store.lease("l1", 1)
        cancelled, requested = store.cancel(owner="alice")
        assert (cancelled, requested) == (0, 1)
        assert store.job(job_id).state == "running"
        refreshed, cancels = store.heartbeat(lease.lease_id)
        assert cancels == [job_id]
        store.cancel_leased(job_id, lease.lease_id)
        assert store.job(job_id).state == "cancelled"

    def test_cancelled_jobs_are_not_leased(self, store):
        ids = submit_n(store, 3).inserted
        store.cancel(ids[:2])
        lease = store.lease("l1", 10)
        assert [job.id for job in lease.jobs] == [ids[2]]


class TestQueriesAndGc:
    def test_list_jobs_filters(self, store):
        submit_n(store, 3, owner="alice", tags=("a",))
        submit_n(store, 2, owner="bob", tags=("b",))
        assert len(store.list_jobs(owner="alice")) == 3
        assert len(store.list_jobs(tag="b")) == 2
        assert len(store.list_jobs(state="ready", limit=4)) == 4
        assert store.list_jobs(owner="alice", tag="b") == []

    def test_record_round_trip(self, store):
        job_id = store.submit(
            [JobSpec(name="n", kind="graph",
                     spec={"seed": 4, "tasks": 5})],
            owner="alice", tags=("x", "y"),
        ).inserted[0]
        job = store.job(job_id)
        assert job.name == "n" and job.kind == "graph"
        assert job.spec == {"seed": 4, "tasks": 5}
        assert job.tags == ("x", "y")
        assert job.owner == "alice"

    def test_gc_prunes_terminal_and_orphans(self, store):
        done_id, orphan_id, live_id = submit_n(store, 3).inserted
        lease = store.lease("l1", 1)
        store.complete(done_id, lease.lease_id)
        store.bind_run(orphan_id, "job-gone")
        store.bind_run(live_id, "job-live")
        finished, orphans = store.gc(live_run_ids=["job-live"])
        assert (finished, orphans) == (1, 1)
        remaining = [job.id for job in store.list_jobs()]
        assert remaining == [live_id]

    def test_gc_without_runstore_keeps_bound_jobs(self, store):
        job_id = submit_n(store, 1).inserted[0]
        store.bind_run(job_id, "job-x")
        assert store.gc() == (0, 0)
        assert store.job(job_id).id == job_id

    def test_schema_version_skew_is_rejected(self, tmp_path, clock):
        path = tmp_path / "jobs.db"
        with JobStore(path, clock=clock) as jobstore:
            with jobstore._write():
                jobstore._conn.execute(
                    "UPDATE meta SET value='99' "
                    "WHERE key='schema_version'"
                )
        with pytest.raises(JobStoreError) as excinfo:
            JobStore(path, clock=clock)
        assert excinfo.value.code == "JOB004"

    def test_reopen_preserves_jobs(self, tmp_path, clock):
        path = tmp_path / "jobs.db"
        with JobStore(path, clock=clock) as jobstore:
            submit_n(jobstore, 5)
        with JobStore(path, clock=clock) as jobstore:
            assert jobstore.counts()["ready"] == 5
