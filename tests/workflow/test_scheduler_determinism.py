"""Scheduler tie-break determinism.

The documented contract (see :mod:`repro.workflow.scheduler`): equal-
priority ready tasks dispatch in ready-queue insertion order, and the
order is identical across identical runs. This is the foundation the
RACE004 nondeterminism hazard and the byte-identical sanitizer
reports stand on.
"""

from repro.obs import observe, session
from repro.workflow.graph import DataObject, TaskGraph, WorkflowTask
from repro.workflow.scheduler import make_policy
from repro.workflow.server import SCHED_CATEGORY, WorkflowServer
from repro.workflow.worker import Worker


def tied_graph(num_tasks: int = 6) -> TaskGraph:
    """Independent equal-duration tasks: every pair is a tie."""
    graph = TaskGraph("tied")
    graph.add_object(DataObject("seed"))
    for index in range(num_tasks):
        graph.add_task(WorkflowTask(
            f"t{index}", inputs=["seed"], outputs=[f"o{index}"],
            duration_s=0.01,
        ))
    return graph


def dispatch_order(policy_name: str):
    """Task names in the order the dispatcher launched them."""
    graph = tied_graph()
    # one single-slot worker: ties resolved purely by the policy
    workers = [Worker("w0", node_name="n0", cpus=1)]
    obs = session(deterministic=True)
    with observe(obs):
        server = WorkflowServer(
            workers, policy=make_policy(policy_name)
        )
        server.run(graph)
    return [
        event.args["task"]
        for event in obs.tracer.instants(SCHED_CATEGORY)
        if event.name == "dispatch"
    ]


class TestTieBreakDeterminism:
    def test_ties_dispatch_in_insertion_order(self):
        # all tasks ready at t=0 with equal b-levels: the stable sort
        # must preserve the ready-queue (topological) insertion order
        for policy in ("fifo", "b-level", "locality"):
            order = dispatch_order(policy)
            assert order == [f"t{i}" for i in range(6)], policy

    def test_identical_runs_dispatch_identically(self):
        for policy in ("fifo", "b-level", "locality"):
            assert dispatch_order(policy) == dispatch_order(policy), \
                policy

    def test_priority_still_beats_insertion_order(self):
        # a longer task outranks earlier-inserted ties under b-level
        graph = tied_graph()
        graph.add_task(WorkflowTask(
            "heavy", inputs=["seed"], outputs=["oh"], duration_s=1.0,
        ))
        workers = [Worker("w0", node_name="n0", cpus=1)]
        obs = session(deterministic=True)
        with observe(obs):
            WorkflowServer(
                workers, policy=make_policy("b-level")
            ).run(graph)
        order = [
            event.args["task"]
            for event in obs.tracer.instants(SCHED_CATEGORY)
            if event.name == "dispatch"
        ]
        assert order[0] == "heavy"
        assert order[1:] == [f"t{i}" for i in range(6)]
