"""Tests for workers, scheduling policies and the workflow server."""

import pytest

from repro.errors import WorkflowError
from repro.platform.topology import Tier, build_reference_ecosystem
from repro.workflow.graph import DataObject, TaskGraph, WorkflowTask
from repro.workflow.scheduler import (
    BLevelScheduler,
    FIFOScheduler,
    LocalityScheduler,
    make_policy,
)
from repro.workflow.server import WorkflowServer
from repro.workflow.worker import Worker


def chain_and_fan() -> TaskGraph:
    """A long chain plus many independent short tasks."""
    graph = TaskGraph("mix")
    graph.add_object(DataObject("in", size_bytes=1000))
    previous = "in"
    for index in range(4):
        graph.add_task(WorkflowTask(
            f"chain{index}", inputs=[previous],
            outputs=[f"c{index}"], duration_s=1.0,
        ))
        previous = f"c{index}"
    for index in range(8):
        graph.add_task(WorkflowTask(
            f"leaf{index}", inputs=["in"],
            outputs=[f"l{index}"], duration_s=0.25,
        ))
    return graph


def pool(count=2, cpus=1):
    return [
        Worker(f"w{i}", node_name=f"n{i}", cpus=cpus)
        for i in range(count)
    ]


class TestWorker:
    def test_acquire_release(self):
        worker = Worker("w", node_name="n", cpus=2)
        worker.acquire(2)
        assert worker.free_cpus == 0
        worker.release(1)
        assert worker.free_cpus == 1

    def test_over_acquire_rejected(self):
        worker = Worker("w", node_name="n", cpus=1)
        worker.acquire(1)
        with pytest.raises(WorkflowError):
            worker.acquire(1)

    def test_over_release_rejected(self):
        worker = Worker("w", node_name="n", cpus=1)
        with pytest.raises(WorkflowError):
            worker.release(1)

    def test_speed_factor_scales_time(self):
        fast = Worker("f", node_name="n", cpus=1, speed_factor=2.0)
        assert fast.execution_time(1.0) == pytest.approx(0.5)


class TestServerExecution:
    def test_all_tasks_complete(self):
        server = WorkflowServer(pool(3))
        trace = server.run(chain_and_fan())
        assert len(trace.records) == 12

    def test_makespan_at_least_critical_path(self):
        graph = chain_and_fan()
        server = WorkflowServer(pool(8))
        trace = server.run(graph)
        assert trace.makespan >= graph.critical_path_length() - 1e-9

    def test_makespan_at_most_serial(self):
        graph = chain_and_fan()
        server = WorkflowServer(pool(4))
        trace = server.run(graph)
        assert trace.makespan <= graph.total_work() + 1e-9

    def test_single_worker_serializes(self):
        graph = chain_and_fan()
        server = WorkflowServer(pool(1))
        trace = server.run(graph)
        # one worker, one slot: makespan == total work (+ staging 0,
        # data starts on the only worker)
        assert trace.makespan == pytest.approx(graph.total_work())

    def test_dependencies_respected(self):
        graph = chain_and_fan()
        server = WorkflowServer(pool(4))
        trace = server.run(graph)
        ends = {r.task: r.end for r in trace.records}
        starts = {r.task: r.start for r in trace.records}
        for index in range(1, 4):
            assert starts[f"chain{index}"] >= \
                ends[f"chain{index - 1}"] - 1e-9

    def test_parallelism_helps(self):
        graph = chain_and_fan()
        slow = WorkflowServer(pool(1)).run(graph)
        fast = WorkflowServer(pool(4)).run(graph)
        assert fast.makespan < slow.makespan

    def test_faster_worker_preferred_by_blevel(self):
        graph = chain_and_fan()
        workers = [
            Worker("slow", node_name="a", cpus=1, speed_factor=1.0),
            Worker("fast", node_name="b", cpus=1, speed_factor=4.0),
        ]
        server = WorkflowServer(workers, policy=BLevelScheduler())
        trace = server.run(graph)
        counts = trace.per_worker_counts()
        assert counts.get("fast", 0) >= counts.get("slow", 0)

    def test_utilization_bounds(self):
        graph = chain_and_fan()
        server = WorkflowServer(pool(2))
        trace = server.run(graph)
        utilization = trace.utilization(server.total_slots())
        assert 0.0 < utilization <= 1.0

    def test_empty_worker_pool_rejected(self):
        with pytest.raises(WorkflowError):
            WorkflowServer([])

    def test_duplicate_worker_names_rejected(self):
        with pytest.raises(WorkflowError):
            WorkflowServer([
                Worker("w", node_name="a"), Worker("w", node_name="b"),
            ])


class TestPolicies:
    def test_factory(self):
        assert isinstance(make_policy("fifo"), FIFOScheduler)
        assert isinstance(make_policy("b-level"), BLevelScheduler)
        assert isinstance(make_policy("locality"), LocalityScheduler)
        with pytest.raises(ValueError):
            make_policy("round-robin")

    def test_blevel_beats_fifo_on_adversarial_graph(self):
        """FIFO picks short leaves first and delays the critical chain."""
        graph = TaskGraph("adversarial")
        graph.add_object(DataObject("in"))
        # leaves first so FIFO grabs them before the chain
        for index in range(6):
            graph.add_task(WorkflowTask(
                f"leaf{index}", inputs=["in"],
                outputs=[f"l{index}"], duration_s=1.0,
            ))
        previous = "in"
        for index in range(3):
            graph.add_task(WorkflowTask(
                f"chain{index}", inputs=[previous],
                outputs=[f"c{index}"], duration_s=2.0,
            ))
            previous = f"c{index}"
        fifo = WorkflowServer(pool(2), policy=FIFOScheduler()).run(graph)
        blevel = WorkflowServer(pool(2),
                                policy=BLevelScheduler()).run(graph)
        assert blevel.makespan <= fifo.makespan

    def test_locality_reduces_movement_on_ecosystem(self):
        eco = build_reference_ecosystem()
        graph = TaskGraph("edge-data")
        graph.add_object(DataObject("sensor", size_bytes=10**6,
                                    locality="edge-0"))
        for index in range(4):
            graph.add_task(WorkflowTask(
                f"t{index}", inputs=["sensor"],
                outputs=[f"o{index}"], duration_s=0.01,
            ))

        def workers():
            return [
                Worker("edge-w", node_name="edge-0", cpus=4),
                Worker("cloud-w", node_name="power9-0", cpus=4),
            ]

        fifo = WorkflowServer(
            workers(), ecosystem=eco, policy=FIFOScheduler()
        ).run(graph)
        locality = WorkflowServer(
            workers(), ecosystem=eco, policy=LocalityScheduler()
        ).run(graph)
        assert locality.bytes_moved <= fifo.bytes_moved
        assert locality.total_transfer_seconds() <= \
            fifo.total_transfer_seconds() + 1e-9

    def test_trace_wait_accounting(self):
        graph = chain_and_fan()
        trace = WorkflowServer(pool(1)).run(graph)
        assert trace.average_wait() > 0.0
