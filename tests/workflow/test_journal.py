"""Robustness suite for the write-ahead run journal.

What a journal must survive, detect, or refuse:

* a **torn final record** — the crash interrupted the last append —
  is silently dropped (that is the only damage a single-``write``
  append discipline allows);
* **corruption anywhere else** (bit flips, truncated middles,
  sequence gaps) raises the ``WF007`` diagnostic naming the byte
  offset of the bad record;
* a journal or snapshot written by **another format version** is
  rejected with ``WF008`` instead of being misread;
* for any prefix/suffix split, **snapshot + replay(tail) equals
  replay(full journal)** — the property that makes O(tail) resume
  sound (pinned with hypothesis over generated runs and split points);
* ``checkpoint`` / ``rollback_to_checkpoint`` truncate the run back
  to a named marker, in memory and on disk.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosConfig, generate_schedule, random_task_graph
from repro.errors import JournalError
from repro.workflow.journal import (
    JOURNAL_FILE,
    JOURNAL_VERSION,
    RunJournal,
    encode_record,
    list_snapshots,
    read_records,
    read_snapshot,
    replay_journal,
    rollback_journal,
    write_snapshot,
)
from repro.workflow.recovery import ResilientServer
from repro.workflow.replay import ReplayState, replay_records
from repro.workflow.runstore import RunStore

from tests.chaos.conftest import make_pool

CONFIG = ChaosConfig(crashes=1, link_faults=1, reconfig_faults=0,
                     stragglers=1, task_faults=1)


def journaled_run(directory, graph_seed=0, fault_seed=0,
                  snapshot_every=20):
    """One durable chaos run; returns its decoded journal records."""
    graph = random_task_graph(graph_seed, num_tasks=8)
    pool = make_pool(3)
    schedule = generate_schedule(
        graph, [w.name for w in pool], fault_seed, CONFIG
    )
    with RunJournal(directory, snapshot_every=snapshot_every) as journal:
        ResilientServer(pool).run(
            graph, chaos=schedule, journal=journal
        )
    records, torn = read_records(directory / JOURNAL_FILE)
    assert not torn
    return records


# ----------------------------------------------------------------------
# record-level robustness
# ----------------------------------------------------------------------


def test_torn_final_record_is_tolerated(tmp_path):
    journaled_run(tmp_path)
    path = tmp_path / JOURNAL_FILE
    lines = path.read_bytes().splitlines(keepends=True)
    path.write_bytes(b"".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
    records, torn = read_records(path)
    assert torn
    assert len(records) == len(lines) - 1
    # and replay still works off the intact prefix
    state, info = replay_journal(tmp_path)
    assert info.torn_tail
    assert state.last_seq == len(lines) - 2


def test_midfile_corruption_names_the_byte_offset(tmp_path):
    journaled_run(tmp_path)
    path = tmp_path / JOURNAL_FILE
    raw = path.read_bytes()
    lines = raw.splitlines(keepends=True)
    victim = len(lines) // 2
    offset = sum(len(line) for line in lines[:victim])
    # flip one byte inside the victim record's payload
    mutated = bytearray(raw)
    mutated[offset + 20] ^= 0xFF
    path.write_bytes(bytes(mutated))
    with pytest.raises(JournalError) as caught:
        read_records(path)
    assert caught.value.code == "WF007"
    assert f"byte offset {offset}" in str(caught.value)
    assert f"record {victim}" in str(caught.value)


def test_sequence_gap_is_corruption(tmp_path):
    records = journaled_run(tmp_path)
    path = tmp_path / JOURNAL_FILE
    kept = [r for r in records if r["seq"] != 5]  # drop one mid-file
    path.write_text("\n".join(
        encode_record(r["seq"], r["type"], r["data"]) for r in kept
    ) + "\n", encoding="utf-8")
    with pytest.raises(JournalError) as caught:
        read_records(path)
    assert caught.value.code == "WF007"
    assert "sequence gap" in str(caught.value)


def test_journal_version_skew_is_rejected(tmp_path):
    records = journaled_run(tmp_path)
    header = records[0]
    assert header["type"] == "header"
    data = dict(header["data"])
    data["journal_version"] = JOURNAL_VERSION + 1
    lines = [encode_record(0, "header", data)] + [
        encode_record(r["seq"], r["type"], r["data"])
        for r in records[1:]
    ]
    (tmp_path / JOURNAL_FILE).write_text(
        "\n".join(lines) + "\n", encoding="utf-8"
    )
    with pytest.raises(JournalError) as caught:
        read_records(tmp_path / JOURNAL_FILE)
    assert caught.value.code == "WF008"
    assert f"v{JOURNAL_VERSION + 1}" in str(caught.value)


def test_snapshot_version_skew_is_rejected(tmp_path):
    journaled_run(tmp_path)
    snapshots = list_snapshots(tmp_path)
    assert snapshots, "run too small to snapshot"
    _seq, path = snapshots[0]
    payload = json.loads(path.read_text(encoding="utf-8"))
    payload["snapshot_version"] = 99
    path.write_text(json.dumps(payload), encoding="utf-8")
    with pytest.raises(JournalError) as caught:
        read_snapshot(path)
    assert caught.value.code == "WF008"


def test_corrupt_snapshot_falls_back_to_full_replay(tmp_path):
    """A truncated snapshot is not trusted: replay must either use an
    older snapshot or fold the whole journal, never half a state."""
    journaled_run(tmp_path)
    full, _ = replay_journal(tmp_path, use_snapshots=False)
    for _seq, path in list_snapshots(tmp_path):
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2], encoding="utf-8")
    state, info = replay_journal(tmp_path)
    assert info.snapshot_seq == -1  # none usable
    assert state.to_dict() == full.to_dict()


# ----------------------------------------------------------------------
# the snapshot + tail == full replay property
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def recorded_runs(tmp_path_factory):
    """Journal records of three distinct chaos runs (module-cached)."""
    runs = []
    for graph_seed, fault_seed in ((0, 0), (1, 1), (2, 0)):
        directory = tmp_path_factory.mktemp(
            f"journal-{graph_seed}-{fault_seed}"
        )
        runs.append(journaled_run(
            directory, graph_seed, fault_seed
        ))
    return runs


@settings(max_examples=60, deadline=None)
@given(run=st.integers(min_value=0, max_value=2), data=st.data())
def test_snapshot_plus_tail_equals_full_replay(recorded_runs, run, data):
    records = recorded_runs[run]
    split = data.draw(
        st.integers(min_value=0, max_value=len(records) - 1),
        label="split",
    )
    full = replay_records(records)
    prefix = replay_records(records[: split + 1])
    resumed = replay_records(
        records, state=ReplayState.from_dict(prefix.to_dict()),
        after_seq=split,
    )
    assert resumed.to_dict() == full.to_dict()


def test_on_disk_snapshot_matches_full_replay(tmp_path):
    """The same property end-to-end through the snapshot files the
    journal actually wrote during the run."""
    journaled_run(tmp_path, snapshot_every=15)
    with_snapshots, info = replay_journal(tmp_path, use_snapshots=True)
    without, _ = replay_journal(tmp_path, use_snapshots=False)
    assert info.snapshot_seq >= 0
    assert info.records_replayed < info.records_total
    assert with_snapshots.to_dict() == without.to_dict()


# ----------------------------------------------------------------------
# checkpoints and rollback
# ----------------------------------------------------------------------


def test_rollback_to_checkpoint(tmp_path):
    with RunJournal(tmp_path, snapshot_every=0) as journal:
        journal.start({"graph": "toy", "tasks": 0})
        journal.append("event", {"name": "a", "category": "x",
                                 "phase": "i", "ts": 0.0, "dur": 0.0,
                                 "args": {}})
        mark = journal.checkpoint("pre:risky")
        journal.append("event", {"name": "b", "category": "x",
                                 "phase": "i", "ts": 1.0, "dur": 0.0,
                                 "args": {}})
        journal.append("event", {"name": "c", "category": "x",
                                 "phase": "i", "ts": 2.0, "dur": 0.0,
                                 "args": {}})
        state = journal.rollback_to_checkpoint("pre:risky")
        assert state.last_seq == mark
        assert state.events == 1  # b and c are gone
        # the journal keeps appending from the checkpoint
        journal.append("event", {"name": "b2", "category": "x",
                                 "phase": "i", "ts": 1.5, "dur": 0.0,
                                 "args": {}})
    records, torn = read_records(tmp_path / JOURNAL_FILE)
    assert not torn
    assert [r["seq"] for r in records] == list(range(len(records)))
    assert records[-1]["data"]["name"] == "b2"
    state, _ = replay_journal(tmp_path)
    assert state.events == 2  # a and b2


def test_rollback_unknown_label_raises(tmp_path):
    journaled_run(tmp_path)
    with pytest.raises(JournalError) as caught:
        rollback_journal(tmp_path, "never-checkpointed")
    assert caught.value.code == "WF007"


def test_rollback_drops_later_snapshots(tmp_path):
    with RunJournal(tmp_path, snapshot_every=0) as journal:
        journal.start({"graph": "toy"})
        journal.checkpoint("safe")
        for index in range(3):
            journal.append("event", {"name": f"e{index}",
                                     "category": "x", "phase": "i",
                                     "ts": float(index), "dur": 0.0,
                                     "args": {}})
        journal.snapshot()
        before = {seq for seq, _ in list_snapshots(tmp_path)}
        journal.rollback_to_checkpoint("safe")
        after = {seq for seq, _ in list_snapshots(tmp_path)}
    assert max(before) > max(after)


# ----------------------------------------------------------------------
# the run store
# ----------------------------------------------------------------------


def test_runstore_roundtrip_and_gc(tmp_path):
    store = RunStore(tmp_path)
    run_id, journal = store.create_run(
        "chaos", {"graph_seed": 0}, snapshot_every=20
    )
    graph = random_task_graph(0, num_tasks=8)
    pool = make_pool(3)
    schedule = generate_schedule(
        graph, [w.name for w in pool], 0, CONFIG
    )
    with journal:
        ResilientServer(pool).run(graph, chaos=schedule, journal=journal)
    rows = store.list_runs()
    assert [row.run_id for row in rows] == [run_id]
    assert rows[0].status == "complete"
    assert rows[0].state.digest
    # duplicate ids are refused
    with pytest.raises(JournalError):
        store.create_run("chaos", {}, run_id=run_id)
    assert store.gc() == [run_id]
    assert store.list_runs() == []


def test_runstore_prepare_resume_archives_the_crash(tmp_path):
    store = RunStore(tmp_path)
    run_id, journal = store.create_run("chaos", {"graph_seed": 1})
    with journal:
        journal.start({"graph": "toy"})
        journal.append("event", {"name": "a", "category": "x",
                                 "phase": "i", "ts": 0.0, "dur": 0.0,
                                 "args": {}})
    meta, state, fresh = store.prepare_resume(run_id)
    with fresh:
        assert meta["attempts"] == 2
        assert not state.finished
        assert state.events == 1
        directory = store.run_dir(run_id)
        assert (directory / "archive-1" / JOURNAL_FILE).exists()
        assert not (directory / JOURNAL_FILE).exists()
        # in-flight runs survive a default gc
        assert store.gc() == []
        assert store.gc(completed_only=False) == [run_id]


def test_write_snapshot_is_atomic_and_checksummed(tmp_path):
    state = ReplayState(events=3, last_seq=7)
    path = write_snapshot(tmp_path, 7, state)
    loaded = read_snapshot(path)
    assert loaded is not None
    seq, reloaded = loaded
    assert seq == 7
    assert reloaded.to_dict() == state.to_dict()
    # flip a byte: the snapshot silently degrades to unusable
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    path.write_bytes(bytes(raw))
    assert read_snapshot(path) is None
