"""Worker slot accounting, reset, and slowdown-aware execution time."""

import pytest

from repro.errors import WorkflowError
from repro.platform.node import Node
from repro.workflow.worker import Worker


def make_worker(cpus=4, **kwargs) -> Worker:
    return Worker("w0", node_name="n0", cpus=cpus, **kwargs)


class TestAcquire:
    def test_acquire_and_free_counts(self):
        worker = make_worker(cpus=4)
        worker.acquire(3)
        assert worker.busy_cpus == 3
        assert worker.free_cpus == 1
        assert worker.can_run(1)
        assert not worker.can_run(2)

    def test_zero_request_rejected(self):
        worker = make_worker()
        with pytest.raises(WorkflowError, match="must be positive"):
            worker.acquire(0)
        assert worker.busy_cpus == 0

    def test_negative_request_rejected(self):
        worker = make_worker()
        with pytest.raises(WorkflowError, match="must be positive"):
            worker.acquire(-2)
        assert worker.busy_cpus == 0

    def test_over_capacity_rejected(self):
        worker = make_worker(cpus=2)
        worker.acquire(2)
        with pytest.raises(WorkflowError, match="only 0 free"):
            worker.acquire(1)
        assert worker.busy_cpus == 2


class TestRelease:
    def test_release_returns_slots(self):
        worker = make_worker(cpus=4)
        worker.acquire(4)
        worker.release(3)
        assert worker.free_cpus == 3

    def test_zero_release_rejected(self):
        worker = make_worker()
        worker.acquire(1)
        with pytest.raises(WorkflowError, match="must be positive"):
            worker.release(0)
        assert worker.busy_cpus == 1

    def test_negative_release_rejected(self):
        """A negative release would silently inflate capacity."""
        worker = make_worker(cpus=2)
        worker.acquire(1)
        with pytest.raises(WorkflowError, match="must be positive"):
            worker.release(-3)
        assert worker.busy_cpus == 1
        assert worker.free_cpus == 1

    def test_over_release_rejected(self):
        worker = make_worker()
        worker.acquire(1)
        with pytest.raises(WorkflowError, match="only 1 busy"):
            worker.release(2)
        assert worker.busy_cpus == 1

    def test_release_without_acquire_rejected(self):
        worker = make_worker()
        with pytest.raises(WorkflowError, match="only 0 busy"):
            worker.release(1)


class TestReset:
    def test_reset_clears_runtime_state(self):
        worker = make_worker(cpus=4)
        worker.acquire(2)
        worker.store.update({"a", "b"})
        worker.slowdown = 3.0
        worker.tasks_executed = 5
        worker.reset()
        assert worker.busy_cpus == 0
        assert worker.store == set()
        assert worker.slowdown == 1.0
        # lifetime counters survive a restart
        assert worker.tasks_executed == 5


class TestExecutionTime:
    def test_nominal(self):
        assert make_worker().execution_time(2.0) == 2.0

    def test_speed_factor_divides(self):
        worker = make_worker(speed_factor=2.0)
        assert worker.execution_time(2.0) == 1.0

    def test_worker_slowdown_multiplies(self):
        worker = make_worker()
        worker.slowdown = 4.0
        assert worker.execution_time(1.5) == 6.0

    def test_node_slowdown_compounds(self):
        node = Node(name="n0")
        node.apply_slowdown(2.0)
        worker = make_worker(node=node)
        worker.slowdown = 3.0
        assert worker.execution_time(1.0) == pytest.approx(6.0)
        node.clear_slowdown()
        assert worker.execution_time(1.0) == pytest.approx(3.0)
