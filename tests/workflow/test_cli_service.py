"""CLI surface of the workflow service: every `repro service` command.

Drives ``repro service init|submit|status|launch|cancel`` (and
``repro runs gc --db``) exactly the way the two-terminal demo in the
README and the operator guide in docs/SERVICE.md do, through
:func:`repro.cli.main`, asserting on the printed contract users see.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.workflow.jobstore import JobSpec, JobStore


@pytest.fixture()
def db(tmp_path):
    return str(tmp_path / "jobs.db")


def submit_args(db, count=4, *extra):
    return [
        "service", "submit", "--db", db, "--count", str(count),
        "--kind", "chaos", "--tasks", "9", "--owner", "alice",
        "--tag", "nightly", *extra,
    ]


class TestServiceCLI:
    def test_init_creates_the_store(self, db, capsys):
        assert main(["service", "init", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "job store ready" in out
        assert "schema v1" in out

    def test_submit_then_duplicate_submit(self, db, capsys):
        assert main(submit_args(db)) == 0
        assert "submitted 4 ready job(s), 0 duplicate(s)" in (
            capsys.readouterr().out
        )
        # byte-identical resubmission is a no-op
        assert main(submit_args(db)) == 0
        assert "submitted 0 ready job(s), 4 duplicate(s)" in (
            capsys.readouterr().out
        )

    def test_submit_staged_and_status_tables(self, db, capsys):
        assert main(submit_args(db, 3, "--staged")) == 0
        assert "3 staged job(s)" in capsys.readouterr().out
        assert main(["service", "status", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "staged" in out and "nightly" not in out
        assert f"job store {db}" in out

    def test_status_json_with_filters(self, db, capsys):
        main(submit_args(db))
        main(["service", "submit", "--db", db, "--count", "2",
              "--kind", "noop", "--owner", "bob"])
        capsys.readouterr()
        assert main([
            "service", "status", "--db", db, "--owner", "alice",
            "--tag", "nightly", "--state", "ready", "--limit", "10",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["ready"] == 4
        assert len(payload["jobs"]) == 4
        for job in payload["jobs"]:
            assert job["owner"] == "alice"
            assert job["tags"] == ["nightly"]
            assert job["state"] == "ready"

    def test_launch_drains_and_reports(self, db, capsys):
        main(submit_args(db, 3))
        capsys.readouterr()
        assert main([
            "service", "launch", "--db", db, "--launcher-id", "l0",
            "--lease-size", "2", "--lease-ttl", "60",
            "--heartbeat-every", "2", "--exit-on-idle",
        ]) == 0
        out = capsys.readouterr().out
        assert "launcher l0: 3 completed, 0 failed" in out
        assert main(["service", "status", "--db", db,
                     "--state", "done"]) == 0
        out = capsys.readouterr().out
        assert out.count("done") >= 3

    def test_launch_max_jobs(self, db, capsys):
        main(submit_args(db, 5))
        capsys.readouterr()
        assert main(["service", "launch", "--db", db,
                     "--launcher-id", "l0", "--max-jobs", "2"]) == 0
        assert "2 completed" in capsys.readouterr().out

    def test_launch_exit_code_reports_failures(self, db, capsys):
        # an unknown kind can only arrive via the client API (the CLI
        # validates --kind), e.g. from a newer client version
        with JobStore(db) as store:
            store.submit([JobSpec(name="bad", kind="quantum",
                                  spec={}, max_attempts=1)])
        assert main(["service", "launch", "--db", db,
                     "--exit-on-idle"]) == 1
        assert "1 failed" in capsys.readouterr().out

    def test_durable_launch_and_runs_gc_db(self, db, tmp_path,
                                           capsys):
        runs = str(tmp_path / "runs")
        assert main(submit_args(db, 2, "--durable")) == 0
        assert main(["service", "launch", "--db", db,
                     "--journal-dir", runs, "--exit-on-idle"]) == 0
        capsys.readouterr()
        # each durable job left a journaled run named job-<id>
        assert main(["runs", "list", "--journal-dir", runs]) == 0
        out = capsys.readouterr().out
        assert "job-" in out and "service" in out

        # gc: journals of finished runs plus the finished job rows
        assert main(["runs", "gc", "--journal-dir", runs,
                     "--db", db]) == 0
        out = capsys.readouterr().out
        assert "pruned 2 finished and 0 orphaned job row(s)" in out
        assert main(["service", "status", "--db", db, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(count == 0
                   for count in payload["counts"].values())

    def test_cancel_by_tag_owner_and_id(self, db, capsys):
        ids = []
        with JobStore(db) as store:
            ids = store.submit(
                [JobSpec(name=f"n{i}", spec={"i": i})
                 for i in range(3)],
                owner="alice", tags=("nightly",),
            ).inserted
        capsys.readouterr()
        assert main(["service", "cancel", "--db", db,
                     "--job", str(ids[0])]) == 0
        assert "cancelled 1 queued job(s)" in (
            capsys.readouterr().out
        )
        assert main(["service", "cancel", "--db", db,
                     "--tag", "nightly"]) == 0
        assert "cancelled 2 queued job(s)" in (
            capsys.readouterr().out
        )
        assert main(["service", "cancel", "--db", db,
                     "--owner", "alice"]) == 0
        assert "cancelled 0 queued job(s)" in (
            capsys.readouterr().out
        )

    def test_cancel_requires_a_selector(self, db):
        with pytest.raises(SystemExit):
            main(["service", "cancel", "--db", db])

    def test_full_two_terminal_demo_round_trip(self, db, capsys):
        """The README quickstart, end to end in one process."""
        assert main(["service", "init", "--db", db]) == 0
        assert main([
            "service", "submit", "--db", db, "--count", "8",
            "--kind", "chaos", "--graph-seed", "0",
            "--fault-seed", "1", "--tasks", "9",
            "--owner", "alice", "--tag", "sweep",
        ]) == 0
        assert main(["service", "launch", "--db", db,
                     "--launcher-id", "l0", "--lease-size", "4",
                     "--exit-on-idle"]) == 0
        capsys.readouterr()
        assert main(["service", "status", "--db", db,
                     "--tag", "sweep", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["done"] == 8
        digests = [job["result"]["digest"]
                   for job in payload["jobs"]]
        assert len(digests) == 8
        assert all(len(digest) == 16 for digest in digests)
