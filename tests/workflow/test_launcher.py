"""Launcher contention and crash recovery — the service acceptance bar.

The two headline guarantees of the multi-tenant split, as tests:

* **zero double-executions** — two launchers draining one store
  complete a 1k-job workload with every job executed exactly once
  (the lease transaction is the only arbiter);
* **zero lost jobs** — a launcher killed mid-lease merely times out;
  its unfinished jobs are re-leased and completed by a survivor, and
  a durable chaos job interrupted mid-journal *resumes* on the second
  launcher with a trace digest byte-identical to the unbroken run
  (the PR 6 contract carried through the service layer).
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import observe, session
from repro.workflow.jobstore import JobSpec, JobStore
from repro.workflow.journal import JOURNAL_FILE
from repro.workflow.launcher import SERVICE_RUN_KIND, Launcher
from repro.workflow.runstore import RunStore

from tests.workflow.test_jobstore import FakeClock


CHAOS_SPEC = {
    "graph_seed": 2, "fault_seed": 1, "tasks": 9, "workers": 3,
}


def submit_noops(db_path, count, **kwargs):
    with JobStore(db_path) as store:
        return store.submit(
            [JobSpec(name=f"noop-{i}", spec={"i": i})
             for i in range(count)],
            **kwargs,
        )


def truncate(journal_path, keep_lines: int):
    """Crash simulation: keep only a prefix of the journal."""
    lines = journal_path.read_bytes().splitlines(keepends=True)
    journal_path.write_bytes(b"".join(lines[:keep_lines]))


class TestSingleLauncher:
    def test_drains_noop_jobs(self, tmp_path):
        db = tmp_path / "jobs.db"
        submit_noops(db, 10)
        stats = Launcher(db, lease_size=4).run()
        assert stats.completed == 10
        assert stats.failed == 0
        assert stats.leases == 3
        with JobStore(db) as store:
            assert store.drained()
            for job in store.list_jobs(state="done"):
                assert job.result["digest"]

    def test_executes_graph_and_chaos_kinds(self, tmp_path):
        db = tmp_path / "jobs.db"
        with JobStore(db) as store:
            store.submit([
                JobSpec(name="g", kind="graph",
                        spec={"seed": 3, "tasks": 6, "workers": 2}),
                JobSpec(name="c", kind="chaos", spec=CHAOS_SPEC),
            ])
        stats = Launcher(db).run()
        assert stats.completed == 2
        with JobStore(db) as store:
            for job in store.list_jobs(state="done"):
                assert len(job.result["digest"]) == 16
                assert job.result["makespan"] > 0

    def test_chaos_kind_is_seed_deterministic(self, tmp_path):
        digests = []
        for attempt in range(2):
            db = tmp_path / f"jobs-{attempt}.db"
            with JobStore(db) as store:
                store.submit([JobSpec(name="c", kind="chaos",
                                      spec=CHAOS_SPEC)])
            Launcher(db).run()
            with JobStore(db) as store:
                job = store.list_jobs(state="done")[0]
                digests.append(job.result["digest"])
        assert digests[0] == digests[1]

    def test_unknown_kind_fails_with_recorded_error(self, tmp_path):
        db = tmp_path / "jobs.db"
        with JobStore(db) as store:
            store.submit([JobSpec(name="bad", kind="quantum",
                                  spec={}, max_attempts=2)])
        stats = Launcher(db).run()
        assert stats.completed == 0
        assert stats.failed == 2  # retried once, then exhausted
        with JobStore(db) as store:
            job = store.list_jobs(state="failed")[0]
            assert "unknown job kind" in job.result["error"]
            assert job.attempts == 2

    def test_max_jobs_stops_early(self, tmp_path):
        db = tmp_path / "jobs.db"
        submit_noops(db, 10)
        stats = Launcher(db, lease_size=4).run(max_jobs=5)
        assert stats.executed == 5
        with JobStore(db) as store:
            counts = store.counts()
            assert counts["done"] == 5
            # the rest of the open lease is still held
            assert counts["running"] + counts["ready"] == 5

    def test_cancelled_jobs_are_skipped(self, tmp_path):
        db = tmp_path / "jobs.db"
        ids = submit_noops(db, 6).inserted
        with JobStore(db) as store:
            store.cancel(ids[:2])
        stats = Launcher(db).run()
        assert stats.completed == 4
        with JobStore(db) as store:
            assert store.counts()["cancelled"] == 2

    def test_emits_service_metrics(self, tmp_path):
        db = tmp_path / "jobs.db"
        with observe(session()):
            from repro.obs import current_metrics

            submit_noops(db, 6)
            Launcher(db, launcher_id="l0", lease_size=3).run()
            metrics = current_metrics()
            assert metrics.counter(
                "service.jobs_submitted").total() == 6
            assert metrics.counter(
                "service.jobs_leased").total() == 6
            assert metrics.counter(
                "service.jobs_completed").total() == 6
            assert metrics.histogram(
                "service.lease_seconds").count(launcher="l0") >= 2
            assert metrics.histogram(
                "service.job_seconds").count(kind="noop") == 6


class TestContention:
    def test_two_launchers_1k_jobs_zero_double_executions(
            self, tmp_path):
        db = tmp_path / "jobs.db"
        submit_noops(db, 1000)
        launchers = [
            Launcher(db, launcher_id=f"l{i}", lease_size=16)
            for i in range(2)
        ]
        stats = [None, None]

        def drain(index):
            stats[index] = launchers[index].run()

        threads = [
            threading.Thread(target=drain, args=(i,))
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        executed = stats[0].job_ids + stats[1].job_ids
        assert len(executed) == 1000, "every job executed"
        assert len(set(executed)) == 1000, "no job executed twice"
        # both launchers actually participated
        assert stats[0].completed > 0 and stats[1].completed > 0
        with JobStore(db) as store:
            assert store.drained()
            assert store.counts()["done"] == 1000


class TestCrashRecovery:
    def test_killed_launcher_loses_no_jobs(self, tmp_path):
        db = tmp_path / "jobs.db"
        clock = FakeClock()
        with JobStore(db, clock=clock) as store:
            store.submit([
                JobSpec(name=f"n{i}", spec={"i": i})
                for i in range(12)
            ])
        # launcher 1 dies after 5 jobs, mid-lease, without ever
        # reporting back — exactly what SIGKILL looks like
        dead = Launcher(db, launcher_id="dead", lease_size=8,
                        lease_ttl_s=30.0, clock=clock)
        stats = dead.run(crash_after=5)
        assert stats.crashed and stats.completed == 5
        with JobStore(db, clock=clock) as store:
            assert store.counts()["running"] == 3  # still leased

        clock.advance(31)  # the dead launcher's lease expires
        alive = Launcher(db, launcher_id="alive", lease_size=8,
                         clock=clock)
        stats2 = alive.run()
        assert not stats2.crashed
        with JobStore(db, clock=clock) as store:
            counts = store.counts()
            assert counts["done"] == 12, "no job was lost"
            assert counts["failed"] == 0
        # the two launchers together executed each job exactly once
        executed = stats.job_ids + stats2.job_ids
        assert len(set(executed)) == len(executed) == 12

    def test_durable_chaos_resumes_byte_identical(self, tmp_path):
        db = tmp_path / "jobs.db"
        runs = tmp_path / "runs"
        clock = FakeClock()
        spec = {**CHAOS_SPEC, "durable": True}
        with JobStore(db, clock=clock) as store:
            job_id = store.submit(
                [JobSpec(name="durable", kind="chaos", spec=spec)]
            ).inserted[0]

            # launcher 1 leases the job, journals and executes it —
            # then "crashes" before reporting: the result is
            # discarded and the lease left hanging
            dead = Launcher(db, launcher_id="dead",
                            run_store=RunStore(runs), clock=clock)
            lease = store.lease("dead", 1, ttl_s=30.0)
            result = dead.execute_job(lease.jobs[0], store)
            expected = result["digest"]

            # the crash also tore the journal: only the first third
            # of the run survives on disk
            journal = runs / f"job-{job_id}" / JOURNAL_FILE
            total = len(journal.read_bytes().splitlines())
            truncate(journal, total // 3)

            clock.advance(31)

        alive = Launcher(db, launcher_id="alive",
                         run_store=RunStore(runs), clock=clock)
        stats = alive.run()
        assert stats.completed == 1
        with JobStore(db, clock=clock) as store:
            job = store.job(job_id)
            assert job.state == "done"
            assert job.result["digest"] == expected, (
                "resumed digest must match the unbroken run"
            )
            assert job.result["resumed"] is True
            assert job.run_id == f"job-{job_id}"
        meta = RunStore(runs).load_meta(f"job-{job_id}")
        assert meta["kind"] == SERVICE_RUN_KIND
        assert meta["attempts"] == 2

    def test_finished_journal_short_circuits_reexecution(
            self, tmp_path):
        db = tmp_path / "jobs.db"
        runs = tmp_path / "runs"
        clock = FakeClock()
        spec = {**CHAOS_SPEC, "durable": True}
        with JobStore(db, clock=clock) as store:
            job_id = store.submit(
                [JobSpec(name="durable", kind="chaos", spec=spec)]
            ).inserted[0]
            # crash *after* the journal is complete but before the
            # store heard about it: the resume replays to the end
            # and returns without executing anything
            dead = Launcher(db, launcher_id="dead",
                            run_store=RunStore(runs), clock=clock)
            lease = store.lease("dead", 1, ttl_s=30.0)
            expected = dead.execute_job(lease.jobs[0],
                                        store)["digest"]
            clock.advance(31)

        alive = Launcher(db, launcher_id="alive",
                         run_store=RunStore(runs), clock=clock)
        assert alive.run().completed == 1
        with JobStore(db, clock=clock) as store:
            job = store.job(job_id)
            assert job.result["digest"] == expected
            assert job.result["resumed"] is True

    def test_nondurable_chaos_survives_relaunch_by_rerun(
            self, tmp_path):
        # without `durable` the job has no journal; recovery is a
        # plain re-execution, deterministic because the spec seeds it
        db = tmp_path / "jobs.db"
        clock = FakeClock()
        with JobStore(db, clock=clock) as store:
            store.submit([JobSpec(name="c", kind="chaos",
                                  spec=CHAOS_SPEC)])
            store.lease("dead", 1, ttl_s=30.0)  # claimed, never run
            clock.advance(31)
        stats = Launcher(db, launcher_id="alive", clock=clock).run()
        assert stats.completed == 1
        with JobStore(db, clock=clock) as store:
            job = store.list_jobs(state="done")[0]
            assert job.attempts == 2
            assert "resumed" not in job.result
