"""Tests for task graphs and data objects."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkflowError
from repro.workflow.graph import DataObject, TaskGraph, WorkflowTask


def diamond() -> TaskGraph:
    graph = TaskGraph("diamond")
    graph.add_object(DataObject("in", size_bytes=100))
    graph.add_task(WorkflowTask("a", inputs=["in"], outputs=["x"],
                                duration_s=1.0))
    graph.add_task(WorkflowTask("b", inputs=["x"], outputs=["y"],
                                duration_s=2.0))
    graph.add_task(WorkflowTask("c", inputs=["x"], outputs=["z"],
                                duration_s=3.0))
    graph.add_task(WorkflowTask("d", inputs=["y", "z"],
                                outputs=["out"], duration_s=1.0))
    return graph


class TestGraphConstruction:
    def test_outputs_become_objects(self):
        graph = diamond()
        assert "x" in graph.objects
        assert graph.objects["x"].producer == "a"

    def test_duplicate_task_rejected(self):
        graph = diamond()
        with pytest.raises(WorkflowError):
            graph.add_task(WorkflowTask("a"))

    def test_duplicate_object_rejected(self):
        graph = diamond()
        with pytest.raises(WorkflowError):
            graph.add_object(DataObject("in"))

    def test_unknown_input_rejected(self):
        graph = TaskGraph()
        with pytest.raises(WorkflowError, match="unknown input"):
            graph.add_task(WorkflowTask("t", inputs=["ghost"]))

    def test_output_collision_rejected(self):
        graph = diamond()
        with pytest.raises(WorkflowError, match="already produced"):
            graph.add_task(WorkflowTask("e", outputs=["x"]))

    def test_set_object_size(self):
        graph = diamond()
        graph.set_object_size("x", 42)
        assert graph.objects["x"].size_bytes == 42
        with pytest.raises(WorkflowError):
            graph.set_object_size("ghost", 1)


class TestGraphQueries:
    def test_dependencies(self):
        graph = diamond()
        assert graph.dependencies("d") == ["b", "c"]
        assert graph.dependencies("a") == []

    def test_consumers(self):
        graph = diamond()
        assert sorted(graph.consumers("a")) == ["b", "c"]
        assert graph.consumers("d") == []

    def test_roots(self):
        assert diamond().roots() == ["a"]

    def test_topological_order_valid(self):
        graph = diamond()
        order = graph.topological_order()
        for task_name in graph.tasks:
            for dependency in graph.dependencies(task_name):
                assert order.index(dependency) < order.index(task_name)

    def test_external_inputs(self):
        graph = diamond()
        assert [obj.name for obj in graph.external_inputs()] == ["in"]


class TestGraphAnalysis:
    def test_b_levels(self):
        graph = diamond()
        levels = graph.b_levels()
        # d = 1; b = 2+1; c = 3+1; a = 1 + max(3,4)
        assert levels["d"] == pytest.approx(1.0)
        assert levels["b"] == pytest.approx(3.0)
        assert levels["c"] == pytest.approx(4.0)
        assert levels["a"] == pytest.approx(5.0)

    def test_critical_path(self):
        assert diamond().critical_path_length() == pytest.approx(5.0)

    def test_total_work(self):
        assert diamond().total_work() == pytest.approx(7.0)

    def test_cycle_detected(self):
        graph = TaskGraph()
        graph.add_object(DataObject("seed"))
        # manual cycle: t1 consumes t2's output and vice versa
        graph.objects["loop1"] = DataObject("loop1", producer="t2")
        graph.add_task(WorkflowTask("t1", inputs=["loop1"],
                                    outputs=["mid"]))
        graph.add_task(WorkflowTask("t2", inputs=["mid"]))
        graph.objects["loop1"].producer = "t2"
        graph.tasks["t2"].outputs.append("loop1")
        with pytest.raises(WorkflowError, match="cycle"):
            graph.validate()

    @given(st.integers(min_value=1, max_value=20))
    def test_property_chain_critical_path(self, length):
        graph = TaskGraph()
        graph.add_object(DataObject("in"))
        previous = "in"
        for index in range(length):
            graph.add_task(WorkflowTask(
                f"t{index}", inputs=[previous],
                outputs=[f"o{index}"], duration_s=1.0,
            ))
            previous = f"o{index}"
        assert graph.critical_path_length() == pytest.approx(length)
        assert graph.total_work() == pytest.approx(length)
