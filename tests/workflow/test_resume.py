"""Crash-everywhere resume matrix for durable workflow runs.

The durability contract: a journaled run killed at *any* point can be
resumed to a byte-identical trace, re-executing only work whose
journaled execution point was never reached. The matrix proves it
exhaustively — for every (graph seed, fault seed) pair one unbroken
journaled chaos run is recorded, then a crash is simulated at **every
journal record offset**: the journal is truncated to its first ``k``
records, replayed into a :class:`ReplayState`, and the run is
re-executed from scratch with that state. At every offset:

* the resumed trace digest equals the unbroken run's digest;
* payload invocations during resume are exactly the unbroken run's
  executions minus the journaled ones (at-least-once, never twice for
  a journaled execution);
* a task whose every execution was journaled before the kill — in
  particular any task covered by a snapshot — never runs again.
"""

from __future__ import annotations

import shutil

import pytest

from repro.chaos import ChaosConfig, generate_schedule, random_task_graph
from repro.errors import JournalError
from repro.workflow.journal import (
    JOURNAL_FILE,
    RunJournal,
    encode_record,
    list_snapshots,
    read_records,
    replay_journal,
)
from repro.workflow.recovery import ResilientServer
from repro.workflow.server import WorkflowServer

from tests.chaos.conftest import make_pool

GRAPH_SEEDS = range(3)
FAULT_SEEDS = range(2)
NUM_TASKS = 8
SNAPSHOT_EVERY = 25
CONFIG = ChaosConfig(crashes=1, link_faults=1, reconfig_faults=1,
                     stragglers=1, task_faults=1)


def attach_counting_payloads(graph):
    """Give every task a payload that counts its real invocations."""
    counts = {}
    for name in graph.tasks:
        def payload(name=name):
            counts[name] = counts.get(name, 0) + 1
        graph.tasks[name].payload = payload
    return counts


def run_chaos(graph_seed, fault_seed, directory, resume=None):
    """One durable chaos run; returns (trace, payload counts)."""
    graph = random_task_graph(graph_seed, num_tasks=NUM_TASKS)
    counts = attach_counting_payloads(graph)
    pool = make_pool(3)
    schedule = generate_schedule(
        graph, [w.name for w in pool], fault_seed, CONFIG
    )
    journal = RunJournal(directory, snapshot_every=SNAPSHOT_EVERY)
    try:
        trace, _stats = ResilientServer(pool).run(
            graph, chaos=schedule, journal=journal, resume=resume
        )
    finally:
        journal.close()
    return trace, counts


def crash_at(source_dir, records, kill_at, target_dir):
    """Materialize the run directory a crash after record ``kill_at - 1``
    would leave behind: the first ``kill_at`` journal records plus every
    snapshot file (replay must ignore snapshots from the lost future)."""
    target_dir.mkdir(parents=True, exist_ok=True)
    with open(target_dir / JOURNAL_FILE, "w", encoding="utf-8") as handle:
        for record in records[:kill_at]:
            handle.write(encode_record(
                record["seq"], record["type"], record["data"]
            ) + "\n")
    for _seq, path in list_snapshots(source_dir):
        shutil.copy(path, target_dir / path.name)


def clear_run_dir(directory):
    """Drop the crashed attempt's files so a fresh journal can start
    (the CLI's RunStore archives them instead)."""
    (directory / JOURNAL_FILE).unlink(missing_ok=True)
    for _seq, path in list_snapshots(directory):
        path.unlink()


@pytest.mark.parametrize("graph_seed", GRAPH_SEEDS)
@pytest.mark.parametrize("fault_seed", FAULT_SEEDS)
def test_resume_from_every_kill_point(graph_seed, fault_seed, tmp_path):
    base = tmp_path / "unbroken"
    trace, unbroken_counts = run_chaos(graph_seed, fault_seed, base)
    expected = trace.digest()
    records, torn = read_records(base / JOURNAL_FILE)
    assert records and not torn
    unbroken_state, _ = replay_journal(base)
    assert unbroken_state.finished and unbroken_state.digest == expected
    assert unbroken_state.exec_counts == unbroken_counts

    for kill_at in range(len(records) + 1):
        kill_dir = tmp_path / "kill"
        shutil.rmtree(kill_dir, ignore_errors=True)
        crash_at(base, records, kill_at, kill_dir)
        state, _info = replay_journal(kill_dir)
        if state.finished:
            # the kill landed after the finish record: nothing to
            # re-execute, the journaled digest is authoritative
            assert kill_at == len(records)
            assert state.digest == expected
            continue
        clear_run_dir(kill_dir)
        resumed, resumed_counts = run_chaos(
            graph_seed, fault_seed, kill_dir, resume=state
        )
        assert resumed.digest() == expected, (
            f"kill at record {kill_at}/{len(records)} diverged"
        )
        # at-least-once, never twice: resume runs exactly the payload
        # executions the journal had not yet recorded
        for task, total in unbroken_counts.items():
            journaled = state.exec_counts.get(task, 0)
            assert resumed_counts.get(task, 0) == total - journaled, (
                f"kill at {kill_at}: task {task} journaled {journaled} "
                f"of {total} executions but resume ran it "
                f"{resumed_counts.get(task, 0)} more times"
            )
        # acceptance: a fully-journaled task never re-executes
        for task, total in unbroken_counts.items():
            if state.exec_counts.get(task, 0) == total:
                assert resumed_counts.get(task, 0) == 0


def test_snapshot_covered_kill_reexecutes_no_completed_task(tmp_path):
    """Kill right after a snapshot: every task the snapshot proves
    complete stays untouched during resume."""
    base = tmp_path / "unbroken"
    trace, unbroken_counts = run_chaos(0, 0, base)
    records, _ = read_records(base / JOURNAL_FILE)
    snapshot_seqs = [
        r["seq"] for r in records if r["type"] == "snapshot"
    ]
    assert snapshot_seqs, "run too small to snapshot; lower SNAPSHOT_EVERY"
    for seq in snapshot_seqs:
        kill_dir = tmp_path / f"kill-{seq}"
        crash_at(base, records, seq + 1, kill_dir)
        state, info = replay_journal(kill_dir)
        assert info.snapshot_seq >= 0  # resumed from the snapshot
        # tasks that completed as many times as they ever will
        completed = {
            task for task in state.completions
            if state.exec_counts.get(task, 0)
            == unbroken_counts.get(task, 0)
        }
        clear_run_dir(kill_dir)
        resumed, resumed_counts = run_chaos(0, 0, kill_dir, resume=state)
        assert resumed.digest() == trace.digest()
        for task in completed:
            assert resumed_counts.get(task, 0) == 0, (
                f"completed task {task} re-executed after "
                f"snapshot-covered kill at seq {seq}"
            )


def test_resume_tolerates_torn_final_record(tmp_path):
    """A kill mid-append leaves a half-written last line; resume drops
    it and still converges on the unbroken digest."""
    base = tmp_path / "unbroken"
    trace, _counts = run_chaos(1, 1, base)
    raw = (base / JOURNAL_FILE).read_bytes()
    lines = raw.splitlines(keepends=True)
    for keep, torn_bytes in ((10, 20), (len(lines) // 2, 7), (len(lines) - 1, 1)):
        kill_dir = tmp_path / f"torn-{keep}"
        kill_dir.mkdir()
        torn = b"".join(lines[:keep]) + lines[keep][:torn_bytes]
        (kill_dir / JOURNAL_FILE).write_bytes(torn)
        state, info = replay_journal(kill_dir)
        assert info.torn_tail
        assert info.records_total == keep
        clear_run_dir(kill_dir)
        resumed, _ = run_chaos(1, 1, kill_dir, resume=state)
        assert resumed.digest() == trace.digest()


def test_resume_recipe_mismatch_is_rejected(tmp_path):
    """Resume state journaled for one recipe must not silently drive a
    different run; the server raises the WF009 diagnostic instead."""
    base = tmp_path / "unbroken"
    run_chaos(0, 0, base)
    records, _ = read_records(base / JOURNAL_FILE)
    crash_dir = tmp_path / "crash"
    crash_at(base, records, len(records) - 1, crash_dir)
    state, _ = replay_journal(crash_dir)
    clear_run_dir(crash_dir)
    with pytest.raises(JournalError) as caught:
        run_chaos(2, 0, crash_dir, resume=state)  # different graph
    assert caught.value.code == "WF009"
    assert "graph_digest" in str(caught.value)


def test_plain_server_resume(tmp_path):
    """The non-resilient server honours the same journal/resume
    contract (no chaos layer involved)."""
    def run(directory, resume=None):
        graph = random_task_graph(4, num_tasks=10)
        counts = attach_counting_payloads(graph)
        journal = RunJournal(directory, snapshot_every=10)
        try:
            trace = WorkflowServer(make_pool(3)).run(
                graph, journal=journal, resume=resume
            )
        finally:
            journal.close()
        return trace, counts

    base = tmp_path / "unbroken"
    trace, unbroken_counts = run(base)
    records, _ = read_records(base / JOURNAL_FILE)
    for kill_at in (0, 1, len(records) // 3, len(records) - 1):
        kill_dir = tmp_path / f"kill-{kill_at}"
        crash_at(base, records, kill_at, kill_dir)
        state, _ = replay_journal(kill_dir)
        clear_run_dir(kill_dir)
        resumed, resumed_counts = run(kill_dir, resume=state)
        assert resumed.digest() == trace.digest()
        total = sum(resumed_counts.values()) + sum(
            state.exec_counts.values()
        )
        assert total == sum(unbroken_counts.values())
