"""Tests for matmul loop-order selection (ijk vs ikj)."""

import numpy as np
import pytest

from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.hls.cdfg import build_cdfg, loop_carried_chain
from repro.core.hls.scheduling import nest_cycles, schedule_loop
from repro.core.ir.interp import Interpreter
from repro.core.ir.passes import (
    LoopDirectivesPass,
    LowerTensorPass,
    MatmulLoopOrderPass,
    PassManager,
)
from repro.errors import PassError

GEMM = """
kernel gemm(A: tensor<12x8xf32>, B: tensor<8x10xf32>)
        -> tensor<12x10xf32> {
  C = A @ B
  return C
}
"""


def lowered(order):
    module = compile_kernel(GEMM)
    manager = PassManager()
    manager.add(MatmulLoopOrderPass(order))
    manager.add(LowerTensorPass())
    manager.add(LoopDirectivesPass())
    manager.run(module)
    return module


class TestMatmulLoopOrder:
    def test_invalid_order_rejected(self):
        with pytest.raises(PassError):
            MatmulLoopOrderPass("jki")

    @pytest.mark.parametrize("order", ["ijk", "ikj"])
    def test_numerics_match_numpy(self, order, rng):
        module = lowered(order)
        a = rng.normal(size=(12, 8)).astype(np.float32)
        b = rng.normal(size=(8, 10)).astype(np.float32)
        out = np.zeros((12, 10), np.float32)
        Interpreter(module).run("gemm", a, b, out)
        assert np.allclose(out, a @ b, atol=1e-4)

    def test_ijk_has_recurrence(self):
        module = lowered("ijk")
        cdfg = build_cdfg(module.find_function("gemm"))
        assert any(
            loop_carried_chain(loop)
            for loop in cdfg.innermost_loops()
        )

    def test_ikj_has_no_recurrence(self):
        module = lowered("ikj")
        cdfg = build_cdfg(module.find_function("gemm"))
        assert not any(
            loop_carried_chain(loop)
            for loop in cdfg.innermost_loops()
        )

    def test_ikj_pipelines_at_ii_one(self):
        module = lowered("ikj")
        cdfg = build_cdfg(module.find_function("gemm"))
        for loop in cdfg.innermost_loops():
            assert schedule_loop(loop).ii == 1

    def test_ikj_fewer_total_cycles(self):
        def total(order):
            module = lowered(order)
            cdfg = build_cdfg(module.find_function("gemm"))
            schedules = {
                id(loop): schedule_loop(loop)
                for loop in cdfg.innermost_loops()
            }
            return nest_cycles(cdfg.root, schedules)

        assert total("ikj") < 0.5 * total("ijk")

    def test_idempotent(self):
        module = compile_kernel(GEMM)
        first = MatmulLoopOrderPass("ikj").run(module)
        second = MatmulLoopOrderPass("ikj").run(module)
        assert first and not second
