"""Print → parse → print round-trip tests for the textual IR."""

import numpy as np
import pytest

from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.ir import parse_module, print_module, verify
from repro.core.ir.interp import Interpreter, run_function
from repro.core.ir.passes import (
    ElementwiseFusionPass,
    LoopDirectivesPass,
    LowerTensorPass,
    PassManager,
    SecurityInstrumentationPass,
    TilingPass,
)
from repro.errors import ParseError

SOURCES = {
    "tensor-form": """
    kernel net(X: tensor<8x4xf32>, W: tensor<4x2xf32>)
            -> tensor<8x2xf32> {
      Y = sigmoid(X @ W)
      return Y
    }
    """,
    "multi-kernel": """
    kernel a(X: tensor<8xf32>) -> tensor<8xf32> {
      Y = relu(X)
      return Y
    }
    kernel b(X: tensor<8xf32>, s: f32) -> tensor<8xf32> {
      Y = X * s + 1.0
      return Y
    }
    """,
    "secure": """
    kernel s(X: tensor<16xf32> @sensitive) -> tensor<16xf32> {
      Y = exp(X)
      return Y
    }
    """,
}


def lowered(source: str, secure: bool = False):
    module = compile_kernel(source)
    manager = PassManager()
    manager.add(ElementwiseFusionPass())
    if secure:
        manager.add(SecurityInstrumentationPass())
    manager.add(TilingPass())
    manager.add(LowerTensorPass())
    manager.add(LoopDirectivesPass(unroll_factor=2))
    manager.run(module)
    return module


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_tensor_form_fixed_point(self, name):
        module = compile_kernel(SOURCES[name])
        text1 = print_module(module)
        module2 = parse_module(text1)
        verify(module2)
        assert print_module(module2) == text1

    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_kernel_form_fixed_point(self, name):
        module = lowered(SOURCES[name], secure=(name == "secure"))
        text1 = print_module(module)
        module2 = parse_module(text1)
        verify(module2)
        assert print_module(module2) == text1

    def test_parsed_module_executes(self, rng):
        module = lowered(SOURCES["tensor-form"])
        reparsed = parse_module(print_module(module))
        x = rng.normal(size=(8, 4)).astype(np.float32)
        w = rng.normal(size=(4, 2)).astype(np.float32)
        out_a = np.zeros((8, 2), np.float32)
        out_b = np.zeros((8, 2), np.float32)
        Interpreter(module).run("net", x, w, out_a)
        Interpreter(reparsed).run("net", x, w, out_b)
        assert np.allclose(out_a, out_b)

    def test_workflow_pipeline_roundtrip(self):
        from repro.core.dsl.workflow import Pipeline
        from repro.core.ir import F32, TensorType

        pipeline = Pipeline("demo")
        source = pipeline.source("raw", TensorType((8,), F32))
        task = pipeline.task("a", SOURCES["multi-kernel"],
                             inputs=[source])
        pipeline.sink("out", task.output(0))
        module = pipeline.to_ir()
        text1 = print_module(module)
        module2 = parse_module(text1)
        verify(module2)
        assert print_module(module2) == text1


class TestParserErrors:
    def test_undefined_value(self):
        text = """builtin.module @m {
  func.func @f () -> () {
    kernel.store(%99, %98)
    func.return
  }
}"""
        with pytest.raises(ParseError, match="undefined"):
            parse_module(text)

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_module("builtin.module @m { $$$ }")

    def test_attr_types_preserved(self):
        module = lowered(SOURCES["tensor-form"])
        reparsed = parse_module(print_module(module))
        loop = next(
            op for op in reparsed.walk() if op.name == "kernel.for"
        )
        assert isinstance(loop.attr("lower"), int)
        assert isinstance(loop.attr("step"), int)
