"""Tests for the accumulation-interleaving pass."""

import pytest

from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.hls.cdfg import build_cdfg, loop_carried_chain
from repro.core.hls.scheduling import schedule_loop
from repro.core.ir.passes import (
    AccumulationInterleavePass,
    LoopDirectivesPass,
    LowerTensorPass,
    PassManager,
)
from repro.core.ir.passes.interleave import reduction_epilogue_cycles

GEMM = """
kernel gemm(A: tensor<16x16xf32>, B: tensor<16x16xf32>)
        -> tensor<16x16xf32> {
  C = A @ B
  return C
}
"""

STREAM = """
kernel stream(A: tensor<64xf32>) -> tensor<64xf32> {
  B = relu(A)
  return B
}
"""


def lowered(src, interleave=0):
    module = compile_kernel(src)
    manager = PassManager()
    manager.add(LowerTensorPass())
    manager.add(LoopDirectivesPass())
    if interleave:
        manager.add(AccumulationInterleavePass(factor=interleave))
    manager.run(module)
    return module


class TestInterleavePass:
    def test_tags_accumulation_loops_only(self):
        module = lowered(GEMM, interleave=4)
        tagged = [
            op for op in module.walk()
            if op.name == "kernel.for"
            and op.attr("interleave") is not None
        ]
        assert len(tagged) == 1  # only the k-loop accumulates

    def test_streaming_kernel_untouched(self):
        module = lowered(STREAM, interleave=4)
        tagged = [
            op for op in module.walk()
            if op.attr("interleave") is not None
        ]
        assert not tagged

    def test_factor_capped_by_trip_count(self):
        module = lowered(GEMM, interleave=64)
        loop = next(
            op for op in module.walk()
            if op.attr("interleave") is not None
        )
        assert loop.attr("interleave") == 16  # k-loop trip count

    def test_tensor_form_skipped(self):
        module = compile_kernel(GEMM)
        changed = AccumulationInterleavePass().run(module)
        assert not changed

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            AccumulationInterleavePass(factor=0)

    def test_idempotent(self):
        module = lowered(GEMM, interleave=4)
        assert AccumulationInterleavePass(4).run(module) is False


class TestScheduleEffect:
    def _accum_schedule(self, interleave):
        module = lowered(GEMM, interleave=interleave)
        function = module.find_function("gemm")
        cdfg = build_cdfg(function)
        loop = next(
            l for l in cdfg.innermost_loops()
            if loop_carried_chain(l)
        )
        return schedule_loop(loop)

    def test_ii_drops_with_interleave(self):
        baseline = self._accum_schedule(0)
        interleaved = self._accum_schedule(8)
        assert baseline.ii >= 6
        assert interleaved.ii < baseline.ii
        assert interleaved.ii <= 1 + baseline.ii // 4

    def test_epilogue_added_to_depth(self):
        baseline = self._accum_schedule(0)
        interleaved = self._accum_schedule(8)
        assert interleaved.depth > baseline.depth

    def test_total_cycles_improve(self):
        baseline = self._accum_schedule(0)
        interleaved = self._accum_schedule(8)
        trips = baseline.loop.trip_count
        assert interleaved.cycles_for_trips(trips) < \
            baseline.cycles_for_trips(trips)

    def test_epilogue_cycles_formula(self):
        assert reduction_epilogue_cycles(1) == 0
        assert reduction_epilogue_cycles(2) == 3
        assert reduction_epilogue_cycles(8) == 9
        assert reduction_epilogue_cycles(5) == 9  # ceil(log2(5)) = 3
