"""Tests for SSA structures, modules, builder and verifier."""

import pytest

from repro.core.ir import (
    F32,
    FunctionType,
    MemRefType,
    Module,
    Operation,
    print_module,
    verify,
)
from repro.core.ir.builder import Builder
from repro.errors import IRError, VerificationError


def make_saxpy(n: int = 8) -> Module:
    module = Module("m")
    memref = MemRefType((n,), F32)
    function = module.add_function(
        "saxpy", FunctionType((memref, memref, F32), ())
    )
    builder = Builder(function.entry_block)
    loop = builder.for_loop(0, n)
    with builder.at_block(loop.body):
        iv = loop.induction_var
        x = builder.load(function.arguments[0], [iv])
        y = builder.load(function.arguments[1], [iv])
        builder.store(
            builder.addf(builder.mulf(function.arguments[2], x), y),
            function.arguments[1], [iv],
        )
        builder.yield_op()
    builder.ret()
    return module


class TestOperations:
    def test_unqualified_name_rejected(self):
        with pytest.raises(IRError):
            Operation("unqualified")

    def test_use_def_chains_maintained(self):
        module = make_saxpy()
        function = module.find_function("saxpy")
        argument = function.arguments[0]
        assert len(argument.uses) == 1  # one load

    def test_replace_all_uses(self):
        module = make_saxpy()
        function = module.find_function("saxpy")
        x, y = function.arguments[0], function.arguments[1]
        x.replace_all_uses_with(y)
        assert not x.uses
        verify(module)  # still structurally valid

    def test_erase_with_uses_rejected(self):
        module = make_saxpy()
        function = module.find_function("saxpy")
        load = next(
            op for op in function.walk() if op.name == "kernel.load"
        )
        with pytest.raises(IRError, match="still has"):
            load.erase()

    def test_clone_is_deep_and_independent(self):
        module = make_saxpy()
        clone = module.clone()
        verify(clone)
        original_count = sum(1 for _ in module.walk())
        clone_count = sum(1 for _ in clone.walk())
        assert original_count == clone_count
        clone.find_function("saxpy").op.set_attr("tag", 1)
        assert module.find_function("saxpy").op.attr("tag") is None

    def test_walk_visits_nested(self):
        module = make_saxpy()
        names = [op.name for op in module.walk()]
        assert "kernel.for" in names
        assert "kernel.load" in names


class TestModule:
    def test_duplicate_function_rejected(self):
        module = Module("m")
        module.add_function("f", FunctionType((), ()))
        with pytest.raises(IRError):
            module.add_function("f", FunctionType((), ()))

    def test_find_and_remove(self):
        module = Module("m")
        module.add_function("f", FunctionType((), ()))
        assert module.find_function("f") is not None
        module.remove_function("f")
        assert module.find_function("f") is None

    def test_remove_unknown_rejected(self):
        module = Module("m")
        with pytest.raises(IRError):
            module.remove_function("ghost")

    def test_function_target_attribute(self):
        module = Module("m")
        function = module.add_function("f", FunctionType((), ()))
        assert function.target == "any"
        function.target = "fpga"
        assert function.target == "fpga"
        with pytest.raises(IRError):
            function.target = "tpu"


class TestVerifier:
    def test_valid_module_passes(self):
        verify(make_saxpy())

    def test_use_before_def_detected(self):
        module = Module("m")
        function = module.add_function("f", FunctionType((F32,), ()))
        builder = Builder(function.entry_block)
        # build a valid op, then move it before its operand's definition
        c = builder.const(1.0)
        result = builder.addf(function.arguments[0], c)
        builder.ret()
        block = function.entry_block
        add_op = result.producer
        block.operations.remove(add_op)
        block.operations.insert(0, add_op)
        with pytest.raises(VerificationError, match="not visible"):
            verify(module)

    def test_missing_terminator_detected(self):
        module = Module("m")
        function = module.add_function("f", FunctionType((), ()))
        builder = Builder(function.entry_block)
        builder.const(1.0)  # no func.return
        with pytest.raises(VerificationError, match="func.return"):
            verify(module)

    def test_terminator_not_last_detected(self):
        module = Module("m")
        function = module.add_function("f", FunctionType((), ()))
        builder = Builder(function.entry_block)
        builder.ret()
        builder.const(1.0)
        with pytest.raises(VerificationError):
            verify(module)

    def test_wrong_return_type_detected(self):
        module = Module("m")
        function = module.add_function("f", FunctionType((), (F32,)))
        builder = Builder(function.entry_block)
        builder.ret()  # returns nothing but signature wants f32
        with pytest.raises(VerificationError):
            verify(module)

    def test_unregistered_op_detected(self):
        module = Module("m")
        function = module.add_function("f", FunctionType((), ()))
        function.entry_block.append(Operation("bogus.op"))
        function.entry_block.append(Operation("func.return"))
        with pytest.raises(VerificationError, match="unknown dialect"):
            verify(module)


class TestPrinter:
    def test_round_structure(self):
        text = print_module(make_saxpy())
        assert "builtin.module" in text
        assert "func.func @saxpy" in text
        assert "kernel.for" in text
        assert "kernel.yield" in text

    def test_attributes_rendered_sorted(self):
        text = print_module(make_saxpy())
        assert "lower = 0" in text
        assert text.index("lower = 0") < text.index("upper = 8")
