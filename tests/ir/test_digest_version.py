"""Version-counter digest memoization and its invalidation contract.

Every structural mutation of an operation tree — builder inserts, pass
rewrites, attribute edits, operand rewiring, erasure — must bump the
module's monotonic version counter so a memoized digest can never be
served for changed IR (the PR 5 id-recycling bug class, one layer up).
Conversely, an *unmutated* module must be printed and hashed exactly
once per process, no matter how many lookups ask for its digest.
"""

import pytest

from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.ir.builder import Builder
from repro.core.ir.digest import (
    digest_memoization,
    digest_stats,
    function_digest,
    module_digest,
    reset_digest_stats,
)
from repro.core.ir.module import Module
from repro.core.ir.passes import LowerTensorPass, PassManager
from repro.core.ir.types import F32, FunctionType, TensorType

GEMM_SRC = """
kernel gemm(A: tensor<8x8xf32>, B: tensor<8x8xf32>)
        -> tensor<8x8xf32> {
  C = A @ B
  return C
}
"""


def build_module():
    return compile_kernel(GEMM_SRC)


class TestMemoization:
    def test_repeated_lookups_print_once(self):
        module = build_module()
        reset_digest_stats()
        first = module_digest(module)
        for _ in range(50):
            assert module_digest(module) == first
        stats = digest_stats()
        assert stats.prints == 1
        assert stats.hits == 50

    def test_function_digest_memoized(self):
        module = build_module()
        reset_digest_stats()
        first = function_digest(module, "gemm")
        for _ in range(10):
            assert function_digest(module, "gemm") == first
        assert digest_stats().prints == 1

    def test_memo_can_be_disabled(self):
        module = build_module()
        module_digest(module)  # warm the memo
        reset_digest_stats()
        with digest_memoization(False):
            module_digest(module)
            module_digest(module)
        stats = digest_stats()
        assert stats.prints == 2
        assert stats.hits == 0
        # re-enabled: the memo picks back up
        module_digest(module)
        assert digest_stats().hits == 1

    def test_memo_matches_unmemoized_value(self):
        module = build_module()
        memoized = module_digest(module)
        with digest_memoization(False):
            assert module_digest(module) == memoized

    def test_clone_digests_independently(self):
        module = build_module()
        original = module_digest(module)
        clone = module.clone()
        assert module_digest(clone) == original
        clone.find_function("gemm").op.set_attr("target", "fpga")
        assert module_digest(clone) != original
        # the original's memo is untouched by clone mutations
        reset_digest_stats()
        assert module_digest(module) == original
        assert digest_stats().hits == 1


class TestInvalidation:
    """Every mutation pathway must yield a fresh digest."""

    def test_set_attr(self):
        module = build_module()
        before = module_digest(module)
        module.find_function("gemm").op.set_attr("target", "fpga")
        assert module_digest(module) != before

    def test_direct_attribute_write_and_delete(self):
        module = build_module()
        op = module.find_function("gemm").op
        before = module_digest(module)
        op.attributes["pipeline_ii"] = 2
        mid = module_digest(module)
        assert mid != before
        del op.attributes["pipeline_ii"]
        after = module_digest(module)
        assert after != mid
        assert after == before  # same structure, same content digest

    def test_builder_insert(self):
        module = build_module()
        function = module.find_function("gemm")
        before = module_digest(module)
        builder = Builder(function.entry_block)
        builder.const(0.0)
        assert module_digest(module) != before

    def test_erase(self):
        module = build_module()
        function = module.find_function("gemm")
        before = module_digest(module)
        builder = Builder(function.entry_block)
        const = builder.const(0.0)
        mid = module_digest(module)
        assert mid != before
        const.producer.erase()
        assert module_digest(module) == before

    def test_replace_operand_and_rauw(self):
        module = build_module()
        function = module.find_function("gemm")
        builder = Builder(function.entry_block)
        a = builder.const(1.0)
        b = builder.const(2.0)
        add = builder.create("kernel.addf", [a, a], [F32])
        before = module_digest(module)
        add.replace_operand(a, b)
        mid = module_digest(module)
        assert mid != before
        b.replace_all_uses_with(a)
        assert module_digest(module) != mid

    def test_add_and_remove_function(self):
        module = build_module()
        before = module_digest(module)
        module.add_function(
            "helper",
            FunctionType((TensorType((4,), F32),), ()),
            declaration=True,
        )
        mid = module_digest(module)
        assert mid != before
        module.remove_function("helper")
        assert module_digest(module) == before

    def test_direct_operations_list_mutation(self):
        module = build_module()
        function = module.find_function("gemm")
        block = function.entry_block
        before = module_digest(module)
        op = block.operations.pop()
        assert module_digest(module) != before
        block.operations.append(op)
        assert module_digest(module) == before

    def test_pass_mutation_invalidates(self):
        """Satellite guard: a pass rewriting a module in place must
        bump the version so mutate-after-digest yields a fresh digest."""
        module = build_module()
        stale = module_digest(module)
        version = module.version
        manager = PassManager(verify_each=False)
        manager.add(LowerTensorPass())
        manager.run(module)
        assert module.version > version
        fresh = module_digest(module)
        assert fresh != stale
        # and the fresh digest is itself correct, not a stale memo
        with digest_memoization(False):
            assert module_digest(module) == fresh

    def test_version_monotonic(self):
        module = Module("m")
        versions = [module.version]
        module.add_function(
            "f", FunctionType((), ()), declaration=True
        )
        versions.append(module.version)
        module.find_function("f").op.set_attr("target", "cpu")
        versions.append(module.version)
        assert versions == sorted(versions)
        assert len(set(versions)) == len(versions)


class TestFunctionDigestScoping:
    def test_sibling_edit_keeps_function_digest_value(self):
        module = build_module()
        gemm_digest = function_digest(module, "gemm")
        module.add_function(
            "other", FunctionType((), ()), declaration=True
        )
        # value is module-independent: sibling edits don't change it
        assert function_digest(module, "gemm") == gemm_digest

    def test_own_edit_changes_function_digest(self):
        module = build_module()
        before = function_digest(module, "gemm")
        module.find_function("gemm").op.set_attr("target", "fpga")
        assert function_digest(module, "gemm") != before

    def test_unknown_kernel_raises(self):
        module = build_module()
        with pytest.raises(ValueError, match="nope"):
            function_digest(module, "nope")
