"""Tests for canonicalization, fusion, tiling, layout and directives."""

import numpy as np
import pytest

from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.ir import (
    F32,
    FunctionType,
    MemRefType,
    Module,
    verify,
)
from repro.core.ir.builder import Builder
from repro.core.ir.interp import Interpreter
from repro.core.ir.passes import (
    CanonicalizePass,
    ConstantFoldPass,
    CSEPass,
    DataLayoutPass,
    DCEPass,
    ElementwiseFusionPass,
    LoopDirectivesPass,
    LowerTensorPass,
    PassManager,
    TilingPass,
)
from repro.core.ir.passes.tiling import choose_tile_sizes
from repro.errors import PassError


def scalar_function():
    """f() -> f32 computing (2+3)*4 with a duplicated subexpression."""
    module = Module("m")
    function = module.add_function("f", FunctionType((), (F32,)))
    builder = Builder(function.entry_block)
    two = builder.const(2.0)
    three = builder.const(3.0)
    sum1 = builder.addf(two, three)
    sum2 = builder.addf(two, three)  # CSE fodder
    four = builder.const(4.0)
    product = builder.mulf(sum1, four)
    _dead = builder.mulf(sum2, four)  # DCE fodder after CSE
    builder.ret([product])
    return module


class TestCanonicalize:
    def test_constant_folding_collapses(self):
        module = scalar_function()
        ConstantFoldPass().run(module)
        interp_result = Interpreter(module).run("f")
        assert interp_result == [20.0]

    def test_cse_removes_duplicate(self):
        module = scalar_function()
        before = sum(
            1 for op in module.walk() if op.name == "kernel.addf"
        )
        CSEPass().run(module)
        after = sum(
            1 for op in module.walk() if op.name == "kernel.addf"
        )
        assert before == 2 and after == 1

    def test_dce_removes_unused(self):
        module = scalar_function()
        CSEPass().run(module)
        DCEPass().run(module)
        mulfs = sum(
            1 for op in module.walk() if op.name == "kernel.mulf"
        )
        assert mulfs == 1

    def test_canonicalize_fixed_point(self):
        module = scalar_function()
        CanonicalizePass().run(module)
        verify(module)
        # everything folds to a single constant return
        ops = [
            op.name
            for op in module.find_function("f").walk()
        ]
        assert ops == ["kernel.const", "func.return"]
        assert Interpreter(module).run("f") == [20.0]

    def test_idempotent(self):
        module = scalar_function()
        CanonicalizePass().run(module)
        assert CanonicalizePass().run(module) is False


class TestFusion:
    SRC = """
    kernel chain(X: tensor<32xf32>) -> tensor<32xf32> {
      A = exp(X)
      B = A * X
      C = relu(B)
      return C
    }
    """

    def test_chain_shares_group(self):
        module = compile_kernel(self.SRC)
        ElementwiseFusionPass().run(module)
        groups = {
            op.attr("fusion_group")
            for op in module.find_function("chain").walk()
            if op.dialect == "tensor"
        }
        assert len(groups) == 1

    def test_fused_lowering_single_loop(self):
        module = compile_kernel(self.SRC)
        ElementwiseFusionPass().run(module)
        LowerTensorPass().run(module)
        loops = sum(
            1 for op in module.walk() if op.name == "kernel.for"
        )
        assert loops == 1  # one fused nest writing the out-param

    def test_unfused_lowering_multiple_loops(self):
        module = compile_kernel(self.SRC)
        LowerTensorPass().run(module)
        loops = sum(
            1 for op in module.walk() if op.name == "kernel.for"
        )
        assert loops == 3  # one nest per op, last writes in place

    def test_fusion_preserves_semantics(self, rng):
        x = rng.normal(size=32).astype(np.float32)
        expected = np.maximum(np.exp(x) * x, 0)
        for fuse in (False, True):
            module = compile_kernel(self.SRC)
            manager = PassManager()
            if fuse:
                manager.add(ElementwiseFusionPass())
            manager.add(LowerTensorPass())
            manager.run(module)
            out = np.zeros(32, np.float32)
            Interpreter(module).run("chain", x.copy(), out)
            assert np.allclose(out, expected, atol=1e-4)


class TestTiling:
    def test_choose_tile_sizes_fits_budget(self):
        m, n, k = choose_tile_sizes(256, 256, 256, 4, 64 * 1024)
        assert (m * k + k * n + m * n) * 4 <= 64 * 1024
        assert m >= 8  # budget is generous enough for useful tiles

    def test_tile_capped_by_problem(self):
        sizes = choose_tile_sizes(4, 4, 4, 4, 10**9)
        assert sizes == (4, 4, 4)

    def test_pass_attaches_attribute(self, gemm_module):
        TilingPass(tile_sizes=(8, 8, 8)).run(gemm_module)
        op = next(
            op for op in gemm_module.walk()
            if op.name == "tensor.matmul"
        )
        assert op.attr("tile_sizes") == [8, 8, 8]

    def test_tiled_lowering_correct(self, gemm_module, rng):
        TilingPass(tile_sizes=(8, 8, 8)).run(gemm_module)
        LowerTensorPass().run(gemm_module)
        verify(gemm_module)
        a = rng.normal(size=(16, 16)).astype(np.float32)
        b = rng.normal(size=(16, 16)).astype(np.float32)
        out = np.zeros((16, 16), np.float32)
        Interpreter(gemm_module).run("gemm", a, b, out)
        assert np.allclose(out, a @ b, atol=1e-4)

    def test_non_dividing_tiles_fall_back(self, gemm_module, rng):
        TilingPass(tile_sizes=(5, 5, 5)).run(gemm_module)  # 16 % 5 != 0
        LowerTensorPass().run(gemm_module)
        a = rng.normal(size=(16, 16)).astype(np.float32)
        b = rng.normal(size=(16, 16)).astype(np.float32)
        out = np.zeros((16, 16), np.float32)
        Interpreter(gemm_module).run("gemm", a, b, out)
        assert np.allclose(out, a @ b, atol=1e-4)

    def test_invalid_tile_rejected(self):
        with pytest.raises(ValueError):
            TilingPass(tile_sizes=(0, 4, 4))


class TestDataLayout:
    def test_retags_record_buffers_only(self):
        module = Module("m")
        record = MemRefType((128,), F32, layout="aos")
        plain = MemRefType((128,), F32)
        function = module.add_function(
            "f", FunctionType((record, plain), ())
        )
        Builder(function.entry_block).ret()
        DataLayoutPass("soa").run(module)
        function = module.find_function("f")
        assert function.arguments[0].type.layout == "soa"
        assert function.arguments[1].type.layout == "row_major"
        assert function.type.inputs[0].layout == "soa"
        verify(module)

    def test_unknown_layout_rejected(self):
        with pytest.raises(PassError):
            DataLayoutPass("zigzag")


class TestLoopDirectives:
    def test_innermost_only(self, gemm_module):
        LowerTensorPass().run(gemm_module)
        LoopDirectivesPass(unroll_factor=4).run(gemm_module)
        for_ops = [
            op for op in gemm_module.walk() if op.name == "kernel.for"
        ]
        inner = [op for op in for_ops if op.attr("unroll") is not None]
        outer = [op for op in for_ops if op.attr("unroll") is None]
        assert inner and outer

    def test_unroll_capped_by_trip_count(self):
        src = """
        kernel tiny(X: tensor<2xf32>) -> tensor<2xf32> {
          Y = relu(X)
          return Y
        }
        """
        module = compile_kernel(src)
        LowerTensorPass().run(module)
        LoopDirectivesPass(unroll_factor=64).run(module)
        loop = next(
            op for op in module.walk() if op.name == "kernel.for"
        )
        assert loop.attr("unroll") == 2
