"""Lowering correctness: kernel-form execution matches tensor semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.ir import verify
from repro.core.ir.interp import Interpreter, run_function
from repro.core.ir.passes import (
    CanonicalizePass,
    ElementwiseFusionPass,
    LowerTensorPass,
    PassManager,
    SecurityInstrumentationPass,
)
from repro.errors import IRError, SecurityError


def lower(module):
    manager = PassManager()
    manager.add(ElementwiseFusionPass())
    manager.add(LowerTensorPass())
    manager.add(CanonicalizePass())
    manager.run(module)
    return module


def roundtrip(src, kernel, *arrays_in, out_shape):
    """Run tensor form and kernel form; return both results."""
    tensor_module = compile_kernel(src)
    tensor_result = run_function(tensor_module, kernel, *arrays_in)[0]
    kernel_module = lower(compile_kernel(src))
    out = np.zeros(out_shape, np.float32)
    Interpreter(kernel_module).run(kernel, *arrays_in, out)
    return tensor_result, out


f32s = st.floats(
    min_value=-10, max_value=10, allow_nan=False, width=32
)


class TestLoweringMatchesTensorSemantics:
    def test_matmul(self, rng):
        src = """
        kernel mm(A: tensor<8x12xf32>, B: tensor<12x6xf32>)
                -> tensor<8x6xf32> {
          C = A @ B
          return C
        }
        """
        a = rng.normal(size=(8, 12)).astype(np.float32)
        b = rng.normal(size=(12, 6)).astype(np.float32)
        expected, got = roundtrip(src, "mm", a, b, out_shape=(8, 6))
        assert np.allclose(got, expected, atol=1e-4)

    def test_transpose(self, rng):
        src = """
        kernel tr(A: tensor<3x5xf32>) -> tensor<5x3xf32> {
          B = transpose(A)
          return B
        }
        """
        a = rng.normal(size=(3, 5)).astype(np.float32)
        expected, got = roundtrip(src, "tr", a, out_shape=(5, 3))
        assert np.allclose(got, expected)

    def test_reduce_sum_axis(self, rng):
        src = """
        kernel rs(A: tensor<4x6xf32>) -> tensor<6xf32> {
          B = sum(A, axes=[0])
          return B
        }
        """
        a = rng.normal(size=(4, 6)).astype(np.float32)
        expected, got = roundtrip(src, "rs", a, out_shape=(6,))
        assert np.allclose(got, expected, atol=1e-5)

    def test_reduce_mean_all(self, rng):
        src = """
        kernel rm(A: tensor<4x6xf32>) -> tensor<1xf32> {
          B = mean(A)
          return B
        }
        """
        a = rng.normal(size=(4, 6)).astype(np.float32)
        expected, got = roundtrip(src, "rm", a, out_shape=(1,))
        assert np.allclose(got, expected, atol=1e-5)

    def test_reduce_max(self, rng):
        src = """
        kernel rx(A: tensor<16xf32>) -> tensor<1xf32> {
          B = rmax(A)
          return B
        }
        """
        a = rng.normal(size=16).astype(np.float32)
        expected, got = roundtrip(src, "rx", a, out_shape=(1,))
        assert np.allclose(got, expected)

    def test_reshape(self, rng):
        src = """
        kernel rs(A: tensor<4x6xf32>) -> tensor<24xf32> {
          B = reshape(A, shape=[24]) * 2.0
          return B
        }
        """
        a = rng.normal(size=(4, 6)).astype(np.float32)
        expected, got = roundtrip(src, "rs", a, out_shape=(24,))
        assert np.allclose(got, expected)

    def test_scalar_broadcast(self, rng):
        src = """
        kernel sb(A: tensor<8xf32>, s: f32) -> tensor<8xf32> {
          B = A * s + 1.0
          return B
        }
        """
        a = rng.normal(size=8).astype(np.float32)
        tensor_module = compile_kernel(src)
        expected = run_function(tensor_module, "sb", a, 2.5)[0]
        kernel_module = lower(compile_kernel(src))
        out = np.zeros(8, np.float32)
        Interpreter(kernel_module).run("sb", a, 2.5, out)
        assert np.allclose(out, expected)
        assert np.allclose(out, a * 2.5 + 1.0)

    def test_fill_constant(self):
        src = """
        kernel fc(A: tensor<4xf32>) -> tensor<4xf32> {
          B = A + fill(3.0, shape=[4])
          return B
        }
        """
        a = np.ones(4, np.float32)
        expected, got = roundtrip(src, "fc", a, out_shape=(4,))
        assert np.allclose(got, 4.0)

    def test_mlp_full(self, mlp_module, rng):
        x = rng.normal(size=(16, 8)).astype(np.float32)
        w0 = rng.normal(size=(8, 4)).astype(np.float32)
        b0 = rng.normal(size=(16, 4)).astype(np.float32)
        w1 = rng.normal(size=(4, 2)).astype(np.float32)
        b1 = rng.normal(size=(16, 2)).astype(np.float32)
        expected = run_function(
            mlp_module, "mlp", x, w0, b0, w1, b1
        )[0]
        lowered = lower(mlp_module.clone())
        verify(lowered)
        out = np.zeros((16, 2), np.float32)
        Interpreter(lowered).run("mlp", x, w0, b0, w1, b1, out)
        assert np.allclose(out, expected, atol=1e-4)

    @settings(max_examples=20, deadline=None)
    @given(arrays(np.float32, (8,), elements=f32s))
    def test_property_elementwise_chain(self, x):
        src = """
        kernel ch(X: tensor<8xf32>) -> tensor<8xf32> {
          Y = relu(X * 2.0 - 1.0)
          return Y
        }
        """
        module = lower(compile_kernel(src))
        out = np.zeros(8, np.float32)
        Interpreter(module).run("ch", x, out)
        assert np.allclose(out, np.maximum(x * 2 - 1, 0), atol=1e-5)


class TestInterpreterSecurity:
    def test_taint_reaches_check(self, sensitive_module):
        module = sensitive_module
        SecurityInstrumentationPass().run(module)
        interp = Interpreter(module)
        x = np.ones((8, 8), np.float32)
        w = np.ones((8, 8), np.float32)
        interp.run("score", x, w)
        assert interp.flagged
        policy, labels = interp.flagged[0]
        assert policy == "no-tainted-egress"
        assert "arg0" in labels

    def test_enforced_check_raises(self, sensitive_module):
        module = sensitive_module
        SecurityInstrumentationPass().run(module)
        interp = Interpreter(module, enforce_checks=True)
        with pytest.raises(SecurityError):
            interp.run(
                "score",
                np.ones((8, 8), np.float32),
                np.ones((8, 8), np.float32),
            )

    def test_untainted_function_not_flagged(self, gemm_module):
        interp = Interpreter(gemm_module)
        interp.run(
            "gemm",
            np.ones((16, 16), np.float32),
            np.ones((16, 16), np.float32),
        )
        assert not interp.flagged


class TestInterpreterErrors:
    def test_unknown_function(self, gemm_module):
        with pytest.raises(IRError):
            run_function(gemm_module, "ghost")

    def test_arity_mismatch(self, gemm_module):
        with pytest.raises(IRError, match="expected 2 arguments"):
            run_function(gemm_module, "gemm", np.ones((16, 16)))

    def test_shape_mismatch(self, gemm_module):
        with pytest.raises(IRError, match="shape"):
            run_function(
                gemm_module, "gemm",
                np.ones((4, 4)), np.ones((16, 16)),
            )
