"""Tests for the IR type system."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ir.types import (
    F32,
    F64,
    I32,
    INDEX,
    FunctionType,
    MemRefType,
    ScalarType,
    StreamType,
    TensorType,
    common_element_type,
)
from repro.errors import IRError

dims = st.lists(st.integers(min_value=1, max_value=64),
                min_size=1, max_size=4)


class TestScalarType:
    def test_float_classification(self):
        assert F32.is_float and not F32.is_integer
        assert I32.is_integer and not I32.is_float

    def test_unknown_name_rejected(self):
        with pytest.raises(IRError):
            ScalarType("f16")

    def test_bit_widths(self):
        assert F32.bit_width == 32
        assert F64.byte_width == 8
        assert ScalarType("i1").byte_width == 1

    def test_equality_is_structural(self):
        assert ScalarType("f32") == F32

    def test_str(self):
        assert str(INDEX) == "index"


class TestTensorType:
    def test_num_elements_and_bytes(self):
        t = TensorType((4, 8), F32)
        assert t.num_elements == 32
        assert t.size_bytes == 128
        assert t.rank == 2

    def test_zero_dim_rejected(self):
        with pytest.raises(IRError):
            TensorType((0, 4), F32)

    def test_str(self):
        assert str(TensorType((2, 3), F32)) == "tensor<2x3xf32>"

    @given(dims)
    def test_property_num_elements_is_product(self, shape):
        t = TensorType(tuple(shape), F32)
        product = 1
        for dim in shape:
            product *= dim
        assert t.num_elements == product


class TestMemRefType:
    def test_layout_variants(self):
        m = MemRefType((8,), F32, layout="aos")
        assert m.with_layout("soa").layout == "soa"
        assert m.layout == "aos"  # original untouched

    def test_unknown_layout_rejected(self):
        with pytest.raises(IRError):
            MemRefType((8,), F32, layout="diagonal")

    def test_with_space(self):
        m = MemRefType((8,), F32)
        assert m.with_space("bram").space == "bram"

    def test_str_includes_modifiers(self):
        m = MemRefType((8,), F32, space="bram", layout="soa")
        assert "bram" in str(m) and "soa" in str(m)


class TestOtherTypes:
    def test_stream_depth_validation(self):
        with pytest.raises(IRError):
            StreamType(F32, depth=-1)

    def test_stream_str(self):
        assert str(StreamType(F32, 4)) == "stream<f32, 4>"

    def test_function_type_str(self):
        ft = FunctionType((F32,), (F32, F32))
        assert str(ft) == "(f32) -> (f32, f32)"

    def test_common_element_type(self):
        assert common_element_type(
            TensorType((2,), F32), MemRefType((3,), F32)
        ) == F32

    def test_common_element_type_mismatch(self):
        with pytest.raises(IRError):
            common_element_type(TensorType((2,), F32),
                                TensorType((2,), F64))
