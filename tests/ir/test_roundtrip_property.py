"""Round-trip property: parse(print(m)) re-verifies, prints identically.

Two input families:

* every kernel-DSL source shipped in ``examples/`` (extracted without
  executing the examples, via the lint spec loader);
* seeded random kernel programs, both in tensor form and lowered to
  kernel form through the full pass pipeline (including security
  instrumentation when the generator marks a parameter sensitive).
"""

from __future__ import annotations

import glob
import os
import random

import pytest

from repro.core.analysis.specs import extract_kernel_sources
from repro.core.dsl.kernel_dsl import compile_kernel
from repro.core.ir import parse_module, print_module, verify
from repro.core.ir.passes import (
    ElementwiseFusionPass,
    LoopDirectivesPass,
    LowerTensorPass,
    PassManager,
    SecurityInstrumentationPass,
)

EXAMPLES = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)

_UNARIES = ("relu", "exp", "sqrt", "tanh", "sigmoid")


def _random_kernel(seed: int) -> str:
    """A seeded random (but always well-typed) DSL kernel."""
    rng = random.Random(seed)
    rows = rng.choice((4, 8, 16))
    cols = rng.choice((2, 4, 8))
    sensitive = " @sensitive" if rng.random() < 0.3 else ""
    lines = [
        f"kernel k{seed}(A: tensor<{rows}x{cols}xf32>{sensitive}, "
        f"B: tensor<{rows}x{cols}xf32>) "
        f"-> tensor<{rows}x{cols}xf32> {{"
    ]
    current = "A"
    for step in range(rng.randint(1, 4)):
        fresh = f"T{step}"
        choice = rng.random()
        if choice < 0.4:
            unary = rng.choice(_UNARIES)
            lines.append(f"  {fresh} = {unary}({current})")
        elif choice < 0.7:
            op = rng.choice(("+", "-", "*"))
            lines.append(f"  {fresh} = {current} {op} B")
        else:
            scale = round(rng.uniform(0.5, 2.0), 2)
            lines.append(f"  {fresh} = {current} * {scale}")
        current = fresh
    lines.append(f"  return {current}")
    lines.append("}")
    return "\n".join(lines)


def _assert_fixed_point(module) -> None:
    text1 = print_module(module)
    reparsed = parse_module(text1)
    verify(reparsed)
    assert print_module(reparsed) == text1


def _example_sources():
    sources = []
    for path in sorted(glob.glob(os.path.join(EXAMPLES, "*.py"))):
        with open(path, encoding="utf-8") as handle:
            for index, source in enumerate(
                extract_kernel_sources(handle.read())
            ):
                sources.append((f"{os.path.basename(path)}#{index}",
                                source))
    return sources


class TestExampleModules:
    def test_examples_define_kernels(self):
        assert _example_sources(), "no kernel DSL found in examples/"

    @pytest.mark.parametrize(
        "name,source", _example_sources(),
        ids=[name for name, _src in _example_sources()],
    )
    def test_example_roundtrip(self, name, source):
        _assert_fixed_point(compile_kernel(source))


class TestRandomKernels:
    SEEDS = range(12)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_tensor_form_roundtrip(self, seed):
        _assert_fixed_point(compile_kernel(_random_kernel(seed)))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_lowered_form_roundtrip(self, seed):
        module = compile_kernel(_random_kernel(seed))
        manager = PassManager()
        manager.add(ElementwiseFusionPass())
        manager.add(SecurityInstrumentationPass())
        manager.add(LowerTensorPass())
        manager.add(LoopDirectivesPass(unroll_factor=2))
        manager.run(module)
        _assert_fixed_point(module)

    def test_generator_is_deterministic(self):
        assert _random_kernel(7) == _random_kernel(7)
