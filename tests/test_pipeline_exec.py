"""Tests for functional pipeline execution."""

import numpy as np
import pytest

from repro.core.dsl.workflow import Pipeline
from repro.core.ir import F32, TensorType
from repro.core.pipeline_exec import execute_pipeline, pipeline_io
from repro.errors import SpecificationError, WorkflowError

KERNELS = """
kernel double(X: tensor<8xf32>) -> tensor<8xf32> {
  Y = X * 2.0
  return Y
}
kernel combine(A: tensor<8xf32>, B: tensor<8xf32>)
        -> tensor<8xf32>, tensor<1xf32> {
  S = A + B
  T = sum(S)
  return S, T
}
"""


@pytest.fixture
def module():
    pipeline = Pipeline("numeric")
    a = pipeline.source("a", TensorType((8,), F32))
    b = pipeline.source("b", TensorType((8,), F32))
    doubled = pipeline.task("double", KERNELS, inputs=[a])
    combined = pipeline.task(
        "combine", KERNELS, inputs=[doubled.output(0), b]
    )
    pipeline.sink("vector", combined.output(0))
    pipeline.sink("total", combined.output(1))
    return pipeline.to_ir()


class TestExecutePipeline:
    def test_end_to_end_values(self, module, rng):
        a = rng.normal(size=8).astype(np.float32)
        b = rng.normal(size=8).astype(np.float32)
        outputs = execute_pipeline(module, {"a": a, "b": b})
        expected_vector = a * 2 + b
        assert np.allclose(outputs["vector"], expected_vector,
                           atol=1e-5)
        assert np.allclose(outputs["total"],
                           expected_vector.sum(), atol=1e-4)

    def test_missing_feed_rejected(self, module):
        with pytest.raises(SpecificationError, match="no feed"):
            execute_pipeline(module, {"a": np.zeros(8)})

    def test_unknown_feed_rejected(self, module):
        feeds = {
            "a": np.zeros(8), "b": np.zeros(8),
            "ghost": np.zeros(8),
        }
        with pytest.raises(SpecificationError, match="unknown"):
            execute_pipeline(module, feeds)

    def test_shape_mismatch_rejected(self, module):
        with pytest.raises(SpecificationError, match="shape"):
            execute_pipeline(
                module, {"a": np.zeros(4), "b": np.zeros(8)}
            )

    def test_no_pipeline_rejected(self):
        from repro.core.ir import Module

        with pytest.raises(WorkflowError):
            execute_pipeline(Module("empty"), {})

    def test_pipeline_io(self, module):
        io = pipeline_io(module)
        assert io["sources"] == ["a", "b"]
        assert io["sinks"] == ["vector", "total"]

    def test_matches_compiled_app_semantics(self, rng):
        """The functional answer is independent of compilation."""
        from repro.core.compiler import EverestCompiler
        from repro.core.dse.space import DesignSpace

        pipeline = Pipeline("check")
        a = pipeline.source("a", TensorType((8,), F32))
        task = pipeline.task("double", KERNELS, inputs=[a])
        pipeline.sink("out", task.output(0))
        app = EverestCompiler(
            space=DesignSpace.small(), emit_artifacts=False
        ).compile(pipeline)
        x = rng.normal(size=8).astype(np.float32)
        outputs = execute_pipeline(app.module, {"a": x})
        assert np.allclose(outputs["out"], x * 2, atol=1e-6)
