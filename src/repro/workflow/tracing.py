"""Execution traces of workflow runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class TaskRecord:
    """Timing of one executed task."""

    task: str
    worker: str
    ready_at: float
    start: float
    end: float
    transfer_seconds: float = 0.0
    bytes_moved: int = 0

    @property
    def wait_seconds(self) -> float:
        """Queueing delay between readiness and start."""
        return self.start - self.ready_at

    @property
    def duration(self) -> float:
        """Wall duration including input staging."""
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """The full record of one workflow execution."""

    graph_name: str
    policy: str
    records: List[TaskRecord] = field(default_factory=list)
    makespan: float = 0.0
    bytes_moved: int = 0

    def add(self, record: TaskRecord) -> None:
        """Append a task record, extending the makespan."""
        self.records.append(record)
        self.makespan = max(self.makespan, record.end)
        self.bytes_moved += record.bytes_moved

    def per_worker_counts(self) -> Dict[str, int]:
        """Tasks executed per worker."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.worker] = counts.get(record.worker, 0) + 1
        return counts

    def average_wait(self) -> float:
        """Mean queueing delay across tasks."""
        if not self.records:
            return 0.0
        return sum(r.wait_seconds for r in self.records) / len(
            self.records
        )

    def total_transfer_seconds(self) -> float:
        """Cumulative input-staging time."""
        return sum(r.transfer_seconds for r in self.records)

    def utilization(self, total_slots: int) -> float:
        """Aggregate busy fraction across all worker slots."""
        if self.makespan <= 0 or total_slots <= 0:
            return 0.0
        busy = sum(r.duration for r in self.records)
        return min(1.0, busy / (self.makespan * total_slots))
