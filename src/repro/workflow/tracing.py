"""Execution traces of workflow runs.

Besides per-task timing (:class:`TaskRecord`), a trace records every
injected fault (:class:`FaultRecord`) and every recovery action the
server took in response (:class:`RecoveryRecord`), so a chaos run is
fully auditable: each fault in a schedule must show up here, and the
whole trace serializes deterministically for replay comparison.

Since the observability layer landed, the servers do not build this
record directly: they emit spans and instants into a simulated-time
:class:`~repro.obs.tracer.Tracer`, and :meth:`ExecutionTrace.from_tracer`
derives the trace as a *view* over those events. The categories the
view consumes are :data:`TASK_CATEGORY`, :data:`FAULT_CATEGORY` and
:data:`RECOVERY_CATEGORY`; everything else in the tracer (transfer
spans, scheduler decisions, queue-depth counters) is extra detail that
only shows up in the exported Chrome trace. The serialized form — and
therefore :meth:`ExecutionTrace.digest` — is unchanged from the
pre-tracer implementation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List

#: Tracer categories the :meth:`ExecutionTrace.from_tracer` view maps.
TASK_CATEGORY = "workflow.task"
FAULT_CATEGORY = "workflow.fault"
RECOVERY_CATEGORY = "workflow.recovery"


@dataclass
class TaskRecord:
    """Timing of one executed task."""

    task: str
    worker: str
    ready_at: float
    start: float
    end: float
    transfer_seconds: float = 0.0
    bytes_moved: int = 0

    @property
    def wait_seconds(self) -> float:
        """Queueing delay between readiness and start."""
        return self.start - self.ready_at

    @property
    def duration(self) -> float:
        """Wall duration including input staging."""
        return self.end - self.start


@dataclass
class FaultRecord:
    """One injected fault, as observed by the runtime.

    ``kind`` is the fault class (``worker-crash``, ``link-degradation``,
    ``link-partition``, ``reconfig-failure``, ``straggler``,
    ``task-fault``); ``target`` names the worker, link (``a<->b``) or
    task hit; ``detail`` carries class-specific parameters.
    """

    kind: str
    target: str
    time: float
    detail: str = ""


@dataclass
class RecoveryRecord:
    """One recovery action the resilient server took.

    ``action`` is one of ``requeue``, ``retry``, ``backoff``,
    ``lineage``, ``refetch``, ``worker-restart``, ``worker-readmit``,
    ``link-heal``, ``straggler-clear``.
    """

    action: str
    target: str
    time: float
    detail: str = ""


@dataclass
class ExecutionTrace:
    """The full record of one workflow execution."""

    graph_name: str
    policy: str
    records: List[TaskRecord] = field(default_factory=list)
    faults: List[FaultRecord] = field(default_factory=list)
    recoveries: List[RecoveryRecord] = field(default_factory=list)
    makespan: float = 0.0
    bytes_moved: int = 0

    @classmethod
    def from_tracer(cls, tracer, graph_name: str,
                    policy: str) -> "ExecutionTrace":
        """Build the trace as a view over a server's tracer events.

        Walks the tracer's events in emission order and maps complete
        spans of category :data:`TASK_CATEGORY` to task records and
        instants of :data:`FAULT_CATEGORY` / :data:`RECOVERY_CATEGORY`
        to fault/recovery records. Because the servers emit each event
        at exactly the point the old implementation appended the
        matching record, the resulting lists — and the serialized
        bytes — are identical to the pre-tracer trace.
        """
        trace = cls(graph_name=graph_name, policy=policy)
        for event in tracer.events:
            if event.phase == "X" and event.category == TASK_CATEGORY:
                trace.add(TaskRecord(
                    task=event.args["task"],
                    worker=event.args["worker"],
                    ready_at=event.args["ready_at"],
                    start=event.args["start"],
                    end=event.args["end"],
                    transfer_seconds=event.args["transfer_seconds"],
                    bytes_moved=event.args["bytes_moved"],
                ))
            elif event.phase == "i" and event.category == FAULT_CATEGORY:
                trace.add_fault(FaultRecord(
                    kind=event.args["kind"],
                    target=event.args["target"],
                    time=event.args["time"],
                    detail=event.args["detail"],
                ))
            elif (event.phase == "i"
                  and event.category == RECOVERY_CATEGORY):
                trace.add_recovery(RecoveryRecord(
                    action=event.args["action"],
                    target=event.args["target"],
                    time=event.args["time"],
                    detail=event.args["detail"],
                ))
        return trace

    def add(self, record: TaskRecord) -> None:
        """Append a task record, extending the makespan."""
        self.records.append(record)
        self.makespan = max(self.makespan, record.end)
        self.bytes_moved += record.bytes_moved

    def add_fault(self, record: FaultRecord) -> None:
        """Record an injected fault."""
        self.faults.append(record)

    def add_recovery(self, record: RecoveryRecord) -> None:
        """Record a recovery action."""
        self.recoveries.append(record)

    def faults_by_kind(self) -> Dict[str, int]:
        """Injected fault count per fault class."""
        counts: Dict[str, int] = {}
        for fault in self.faults:
            counts[fault.kind] = counts.get(fault.kind, 0) + 1
        return counts

    def recoveries_by_action(self) -> Dict[str, int]:
        """Recovery action count per action type."""
        counts: Dict[str, int] = {}
        for recovery in self.recoveries:
            counts[recovery.action] = counts.get(recovery.action, 0) + 1
        return counts

    def to_dict(self) -> Dict:
        """Plain-data form of the whole trace (records in order)."""
        return {
            "graph_name": self.graph_name,
            "policy": self.policy,
            "makespan": self.makespan,
            "bytes_moved": self.bytes_moved,
            "records": [asdict(r) for r in self.records],
            "faults": [asdict(f) for f in self.faults],
            "recoveries": [asdict(r) for r in self.recoveries],
        }

    def to_json(self) -> str:
        """Deterministic serialization: identical runs give identical
        bytes, so chaos replays can be compared byte-for-byte."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """Short content hash of the serialized trace."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()[:16]

    def per_worker_counts(self) -> Dict[str, int]:
        """Tasks executed per worker."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.worker] = counts.get(record.worker, 0) + 1
        return counts

    def average_wait(self) -> float:
        """Mean queueing delay across tasks."""
        if not self.records:
            return 0.0
        return sum(r.wait_seconds for r in self.records) / len(
            self.records
        )

    def total_transfer_seconds(self) -> float:
        """Cumulative input-staging time."""
        return sum(r.transfer_seconds for r in self.records)

    def utilization(self, total_slots: int) -> float:
        """Aggregate busy fraction across all worker slots."""
        if self.makespan <= 0 or total_slots <= 0:
            return 0.0
        busy = sum(r.duration for r in self.records)
        return min(1.0, busy / (self.makespan * total_slots))
