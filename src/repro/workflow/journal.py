"""Durable write-ahead event journal for workflow runs.

Every state transition a workflow server makes — task dispatched,
staged, executed, completed, fault injected, recovery action taken —
is appended to a run's journal as one JSONL record before the run
moves on, so a process crash at *any* point leaves a prefix of the
truth on disk. A crashed run is resumed by replaying the journal into
a :class:`~repro.workflow.replay.ReplayState` and re-executing the
(deterministic) run with that state: already-executed task payloads
are skipped, and the resumed trace digest is byte-identical to an
unbroken run's.

Format — one record per line::

    {"seq": N, "type": T, "data": {...}, "crc": "<12 hex>"}

``crc`` is a truncated SHA-256 over the canonical serialization of
the record *without* the crc field. Records are appended with a
single ``write`` + ``flush`` each (so a torn write can only be the
final line) and fsync'd per the journal's ``fsync`` policy. The
reader tolerates a torn *final* record — the tail of an append cut
short by a crash — but a corrupt or out-of-sequence record anywhere
else raises a ``WF007`` diagnostic naming the byte offset, and a
journal or snapshot written by a different format version is rejected
with ``WF008``.

Periodic snapshots (``snapshot-<seq>.json`` beside the journal)
capture the folded :class:`ReplayState` so resume cost is O(tail),
not O(history); :meth:`RunJournal.checkpoint` places a named marker +
snapshot around risky tasks and :func:`rollback_journal` truncates
the run back to one.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import JournalError
from repro.workflow.replay import (
    JOURNAL_CATEGORY,
    ReplayState,
    apply_record,
    replay_records,
)

#: Format version stamped into every journal header record.
JOURNAL_VERSION = 1
#: Format version stamped into every snapshot file.
SNAPSHOT_VERSION = 1

#: Journal file name inside a run directory.
JOURNAL_FILE = "journal.jsonl"

#: Accepted ``fsync`` policies for :class:`RunJournal`.
FSYNC_MODES = ("always", "snapshot", "never")


def journal_error(code: str, message: str, anchor: str) -> JournalError:
    """A :class:`JournalError` carrying a WF00x diagnostic.

    Mirrors the simulator's diagnosed-error contract: the exception
    message leads with the stable code and the attached
    ``diagnostics`` collection gives tooling the code and anchor.
    """
    # imported lazily: the journal must stay importable without the
    # whole analysis stack
    from repro.core.analysis.diagnostics import Diagnostics

    diagnostics = Diagnostics()
    diagnostics.error(code, message, anchor=anchor, analysis="journal")
    exc = JournalError(f"{code}: {message}")
    exc.code = code
    exc.diagnostics = diagnostics
    return exc


# ---------------------------------------------------------------------------
# record encoding


def _canonical(payload: Dict) -> str:
    """Deterministic serialization shared by writer and checksums."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(text: str) -> str:
    """Truncated SHA-256 of the canonical record body."""
    return hashlib.sha256(text.encode()).hexdigest()[:12]


def encode_record(seq: int, kind: str, data: Dict) -> str:
    """One journal line (no trailing newline) for a record.

    The crc is spliced into the serialized body rather than re-dumping
    the whole record — this sits on the hot path of every journaled
    event (readers pop the crc before verifying, so its position in
    the object is immaterial).
    """
    canonical = _canonical({"seq": seq, "type": kind, "data": data})
    return f'{canonical[:-1]},"crc":"{_checksum(canonical)}"}}'


def decode_line(line: str) -> Dict:
    """Parse and verify one journal line; raises ValueError if bad."""
    record = json.loads(line)
    if not isinstance(record, dict):
        raise ValueError("record is not an object")
    crc = record.pop("crc", None)
    expected = _checksum(_canonical(
        {"seq": record["seq"], "type": record["type"],
         "data": record["data"]}
    ))
    if crc != expected:
        raise ValueError(f"checksum mismatch ({crc!r} != {expected!r})")
    return record


def read_records(path) -> Tuple[List[Dict], bool]:
    """All valid records of a journal file, in order.

    Returns ``(records, torn_tail)``. A final record that fails to
    parse or checksum is a torn write — the crash interrupted the last
    append — and is dropped with ``torn_tail=True``. Any earlier bad
    record, or a sequence-number gap, is corruption: ``WF007`` names
    the byte offset. A header from another format version raises
    ``WF008``.
    """
    path = Path(path)
    if not path.exists():
        return [], False
    raw = path.read_bytes()
    records: List[Dict] = []
    offset = 0
    entries = []  # (byte offset, line text)
    for chunk in raw.split(b"\n"):
        if chunk:
            entries.append((offset, chunk))
        offset += len(chunk) + 1
    for index, (start, chunk) in enumerate(entries):
        try:
            record = decode_line(chunk.decode("utf-8", "strict"))
            if record["seq"] != len(records):
                raise ValueError(
                    f"sequence gap: expected {len(records)}, "
                    f"found {record['seq']}"
                )
        except (ValueError, KeyError, TypeError,
                UnicodeDecodeError) as exc:
            if index == len(entries) - 1:
                return records, True  # torn final append
            raise journal_error(
                "WF007",
                f"corrupt journal record at byte offset {start} "
                f"(record {len(records)}): {exc}",
                anchor=str(path),
            ) from exc
        if record["type"] == "header":
            version = record["data"].get("journal_version")
            if version != JOURNAL_VERSION:
                raise journal_error(
                    "WF008",
                    f"journal version skew: file is v{version}, "
                    f"this build reads v{JOURNAL_VERSION}",
                    anchor=str(path),
                )
        records.append(record)
    return records, False


# ---------------------------------------------------------------------------
# snapshots


def snapshot_path(directory, seq: int) -> Path:
    """Snapshot file covering journal records ``0..seq``."""
    return Path(directory) / f"snapshot-{seq:08d}.json"


def list_snapshots(directory) -> List[Tuple[int, Path]]:
    """(covered seq, path) of every snapshot file, newest first."""
    directory = Path(directory)
    found = []
    if not directory.is_dir():
        return found
    for path in directory.glob("snapshot-*.json"):
        stem = path.stem.split("-", 1)[-1]
        try:
            found.append((int(stem), path))
        except ValueError:
            continue
    return sorted(found, reverse=True)


def write_snapshot(directory, seq: int, state: ReplayState) -> Path:
    """Atomically persist the state folded through record ``seq``."""
    payload = {
        "snapshot_version": SNAPSHOT_VERSION,
        "journal_version": JOURNAL_VERSION,
        "seq": seq,
        "state": state.to_dict(),
    }
    canonical = _canonical(payload)
    payload["crc"] = _checksum(canonical)
    path = snapshot_path(directory, seq)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(_canonical(payload), encoding="utf-8")
    os.replace(tmp, path)
    return path


def read_snapshot(path) -> Optional[Tuple[int, ReplayState]]:
    """Load one snapshot file; None when torn/corrupt (fall back to
    an older snapshot or a full replay), ``WF008`` on version skew."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        versions = (payload.get("snapshot_version"),
                    payload.get("journal_version"))
    except (OSError, ValueError):
        return None
    if versions != (SNAPSHOT_VERSION, JOURNAL_VERSION):
        raise journal_error(
            "WF008",
            f"snapshot version skew: file is snapshot v{versions[0]} / "
            f"journal v{versions[1]}, this build reads "
            f"v{SNAPSHOT_VERSION}/v{JOURNAL_VERSION}",
            anchor=str(path),
        )
    crc = payload.pop("crc", None)
    if crc != _checksum(_canonical(payload)):
        return None
    try:
        return payload["seq"], ReplayState.from_dict(payload["state"])
    except (KeyError, TypeError, ValueError):
        return None


# ---------------------------------------------------------------------------
# replay


class ReplayInfo:
    """How a replay reconstructed its state (for `runs show`/benchmarks)."""

    def __init__(self, records_total: int, records_replayed: int,
                 snapshot_seq: int, torn_tail: bool):
        """Counts of journal records seen vs actually folded."""
        self.records_total = records_total
        self.records_replayed = records_replayed
        self.snapshot_seq = snapshot_seq
        self.torn_tail = torn_tail


def replay_journal(directory, use_snapshots: bool = True
                   ) -> Tuple[ReplayState, ReplayInfo]:
    """Reconstruct a run directory's state: snapshot + journal tail.

    Seeds from the newest intact snapshot whose covered seq is within
    the journal (snapshots "from the future" — the journal was
    truncated behind them — are ignored), then folds only the records
    after it. ``use_snapshots=False`` forces a full fold; both paths
    produce equal states (the property the durability suite pins).
    """
    directory = Path(directory)
    records, torn = read_records(directory / JOURNAL_FILE)
    last_seq = records[-1]["seq"] if records else -1
    state: Optional[ReplayState] = None
    after = -1
    if use_snapshots:
        for seq, path in list_snapshots(directory):
            if seq > last_seq:
                continue  # journal truncated behind this snapshot
            loaded = read_snapshot(path)
            if loaded is not None:
                after, state = loaded
                break
    state = replay_records(records, state=state, after_seq=after)
    info = ReplayInfo(
        records_total=len(records),
        records_replayed=len([r for r in records if r["seq"] > after]),
        snapshot_seq=after,
        torn_tail=torn,
    )
    return state, info


def rollback_journal(directory, label: str) -> ReplayState:
    """Truncate a run back to checkpoint ``label``.

    Rewrites the journal to end at the (last) checkpoint record with
    that label, drops snapshots taken after it, and returns the state
    at the checkpoint. Raises ``WF007``-style :class:`JournalError`
    when the label does not exist.
    """
    directory = Path(directory)
    path = directory / JOURNAL_FILE
    records, _torn = read_records(path)
    cut = None
    for record in records:
        if (record["type"] == "checkpoint"
                and record["data"].get("label") == label):
            cut = record["seq"]
    if cut is None:
        raise journal_error(
            "WF007",
            f"rollback target {label!r} is not a checkpoint in this "
            f"journal",
            anchor=str(path),
        )
    kept = [r for r in records if r["seq"] <= cut]
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        for record in kept:
            handle.write(encode_record(
                record["seq"], record["type"], record["data"]
            ) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    for seq, snap in list_snapshots(directory):
        if seq > cut:
            snap.unlink()
    return replay_records(kept)


# ---------------------------------------------------------------------------
# the writer facade the servers drive


class RunJournal:
    """Write-ahead journal for one workflow run.

    The servers attach it to their simulated-time tracer
    (:meth:`attach`); every tracer event is then journaled *before*
    execution proceeds, and the journal maintains the folded
    :class:`ReplayState` incrementally so snapshots are O(state), not
    O(history).

    ``fsync`` policies: ``"always"`` fsyncs every append (survives OS
    crashes), ``"snapshot"`` (default) flushes every append — a torn
    tail is the worst a *process* crash can do — and fsyncs at
    snapshots, checkpoints and finish; ``"never"`` fsyncs only on
    close.
    """

    def __init__(self, directory, snapshot_every: int = 100,
                 fsync: str = "snapshot"):
        """Create/open the journal under run directory ``directory``."""
        if fsync not in FSYNC_MODES:
            raise JournalError(
                f"unknown fsync mode {fsync!r}; use one of "
                f"{FSYNC_MODES}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / JOURNAL_FILE
        self.snapshot_every = snapshot_every
        self.fsync = fsync
        self.state = ReplayState()
        self._seq = 0
        self._handle = None
        self._tracer = None
        self._suspended = False
        self._since_snapshot = 0
        self._started = False

    # -- lifecycle -----------------------------------------------------

    def _ensure_open(self) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")

    def start(self, header: Dict) -> None:
        """Write the header record (once) and begin accepting events."""
        if self._started:
            return
        self._started = True
        data = dict(header)
        data["journal_version"] = JOURNAL_VERSION
        self.append("header", data, sync=True)

    def attach(self, tracer) -> None:
        """Journal every event the tracer records from now on."""
        self._tracer = tracer
        tracer.sink = self.on_event

    def detach(self) -> None:
        """Stop journaling tracer events."""
        if self._tracer is not None:
            self._tracer.sink = None
            self._tracer = None

    def close(self) -> None:
        """Flush, fsync and release the journal file."""
        self.detach()
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        """Context-manager support: close on exit."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the journal when the block exits."""
        self.close()

    # -- appends -------------------------------------------------------

    def append(self, kind: str, data: Dict, sync: bool = False) -> int:
        """Durably append one record; returns its sequence number.

        The line is written in a single ``write`` and flushed to the
        OS before the caller proceeds, so the only record a crash can
        damage is the final one — which replay tolerates.
        """
        self._ensure_open()
        seq = self._seq
        self._handle.write(encode_record(seq, kind, data) + "\n")
        self._handle.flush()
        if sync or self.fsync == "always":
            os.fsync(self._handle.fileno())
        self._seq += 1
        apply_record(
            self.state, {"seq": seq, "type": kind, "data": data}
        )
        return seq

    def on_event(self, event) -> None:
        """Tracer sink: journal one emitted trace event."""
        if self._suspended or not self._started:
            return
        self.append("event", {
            "phase": event.phase,
            "name": event.name,
            "category": event.category,
            "ts": event.ts,
            "dur": event.dur,
            "args": dict(event.args),
        })
        self._since_snapshot += 1
        if (self.snapshot_every
                and self._since_snapshot >= self.snapshot_every):
            self.snapshot()

    # -- snapshots and checkpoints -------------------------------------

    def _journal_instant(self, name: str, **args) -> None:
        """Surface journal bookkeeping in the run's trace (un-journaled:
        the record stream must not feed back into itself)."""
        if self._tracer is None:
            return
        self._suspended = True
        try:
            self._tracer.instant(
                name, category=JOURNAL_CATEGORY, track="journal", **args
            )
        finally:
            self._suspended = False

    def snapshot(self) -> int:
        """Persist the current state; returns the covered seq."""
        covered = self._seq - 1
        write_snapshot(self.directory, covered, self.state)
        if self._handle is not None and self.fsync != "never":
            os.fsync(self._handle.fileno())
        self._since_snapshot = 0
        self.append("snapshot", {
            "seq": covered,
            "file": snapshot_path(self.directory, covered).name,
        }, sync=self.fsync != "never")
        self._journal_instant("snapshot", seq=covered,
                              events=self.state.events)
        return covered

    def checkpoint(self, label: str) -> int:
        """Named marker + snapshot around a risky region.

        Returns the checkpoint record's seq; `rollback_to_checkpoint`
        truncates the run back to it.
        """
        covered = self._seq - 1
        write_snapshot(self.directory, covered, self.state)
        seq = self.append(
            "checkpoint", {"label": label, "seq": covered}, sync=True
        )
        self._since_snapshot = 0
        self._journal_instant("checkpoint", label=label, seq=seq)
        return seq

    def rollback_to_checkpoint(self, label: str) -> ReplayState:
        """Discard everything after checkpoint ``label``.

        The journal is truncated, later snapshots are deleted, and the
        in-memory state resets to the checkpoint; appends continue
        from there.
        """
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
        state = rollback_journal(self.directory, label)
        self.state = state
        self._seq = state.last_seq + 1
        self._since_snapshot = 0
        return state

    def finish(self, digest: str, makespan: float = 0.0) -> None:
        """Mark the run complete with its final trace digest."""
        self.append(
            "finish", {"digest": digest, "makespan": makespan},
            sync=True,
        )
        self._journal_instant("finish", digest=digest)
