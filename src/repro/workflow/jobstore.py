"""Durable SQLite-backed job store for the multi-tenant service.

One store holds the jobs of *many* independent sessions: clients
(:mod:`repro.workflow.client`) bulk-submit tagged jobs, launchers
(:mod:`repro.workflow.launcher`) lease batches of ready work, and
every mutation goes through a per-job state machine so illegal jumps
are rejected instead of silently corrupting the queue::

    staged ----> ready ----> running ----> done
      |            |        |       \\-----> failed
      |            |        +--> ready   (lease expired / retry)
      +--> cancelled <------+            (cancel honored by launcher)

The store is a single SQLite file in WAL mode, so independent
processes on one host share it concurrently: writers serialize on
``BEGIN IMMEDIATE`` transactions (a lease is one atomic claim — two
launchers can never be assigned the same job) and readers never
block. Submissions are batched (``executemany`` inside one
transaction) and the hot queries — ready-queue scans, per-owner and
per-tag state counts — run against covering indexes, so the store
stays responsive at 100k+ job records (pinned by
``benchmarks/test_ben_service.py``).

Leases are heartbeat-based: a launcher's claim on a batch carries an
expiry; :meth:`JobStore.heartbeat` extends it while work progresses,
and :meth:`JobStore.expire_leases` returns jobs whose launcher went
silent to the ready queue (or to ``failed`` once ``max_attempts`` is
exhausted), so a killed launcher loses *time*, never *jobs*.

Stable error codes (:class:`~repro.errors.JobStoreError`): ``JOB001``
unknown job, ``JOB002`` illegal state transition, ``JOB003`` stale
lease (the job was re-leased from under a silent launcher), ``JOB004``
schema version skew.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import JobStoreError
from repro.obs import current_metrics

#: Schema version stamped into the ``meta`` table; a store written by
#: a different version is rejected with ``JOB004``.
SCHEMA_VERSION = 1

#: Every state a job can be in.
JOB_STATES = ("staged", "ready", "running", "done", "failed",
              "cancelled")

#: Terminal states: no transition leaves them.
TERMINAL_STATES = ("done", "failed", "cancelled")

#: The legal state machine; anything else is a JOB002 error.
LEGAL_TRANSITIONS = frozenset({
    ("staged", "ready"),       # release
    ("ready", "running"),      # lease
    ("running", "done"),       # complete
    ("running", "failed"),     # fail (attempts exhausted)
    ("running", "ready"),      # lease expired / retryable failure
    ("staged", "cancelled"),
    ("ready", "cancelled"),
    ("running", "cancelled"),  # launcher honors a cancel request
})

#: Lease-latency histogram buckets (seconds): sub-ms to 1 s.
LEASE_LATENCY_BUCKETS = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0,
)


def default_jobstore_path() -> Path:
    """``$XDG_STATE_HOME/repro-service/jobs.db`` (XDG aware)."""
    base = os.environ.get("XDG_STATE_HOME")
    root = Path(base) if base else Path.home() / ".local" / "state"
    return root / "repro-service" / "jobs.db"


def jobstore_error(code: str, message: str) -> JobStoreError:
    """A :class:`JobStoreError` leading with its stable code."""
    exc = JobStoreError(f"{code}: {message}")
    exc.code = code
    return exc


def canonical_spec(spec: Dict) -> str:
    """Deterministic JSON used for storage and idempotency keys."""
    return json.dumps(spec, sort_keys=True, separators=(",", ":"))


def job_key(owner: str, name: str, kind: str, spec: Dict) -> str:
    """Content-derived idempotency key of one submission.

    Two submissions with the same owner, name, kind and spec are the
    same job: re-submitting (a retried client batch, a re-run deploy
    script) is a no-op instead of a duplicate execution.
    """
    body = "\x1f".join((owner, name, kind, canonical_spec(spec)))
    return hashlib.sha256(body.encode()).hexdigest()[:24]


@dataclass
class JobSpec:
    """One job as a client submits it."""

    name: str
    kind: str = "noop"
    spec: Dict = field(default_factory=dict)
    key: Optional[str] = None  # explicit idempotency key (optional)
    max_attempts: int = 3


@dataclass
class JobRecord:
    """One job as the store holds it (a row of the ``jobs`` table)."""

    id: int
    key: str
    name: str
    owner: str
    kind: str
    spec: Dict
    state: str
    attempts: int
    max_attempts: int
    lease_id: Optional[str]
    lease_expiry: Optional[float]
    launcher: Optional[str]
    cancel_requested: bool
    result: Optional[Dict]
    run_id: Optional[str]
    created: float
    updated: float
    tags: Tuple[str, ...] = ()


@dataclass
class SubmitResult:
    """Outcome of one (batched) submission."""

    inserted: List[int]    # newly created job ids
    duplicates: List[int]  # ids of already-present identical jobs

    @property
    def ids(self) -> List[int]:
        """Every id the submission maps to, new or pre-existing."""
        return self.inserted + self.duplicates


@dataclass
class Lease:
    """An atomic claim on a batch of ready jobs."""

    lease_id: str
    launcher: str
    expiry: float
    jobs: List[JobRecord]

    def __len__(self) -> int:
        return len(self.jobs)


_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    id               INTEGER PRIMARY KEY,
    key              TEXT NOT NULL UNIQUE,
    name             TEXT NOT NULL,
    owner            TEXT NOT NULL DEFAULT '',
    kind             TEXT NOT NULL,
    spec             TEXT NOT NULL,
    state            TEXT NOT NULL DEFAULT 'staged',
    attempts         INTEGER NOT NULL DEFAULT 0,
    max_attempts     INTEGER NOT NULL DEFAULT 3,
    lease_id         TEXT,
    lease_expiry     REAL,
    launcher         TEXT,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    result           TEXT,
    run_id           TEXT,
    created          REAL NOT NULL,
    updated          REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_jobs_state ON jobs(state, id);
CREATE INDEX IF NOT EXISTS idx_jobs_owner ON jobs(owner, state);
CREATE INDEX IF NOT EXISTS idx_jobs_lease
    ON jobs(state, lease_expiry);
CREATE TABLE IF NOT EXISTS job_tags (
    job_id INTEGER NOT NULL REFERENCES jobs(id) ON DELETE CASCADE,
    tag    TEXT NOT NULL,
    PRIMARY KEY (job_id, tag)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_tags_tag ON job_tags(tag, job_id);
"""

_JOB_COLUMNS = (
    "id, key, name, owner, kind, spec, state, attempts, max_attempts, "
    "lease_id, lease_expiry, launcher, cancel_requested, result, "
    "run_id, created, updated"
)


class JobStore:
    """One connection to the shared job database.

    Open one store per session (thread or process); independent
    sessions against the same path see each other's writes — that is
    the multi-tenant contract. ``clock`` is injectable so lease-expiry
    behaviour is testable without sleeping.
    """

    def __init__(self, path=None, clock: Callable[[], float] = None,
                 timeout_s: float = 30.0):
        """Open (creating if needed) the store at ``path``."""
        self.path = Path(path) if path else default_jobstore_path()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.clock = clock or time.time
        self._conn = sqlite3.connect(str(self.path),
                                     timeout=timeout_s)
        self._conn.isolation_level = None  # explicit transactions
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA foreign_keys=ON")
        self._conn.execute(
            f"PRAGMA busy_timeout={int(timeout_s * 1000)}"
        )
        self._init_schema()

    def _init_schema(self) -> None:
        # executescript autocommits, so it runs outside _write()
        self._conn.executescript(_SCHEMA)
        with self._write():
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta(key, value) VALUES "
                    "('schema_version', ?)", (str(SCHEMA_VERSION),),
                )
            elif int(row[0]) != SCHEMA_VERSION:
                raise jobstore_error(
                    "JOB004",
                    f"store {self.path} is schema v{row[0]}, this "
                    f"build reads v{SCHEMA_VERSION}",
                )

    def close(self) -> None:
        """Release the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "JobStore":
        """Context-manager support: close on exit."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the store when the block exits."""
        self.close()

    # -- transactions --------------------------------------------------

    def _write(self):
        """An immediate-mode write transaction (serializes writers)."""
        return _WriteTransaction(self._conn)

    # -- submission ----------------------------------------------------

    def submit(self, specs: Iterable[JobSpec], owner: str = "",
               tags: Sequence[str] = (), ready: bool = True,
               ) -> SubmitResult:
        """Batch-insert jobs; duplicate submissions are idempotent.

        Every job in the batch lands in one transaction (one fsync for
        the whole batch, the 10k-jobs/s path). A job whose idempotency
        key is already present is *not* re-inserted — its existing id
        is reported under ``duplicates`` and its state is untouched,
        so retrying a submission script never double-runs work.
        ``ready=False`` stages the jobs for a later :meth:`release`.
        """
        specs = list(specs)
        now = self.clock()
        state = "ready" if ready else "staged"
        rows = []
        keys = []
        for item in specs:
            key = item.key or job_key(owner, item.name, item.kind,
                                      item.spec)
            keys.append(key)
            rows.append((
                key, item.name, owner, item.kind,
                canonical_spec(item.spec), state,
                max(1, item.max_attempts), now, now,
            ))
        inserted: List[int] = []
        duplicates: List[int] = []
        with self._write():
            before = {
                row[0]: row[1] for row in self._conn.execute(
                    f"SELECT key, id FROM jobs WHERE key IN "
                    f"({','.join('?' * len(keys))})", keys,
                )
            } if keys else {}
            self._conn.executemany(
                "INSERT OR IGNORE INTO jobs "
                "(key, name, owner, kind, spec, state, max_attempts, "
                " created, updated) VALUES (?,?,?,?,?,?,?,?,?)", rows,
            )
            after = {
                row[0]: row[1] for row in self._conn.execute(
                    f"SELECT key, id FROM jobs WHERE key IN "
                    f"({','.join('?' * len(keys))})", keys,
                )
            } if keys else {}
            for key in keys:
                if key in before:
                    duplicates.append(before[key])
                else:
                    inserted.append(after[key])
            if tags and inserted:
                self._conn.executemany(
                    "INSERT OR IGNORE INTO job_tags(job_id, tag) "
                    "VALUES (?,?)",
                    [(job_id, tag) for job_id in inserted
                     for tag in tags],
                )
        if inserted:
            current_metrics().counter(
                "service.jobs_submitted",
                "jobs accepted by the service job store",
            ).inc(len(inserted), owner=owner or "-")
        return SubmitResult(inserted=inserted, duplicates=duplicates)

    def release(self, job_ids: Iterable[int]) -> int:
        """Move staged jobs to the ready queue; returns the count."""
        ids = list(job_ids)
        if not ids:
            return 0
        now = self.clock()
        with self._write():
            cursor = self._conn.execute(
                f"UPDATE jobs SET state='ready', updated=? "
                f"WHERE id IN ({','.join('?' * len(ids))}) "
                f"AND state='staged'", [now, *ids],
            )
            return cursor.rowcount

    # -- leasing -------------------------------------------------------

    def lease(self, launcher: str, limit: int,
              ttl_s: float = 30.0) -> Lease:
        """Atomically claim up to ``limit`` ready jobs.

        The claim happens inside one immediate transaction guarded by
        a re-check of ``state='ready'``, so two launchers calling
        concurrently partition the queue — a job is never assigned
        twice. Claimed jobs move to ``running`` with a lease that
        expires ``ttl_s`` from now unless heartbeats extend it.
        """
        started = time.perf_counter()
        now = self.clock()
        lease_id = uuid.uuid4().hex[:12]
        with self._write():
            ids = [row[0] for row in self._conn.execute(
                "SELECT id FROM jobs WHERE state='ready' "
                "AND cancel_requested=0 ORDER BY id LIMIT ?",
                (limit,),
            )]
            if ids:
                self._conn.execute(
                    f"UPDATE jobs SET state='running', lease_id=?, "
                    f"lease_expiry=?, launcher=?, "
                    f"attempts=attempts+1, updated=? "
                    f"WHERE id IN ({','.join('?' * len(ids))}) "
                    f"AND state='ready'",
                    [lease_id, now + ttl_s, launcher, now, *ids],
                )
            jobs = self._fetch_jobs(ids)
        metrics = current_metrics()
        if jobs:
            metrics.counter(
                "service.jobs_leased",
                "jobs handed to launchers under a lease",
            ).inc(len(jobs), launcher=launcher)
        metrics.histogram(
            "service.lease_seconds",
            "wall time of one lease claim",
            buckets=LEASE_LATENCY_BUCKETS,
        ).observe(time.perf_counter() - started, launcher=launcher)
        return Lease(lease_id=lease_id, launcher=launcher,
                     expiry=now + ttl_s, jobs=jobs)

    def heartbeat(self, lease_id: str,
                  ttl_s: float = 30.0) -> Tuple[int, List[int]]:
        """Extend a live lease; returns ``(refreshed, cancel_ids)``.

        ``refreshed`` is the number of still-running jobs whose expiry
        moved forward; ``cancel_ids`` are jobs in the lease for which
        a client requested cancellation — the launcher should skip or
        stop them and :meth:`cancel_leased` each one.
        """
        now = self.clock()
        with self._write():
            cursor = self._conn.execute(
                "UPDATE jobs SET lease_expiry=?, updated=? "
                "WHERE lease_id=? AND state='running'",
                (now + ttl_s, now, lease_id),
            )
            cancels = [row[0] for row in self._conn.execute(
                "SELECT id FROM jobs WHERE lease_id=? "
                "AND state='running' AND cancel_requested=1",
                (lease_id,),
            )]
            return cursor.rowcount, cancels

    def expire_leases(self) -> Tuple[List[int], List[int]]:
        """Return silent launchers' jobs to the queue.

        Running jobs whose lease expired go back to ``ready`` (the
        next lease re-runs them) unless their attempts are exhausted,
        in which case they land in ``failed`` with a lease-expiry
        result. Returns ``(requeued_ids, failed_ids)``.
        """
        now = self.clock()
        with self._write():
            stale = self._conn.execute(
                "SELECT id, attempts, max_attempts FROM jobs "
                "WHERE state='running' AND lease_expiry < ?", (now,),
            ).fetchall()
            requeued = [row[0] for row in stale if row[1] < row[2]]
            exhausted = [row[0] for row in stale if row[1] >= row[2]]
            if requeued:
                self._conn.execute(
                    f"UPDATE jobs SET state='ready', lease_id=NULL, "
                    f"lease_expiry=NULL, launcher=NULL, updated=? "
                    f"WHERE id IN ({','.join('?' * len(requeued))})",
                    [now, *requeued],
                )
            if exhausted:
                self._conn.execute(
                    f"UPDATE jobs SET state='failed', lease_id=NULL, "
                    f"lease_expiry=NULL, updated=?, result=? "
                    f"WHERE id IN ({','.join('?' * len(exhausted))})",
                    [now, json.dumps(
                        {"error": "lease expired; attempts exhausted"}
                    ), *exhausted],
                )
        if requeued:
            current_metrics().counter(
                "service.leases_expired",
                "jobs reclaimed from silent launchers",
            ).inc(len(requeued))
        return requeued, exhausted

    # -- completion ----------------------------------------------------

    def _transition(self, job_id: int, lease_id: Optional[str],
                    target: str, now: float,
                    result: Optional[Dict]) -> None:
        """Shared guarded single-job transition (inside a txn)."""
        row = self._conn.execute(
            "SELECT state, lease_id FROM jobs WHERE id=?", (job_id,),
        ).fetchone()
        if row is None:
            raise jobstore_error("JOB001", f"unknown job {job_id}")
        state, held = row
        if lease_id is not None and held != lease_id:
            raise jobstore_error(
                "JOB003",
                f"job {job_id}: lease {lease_id!r} is stale (the "
                f"store reclaimed the job; current lease {held!r}); "
                f"discard this result",
            )
        if (state, target) not in LEGAL_TRANSITIONS:
            raise jobstore_error(
                "JOB002",
                f"job {job_id}: illegal transition "
                f"{state!r} -> {target!r}",
            )
        self._conn.execute(
            "UPDATE jobs SET state=?, lease_id=NULL, "
            "lease_expiry=NULL, updated=?, result=? WHERE id=?",
            (target, now,
             json.dumps(result, sort_keys=True) if result else None,
             job_id),
        )

    def complete(self, job_id: int, lease_id: str,
                 result: Optional[Dict] = None) -> None:
        """Mark a leased job done, guarded against stale leases.

        A launcher that lost its lease (expired while it was stuck,
        the job re-leased elsewhere) gets ``JOB003`` instead of
        overwriting the rightful owner's result — the guarantee behind
        "zero double-completions".
        """
        with self._write():
            self._transition(job_id, lease_id, "done", self.clock(),
                             result)
        current_metrics().counter(
            "service.jobs_completed", "jobs finished successfully",
        ).inc()

    def fail(self, job_id: int, lease_id: str, error: str,
             retry: bool = True) -> str:
        """Record a job failure; returns the resulting state.

        With ``retry`` (default) the job goes back to ``ready`` while
        attempts remain; otherwise — or once attempts are exhausted —
        it lands in ``failed`` with the error recorded.
        """
        with self._write():
            now = self.clock()
            row = self._conn.execute(
                "SELECT attempts, max_attempts FROM jobs WHERE id=?",
                (job_id,),
            ).fetchone()
            if row is None:
                raise jobstore_error("JOB001",
                                     f"unknown job {job_id}")
            target = (
                "ready" if retry and row[0] < row[1] else "failed"
            )
            self._transition(job_id, lease_id, target, now,
                             {"error": error})
        current_metrics().counter(
            "service.jobs_failed", "job executions that failed",
        ).inc(final=str(target == "failed").lower())
        return target

    def bind_run(self, job_id: int, run_id: str) -> None:
        """Record the durable RunStore run backing a job's execution."""
        with self._write():
            self._conn.execute(
                "UPDATE jobs SET run_id=?, updated=? WHERE id=?",
                (run_id, self.clock(), job_id),
            )

    # -- cancellation --------------------------------------------------

    def cancel(self, job_ids: Iterable[int] = (),
               owner: Optional[str] = None,
               tag: Optional[str] = None) -> Tuple[int, int]:
        """Cancel jobs by id, owner or tag.

        Staged and ready jobs are cancelled immediately; running jobs
        get ``cancel_requested`` set, which their launcher honors at
        the next heartbeat or batch boundary. Returns
        ``(cancelled_now, requested)``.
        """
        ids = list(job_ids)
        clauses, params = [], []
        if ids:
            clauses.append(f"id IN ({','.join('?' * len(ids))})")
            params.extend(ids)
        if owner is not None:
            clauses.append("owner=?")
            params.append(owner)
        if tag is not None:
            clauses.append(
                "id IN (SELECT job_id FROM job_tags WHERE tag=?)"
            )
            params.append(tag)
        if not clauses:
            return 0, 0
        where = " AND ".join(clauses)
        now = self.clock()
        with self._write():
            cursor = self._conn.execute(
                f"UPDATE jobs SET state='cancelled', lease_id=NULL, "
                f"lease_expiry=NULL, updated=? "
                f"WHERE ({where}) AND state IN ('staged','ready')",
                [now, *params],
            )
            cancelled = cursor.rowcount
            cursor = self._conn.execute(
                f"UPDATE jobs SET cancel_requested=1, updated=? "
                f"WHERE ({where}) AND state='running'",
                [now, *params],
            )
            requested = cursor.rowcount
        if cancelled:
            current_metrics().counter(
                "service.jobs_cancelled", "jobs cancelled by clients",
            ).inc(cancelled)
        return cancelled, requested

    def cancel_leased(self, job_id: int, lease_id: str) -> None:
        """Launcher-side acknowledgement of a cancel request."""
        with self._write():
            self._transition(job_id, lease_id, "cancelled",
                             self.clock(), {"error": "cancelled"})

    # -- queries -------------------------------------------------------

    def _fetch_jobs(self, ids: Sequence[int]) -> List[JobRecord]:
        if not ids:
            return []
        rows = self._conn.execute(
            f"SELECT {_JOB_COLUMNS} FROM jobs "
            f"WHERE id IN ({','.join('?' * len(ids))}) ORDER BY id",
            list(ids),
        ).fetchall()
        tags: Dict[int, List[str]] = {}
        for job_id, tag in self._conn.execute(
            f"SELECT job_id, tag FROM job_tags "
            f"WHERE job_id IN ({','.join('?' * len(ids))})",
            list(ids),
        ):
            tags.setdefault(job_id, []).append(tag)
        return [self._record(row, tags.get(row[0], []))
                for row in rows]

    @staticmethod
    def _record(row, tags: List[str]) -> JobRecord:
        return JobRecord(
            id=row[0], key=row[1], name=row[2], owner=row[3],
            kind=row[4], spec=json.loads(row[5]), state=row[6],
            attempts=row[7], max_attempts=row[8], lease_id=row[9],
            lease_expiry=row[10], launcher=row[11],
            cancel_requested=bool(row[12]),
            result=json.loads(row[13]) if row[13] else None,
            run_id=row[14], created=row[15], updated=row[16],
            tags=tuple(sorted(tags)),
        )

    def job(self, job_id: int) -> JobRecord:
        """One job by id; JOB001 when it does not exist."""
        jobs = self._fetch_jobs([job_id])
        if not jobs:
            raise jobstore_error("JOB001", f"unknown job {job_id}")
        return jobs[0]

    def list_jobs(self, state: Optional[str] = None,
                  owner: Optional[str] = None,
                  tag: Optional[str] = None,
                  limit: int = 100) -> List[JobRecord]:
        """Jobs matching the filters, oldest first, indexed access."""
        clauses, params = [], []
        if state is not None:
            clauses.append("state=?")
            params.append(state)
        if owner is not None:
            clauses.append("owner=?")
            params.append(owner)
        if tag is not None:
            clauses.append(
                "id IN (SELECT job_id FROM job_tags WHERE tag=?)"
            )
            params.append(tag)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        ids = [row[0] for row in self._conn.execute(
            f"SELECT id FROM jobs {where} ORDER BY id LIMIT ?",
            [*params, limit],
        )]
        return self._fetch_jobs(ids)

    def counts(self, owner: Optional[str] = None,
               tag: Optional[str] = None) -> Dict[str, int]:
        """Job count per state (every state present, possibly 0)."""
        clauses, params = [], []
        if owner is not None:
            clauses.append("owner=?")
            params.append(owner)
        if tag is not None:
            clauses.append(
                "id IN (SELECT job_id FROM job_tags WHERE tag=?)"
            )
            params.append(tag)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        out = {state: 0 for state in JOB_STATES}
        for state, count in self._conn.execute(
            f"SELECT state, COUNT(*) FROM jobs {where} "
            f"GROUP BY state", params,
        ):
            out[state] = count
        return out

    def drained(self) -> bool:
        """True when no job is staged, ready or running."""
        row = self._conn.execute(
            "SELECT COUNT(*) FROM jobs "
            "WHERE state IN ('staged','ready','running')"
        ).fetchone()
        return row[0] == 0

    # -- gc ------------------------------------------------------------

    def gc(self, live_run_ids: Optional[Iterable[str]] = None,
           ) -> Tuple[int, int]:
        """Prune finished rows and orphaned run references.

        Deletes jobs in terminal states (their results have been
        consumed; the journal in the run store is the durable record).
        When ``live_run_ids`` is given — the run ids still present in
        the run store — non-terminal jobs bound to a run that no
        longer exists are orphans (their durable state was
        garbage-collected from under them) and are deleted too.
        Returns ``(finished_removed, orphans_removed)``.
        """
        with self._write():
            cursor = self._conn.execute(
                "DELETE FROM jobs WHERE state IN "
                "('done','failed','cancelled')"
            )
            finished = cursor.rowcount
            orphans = 0
            if live_run_ids is not None:
                live = list(live_run_ids)
                if live:
                    cursor = self._conn.execute(
                        f"DELETE FROM jobs WHERE run_id IS NOT NULL "
                        f"AND run_id NOT IN "
                        f"({','.join('?' * len(live))})", live,
                    )
                else:
                    cursor = self._conn.execute(
                        "DELETE FROM jobs WHERE run_id IS NOT NULL"
                    )
                orphans = cursor.rowcount
            self._conn.execute(
                "DELETE FROM job_tags WHERE job_id NOT IN "
                "(SELECT id FROM jobs)"
            )
        return finished, orphans


class _WriteTransaction:
    """``BEGIN IMMEDIATE`` writer scope: commit or roll back."""

    def __init__(self, conn: sqlite3.Connection):
        self._conn = conn

    def __enter__(self) -> sqlite3.Connection:
        self._conn.execute("BEGIN IMMEDIATE")
        return self._conn

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._conn.execute("COMMIT")
        else:
            self._conn.execute("ROLLBACK")
