"""Scheduling policies for the workflow engine.

HyperLoom schedules by *b-level* (longest path to a sink) to keep the
critical path busy; the paper claims the platform "improves resource
utilization and reduces the overall workflow processing time". To make
that claim testable, three policies share one interface:

* :class:`FIFOScheduler` — arrival order, first free worker (baseline);
* :class:`BLevelScheduler` — critical-path-first;
* :class:`LocalityScheduler` — minimize input movement, b-level tie-break.

**Tie-break contract**: equal-priority ready tasks dispatch in
ready-queue insertion order (the servers append tasks as they become
ready, in topological order at start and completion order after), and
every policy sorts with Python's stable sort — so identical runs
dispatch ties identically. This pinned determinism is what makes
chaos replays and sanitizer reports byte-identical; it is also why an
``order_sensitive`` task consuming equal-b-level unordered producers
is only a *hazard* (RACE004) rather than observed flakiness: the
nondeterminism surfaces when task durations or the worker pool
change, not between replays.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.workflow.graph import TaskGraph, WorkflowTask
from repro.workflow.worker import Worker


class SchedulerPolicy:
    """Interface: pick one (task, worker) assignment or None."""

    name = "abstract"

    def __init__(self):
        self._b_levels: Optional[Dict[str, float]] = None

    def prepare(self, graph: TaskGraph) -> None:
        """Called once before execution starts."""
        self._b_levels = graph.b_levels()

    def select(
        self,
        ready: List[str],
        workers: List[Worker],
        graph: TaskGraph,
        locations: Dict[str, str],
        transfer_cost,
    ) -> Optional[Tuple[str, Worker]]:
        """Choose an assignment; ``transfer_cost(task, worker)`` gives
        the staging cost in seconds for placing the task there."""
        raise NotImplementedError

    @staticmethod
    def _eligible(task: WorkflowTask, workers: List[Worker]
                  ) -> List[Worker]:
        return [worker for worker in workers if worker.can_run(task.cpus)]


class FIFOScheduler(SchedulerPolicy):
    """First ready task to the first worker with capacity."""

    name = "fifo"

    def select(self, ready, workers, graph, locations, transfer_cost):
        """Assign the earliest-ready task to the first fitting worker."""
        for task_name in ready:
            task = graph.tasks[task_name]
            eligible = self._eligible(task, workers)
            if eligible:
                return task_name, eligible[0]
        return None


class BLevelScheduler(SchedulerPolicy):
    """Largest b-level first; worker with the most free slots."""

    name = "b-level"

    def select(self, ready, workers, graph, locations, transfer_cost):
        """Assign the most critical ready task to the freest worker."""
        ordered = sorted(
            ready, key=lambda name: -self._b_levels[name]
        )
        for task_name in ordered:
            task = graph.tasks[task_name]
            eligible = self._eligible(task, workers)
            if eligible:
                best = max(
                    eligible,
                    key=lambda worker: (worker.free_cpus,
                                        worker.speed_factor),
                )
                return task_name, best
        return None


class LocalityScheduler(SchedulerPolicy):
    """Minimize staging cost; break ties toward the critical path."""

    name = "locality"

    def select(self, ready, workers, graph, locations, transfer_cost):
        """Assign the cheapest-to-stage (task, worker) pair."""
        ordered = sorted(
            ready, key=lambda name: -self._b_levels[name]
        )
        best_choice: Optional[Tuple[str, Worker]] = None
        best_key: Optional[Tuple[float, float]] = None
        for task_name in ordered:
            task = graph.tasks[task_name]
            eligible = self._eligible(task, workers)
            if not eligible:
                continue
            for worker in eligible:
                cost = transfer_cost(task_name, worker)
                key = (cost, -self._b_levels[task_name])
                if best_key is None or key < best_key:
                    best_key = key
                    best_choice = (task_name, worker)
            # Only consider lower-priority tasks if nothing eligible yet:
            if best_choice is not None and best_key[0] == 0.0:
                break
        return best_choice


def make_policy(name: str) -> SchedulerPolicy:
    """Factory by policy name."""
    policies = {
        "fifo": FIFOScheduler,
        "b-level": BLevelScheduler,
        "locality": LocalityScheduler,
    }
    if name not in policies:
        raise ValueError(
            f"unknown policy {name!r}; expected one of {sorted(policies)}"
        )
    return policies[name]()
