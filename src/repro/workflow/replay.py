"""Replay of workflow journals into resumable run state.

A run's write-ahead journal (:mod:`repro.workflow.journal`) is a
sequence of typed records; this module folds that sequence into a
:class:`ReplayState` — the durable summary a resumed run needs:

* how many times each task *executed* (reached its payload-invocation
  point) and *completed* — the credits a resumed server spends to skip
  work that already ran (:class:`PayloadSkipper`);
* the run header (graph digest, policy, worker pool) so a resume
  against the wrong recipe is rejected instead of silently diverging;
* fault/recovery/dispatch tallies and checkpoint positions for
  ``repro runs show``.

The fold is a pure function (:func:`apply_record`), shared by the
journal writer — which maintains the state incrementally so a snapshot
is just :meth:`ReplayState.to_dict` — and the reader, which seeds the
state from the newest usable snapshot and folds only the journal tail.
The defining property, exercised by the durability test suite::

    replay(snapshot_state, tail) == replay(empty, full_journal)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.workflow.tracing import FAULT_CATEGORY, RECOVERY_CATEGORY, TASK_CATEGORY

#: Tracer category for task payload-invocation points (emitted by the
#: servers when a journal is attached; see workflow/server.py).
EXEC_CATEGORY = "workflow.exec"
#: Tracer category for journal bookkeeping instants (snapshots,
#: checkpoints) surfaced in exported Chrome traces.
JOURNAL_CATEGORY = "workflow.journal"


@dataclass
class ReplayState:
    """Everything the journal proves happened before a crash."""

    #: The journal header (graph digest, policy, workers); None until a
    #: header record is applied.
    header: Optional[Dict] = None
    #: Task name -> times the task reached its execution point.
    exec_counts: Dict[str, int] = field(default_factory=dict)
    #: Task name -> times a completion record was journaled.
    completions: Dict[str, int] = field(default_factory=dict)
    #: Checkpoint label -> journal seq of the checkpoint record.
    checkpoints: Dict[str, int] = field(default_factory=dict)
    events: int = 0
    dispatches: int = 0
    faults: int = 0
    recoveries: int = 0
    last_seq: int = -1
    last_time: float = 0.0
    last_snapshot_seq: int = -1
    finished: bool = False
    digest: Optional[str] = None

    def to_dict(self) -> Dict:
        """Plain-data form, suitable for a snapshot file."""
        return {
            "header": self.header,
            "exec_counts": dict(self.exec_counts),
            "completions": dict(self.completions),
            "checkpoints": dict(self.checkpoints),
            "events": self.events,
            "dispatches": self.dispatches,
            "faults": self.faults,
            "recoveries": self.recoveries,
            "last_seq": self.last_seq,
            "last_time": self.last_time,
            "last_snapshot_seq": self.last_snapshot_seq,
            "finished": self.finished,
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ReplayState":
        """Rebuild a state from :meth:`to_dict` output."""
        return cls(
            header=data.get("header"),
            exec_counts=dict(data.get("exec_counts", {})),
            completions=dict(data.get("completions", {})),
            checkpoints=dict(data.get("checkpoints", {})),
            events=int(data.get("events", 0)),
            dispatches=int(data.get("dispatches", 0)),
            faults=int(data.get("faults", 0)),
            recoveries=int(data.get("recoveries", 0)),
            last_seq=int(data.get("last_seq", -1)),
            last_time=float(data.get("last_time", 0.0)),
            last_snapshot_seq=int(data.get("last_snapshot_seq", -1)),
            finished=bool(data.get("finished", False)),
            digest=data.get("digest"),
        )

    # ------------------------------------------------------------------

    def total_completions(self) -> int:
        """Completion records across all tasks (lineage re-runs count)."""
        return sum(self.completions.values())

    def payload_skipper(self) -> "PayloadSkipper":
        """Skip credits for a resumed execution of this run."""
        return PayloadSkipper(dict(self.exec_counts))

    def summary(self) -> Dict:
        """Compact description for ``repro runs list|show``."""
        return {
            "events": self.events,
            "executions": sum(self.exec_counts.values()),
            "completions": self.total_completions(),
            "faults": self.faults,
            "recoveries": self.recoveries,
            "checkpoints": len(self.checkpoints),
            "finished": self.finished,
            "digest": self.digest,
            "sim_time": self.last_time,
        }


class PayloadSkipper:
    """Spends journaled execution credits during a resumed run.

    The servers call :meth:`take` at every task execution point; while
    a task still has journaled executions left, the call returns True
    and the (deterministic) re-execution skips invoking the payload —
    the real work already happened before the crash.
    """

    def __init__(self, credits: Dict[str, int]):
        """``credits``: task name -> journaled execution count."""
        self._credits = {
            name: count for name, count in credits.items() if count > 0
        }
        self.skipped = 0
        self.executed = 0

    def take(self, task_name: str) -> bool:
        """Consume one credit; True when this execution already ran."""
        remaining = self._credits.get(task_name, 0)
        if remaining > 0:
            self._credits[task_name] = remaining - 1
            self.skipped += 1
            return True
        self.executed += 1
        return False


def apply_record(state: ReplayState, record: Dict) -> ReplayState:
    """Fold one decoded journal record into the state (in place).

    This is the single definition of what each record type *means*;
    the journal writer applies it as records are appended and the
    reader applies it during replay, so both sides always agree.
    """
    kind = record["type"]
    data = record["data"]
    state.last_seq = record["seq"]
    if kind == "header":
        state.header = data
    elif kind == "event":
        state.events += 1
        ts = data.get("ts", 0.0)
        end = ts + data.get("dur", 0.0)
        if end > state.last_time:
            state.last_time = end
        category = data.get("category", "")
        args = data.get("args", {})
        if category == TASK_CATEGORY and data.get("phase") == "X":
            task = args.get("task", data.get("name", ""))
            state.completions[task] = state.completions.get(task, 0) + 1
        elif category == EXEC_CATEGORY:
            task = args.get("task", data.get("name", ""))
            state.exec_counts[task] = state.exec_counts.get(task, 0) + 1
        elif category == FAULT_CATEGORY:
            state.faults += 1
        elif category == RECOVERY_CATEGORY:
            state.recoveries += 1
        elif data.get("name") == "dispatch":
            state.dispatches += 1
    elif kind == "snapshot":
        state.last_snapshot_seq = data["seq"]
    elif kind == "checkpoint":
        state.checkpoints[data["label"]] = record["seq"]
    elif kind == "finish":
        state.finished = True
        state.digest = data.get("digest")
    return state


def replay_records(records, state: Optional[ReplayState] = None,
                   after_seq: int = -1) -> ReplayState:
    """Fold ``records`` with seq > ``after_seq`` into ``state``."""
    state = state if state is not None else ReplayState()
    for record in records:
        if record["seq"] > after_seq:
            apply_record(state, record)
    return state
