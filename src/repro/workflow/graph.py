"""Task graphs and data objects.

A :class:`TaskGraph` is a DAG of :class:`WorkflowTask` nodes connected
through named :class:`DataObject` edges, mirroring HyperLoom's plan
model: tasks declare the objects they consume and produce; objects
carry sizes so schedulers can reason about movement cost.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

import networkx as nx

from repro.errors import WorkflowError
from repro.utils.validation import check_non_negative, check_positive


@dataclass
class DataObject:
    """A named piece of data flowing between tasks."""

    name: str
    size_bytes: int = 0
    producer: Optional[str] = None  # task name; None = external input
    locality: str = ""  # preferred/initial node name

    def __post_init__(self):
        check_non_negative("size_bytes", self.size_bytes)


@dataclass
class WorkflowTask:
    """One schedulable unit of work."""

    name: str
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    #: objects read *and* rewritten in place: the task depends on the
    #: object's producer, but is unordered w.r.t. other updaters and
    #: readers — a hazard the concurrency analyzer reports (RACE00x)
    updates: List[str] = field(default_factory=list)
    duration_s: float = 1e-3  # nominal duration on a reference core
    cpus: int = 1
    kernel: str = ""  # optional compiled-kernel binding
    payload: Optional[Callable] = None  # optional direct callable
    constraints: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        check_positive("cpus", self.cpus)
        check_non_negative("duration_s", self.duration_s)


class TaskGraph:
    """A validated DAG of tasks and data objects."""

    def __init__(self, name: str = "graph"):
        self.name = name
        self.tasks: Dict[str, WorkflowTask] = {}
        self.objects: Dict[str, DataObject] = {}

    # ------------------------------------------------------------------

    def add_object(self, obj: DataObject) -> DataObject:
        """Register a data object."""
        if obj.name in self.objects:
            raise WorkflowError(f"duplicate data object {obj.name!r}")
        self.objects[obj.name] = obj
        return obj

    def add_task(self, task: WorkflowTask) -> WorkflowTask:
        """Register a task; its outputs are created as objects."""
        if task.name in self.tasks:
            raise WorkflowError(f"duplicate task {task.name!r}")
        for input_name in task.inputs:
            if input_name not in self.objects:
                raise WorkflowError(
                    f"task {task.name!r}: unknown input object "
                    f"{input_name!r}"
                )
        for updated_name in task.updates:
            if updated_name not in self.objects:
                raise WorkflowError(
                    f"task {task.name!r}: unknown updated object "
                    f"{updated_name!r}"
                )
        for output_name in task.outputs:
            if output_name in self.objects:
                raise WorkflowError(
                    f"task {task.name!r}: output {output_name!r} "
                    f"already produced elsewhere"
                )
            self.objects[output_name] = DataObject(
                name=output_name, producer=task.name
            )
        self.tasks[task.name] = task
        return task

    def set_object_size(self, name: str, size_bytes: int) -> None:
        """Set the size of an object (e.g. after estimation)."""
        if name not in self.objects:
            raise WorkflowError(f"unknown object {name!r}")
        check_non_negative("size_bytes", size_bytes)
        self.objects[name].size_bytes = size_bytes

    # ------------------------------------------------------------------

    def dependencies(self, task_name: str) -> List[str]:
        """Names of tasks that must finish before this one starts."""
        task = self.tasks[task_name]
        result = []
        for input_name in list(task.inputs) + list(task.updates):
            producer = self.objects[input_name].producer
            if (
                producer is not None
                and producer != task_name
                and producer not in result
            ):
                result.append(producer)
        return result

    def consumers(self, task_name: str) -> List[str]:
        """Tasks consuming or updating any output of the given task."""
        outputs = set(self.tasks[task_name].outputs)
        return [
            other.name
            for other in self.tasks.values()
            if outputs.intersection(other.inputs)
            or outputs.intersection(other.updates)
        ]

    def to_networkx(self) -> nx.DiGraph:
        """Task-level dependency digraph."""
        graph = nx.DiGraph()
        for name in self.tasks:
            graph.add_node(name)
        for name in self.tasks:
            for dependency in self.dependencies(name):
                graph.add_edge(dependency, name)
        return graph

    def validate(self) -> None:
        """Check acyclicity and input availability."""
        graph = self.to_networkx()
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise WorkflowError(f"workflow contains a cycle: {cycle}")

    def topological_order(self) -> List[str]:
        """Tasks in a valid execution order."""
        self.validate()
        return list(nx.topological_sort(self.to_networkx()))

    # ------------------------------------------------------------------

    def b_levels(self) -> Dict[str, float]:
        """HyperLoom-style bottom levels: longest path to a sink.

        The b-level of a task is its own duration plus the maximum
        b-level of its consumers; scheduling the largest first keeps
        the critical path moving.
        """
        self.validate()
        levels: Dict[str, float] = {}
        for name in reversed(self.topological_order()):
            task = self.tasks[name]
            consumer_level = max(
                (levels[consumer] for consumer in self.consumers(name)),
                default=0.0,
            )
            levels[name] = task.duration_s + consumer_level
        return levels

    def critical_path_length(self) -> float:
        """Duration of the longest dependency chain."""
        levels = self.b_levels()
        return max(levels.values(), default=0.0)

    def total_work(self) -> float:
        """Sum of all task durations (serial execution time)."""
        return sum(task.duration_s for task in self.tasks.values())

    def digest(self) -> str:
        """Content hash of the graph's structure, sizes and durations.

        Excludes payload callables (not serializable, not part of the
        schedule); two graphs with equal digests execute identically
        under a given pool and policy, which is what lets a resumed
        run verify it was rebuilt from the same recipe (WF009).
        """
        payload = {
            "name": self.name,
            "tasks": [
                {
                    "name": task.name,
                    "inputs": list(task.inputs),
                    "outputs": list(task.outputs),
                    "updates": list(task.updates),
                    "duration_s": task.duration_s,
                    "cpus": task.cpus,
                    "kernel": task.kernel,
                }
                for _, task in sorted(self.tasks.items())
            ],
            "objects": [
                {
                    "name": obj.name,
                    "size_bytes": obj.size_bytes,
                    "producer": obj.producer,
                    "locality": obj.locality,
                }
                for _, obj in sorted(self.objects.items())
            ],
        }
        serialized = json.dumps(payload, sort_keys=True,
                                separators=(",", ":"))
        return hashlib.sha256(serialized.encode()).hexdigest()[:16]

    def external_inputs(self) -> List[DataObject]:
        """Objects with no producer (fed from outside)."""
        return [
            obj for obj in self.objects.values() if obj.producer is None
        ]

    def roots(self) -> List[str]:
        """Tasks with no task dependencies."""
        return [
            name for name in self.tasks if not self.dependencies(name)
        ]

    def __len__(self) -> int:
        return len(self.tasks)
