"""Workers: execution slots bound to platform nodes.

A worker advertises CPU slots and holds a local store of data objects;
the scheduler moves objects between workers over the ecosystem's links
when a task runs away from its inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from repro.errors import WorkflowError
from repro.platform.node import Node
from repro.utils.validation import check_positive


@dataclass
class Worker:
    """One worker process on a platform node."""

    name: str
    node_name: str
    cpus: int = 4
    speed_factor: float = 1.0  # relative to the reference core
    node: Optional[Node] = None
    store: Set[str] = field(default_factory=set)
    busy_cpus: int = field(default=0, init=False)
    tasks_executed: int = field(default=0, init=False)
    busy_seconds: float = field(default=0.0, init=False)
    #: >1.0 while the worker is a straggler (chaos-injected slowdown).
    slowdown: float = field(default=1.0, init=False)

    def __post_init__(self):
        check_positive("cpus", self.cpus)
        check_positive("speed_factor", self.speed_factor)

    @property
    def free_cpus(self) -> int:
        """Slots currently available."""
        return self.cpus - self.busy_cpus

    def can_run(self, cpus: int) -> bool:
        """True when enough free slots exist."""
        return self.free_cpus >= cpus

    def acquire(self, cpus: int) -> None:
        """Reserve slots for a task.

        Raises :class:`WorkflowError` on a non-positive request (which
        would silently corrupt the accounting) or when the request
        exceeds the free slots.
        """
        if cpus <= 0:
            raise WorkflowError(
                f"worker {self.name!r}: acquire of {cpus} cpus; the "
                f"request must be positive"
            )
        if not self.can_run(cpus):
            raise WorkflowError(
                f"worker {self.name!r}: requested {cpus} cpus, only "
                f"{self.free_cpus} free"
            )
        self.busy_cpus += cpus

    def release(self, cpus: int) -> None:
        """Return slots after a task finishes.

        Raises :class:`WorkflowError` on a non-positive count (which
        would silently inflate capacity) or when releasing more slots
        than are busy.
        """
        if cpus <= 0:
            raise WorkflowError(
                f"worker {self.name!r}: release of {cpus} cpus; the "
                f"count must be positive"
            )
        if cpus > self.busy_cpus:
            raise WorkflowError(
                f"worker {self.name!r}: releasing {cpus} cpus but only "
                f"{self.busy_cpus} busy"
            )
        self.busy_cpus -= cpus

    def reset(self) -> None:
        """Restart bookkeeping: empty store, all slots free, no slowdown.

        Called when a crashed worker process is re-admitted to the
        pool; its in-memory object store did not survive the crash.
        """
        self.store.clear()
        self.busy_cpus = 0
        self.slowdown = 1.0

    def holds(self, object_name: str) -> bool:
        """True when the object is in this worker's local store."""
        return object_name in self.store

    def execution_time(self, duration_s: float) -> float:
        """Wall time of a task with nominal duration on this worker.

        Straggler slowdowns — on the worker itself or its platform
        node — stretch the nominal duration.
        """
        slowdown = self.slowdown
        if self.node is not None:
            slowdown *= self.node.slowdown
        return duration_s * slowdown / self.speed_factor

    def utilization(self, elapsed: float) -> float:
        """Busy fraction over an elapsed window."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (elapsed * self.cpus))
