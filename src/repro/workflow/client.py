"""Client API of the multi-tenant workflow service.

The user-facing half of the service split: a
:class:`ServiceClient` connects to the shared job database and lets
independent sessions — different shells, different users, different
machines sharing a filesystem — submit work in bulk, watch its state
and cancel it, without ever touching launcher internals. The full
narrative guide (with runnable examples) is ``docs/SERVICE.md``.

Quick start::

    from repro.workflow import JobSpec, ServiceClient

    client = ServiceClient("service/jobs.db")
    result = client.submit(
        [JobSpec(name=f"probe-{i}", kind="chaos",
                 spec={"graph_seed": i, "fault_seed": 1, "tasks": 9})
         for i in range(100)],
        owner="alice", tags=("nightly",),
    )
    print(client.counts(tag="nightly"))   # {'ready': 100, ...}
    # ... a `repro service launch` launcher drains the queue ...
    for job in client.jobs(state="done", tag="nightly"):
        print(job.name, job.result["digest"])

Everything the client does is one SQLite transaction against the
store, so it is safe to run while launchers are executing: submission
is batched (one fsync per call, not per job), queries run on covering
indexes, and cancellation of running jobs is a *request* the owning
launcher honors at its next heartbeat.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.workflow.jobstore import (
    JobRecord,
    JobSpec,
    JobStore,
    SubmitResult,
)


class ServiceClient:
    """Bulk submission, state queries and cancellation for one tenant.

    One client wraps one store connection; open one per session (it
    is cheap) rather than sharing across threads. ``default_owner``
    stamps submissions that do not name an owner themselves.
    """

    def __init__(self, db_path=None, default_owner: str = "",
                 clock=None):
        """Connect to the job database at ``db_path``."""
        self.store = JobStore(db_path, clock=clock)
        self.default_owner = default_owner

    def close(self) -> None:
        """Release the store connection."""
        self.store.close()

    def __enter__(self) -> "ServiceClient":
        """Context-manager support: close on exit."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the client when the block exits."""
        self.close()

    # -- submission ----------------------------------------------------

    def submit(self, specs: Iterable[JobSpec],
               owner: Optional[str] = None,
               tags: Sequence[str] = (),
               ready: bool = True) -> SubmitResult:
        """Submit a batch of jobs; idempotent per content key.

        Returns the :class:`SubmitResult`; ``result.duplicates``
        holds the ids of jobs that were already in the store (same
        owner, name, kind and spec), which the store refused to
        duplicate.
        """
        return self.store.submit(
            specs,
            owner=self.default_owner if owner is None else owner,
            tags=tags, ready=ready,
        )

    def release(self, job_ids: Iterable[int]) -> int:
        """Promote staged jobs to the ready queue."""
        return self.store.release(job_ids)

    # -- queries -------------------------------------------------------

    def job(self, job_id: int) -> JobRecord:
        """One job with its tags, result and lease state."""
        return self.store.job(job_id)

    def jobs(self, state: Optional[str] = None,
             owner: Optional[str] = None,
             tag: Optional[str] = None,
             limit: int = 100) -> List[JobRecord]:
        """Jobs matching the filters (indexed; oldest first)."""
        return self.store.list_jobs(state=state, owner=owner,
                                    tag=tag, limit=limit)

    def counts(self, owner: Optional[str] = None,
               tag: Optional[str] = None) -> Dict[str, int]:
        """Job count per state for the filtered population."""
        return self.store.counts(owner=owner, tag=tag)

    def drained(self) -> bool:
        """True when nothing is left staged, ready or running."""
        return self.store.drained()

    def wait(self, timeout_s: float = 30.0,
             poll_s: float = 0.05) -> bool:
        """Block until the store drains; False on timeout."""
        deadline = time.monotonic() + timeout_s
        while not self.store.drained():
            if time.monotonic() >= deadline:
                return False
            time.sleep(poll_s)
        return True

    # -- cancellation --------------------------------------------------

    def cancel(self, job_ids: Iterable[int] = (),
               owner: Optional[str] = None,
               tag: Optional[str] = None) -> Tuple[int, int]:
        """Cancel by ids, owner or tag.

        Returns ``(cancelled_now, requested)``: queued jobs are gone
        immediately; running jobs are flagged and their launcher
        cancels them at its next heartbeat.
        """
        return self.store.cancel(job_ids, owner=owner, tag=tag)
