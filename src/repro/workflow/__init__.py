"""Distributed workflow execution platform (HyperLoom [10], §III-A).

EVEREST executes "complex workflows in large scale distributed
environments with various virtualized heterogeneous resources". This
package provides the engine: task graphs with data objects
(:mod:`graph`), workers bound to platform nodes (:mod:`worker`),
scheduling policies including HyperLoom's b-level heuristic
(:mod:`scheduler`), an orchestration server (:mod:`server`), and
execution traces (:mod:`tracing`).
"""

from repro.workflow.graph import DataObject, TaskGraph, WorkflowTask
from repro.workflow.worker import Worker
from repro.workflow.scheduler import (
    BLevelScheduler,
    FIFOScheduler,
    LocalityScheduler,
    SchedulerPolicy,
)
from repro.workflow.server import WorkflowServer
from repro.workflow.recovery import (
    FailureInjection,
    RecoveryStats,
    ResilientServer,
    RetryPolicy,
    migrate_task,
)
from repro.workflow.tracing import (
    ExecutionTrace,
    FaultRecord,
    RecoveryRecord,
    TaskRecord,
)
from repro.workflow.journal import (
    RunJournal,
    read_records,
    replay_journal,
    rollback_journal,
)
from repro.workflow.replay import PayloadSkipper, ReplayState
from repro.workflow.runstore import RunInfo, RunStore, default_runs_dir
from repro.workflow.jobstore import (
    JobRecord,
    JobSpec,
    JobStore,
    Lease,
    SubmitResult,
    default_jobstore_path,
)
from repro.workflow.client import ServiceClient
from repro.workflow.launcher import Launcher, LauncherStats

__all__ = [
    "TaskGraph",
    "WorkflowTask",
    "DataObject",
    "Worker",
    "SchedulerPolicy",
    "FIFOScheduler",
    "BLevelScheduler",
    "LocalityScheduler",
    "WorkflowServer",
    "ResilientServer",
    "FailureInjection",
    "RecoveryStats",
    "RetryPolicy",
    "migrate_task",
    "ExecutionTrace",
    "TaskRecord",
    "FaultRecord",
    "RecoveryRecord",
    "RunJournal",
    "ReplayState",
    "PayloadSkipper",
    "RunStore",
    "RunInfo",
    "read_records",
    "replay_journal",
    "rollback_journal",
    "default_runs_dir",
    "JobStore",
    "JobSpec",
    "JobRecord",
    "Lease",
    "SubmitResult",
    "ServiceClient",
    "Launcher",
    "LauncherStats",
    "default_jobstore_path",
]
