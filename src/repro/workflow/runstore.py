"""On-disk store of durable workflow runs.

Layout, under a root directory (default
``$XDG_STATE_HOME/repro-runs`` or ``~/.local/state/repro-runs``)::

    <root>/<run-id>/
        meta.json            # recipe: how to rebuild this run
        journal.jsonl        # write-ahead event journal
        snapshot-<seq>.json  # periodic ReplayState snapshots
        archive-<n>/         # journal+snapshots of crashed attempts

``meta.json`` is written *before* execution starts, so a run killed at
any journal offset — including offset zero — still records how to
rebuild its graph, pool and fault schedule deterministically; the CLI
reads it back for ``repro run --resume`` / ``repro runs``. Resuming
archives the crashed attempt's journal and snapshots (they remain on
disk for audit) and starts a fresh journal that the re-executed run
fills end to end.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import JournalError
from repro.workflow.journal import (
    JOURNAL_FILE,
    ReplayInfo,
    RunJournal,
    list_snapshots,
    replay_journal,
)
from repro.workflow.replay import ReplayState

META_FILE = "meta.json"


def default_runs_dir() -> Path:
    """``$XDG_STATE_HOME/repro-runs`` or ``~/.local/state/repro-runs``."""
    base = os.environ.get("XDG_STATE_HOME")
    root = Path(base) if base else Path.home() / ".local" / "state"
    return root / "repro-runs"


@dataclass
class RunInfo:
    """One row of ``repro runs list``."""

    run_id: str
    kind: str
    created: float
    state: ReplayState
    info: ReplayInfo
    attempts: int

    @property
    def status(self) -> str:
        """``complete``, ``in-flight`` or ``empty``."""
        if self.state.finished:
            return "complete"
        if self.state.events or self.state.header:
            return "in-flight"
        return "empty"


class RunStore:
    """Manages run directories under one root."""

    def __init__(self, root=None):
        """Open (creating lazily) the store rooted at ``root``."""
        self.root = Path(root) if root else default_runs_dir()

    # -- creation ------------------------------------------------------

    def create_run(
        self,
        kind: str,
        meta: Dict,
        run_id: Optional[str] = None,
        snapshot_every: int = 100,
        fsync: str = "snapshot",
    ) -> Tuple[str, RunJournal]:
        """Register a new run and open its journal.

        ``meta`` must hold everything needed to rebuild the run
        deterministically (seeds, spec path, policy, pool size...);
        it is persisted before any execution so a crash at journal
        offset zero is still resumable.
        """
        run_id = run_id or f"{kind}-{uuid.uuid4().hex[:8]}"
        directory = self.root / run_id
        if (directory / META_FILE).exists():
            raise JournalError(f"run {run_id!r} already exists")
        directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "run_id": run_id,
            "kind": kind,
            "created": time.time(),
            "attempts": 1,
            "meta": meta,
        }
        self._write_meta(directory, payload)
        journal = RunJournal(
            directory, snapshot_every=snapshot_every, fsync=fsync
        )
        return run_id, journal

    def _write_meta(self, directory: Path, payload: Dict) -> None:
        tmp = directory / (META_FILE + ".tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, indent=2),
            encoding="utf-8",
        )
        os.replace(tmp, directory / META_FILE)

    # -- lookup --------------------------------------------------------

    def run_dir(self, run_id: str) -> Path:
        """Directory of one run; raises when it does not exist."""
        directory = self.root / run_id
        if not directory.is_dir():
            raise JournalError(
                f"unknown run {run_id!r} under {self.root}"
            )
        return directory

    def load_meta(self, run_id: str) -> Dict:
        """The persisted recipe of a run."""
        path = self.run_dir(run_id) / META_FILE
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise JournalError(
                f"run {run_id!r} has no readable {META_FILE}: {exc}"
            ) from exc

    def load_state(self, run_id: str,
                   use_snapshots: bool = True
                   ) -> Tuple[ReplayState, ReplayInfo]:
        """Replay a run's journal into its durable state."""
        return replay_journal(
            self.run_dir(run_id), use_snapshots=use_snapshots
        )

    def list_runs(self) -> List[RunInfo]:
        """Every run in the store, newest first."""
        rows: List[RunInfo] = []
        if not self.root.is_dir():
            return rows
        for directory in sorted(self.root.iterdir()):
            if not (directory / META_FILE).exists():
                continue
            run_id = directory.name
            meta = self.load_meta(run_id)
            state, info = replay_journal(directory)
            rows.append(RunInfo(
                run_id=run_id,
                kind=meta.get("kind", "?"),
                created=meta.get("created", 0.0),
                state=state,
                info=info,
                attempts=meta.get("attempts", 1),
            ))
        rows.sort(key=lambda row: row.created, reverse=True)
        return rows

    # -- resume --------------------------------------------------------

    def prepare_resume(
        self,
        run_id: str,
        snapshot_every: int = 100,
        fsync: str = "snapshot",
    ) -> Tuple[Dict, ReplayState, RunJournal]:
        """Stage a crashed run for re-execution.

        Replays the crashed attempt's journal (snapshot + tail) into
        the resume state, archives its journal and snapshots under
        ``archive-<n>/``, bumps the attempt counter and opens a fresh
        journal for the resumed execution. Returns
        ``(meta, state, journal)``; when ``state.finished`` the caller
        should not re-execute — the recorded digest is authoritative.
        """
        directory = self.run_dir(run_id)
        meta = self.load_meta(run_id)
        state, _info = replay_journal(directory)
        if not state.finished:
            attempt = meta.get("attempts", 1)
            archive = directory / f"archive-{attempt}"
            journal_file = directory / JOURNAL_FILE
            if journal_file.exists() or list_snapshots(directory):
                archive.mkdir(exist_ok=True)
                if journal_file.exists():
                    shutil.move(str(journal_file),
                                str(archive / JOURNAL_FILE))
                for _seq, snap in list_snapshots(directory):
                    shutil.move(str(snap), str(archive / snap.name))
            meta["attempts"] = attempt + 1
            self._write_meta(directory, meta)
        journal = RunJournal(
            directory, snapshot_every=snapshot_every, fsync=fsync
        )
        return meta, state, journal

    # -- gc ------------------------------------------------------------

    def gc(self, completed_only: bool = True) -> List[str]:
        """Delete run directories; returns the removed run ids.

        Default removes only completed runs (their journals have a
        finish record); ``completed_only=False`` removes everything.
        """
        removed = []
        for row in self.list_runs():
            if completed_only and not row.state.finished:
                continue
            shutil.rmtree(self.root / row.run_id)
            removed.append(row.run_id)
        return removed
