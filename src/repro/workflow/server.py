"""The workflow orchestration server.

Runs a :class:`~repro.workflow.graph.TaskGraph` over a pool of
:class:`~repro.workflow.worker.Worker` instances on the discrete-event
simulator, staging data objects between workers (through the ecosystem
topology when one is provided) and producing an
:class:`~repro.workflow.tracing.ExecutionTrace`.

Every run is traced: the server emits task spans (one lane per
worker), staging-transfer spans, scheduler-decision instants and
ready-queue counters into a simulated-time tracer, and the returned
``ExecutionTrace`` is a view over those events
(:meth:`~repro.workflow.tracing.ExecutionTrace.from_tracer`). When an
enabled tracer is passed in — or installed ambiently via
:func:`repro.obs.observe` — the whole simulated timeline is absorbed
into it as its own process for Chrome-trace export.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import WorkflowError
from repro.obs import SimClock, Tracer, current_metrics, current_tracer
from repro.platform.simulator import Simulator
from repro.platform.topology import Ecosystem
from repro.workflow.graph import TaskGraph
from repro.workflow.journal import RunJournal, journal_error
from repro.workflow.replay import (
    EXEC_CATEGORY,
    PayloadSkipper,
    ReplayState,
)
from repro.workflow.scheduler import (
    BLevelScheduler,
    SchedulerPolicy,
)
from repro.workflow.tracing import TASK_CATEGORY, ExecutionTrace
from repro.workflow.worker import Worker

#: Tracer categories for the extra (non-ExecutionTrace) detail.
TRANSFER_CATEGORY = "workflow.transfer"
SCHED_CATEGORY = "workflow.sched"
#: Worker-slot request/release instants consumed by repro.sanitize.
RESOURCE_EVENT_CATEGORY = "workflow.resource"


def make_sim_tracer(sim: Simulator, graph_name: str) -> Tracer:
    """A simulated-time tracer for one run, attached to the engine."""
    tracer = Tracer(clock=SimClock(sim), enabled=True,
                    process=f"workflow:{graph_name}")
    sim.tracer = tracer
    return tracer


def begin_journal(
    journal: Optional[RunJournal],
    events: Tracer,
    graph: TaskGraph,
    policy_name: str,
    workers: List[Worker],
    resume: Optional[ReplayState],
) -> Optional[PayloadSkipper]:
    """Shared server prologue for durable/resumed execution.

    When resuming, the journaled header must describe the same run
    recipe we are about to re-execute — same graph content, policy and
    worker pool — otherwise the deterministic replay would silently
    diverge from what the journal proves happened; that mismatch is a
    hard ``WF009`` error. When journaling, the header is written and
    the journal hooks the simulated-time tracer so every transition is
    durable before execution proceeds.

    Returns the payload skipper for a resumed run (None otherwise).
    """
    recipe = {
        "graph": graph.name,
        "graph_digest": graph.digest(),
        "policy": policy_name,
        "workers": [worker.name for worker in workers],
        "tasks": len(graph.tasks),
    }
    if resume is not None and resume.header is not None:
        for key in ("graph_digest", "policy", "workers"):
            expected = resume.header.get(key)
            if expected != recipe[key]:
                raise journal_error(
                    "WF009",
                    f"resume state was journaled for {key}="
                    f"{expected!r} but this run has {recipe[key]!r}; "
                    f"rebuild the run from its recorded recipe",
                    anchor=graph.name,
                )
    if journal is not None:
        journal.start(recipe)
        journal.attach(events)
    return resume.payload_skipper() if resume is not None else None


def end_journal(journal: Optional[RunJournal],
                trace: ExecutionTrace) -> None:
    """Seal a journaled run: final digest record, tracer detached."""
    if journal is None:
        return
    journal.finish(trace.digest(), makespan=trace.makespan)
    journal.detach()


def publish_run(sim_tracer: Tracer, graph_name: str,
                tracer: Optional[Tracer]) -> None:
    """Absorb a run's simulated timeline into the session tracer."""
    target = tracer if tracer is not None else current_tracer()
    if target.enabled:
        target.absorb(sim_tracer, process=f"workflow:{graph_name}")

#: Default inter-worker staging model when no ecosystem is given.
_DEFAULT_LATENCY_S = 1e-3
_DEFAULT_BANDWIDTH = 1e9  # bytes/second


class WorkflowServer:
    """Executes task graphs over a worker pool."""

    def __init__(
        self,
        workers: List[Worker],
        ecosystem: Optional[Ecosystem] = None,
        policy: Optional[SchedulerPolicy] = None,
    ):
        if not workers:
            raise WorkflowError("server needs at least one worker")
        names = {worker.name for worker in workers}
        if len(names) != len(workers):
            raise WorkflowError("worker names must be unique")
        self.workers = list(workers)
        self.ecosystem = ecosystem
        self.policy = policy or BLevelScheduler()

    # ------------------------------------------------------------------

    def _transfer_seconds(self, source_worker: str, target_worker: str,
                          size_bytes: int) -> float:
        if source_worker == target_worker or size_bytes == 0:
            return 0.0
        if self.ecosystem is not None:
            source = self._worker(source_worker).node_name
            target = self._worker(target_worker).node_name
            if source == target:
                return 0.0
            return self.ecosystem.transfer_time(source, target,
                                                size_bytes)
        return _DEFAULT_LATENCY_S + size_bytes / _DEFAULT_BANDWIDTH

    def _worker(self, name: str) -> Worker:
        for worker in self.workers:
            if worker.name == name:
                return worker
        raise WorkflowError(f"unknown worker {name!r}")

    # ------------------------------------------------------------------

    def run(self, graph: TaskGraph,
            tracer: Optional[Tracer] = None,
            journal: Optional[RunJournal] = None,
            resume: Optional[ReplayState] = None) -> ExecutionTrace:
        """Execute the graph to completion; returns the trace.

        ``tracer`` (or the ambient session tracer) receives the whole
        simulated timeline as a ``workflow:<graph>`` process.
        ``journal`` makes the run durable: every transition is
        write-ahead logged so a crash can be resumed. ``resume`` is
        the replayed state of a crashed run — execution re-runs the
        deterministic timeline but skips payloads that already ran.
        """
        graph.validate()
        self.policy.prepare(graph)

        sim = Simulator()
        events = make_sim_tracer(sim, graph.name)
        skipper = begin_journal(
            journal, events, graph, self.policy.name, self.workers,
            resume,
        )
        metrics = current_metrics()
        locations: Dict[str, str] = {}
        # External inputs start on their preferred worker (or the first).
        for obj in graph.external_inputs():
            home = obj.locality or self.workers[0].name
            try:
                worker = self._worker(home)
            except WorkflowError:
                # locality names a node: find a worker on that node
                matches = [
                    w for w in self.workers if w.node_name == home
                ]
                worker = matches[0] if matches else self.workers[0]
            locations[obj.name] = worker.name
            worker.store.add(obj.name)

        remaining_deps: Dict[str, int] = {
            name: len(graph.dependencies(name)) for name in graph.tasks
        }
        ready: List[str] = [
            name for name in graph.topological_order()
            if remaining_deps[name] == 0
        ]
        ready_at: Dict[str, float] = {name: 0.0 for name in ready}
        finished: List[str] = []
        wake = {"event": sim.event()}

        def resource_event(op: str, worker: Worker, units: int):
            events.instant(
                f"{op}:{worker.name}", category=RESOURCE_EVENT_CATEGORY,
                track=worker.name, op=op, resource=worker.name,
                units=units, capacity=worker.cpus,
            )

        def staged_objects(task) -> List[str]:
            return list(task.inputs) + list(task.updates)

        def transfer_cost(task_name: str, worker: Worker) -> float:
            total = 0.0
            for input_name in staged_objects(graph.tasks[task_name]):
                if worker.holds(input_name):
                    continue
                source = locations.get(input_name)
                if source is None:
                    raise WorkflowError(
                        f"object {input_name!r} has no location"
                    )
                total += self._transfer_seconds(
                    source, worker.name,
                    graph.objects[input_name].size_bytes,
                )
            return total

        def run_task(task_name: str, worker: Worker):
            task = graph.tasks[task_name]
            start_ready = ready_at[task_name]
            start = sim.now
            staging = 0.0
            moved = 0
            for input_name in staged_objects(task):
                if worker.holds(input_name):
                    continue
                source = locations[input_name]
                size = graph.objects[input_name].size_bytes
                seconds = self._transfer_seconds(
                    source, worker.name, size
                )
                if seconds:
                    stage_start = sim.now
                    yield sim.timeout(seconds)
                    events.complete(
                        f"stage:{input_name}", stage_start, sim.now,
                        category=TRANSFER_CATEGORY, track=worker.name,
                        source=source, bytes=size,
                    )
                staging += seconds
                moved += size
                worker.store.add(input_name)
            duration = worker.execution_time(task.duration_s)
            if journal is not None:
                events.instant(
                    "exec", category=EXEC_CATEGORY, track=worker.name,
                    task=task_name, worker=worker.name,
                )
            already_ran = (
                skipper.take(task_name) if skipper is not None else False
            )
            if task.payload is not None and not already_ran:
                task.payload()
            yield sim.timeout(duration)
            worker.busy_seconds += duration * task.cpus
            worker.tasks_executed += 1
            for output_name in list(task.outputs) + list(task.updates):
                locations[output_name] = worker.name
                worker.store.add(output_name)
            worker.release(task.cpus)
            resource_event("release", worker, task.cpus)
            events.complete(
                task_name, start, sim.now, category=TASK_CATEGORY,
                track=worker.name, task=task_name, worker=worker.name,
                ready_at=start_ready, start=start, end=sim.now,
                transfer_seconds=staging, bytes_moved=moved,
                reads=staged_objects(task),
                writes=list(task.outputs) + list(task.updates),
            )
            metrics.counter(
                "workflow.tasks_executed",
                "tasks completed by the workflow engine",
            ).inc(worker=worker.name)
            finished.append(task_name)
            for consumer in graph.consumers(task_name):
                remaining_deps[consumer] -= 1
                if remaining_deps[consumer] == 0:
                    ready.append(consumer)
                    ready_at[consumer] = sim.now
            if not wake["event"].triggered:
                wake["event"].trigger()

        def dispatcher():
            while len(finished) < len(graph.tasks):
                launched = True
                while launched and ready:
                    choice = self.policy.select(
                        ready, self.workers, graph, locations,
                        transfer_cost,
                    )
                    if choice is None:
                        launched = False
                    else:
                        task_name, worker = choice
                        ready.remove(task_name)
                        events.instant(
                            "dispatch", category=SCHED_CATEGORY,
                            track="scheduler", task=task_name,
                            worker=worker.name,
                        )
                        events.counter(
                            "ready_tasks", float(len(ready)),
                            category=SCHED_CATEGORY, track="scheduler",
                        )
                        worker.acquire(graph.tasks[task_name].cpus)
                        resource_event(
                            "request", worker,
                            graph.tasks[task_name].cpus,
                        )
                        sim.process(
                            run_task(task_name, worker),
                            name=f"task:{task_name}",
                        )
                if len(finished) >= len(graph.tasks):
                    break
                wake["event"] = sim.event()
                yield wake["event"]
            return None

        sim.run_process(dispatcher(), name="dispatcher")
        trace = ExecutionTrace.from_tracer(
            events, graph_name=graph.name, policy=self.policy.name
        )
        metrics.counter(
            "workflow.bytes_moved", "bytes staged between workers",
        ).inc(trace.bytes_moved)
        end_journal(journal, trace)
        publish_run(events, graph.name, tracer)
        return trace

    # ------------------------------------------------------------------

    def total_slots(self) -> int:
        """Total CPU slots across workers."""
        return sum(worker.cpus for worker in self.workers)

    def describe(self) -> str:
        """One-line pool summary."""
        return (
            f"{len(self.workers)} workers / {self.total_slots()} slots, "
            f"policy={self.policy.name}"
        )
