"""The workflow orchestration server.

Runs a :class:`~repro.workflow.graph.TaskGraph` over a pool of
:class:`~repro.workflow.worker.Worker` instances on the discrete-event
simulator, staging data objects between workers (through the ecosystem
topology when one is provided) and producing an
:class:`~repro.workflow.tracing.ExecutionTrace`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import WorkflowError
from repro.platform.simulator import Simulator
from repro.platform.topology import Ecosystem
from repro.workflow.graph import TaskGraph
from repro.workflow.scheduler import (
    BLevelScheduler,
    SchedulerPolicy,
)
from repro.workflow.tracing import ExecutionTrace, TaskRecord
from repro.workflow.worker import Worker

#: Default inter-worker staging model when no ecosystem is given.
_DEFAULT_LATENCY_S = 1e-3
_DEFAULT_BANDWIDTH = 1e9  # bytes/second


class WorkflowServer:
    """Executes task graphs over a worker pool."""

    def __init__(
        self,
        workers: List[Worker],
        ecosystem: Optional[Ecosystem] = None,
        policy: Optional[SchedulerPolicy] = None,
    ):
        if not workers:
            raise WorkflowError("server needs at least one worker")
        names = {worker.name for worker in workers}
        if len(names) != len(workers):
            raise WorkflowError("worker names must be unique")
        self.workers = list(workers)
        self.ecosystem = ecosystem
        self.policy = policy or BLevelScheduler()

    # ------------------------------------------------------------------

    def _transfer_seconds(self, source_worker: str, target_worker: str,
                          size_bytes: int) -> float:
        if source_worker == target_worker or size_bytes == 0:
            return 0.0
        if self.ecosystem is not None:
            source = self._worker(source_worker).node_name
            target = self._worker(target_worker).node_name
            if source == target:
                return 0.0
            return self.ecosystem.transfer_time(source, target,
                                                size_bytes)
        return _DEFAULT_LATENCY_S + size_bytes / _DEFAULT_BANDWIDTH

    def _worker(self, name: str) -> Worker:
        for worker in self.workers:
            if worker.name == name:
                return worker
        raise WorkflowError(f"unknown worker {name!r}")

    # ------------------------------------------------------------------

    def run(self, graph: TaskGraph) -> ExecutionTrace:
        """Execute the graph to completion; returns the trace."""
        graph.validate()
        self.policy.prepare(graph)
        trace = ExecutionTrace(
            graph_name=graph.name, policy=self.policy.name
        )

        sim = Simulator()
        locations: Dict[str, str] = {}
        # External inputs start on their preferred worker (or the first).
        for obj in graph.external_inputs():
            home = obj.locality or self.workers[0].name
            try:
                worker = self._worker(home)
            except WorkflowError:
                # locality names a node: find a worker on that node
                matches = [
                    w for w in self.workers if w.node_name == home
                ]
                worker = matches[0] if matches else self.workers[0]
            locations[obj.name] = worker.name
            worker.store.add(obj.name)

        remaining_deps: Dict[str, int] = {
            name: len(graph.dependencies(name)) for name in graph.tasks
        }
        ready: List[str] = [
            name for name in graph.topological_order()
            if remaining_deps[name] == 0
        ]
        ready_at: Dict[str, float] = {name: 0.0 for name in ready}
        finished: List[str] = []
        wake = {"event": sim.event()}

        def transfer_cost(task_name: str, worker: Worker) -> float:
            total = 0.0
            for input_name in graph.tasks[task_name].inputs:
                if worker.holds(input_name):
                    continue
                source = locations.get(input_name)
                if source is None:
                    raise WorkflowError(
                        f"object {input_name!r} has no location"
                    )
                total += self._transfer_seconds(
                    source, worker.name,
                    graph.objects[input_name].size_bytes,
                )
            return total

        def run_task(task_name: str, worker: Worker):
            task = graph.tasks[task_name]
            start_ready = ready_at[task_name]
            start = sim.now
            staging = 0.0
            moved = 0
            for input_name in task.inputs:
                if worker.holds(input_name):
                    continue
                source = locations[input_name]
                size = graph.objects[input_name].size_bytes
                seconds = self._transfer_seconds(
                    source, worker.name, size
                )
                if seconds:
                    yield sim.timeout(seconds)
                staging += seconds
                moved += size
                worker.store.add(input_name)
            duration = worker.execution_time(task.duration_s)
            if task.payload is not None:
                task.payload()
            yield sim.timeout(duration)
            worker.busy_seconds += duration * task.cpus
            worker.tasks_executed += 1
            for output_name in task.outputs:
                locations[output_name] = worker.name
                worker.store.add(output_name)
            worker.release(task.cpus)
            trace.add(TaskRecord(
                task=task_name,
                worker=worker.name,
                ready_at=start_ready,
                start=start,
                end=sim.now,
                transfer_seconds=staging,
                bytes_moved=moved,
            ))
            finished.append(task_name)
            for consumer in graph.consumers(task_name):
                remaining_deps[consumer] -= 1
                if remaining_deps[consumer] == 0:
                    ready.append(consumer)
                    ready_at[consumer] = sim.now
            if not wake["event"].triggered:
                wake["event"].trigger()

        def dispatcher():
            while len(finished) < len(graph.tasks):
                launched = True
                while launched and ready:
                    choice = self.policy.select(
                        ready, self.workers, graph, locations,
                        transfer_cost,
                    )
                    if choice is None:
                        launched = False
                    else:
                        task_name, worker = choice
                        ready.remove(task_name)
                        worker.acquire(graph.tasks[task_name].cpus)
                        sim.process(
                            run_task(task_name, worker),
                            name=f"task:{task_name}",
                        )
                if len(finished) >= len(graph.tasks):
                    break
                wake["event"] = sim.event()
                yield wake["event"]
            return None

        sim.run_process(dispatcher(), name="dispatcher")
        return trace

    # ------------------------------------------------------------------

    def total_slots(self) -> int:
        """Total CPU slots across workers."""
        return sum(worker.cpus for worker in self.workers)

    def describe(self) -> str:
        """One-line pool summary."""
        return (
            f"{len(self.workers)} workers / {self.total_slots()} slots, "
            f"policy={self.policy.name}"
        )
