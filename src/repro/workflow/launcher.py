"""Launchers: detached processes that lease and execute jobs.

A launcher is the service's compute side (Balsam's ``balsamlauncher``
shape): it connects to the shared :class:`~repro.workflow.jobstore.
JobStore`, leases a batch of ready jobs, executes them one by one on
the simulated platform, heartbeats its lease while it works, and
reports each job ``done``/``failed`` back to the store. Many
launchers drain one store concurrently — the lease transaction
guarantees no job is ever assigned to two of them — and a launcher
that dies mid-lease merely lets its lease expire: the store returns
its unfinished jobs to the ready queue for the survivors.

Job kinds a launcher knows how to execute:

``noop``
    No work; the result digest is derived from the spec. The
    throughput yardstick.
``graph``
    A seeded random task graph (``seed``, ``tasks``, ``workers``)
    executed to completion on a :class:`WorkflowServer`; the result
    records the deterministic trace digest.
``chaos``
    A seeded fault-injection scenario (``graph_seed``, ``fault_seed``,
    ``tasks``, ``workers``, fault counts) on the
    :class:`ResilientServer`. With ``durable: true`` in the spec and
    a run store attached, the execution is write-ahead journaled
    under run id ``job-<id>`` — a launcher killed mid-job leaves a
    resumable journal, and the re-execution reproduces the unbroken
    run's trace digest byte-identically (the PR 6 contract).

Unknown kinds fail the job with its error recorded, so a newer
client's submissions degrade loudly, not silently.
"""

from __future__ import annotations

import hashlib
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.obs import current_metrics
from repro.workflow.jobstore import (
    JobRecord,
    JobStore,
    canonical_spec,
)
from repro.workflow.runstore import RunStore

#: Run-store ``kind`` for journaled service job executions.
SERVICE_RUN_KIND = "service"


def _noop_job(spec: Dict) -> Dict:
    digest = hashlib.sha256(
        canonical_spec(spec).encode()
    ).hexdigest()[:16]
    return {"digest": digest}


def _graph_job(spec: Dict) -> Dict:
    from repro.chaos import random_task_graph
    from repro.workflow.server import WorkflowServer
    from repro.workflow.worker import Worker

    graph = random_task_graph(
        int(spec.get("seed", 0)),
        num_tasks=int(spec.get("tasks", 6)),
    )
    workers = [
        Worker(f"w{index}", node_name=f"n{index}", cpus=2)
        for index in range(int(spec.get("workers", 2)))
    ]
    trace = WorkflowServer(workers).run(graph)
    return {"digest": trace.digest(), "makespan": trace.makespan}


def _chaos_job(spec: Dict, journal=None, resume=None) -> Dict:
    from repro.chaos import (
        ChaosConfig,
        generate_schedule,
        random_task_graph,
    )
    from repro.workflow.recovery import ResilientServer
    from repro.workflow.scheduler import make_policy
    from repro.workflow.worker import Worker

    graph = random_task_graph(
        int(spec.get("graph_seed", 0)),
        num_tasks=int(spec.get("tasks", 9)),
    )
    workers = [
        Worker(f"w{index}", node_name=f"n{index}", cpus=2)
        for index in range(int(spec.get("workers", 3)))
    ]
    config = ChaosConfig(
        crashes=int(spec.get("crashes", 1)),
        link_faults=int(spec.get("link_faults", 1)),
        reconfig_faults=int(spec.get("reconfig_faults", 1)),
        stragglers=int(spec.get("stragglers", 1)),
        task_faults=int(spec.get("task_faults", 1)),
    )
    schedule = generate_schedule(
        graph, [worker.name for worker in workers],
        int(spec.get("fault_seed", 0)), config,
    )
    server = ResilientServer(
        workers, policy=make_policy(spec.get("policy", "b-level")),
    )
    trace, stats = server.run(
        graph, chaos=schedule, journal=journal, resume=resume,
    )
    return {
        "digest": trace.digest(),
        "makespan": trace.makespan,
        "retries": stats.retries,
    }


@dataclass
class LauncherStats:
    """What one :meth:`Launcher.run` drain accomplished."""

    leases: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    crashed: bool = False
    job_ids: list = field(default_factory=list)

    @property
    def executed(self) -> int:
        """Jobs this launcher finished, one way or another."""
        return self.completed + self.failed + self.cancelled


class Launcher:
    """Leases batches of ready jobs from a store and executes them.

    ``lease_ttl_s`` is how long the store waits for a heartbeat before
    declaring this launcher dead and re-leasing its jobs;
    ``heartbeat_every`` is how many jobs it executes between
    heartbeats (so the TTL must comfortably cover that many job
    durations — tuning guidance in ``docs/SERVICE.md``). A ``clock``
    override propagates to the store connection, keeping lease-expiry
    semantics testable without sleeping.
    """

    def __init__(
        self,
        db_path,
        launcher_id: Optional[str] = None,
        lease_size: int = 8,
        lease_ttl_s: float = 60.0,
        heartbeat_every: int = 4,
        run_store: Optional[RunStore] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        """Configure a launcher against the store at ``db_path``."""
        self.db_path = db_path
        self.launcher_id = (
            launcher_id or f"launcher-{uuid.uuid4().hex[:6]}"
        )
        self.lease_size = max(1, lease_size)
        self.lease_ttl_s = lease_ttl_s
        self.heartbeat_every = max(1, heartbeat_every)
        self.run_store = run_store
        self.clock = clock

    # -- job execution -------------------------------------------------

    def execute_job(self, job: JobRecord,
                    store: JobStore) -> Dict:
        """Run one job's payload; returns its result record.

        Durable chaos jobs are journaled in the run store under
        ``job-<id>``; if that run already exists in-flight (a previous
        launcher died mid-job), the journal is replayed and execution
        *resumes* — already-executed payloads are skipped and the
        digest matches an unbroken run.
        """
        spec = dict(job.spec)
        kind = job.kind
        if kind == "noop":
            return _noop_job(spec)
        if kind == "graph":
            return _graph_job(spec)
        if kind == "chaos":
            if spec.get("durable") and self.run_store is not None:
                return self._durable_chaos(job, spec, store)
            return _chaos_job(spec)
        raise ValueError(f"unknown job kind {kind!r}")

    def _durable_chaos(self, job: JobRecord, spec: Dict,
                       store: JobStore) -> Dict:
        from repro.errors import JournalError

        run_id = job.run_id or f"job-{job.id}"
        try:
            self.run_store.run_dir(run_id)
            exists = True
        except JournalError:
            exists = False
        if exists:
            _meta, state, journal = self.run_store.prepare_resume(
                run_id
            )
            if state.finished:
                journal.close()
                return {"digest": state.digest, "resumed": True}
            resume = state
        else:
            _run_id, journal = self.run_store.create_run(
                SERVICE_RUN_KIND,
                {"job": job.id, "name": job.name, **spec},
                run_id=run_id,
            )
            resume = None
        store.bind_run(job.id, run_id)
        try:
            result = _chaos_job(spec, journal=journal, resume=resume)
        finally:
            journal.close()
        if resume is not None:
            result["resumed"] = True
        return result

    # -- the drain loop ------------------------------------------------

    def run(
        self,
        max_jobs: Optional[int] = None,
        exit_on_idle: bool = False,
        idle_sleep_s: float = 0.02,
        max_idle_polls: int = 500,
        crash_after: Optional[int] = None,
    ) -> LauncherStats:
        """Lease and execute until the store drains; returns stats.

        The loop reclaims expired leases, takes a batch, executes it
        with heartbeats every ``heartbeat_every`` jobs, and exits once
        no job is staged, ready or running. While other launchers
        still hold running jobs it polls (their jobs may yet expire
        back into the queue); ``exit_on_idle`` exits at the first
        empty lease instead. ``crash_after`` is the test/chaos hook:
        the launcher "dies" after finishing that many jobs, leaving
        the rest of its lease held but unheartbeated — exactly what a
        SIGKILL does.
        """
        stats = LauncherStats()
        metrics = current_metrics()
        with JobStore(self.db_path, clock=self.clock) as store:
            idle = 0
            while True:
                store.expire_leases()
                lease = store.lease(
                    self.launcher_id, self.lease_size,
                    ttl_s=self.lease_ttl_s,
                )
                if not lease.jobs:
                    if store.drained():
                        break
                    if exit_on_idle:
                        break
                    idle += 1
                    if idle >= max_idle_polls:
                        break
                    time.sleep(idle_sleep_s)
                    continue
                idle = 0
                stats.leases += 1
                cancels = {
                    job.id for job in lease.jobs
                    if job.cancel_requested
                }
                since_heartbeat = 0
                for job in lease.jobs:
                    if (crash_after is not None
                            and stats.executed >= crash_after):
                        stats.crashed = True
                        return stats
                    if job.id in cancels:
                        store.cancel_leased(job.id, lease.lease_id)
                        stats.cancelled += 1
                        continue
                    started = time.perf_counter()
                    try:
                        result = self.execute_job(job, store)
                    except Exception as exc:
                        store.fail(job.id, lease.lease_id, str(exc))
                        stats.failed += 1
                    else:
                        store.complete(job.id, lease.lease_id,
                                       result)
                        stats.completed += 1
                        stats.job_ids.append(job.id)
                    metrics.histogram(
                        "service.job_seconds",
                        "wall time of one job execution",
                    ).observe(time.perf_counter() - started,
                              kind=job.kind)
                    since_heartbeat += 1
                    if since_heartbeat >= self.heartbeat_every:
                        _n, cancel_ids = store.heartbeat(
                            lease.lease_id, ttl_s=self.lease_ttl_s,
                        )
                        cancels.update(cancel_ids)
                        since_heartbeat = 0
                    if (max_jobs is not None
                            and stats.executed >= max_jobs):
                        return stats
        return stats
