"""Fault tolerance and migration for the workflow engine.

Paper §IV: "Tasks are defined in a way that allows runtime migration
of both data and computations" and the runtime can "seamlessly move
the computation between edge nodes and also between edge and cloud
parts". This module provides:

* :class:`FailureInjection` — a worker crash at a simulated time;
* :class:`ResilientServer` — a workflow server that survives crashes:
  running tasks on a dead worker are re-queued, objects whose only
  copy died are recovered through *lineage* (their producer chain is
  re-executed), and external inputs are re-fetched from durable
  storage at their home site.

The recovery model mirrors Spark/HyperLoom lineage: nothing is
checkpointed, everything is recomputable from the graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import WorkflowError
from repro.platform.simulator import Simulator
from repro.platform.topology import Ecosystem
from repro.workflow.graph import TaskGraph
from repro.workflow.scheduler import BLevelScheduler, SchedulerPolicy
from repro.workflow.tracing import ExecutionTrace, TaskRecord
from repro.workflow.worker import Worker


@dataclass(frozen=True)
class FailureInjection:
    """Crash ``worker`` at simulated ``at_time`` seconds."""

    worker: str
    at_time: float


@dataclass
class RecoveryStats:
    """What fault handling did during a run."""

    failures: int = 0
    tasks_requeued: int = 0
    objects_lost: int = 0
    tasks_relineaged: int = 0
    inputs_refetched: int = 0


class ResilientServer:
    """Workflow server with crash recovery and task re-execution."""

    def __init__(
        self,
        workers: List[Worker],
        ecosystem: Optional[Ecosystem] = None,
        policy: Optional[SchedulerPolicy] = None,
        refetch_latency_s: float = 0.05,
    ):
        if not workers:
            raise WorkflowError("server needs at least one worker")
        self.workers = list(workers)
        self.ecosystem = ecosystem
        self.policy = policy or BLevelScheduler()
        self.refetch_latency_s = refetch_latency_s
        self._failed: Set[str] = set()

    # ------------------------------------------------------------------

    def _alive(self) -> List[Worker]:
        return [w for w in self.workers if w.name not in self._failed]

    def _transfer_seconds(self, source: str, target: str,
                          size_bytes: int) -> float:
        if source == target or size_bytes == 0:
            return 0.0
        if self.ecosystem is not None:
            src_node = next(
                w.node_name for w in self.workers if w.name == source
            )
            dst_node = next(
                w.node_name for w in self.workers if w.name == target
            )
            if src_node == dst_node:
                return 0.0
            return self.ecosystem.transfer_time(
                src_node, dst_node, size_bytes
            )
        return 1e-3 + size_bytes / 1e9

    # ------------------------------------------------------------------

    def run(
        self,
        graph: TaskGraph,
        failures: Optional[List[FailureInjection]] = None,
    ) -> tuple:
        """Execute with crash recovery.

        Returns (trace, recovery stats). Raises
        :class:`WorkflowError` if every worker dies.
        """
        graph.validate()
        self.policy.prepare(graph)
        self._failed = set()
        stats = RecoveryStats()
        trace = ExecutionTrace(
            graph_name=graph.name,
            policy=f"{self.policy.name}+recovery",
        )

        sim = Simulator()
        locations: Dict[str, str] = {}
        homes: Dict[str, str] = {}
        for obj in graph.external_inputs():
            home = obj.locality or self.workers[0].name
            worker = next(
                (w for w in self.workers
                 if w.name == home or w.node_name == home),
                self.workers[0],
            )
            locations[obj.name] = worker.name
            homes[obj.name] = worker.name
            worker.store.add(obj.name)

        finished: Set[str] = set()
        running: Dict[str, Worker] = {}
        ready: List[str] = []
        ready_at: Dict[str, float] = {}
        wake = {"event": sim.event()}

        def deps_satisfied(task_name: str) -> bool:
            return all(
                dependency in finished
                for dependency in graph.dependencies(task_name)
            )

        def mark_ready(task_name: str) -> None:
            if (
                task_name not in ready
                and task_name not in running
                and task_name not in finished
            ):
                ready.append(task_name)
                ready_at[task_name] = sim.now

        for task_name in graph.topological_order():
            if deps_satisfied(task_name):
                mark_ready(task_name)

        def transfer_cost(task_name: str, worker: Worker) -> float:
            total = 0.0
            for input_name in graph.tasks[task_name].inputs:
                if worker.holds(input_name):
                    continue
                total += self._transfer_seconds(
                    locations[input_name], worker.name,
                    graph.objects[input_name].size_bytes,
                )
            return total

        def poke() -> None:
            if not wake["event"].triggered:
                wake["event"].trigger()

        def run_task(task_name: str, worker: Worker):
            task = graph.tasks[task_name]
            start_ready = ready_at.get(task_name, sim.now)
            start = sim.now
            staging = 0.0
            moved = 0
            aborted = False
            for input_name in task.inputs:
                if worker.holds(input_name):
                    continue
                seconds = self._transfer_seconds(
                    locations[input_name], worker.name,
                    graph.objects[input_name].size_bytes,
                )
                if seconds:
                    yield sim.timeout(seconds)
                if worker.name in self._failed:
                    aborted = True
                    break
                staging += seconds
                moved += graph.objects[input_name].size_bytes
                worker.store.add(input_name)
            if not aborted:
                yield sim.timeout(worker.execution_time(task.duration_s))
                aborted = worker.name in self._failed
            running.pop(task_name, None)
            if aborted:
                stats.tasks_requeued += 1
                if deps_satisfied(task_name):
                    mark_ready(task_name)
                poke()
                return
            worker.busy_seconds += task.duration_s * task.cpus
            worker.tasks_executed += 1
            worker.release(task.cpus)
            for output_name in task.outputs:
                locations[output_name] = worker.name
                worker.store.add(output_name)
            finished.add(task_name)
            trace.add(TaskRecord(
                task=task_name, worker=worker.name,
                ready_at=start_ready, start=start, end=sim.now,
                transfer_seconds=staging, bytes_moved=moved,
            ))
            for consumer in graph.consumers(task_name):
                if deps_satisfied(consumer):
                    mark_ready(consumer)
            poke()

        def invalidate(task_name: str, seen: Set[str]) -> None:
            """Lineage: re-run a task whose output was lost."""
            if task_name in seen:
                return
            seen.add(task_name)
            if task_name in finished:
                finished.discard(task_name)
                stats.tasks_relineaged += 1
            for output_name in graph.tasks[task_name].outputs:
                locations.pop(output_name, None)
                for worker in self.workers:
                    worker.store.discard(output_name)
                for consumer in graph.consumers(task_name):
                    invalidate(consumer, seen)
            if deps_satisfied(task_name):
                mark_ready(task_name)

        def fail_worker(injection: FailureInjection):
            yield sim.timeout(injection.at_time)
            victim = next(
                (w for w in self.workers
                 if w.name == injection.worker), None,
            )
            if victim is None:
                raise WorkflowError(
                    f"failure names unknown worker "
                    f"{injection.worker!r}"
                )
            self._failed.add(victim.name)
            stats.failures += 1
            lost_objects = set(victim.store)
            victim.store.clear()
            seen: Set[str] = set()
            for object_name in sorted(lost_objects):
                # other copies survive only if some live worker holds it
                if any(
                    w.holds(object_name) for w in self._alive()
                ):
                    survivor = next(
                        w for w in self._alive()
                        if w.holds(object_name)
                    )
                    locations[object_name] = survivor.name
                    continue
                stats.objects_lost += 1
                producer = graph.objects[object_name].producer
                if producer is None:
                    # durable external input: re-fetch to its home
                    home = homes[object_name]
                    target = next(
                        (w for w in self._alive()
                         if w.name == home), None,
                    ) or (self._alive()[0] if self._alive() else None)
                    if target is not None:
                        yield sim.timeout(self.refetch_latency_s)
                        target.store.add(object_name)
                        locations[object_name] = target.name
                        stats.inputs_refetched += 1
                else:
                    invalidate(producer, seen)
            # tasks consuming now-invalid inputs get re-marked when
            # their lineage completes; re-check ready set
            for task_name in graph.tasks:
                if (
                    task_name not in finished
                    and task_name not in running
                    and deps_satisfied(task_name)
                ):
                    mark_ready(task_name)
            poke()

        for injection in failures or []:
            sim.process(fail_worker(injection),
                        name=f"fail:{injection.worker}")

        def dispatcher():
            while len(finished) < len(graph.tasks):
                if not self._alive():
                    raise WorkflowError(
                        "all workers failed; workflow cannot complete"
                    )
                launched = True
                while launched:
                    launchable = [
                        name for name in ready
                        if deps_satisfied(name)
                    ]
                    choice = self.policy.select(
                        launchable, self._alive(), graph, locations,
                        transfer_cost,
                    ) if launchable else None
                    if choice is None:
                        launched = False
                    else:
                        task_name, worker = choice
                        ready.remove(task_name)
                        worker.acquire(graph.tasks[task_name].cpus)
                        running[task_name] = worker
                        sim.process(
                            run_task(task_name, worker),
                            name=f"task:{task_name}",
                        )
                if len(finished) >= len(graph.tasks):
                    break
                wake["event"] = sim.event()
                yield wake["event"]
            return None

        sim.run_process(dispatcher(), name="dispatcher")
        return trace, stats


def migrate_task(
    graph: TaskGraph,
    task_name: str,
    source: Worker,
    target: Worker,
    ecosystem: Optional[Ecosystem] = None,
) -> float:
    """Cost of migrating a *pending* task's inputs between workers.

    Moving the computation means moving its not-yet-consumed inputs;
    returns the staging seconds the move would add, so a placement
    layer can decide whether migration pays.
    """
    if task_name not in graph.tasks:
        raise WorkflowError(f"unknown task {task_name!r}")
    total = 0.0
    for input_name in graph.tasks[task_name].inputs:
        if target.holds(input_name):
            continue
        size = graph.objects[input_name].size_bytes
        if ecosystem is not None and source.node_name != \
                target.node_name:
            total += ecosystem.transfer_time(
                source.node_name, target.node_name, size
            )
        elif source.name != target.name:
            total += 1e-3 + size / 1e9
    return total
