"""Fault tolerance and migration for the workflow engine.

Paper §IV: "Tasks are defined in a way that allows runtime migration
of both data and computations" and the runtime can "seamlessly move
the computation between edge nodes and also between edge and cloud
parts". This module provides:

* :class:`FailureInjection` — a worker crash at a simulated time (the
  legacy single-fault interface, kept for compatibility);
* :class:`RetryPolicy` — configurable retry count, task timeout and
  exponential backoff for re-queued task attempts;
* :class:`ResilientServer` — a workflow server that survives the whole
  chaos fault vocabulary (:mod:`repro.chaos.faults`): worker crashes
  *and restarts*, link degradation/partition, vFPGA reconfiguration
  failures, stragglers, and transient task faults. Running tasks on a
  dead worker are re-queued with backoff, objects whose only copy died
  are recovered through *lineage* (their producer chain is
  re-executed), external inputs are re-fetched from durable storage,
  and restarted workers are re-admitted to the pool. Every fault and
  every recovery action lands in the
  :class:`~repro.workflow.tracing.ExecutionTrace`.

The recovery model mirrors Spark/HyperLoom lineage: nothing is
checkpointed, everything is recomputable from the graph. During a
vFPGA reconfiguration failure only the role logic is down; the shell
keeps serving the worker's object store (cloudFPGA keeps the network
stack in the static shell region), so the store survives while the
worker is out of the pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.chaos.faults import (
    ANY_LINK,
    LinkFault,
    ReconfigFault,
    StragglerFault,
    TaskFault,
    WorkerCrash,
)
from repro.chaos.schedule import ChaosSchedule
from repro.errors import ChaosError, PlatformError, WorkflowError
from repro.obs import Tracer, current_metrics
from repro.platform.simulator import Simulator
from repro.platform.topology import Ecosystem
from repro.workflow.graph import TaskGraph
from repro.workflow.journal import RunJournal
from repro.workflow.replay import EXEC_CATEGORY, ReplayState
from repro.workflow.scheduler import BLevelScheduler, SchedulerPolicy
from repro.workflow.server import (
    RESOURCE_EVENT_CATEGORY,
    SCHED_CATEGORY,
    TRANSFER_CATEGORY,
    begin_journal,
    end_journal,
    make_sim_tracer,
    publish_run,
)
from repro.workflow.tracing import (
    FAULT_CATEGORY,
    RECOVERY_CATEGORY,
    TASK_CATEGORY,
    ExecutionTrace,
)
from repro.workflow.worker import Worker

#: Cost returned to the scheduler for a placement whose staging path is
#: currently unavailable (partition / lineage in flight): finite so
#: policies can still order candidates, large enough to lose every tie.
_UNREACHABLE_COST = 1e9


@dataclass(frozen=True)
class FailureInjection:
    """Crash ``worker`` at simulated ``at_time`` seconds (legacy API)."""

    worker: str
    at_time: float


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/timeout/backoff knobs for re-queued task attempts.

    A task attempt that aborts (its worker failed, an injected task
    fault fired, or staging hit a partition) is retried after an
    exponential backoff ``base_backoff_s * backoff_factor**(n-1)``
    capped at ``max_backoff_s``. After ``max_attempts`` aborted
    attempts of one task the run raises :class:`ChaosError`.
    ``task_timeout_s`` is a straggler watchdog: an attempt whose
    projected wall time exceeds it is abandoned and re-queued, letting
    the scheduler move it to a healthier worker.
    """

    max_attempts: int = 15
    base_backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    task_timeout_s: Optional[float] = None

    def backoff_for(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        delay = self.base_backoff_s * (
            self.backoff_factor ** max(0, attempt - 1)
        )
        return min(delay, self.max_backoff_s)


@dataclass
class RecoveryStats:
    """What fault handling did during a run."""

    failures: int = 0
    tasks_requeued: int = 0
    objects_lost: int = 0
    tasks_relineaged: int = 0
    inputs_refetched: int = 0
    restarts: int = 0
    reconfig_faults: int = 0
    stragglers: int = 0
    link_faults: int = 0
    task_faults: int = 0
    retries: int = 0
    backoff_seconds: float = 0.0


class ResilientServer:
    """Workflow server with crash recovery and task re-execution."""

    def __init__(
        self,
        workers: List[Worker],
        ecosystem: Optional[Ecosystem] = None,
        policy: Optional[SchedulerPolicy] = None,
        refetch_latency_s: float = 0.05,
        retry: Optional[RetryPolicy] = None,
    ):
        if not workers:
            raise WorkflowError("server needs at least one worker")
        self.workers = list(workers)
        self.ecosystem = ecosystem
        self.policy = policy or BLevelScheduler()
        self.refetch_latency_s = refetch_latency_s
        self.retry = retry or RetryPolicy()
        self._failed: Set[str] = set()
        # Degradations on the default (no-ecosystem) staging path:
        # a stack of (bandwidth_factor, latency_add_s) overlays plus a
        # partition depth counter for overlapping faults.
        self._default_degradations: List[tuple] = []
        self._default_partitions = 0

    # ------------------------------------------------------------------

    def _alive(self) -> List[Worker]:
        return [w for w in self.workers if w.name not in self._failed]

    def _worker(self, name: str) -> Worker:
        for worker in self.workers:
            if worker.name == name:
                return worker
        raise WorkflowError(f"unknown worker {name!r}")

    def _transfer_seconds(self, source: str, target: str,
                          size_bytes: int) -> float:
        if source == target or size_bytes == 0:
            return 0.0
        if self.ecosystem is not None:
            src_node = self._worker(source).node_name
            dst_node = self._worker(target).node_name
            if src_node == dst_node:
                return 0.0
            return self.ecosystem.transfer_time(
                src_node, dst_node, size_bytes
            )
        if self._default_partitions > 0:
            raise PlatformError(
                "default staging path is partitioned"
            )
        factor = 1.0
        latency_add = 0.0
        for bw_factor, lat_add in self._default_degradations:
            factor *= bw_factor
            latency_add += lat_add
        return 1e-3 + latency_add + size_bytes / (1e9 * factor)

    # ------------------------------------------------------------------

    def _validate_faults(self, chaos: ChaosSchedule) -> None:
        names = {worker.name for worker in self.workers}
        for fault in chaos.faults:
            if isinstance(fault, (WorkerCrash, ReconfigFault,
                                  StragglerFault)):
                if fault.worker not in names:
                    raise WorkflowError(
                        f"{fault.kind} names unknown worker "
                        f"{fault.worker!r}"
                    )
            elif isinstance(fault, LinkFault):
                if fault.node_a != ANY_LINK or fault.node_b != ANY_LINK:
                    if self.ecosystem is None:
                        raise WorkflowError(
                            f"link fault targets "
                            f"{fault.node_a!r}<->{fault.node_b!r} but "
                            f"the server has no ecosystem topology"
                        )
                    self.ecosystem.link_between(fault.node_a,
                                                fault.node_b)

    # ------------------------------------------------------------------

    def run(
        self,
        graph: TaskGraph,
        failures: Optional[List[FailureInjection]] = None,
        chaos: Optional[ChaosSchedule] = None,
        tracer: Optional[Tracer] = None,
        journal: Optional[RunJournal] = None,
        resume: Optional[ReplayState] = None,
    ) -> tuple:
        """Execute with fault injection and recovery.

        ``failures`` is the legacy interface (permanent worker crashes);
        ``chaos`` is a full :class:`ChaosSchedule`; ``tracer`` (or the
        ambient session tracer) receives the simulated timeline as a
        ``workflow:<graph>`` process. ``journal`` write-ahead logs
        every transition (faults and recoveries included) so the run
        survives a process crash; ``resume`` replays a crashed run —
        the deterministic timeline is re-executed, payloads that
        already ran are skipped, and a checkpoint is taken before the
        first dispatch of every task the chaos schedule marks as
        fault-prone. Returns (trace, recovery stats). Raises
        :class:`WorkflowError` when every worker dies with no restart
        pending, and :class:`ChaosError` when a task exhausts its
        retry budget.
        """
        graph.validate()
        self.policy.prepare(graph)
        self._failed = set()
        self._default_degradations = []
        self._default_partitions = 0
        retry = self.retry
        stats = RecoveryStats()
        metrics = current_metrics()

        all_faults: List = []
        for injection in failures or []:
            if injection.worker not in {w.name for w in self.workers}:
                raise WorkflowError(
                    f"failure names unknown worker {injection.worker!r}"
                )
            all_faults.append(WorkerCrash(
                worker=injection.worker, at_time=injection.at_time,
            ))
        if chaos is not None:
            self._validate_faults(chaos)
            all_faults.extend(chaos.faults)
        task_fault_names = {
            fault.task for fault in all_faults
            if isinstance(fault, TaskFault)
        }
        for name in sorted(task_fault_names):
            if name not in graph.tasks:
                raise WorkflowError(
                    f"task-fault names unknown task {name!r}"
                )
        fault_budget: Dict[str, int] = {}
        for fault in all_faults:
            if isinstance(fault, TaskFault):
                fault_budget[fault.task] = (
                    fault_budget.get(fault.task, 0) + fault.failures
                )

        sim = Simulator()
        events = make_sim_tracer(sim, graph.name)
        skipper = begin_journal(
            journal, events, graph, self.policy.name, self.workers,
            resume,
        )
        #: Fault-prone tasks already guarded by a pre-dispatch
        #: checkpoint (chaos-wired risky-task checkpointing).
        checkpointed: Set[str] = set()

        def record_fault(kind: str, target: str, detail: str = ""
                         ) -> None:
            events.instant(
                kind, category=FAULT_CATEGORY, track="faults",
                kind=kind, target=target, time=sim.now, detail=detail,
            )
            metrics.counter(
                "workflow.faults", "injected faults observed",
            ).inc(kind=kind)

        def record_recovery(action: str, target: str, detail: str = ""
                            ) -> None:
            events.instant(
                action, category=RECOVERY_CATEGORY, track="recovery",
                action=action, target=target, time=sim.now,
                detail=detail,
            )
            metrics.counter(
                "workflow.recoveries", "recovery actions taken",
            ).inc(action=action)

        def resource_event(op: str, worker: Worker, units: int) -> None:
            events.instant(
                f"{op}:{worker.name}",
                category=RESOURCE_EVENT_CATEGORY, track=worker.name,
                op=op, resource=worker.name, units=units,
                capacity=worker.cpus,
            )

        locations: Dict[str, str] = {}
        homes: Dict[str, str] = {}
        for obj in graph.external_inputs():
            home = obj.locality or self.workers[0].name
            worker = next(
                (w for w in self.workers
                 if w.name == home or w.node_name == home),
                self.workers[0],
            )
            locations[obj.name] = worker.name
            homes[obj.name] = worker.name
            worker.store.add(obj.name)

        finished: Set[str] = set()
        running: Dict[str, Worker] = {}
        backing_off: Set[str] = set()
        ready: List[str] = []
        ready_at: Dict[str, float] = {}
        attempts: Dict[str, int] = {}
        incarnations: Dict[str, int] = {
            worker.name: 0 for worker in self.workers
        }
        pending = {"readmissions": 0}
        deferred_refetch: Set[str] = set()
        wake = {"event": sim.event()}

        def deps_satisfied(task_name: str) -> bool:
            return all(
                dependency in finished
                for dependency in graph.dependencies(task_name)
            )

        def mark_ready(task_name: str) -> None:
            if (
                task_name not in ready
                and task_name not in running
                and task_name not in finished
                and task_name not in backing_off
            ):
                ready.append(task_name)
                ready_at[task_name] = sim.now

        for task_name in graph.topological_order():
            if deps_satisfied(task_name):
                mark_ready(task_name)

        def staged_objects(task) -> List[str]:
            return list(task.inputs) + list(task.updates)

        def transfer_cost(task_name: str, worker: Worker) -> float:
            total = 0.0
            for input_name in staged_objects(graph.tasks[task_name]):
                if worker.holds(input_name):
                    continue
                source = locations.get(input_name)
                if source is None:
                    return _UNREACHABLE_COST
                try:
                    total += self._transfer_seconds(
                        source, worker.name,
                        graph.objects[input_name].size_bytes,
                    )
                except PlatformError:
                    return _UNREACHABLE_COST
            return total

        def poke() -> None:
            if not wake["event"].triggered:
                wake["event"].trigger()

        def recheck_ready() -> None:
            for task_name in graph.tasks:
                if deps_satisfied(task_name):
                    mark_ready(task_name)

        # -- task attempts ---------------------------------------------

        def requeue(task_name: str, worker: Worker, alive: bool,
                    reason: str):
            """Abort the current attempt and retry after backoff."""
            task = graph.tasks[task_name]
            running.pop(task_name, None)
            if alive:
                worker.release(task.cpus)
                resource_event("release", worker, task.cpus)
            stats.tasks_requeued += 1
            attempts[task_name] = attempts.get(task_name, 0) + 1
            attempt = attempts[task_name]
            if attempt >= retry.max_attempts:
                raise ChaosError(
                    f"task {task_name!r} aborted {attempt} times "
                    f"(last: {reason}); retry budget exhausted"
                )
            delay = retry.backoff_for(attempt)
            stats.backoff_seconds += delay
            backing_off.add(task_name)
            record_recovery(
                "backoff", task_name,
                f"attempt {attempt} aborted ({reason}); "
                f"retry in {delay:.3f}s",
            )
            if delay:
                yield sim.timeout(delay)
            backing_off.discard(task_name)
            stats.retries += 1
            record_recovery(
                "retry", task_name, f"attempt {attempt + 1}"
            )
            if deps_satisfied(task_name):
                mark_ready(task_name)
            poke()

        def run_task(task_name: str, worker: Worker):
            epoch = incarnations[worker.name]
            task = graph.tasks[task_name]
            start_ready = ready_at.get(task_name, sim.now)
            start = sim.now
            staging = 0.0
            moved = 0

            def worker_ok() -> bool:
                return (
                    worker.name not in self._failed
                    and incarnations[worker.name] == epoch
                )

            for input_name in staged_objects(task):
                if worker.holds(input_name):
                    continue
                source = locations.get(input_name)
                if source is None:
                    yield from requeue(
                        task_name, worker, worker_ok(),
                        f"input {input_name!r} unavailable",
                    )
                    return
                try:
                    seconds = self._transfer_seconds(
                        source, worker.name,
                        graph.objects[input_name].size_bytes,
                    )
                except PlatformError as exc:
                    yield from requeue(
                        task_name, worker, worker_ok(), str(exc)
                    )
                    return
                if seconds:
                    stage_start = sim.now
                    yield sim.timeout(seconds)
                    events.complete(
                        f"stage:{input_name}", stage_start, sim.now,
                        category=TRANSFER_CATEGORY, track=worker.name,
                        source=source,
                        bytes=graph.objects[input_name].size_bytes,
                    )
                if not worker_ok():
                    yield from requeue(
                        task_name, worker, False,
                        f"worker {worker.name!r} failed during staging",
                    )
                    return
                staging += seconds
                moved += graph.objects[input_name].size_bytes
                worker.store.add(input_name)

            duration = worker.execution_time(task.duration_s)
            if fault_budget.get(task_name, 0) > 0:
                fault_budget[task_name] -= 1
                # the fault bites mid-execution: half the work is lost
                yield sim.timeout(duration * 0.5)
                stats.task_faults += 1
                record_fault(
                    "task-fault", task_name,
                    f"transient fault on {worker.name}",
                )
                yield from requeue(
                    task_name, worker, worker_ok(), "transient task fault"
                )
                return
            if (
                retry.task_timeout_s is not None
                and duration > retry.task_timeout_s
            ):
                yield sim.timeout(retry.task_timeout_s)
                yield from requeue(
                    task_name, worker, worker_ok(),
                    f"timeout: projected {duration:.3f}s > "
                    f"{retry.task_timeout_s:.3f}s",
                )
                return
            if journal is not None:
                events.instant(
                    "exec", category=EXEC_CATEGORY, track=worker.name,
                    task=task_name, worker=worker.name,
                )
            already_ran = (
                skipper.take(task_name) if skipper is not None else False
            )
            if task.payload is not None and not already_ran:
                task.payload()
            yield sim.timeout(duration)
            if not worker_ok():
                yield from requeue(
                    task_name, worker, False,
                    f"worker {worker.name!r} failed mid-task",
                )
                return
            running.pop(task_name, None)
            worker.busy_seconds += task.duration_s * task.cpus
            worker.tasks_executed += 1
            worker.release(task.cpus)
            resource_event("release", worker, task.cpus)
            for output_name in list(task.outputs) + list(task.updates):
                locations[output_name] = worker.name
                worker.store.add(output_name)
            finished.add(task_name)
            events.complete(
                task_name, start, sim.now, category=TASK_CATEGORY,
                track=worker.name, task=task_name, worker=worker.name,
                ready_at=start_ready, start=start, end=sim.now,
                transfer_seconds=staging, bytes_moved=moved,
                reads=staged_objects(task),
                writes=list(task.outputs) + list(task.updates),
            )
            metrics.counter(
                "workflow.tasks_executed",
                "tasks completed by the workflow engine",
            ).inc(worker=worker.name)
            for consumer in graph.consumers(task_name):
                if deps_satisfied(consumer):
                    mark_ready(consumer)
            poke()

        # -- object recovery -------------------------------------------

        def invalidate(task_name: str, seen: Set[str]) -> None:
            """Lineage: re-run a task whose output was lost."""
            if task_name in seen:
                return
            seen.add(task_name)
            if task_name in finished:
                finished.discard(task_name)
                stats.tasks_relineaged += 1
                record_recovery(
                    "lineage", task_name,
                    "output lost; re-executing producer",
                )
            for output_name in graph.tasks[task_name].outputs:
                locations.pop(output_name, None)
                for worker in self.workers:
                    worker.store.discard(output_name)
            for consumer in graph.consumers(task_name):
                invalidate(consumer, seen)
            if deps_satisfied(task_name):
                mark_ready(task_name)

        def refetch(object_name: str):
            """Re-fetch a durable external input, or defer if no
            worker is alive to receive it."""
            home = homes[object_name]
            target = next(
                (w for w in self._alive() if w.name == home), None,
            ) or (self._alive()[0] if self._alive() else None)
            if target is None:
                deferred_refetch.add(object_name)
                return
            yield sim.timeout(self.refetch_latency_s)
            if target.name in self._failed:
                deferred_refetch.add(object_name)
                return
            target.store.add(object_name)
            locations[object_name] = target.name
            stats.inputs_refetched += 1
            record_recovery(
                "refetch", object_name, f"to {target.name}"
            )

        def take_down(victim: Worker, lose_store: bool):
            """Shared crash/reconfig path: remove from pool, free
            slots, and (for crashes) recover the lost objects."""
            self._failed.add(victim.name)
            incarnations[victim.name] += 1
            resource_event("reset", victim, 0)
            if not lose_store:
                victim.busy_cpus = 0
                return
            lost_objects = set(victim.store)
            victim.reset()
            seen: Set[str] = set()
            for object_name in sorted(lost_objects):
                survivor = next(
                    (w for w in self._alive()
                     if w.holds(object_name)), None,
                )
                if survivor is not None:
                    locations[object_name] = survivor.name
                    continue
                stats.objects_lost += 1
                producer = graph.objects[object_name].producer
                if producer is None:
                    locations.pop(object_name, None)
                    yield from refetch(object_name)
                else:
                    invalidate(producer, seen)

        def readmit(victim: Worker, action: str, down_incarnation: int,
                    fresh: bool):
            """Return a worker to the pool after restart/repair."""
            pending["readmissions"] -= 1
            if (
                victim.name in self._failed
                and incarnations[victim.name] == down_incarnation
            ):
                self._failed.discard(victim.name)
                if fresh:
                    victim.reset()
                stats.restarts += 1
                record_recovery(action, victim.name)
                for object_name in sorted(deferred_refetch):
                    deferred_refetch.discard(object_name)
                    yield from refetch(object_name)
            recheck_ready()
            poke()

        # -- fault application processes -------------------------------

        def apply_crash(fault: WorkerCrash):
            yield sim.timeout(fault.at_time)
            victim = self._worker(fault.worker)
            detail = (
                "permanent" if fault.restart_after is None
                else f"restart in {fault.restart_after:.3f}s"
            )
            record_fault("worker-crash", victim.name, detail)
            stats.failures += 1
            yield from take_down(victim, lose_store=True)
            recheck_ready()
            poke()
            if fault.restart_after is not None:
                down = incarnations[victim.name]
                pending["readmissions"] += 1
                yield sim.timeout(fault.restart_after)
                yield from readmit(
                    victim, "worker-restart", down, fresh=True
                )

        def apply_reconfig(fault: ReconfigFault):
            yield sim.timeout(fault.at_time)
            victim = self._worker(fault.worker)
            record_fault(
                "reconfig-failure", victim.name,
                f"repair in {fault.repair_s:.3f}s",
            )
            stats.reconfig_faults += 1
            yield from take_down(victim, lose_store=False)
            recheck_ready()
            poke()
            down = incarnations[victim.name]
            pending["readmissions"] += 1
            yield sim.timeout(fault.repair_s)
            yield from readmit(
                victim, "worker-readmit", down, fresh=False
            )

        def apply_straggler(fault: StragglerFault):
            yield sim.timeout(fault.at_time)
            victim = self._worker(fault.worker)
            record_fault(
                "straggler", victim.name,
                f"{fault.slowdown:.2f}x for {fault.duration_s:.3f}s",
            )
            stats.stragglers += 1
            epoch = incarnations[victim.name]
            victim.slowdown = max(victim.slowdown, fault.slowdown)
            yield sim.timeout(fault.duration_s)
            if incarnations[victim.name] == epoch:
                victim.slowdown = 1.0
            record_recovery("straggler-clear", victim.name)
            poke()

        def apply_link(fault: LinkFault):
            yield sim.timeout(fault.at_time)
            detail = (
                "severed" if fault.partition
                else f"bandwidth x{fault.bandwidth_factor:.3f}, "
                     f"+{fault.latency_add_s * 1e3:.1f}ms"
            )
            record_fault(fault.kind, fault.target, detail)
            stats.link_faults += 1
            wildcard = fault.node_a == ANY_LINK
            overlay = (fault.bandwidth_factor, fault.latency_add_s)
            if wildcard:
                if fault.partition:
                    self._default_partitions += 1
                else:
                    self._default_degradations.append(overlay)
            elif fault.partition:
                self.ecosystem.partition_link(fault.node_a, fault.node_b)
            else:
                self.ecosystem.degrade_link(
                    fault.node_a, fault.node_b,
                    bandwidth_factor=fault.bandwidth_factor,
                    latency_add_s=fault.latency_add_s,
                )
            yield sim.timeout(fault.duration_s)
            if wildcard:
                if fault.partition:
                    self._default_partitions -= 1
                else:
                    self._default_degradations.remove(overlay)
            else:
                self.ecosystem.restore_link(fault.node_a, fault.node_b)
            record_recovery("link-heal", fault.target)
            poke()

        appliers = {
            WorkerCrash: apply_crash,
            ReconfigFault: apply_reconfig,
            StragglerFault: apply_straggler,
            LinkFault: apply_link,
        }
        for fault in all_faults:
            applier = appliers.get(type(fault))
            if applier is not None:
                sim.process(
                    applier(fault), name=f"fault:{fault.kind}"
                )

        # -- dispatch loop ---------------------------------------------

        def dispatcher():
            while len(finished) < len(graph.tasks):
                if not self._alive() and pending["readmissions"] == 0:
                    raise WorkflowError(
                        "all workers failed; workflow cannot complete"
                    )
                launched = True
                while launched:
                    launchable = [
                        name for name in ready
                        if deps_satisfied(name)
                    ]
                    choice = self.policy.select(
                        launchable, self._alive(), graph, locations,
                        transfer_cost,
                    ) if launchable else None
                    if choice is None:
                        launched = False
                    else:
                        task_name, worker = choice
                        ready.remove(task_name)
                        if (
                            journal is not None
                            and fault_budget.get(task_name, 0) > 0
                            and task_name not in checkpointed
                        ):
                            # risky task: place a rollback point just
                            # before its first dispatch
                            checkpointed.add(task_name)
                            journal.checkpoint(f"pre:{task_name}")
                        events.instant(
                            "dispatch", category=SCHED_CATEGORY,
                            track="scheduler", task=task_name,
                            worker=worker.name,
                        )
                        events.counter(
                            "ready_tasks", float(len(ready)),
                            category=SCHED_CATEGORY, track="scheduler",
                        )
                        worker.acquire(graph.tasks[task_name].cpus)
                        resource_event(
                            "request", worker,
                            graph.tasks[task_name].cpus,
                        )
                        running[task_name] = worker
                        sim.process(
                            run_task(task_name, worker),
                            name=f"task:{task_name}",
                        )
                if len(finished) >= len(graph.tasks):
                    break
                wake["event"] = sim.event()
                yield wake["event"]
            return None

        sim.run_process(dispatcher(), name="dispatcher")
        trace = ExecutionTrace.from_tracer(
            events, graph_name=graph.name,
            policy=f"{self.policy.name}+recovery",
        )
        metrics.counter(
            "workflow.bytes_moved", "bytes staged between workers",
        ).inc(trace.bytes_moved)
        metrics.counter(
            "workflow.retries", "task attempts retried after a fault",
        ).inc(stats.retries)
        end_journal(journal, trace)
        publish_run(events, graph.name, tracer)
        return trace, stats


def migrate_task(
    graph: TaskGraph,
    task_name: str,
    source: Worker,
    target: Worker,
    ecosystem: Optional[Ecosystem] = None,
) -> float:
    """Cost of migrating a *pending* task's inputs between workers.

    Moving the computation means moving its not-yet-consumed inputs;
    returns the staging seconds the move would add, so a placement
    layer can decide whether migration pays.
    """
    if task_name not in graph.tasks:
        raise WorkflowError(f"unknown task {task_name!r}")
    total = 0.0
    for input_name in graph.tasks[task_name].inputs:
        if target.holds(input_name):
            continue
        size = graph.objects[input_name].size_bytes
        if ecosystem is not None and source.node_name != \
                target.node_name:
            total += ecosystem.transfer_time(
                source.node_name, target.node_name, size
            )
        elif source.name != target.name:
            total += 1e-3 + size / 1e9
    return total
