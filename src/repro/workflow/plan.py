"""Bridging compiled applications into executable task graphs.

Converts the workflow-dialect pipeline of a
:class:`~repro.core.compiler.CompiledApplication` into a
:class:`~repro.workflow.graph.TaskGraph`: task durations come from each
kernel's selected variant estimate and object sizes from the IR types,
so the engine schedules with the same numbers the compiler predicted.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.compiler import CompiledApplication
from repro.core.ir.types import MemRefType, TensorType
from repro.core.variants import Variant
from repro.errors import WorkflowError
from repro.workflow.graph import DataObject, TaskGraph, WorkflowTask


def _value_size(value_type) -> int:
    if isinstance(value_type, (TensorType, MemRefType)):
        return value_type.size_bytes
    return 8


def build_task_graph(
    app: CompiledApplication,
    select: Optional[Callable[[str], Variant]] = None,
    locality: Optional[Dict[str, str]] = None,
) -> TaskGraph:
    """Build an executable graph from a compiled application.

    ``select`` maps kernel name to the variant whose latency estimate
    becomes the task duration (defaults to each kernel's best-latency
    variant); ``locality`` maps source names to node names for initial
    data placement.
    """
    pipeline_op = None
    for op in app.module.body.operations:
        if op.name == "workflow.pipeline":
            pipeline_op = op
            break
    if pipeline_op is None:
        raise WorkflowError(
            f"application {app.name!r} has no workflow.pipeline op"
        )

    def variant_for(kernel: str) -> Variant:
        if select is not None:
            return select(kernel)
        return app.exploration[kernel].best_latency()

    graph = TaskGraph(app.name)
    locality = locality or {}
    value_names: Dict[int, str] = {}

    block = pipeline_op.regions[0].blocks[0]
    for op in block.operations:
        if op.name == "workflow.source":
            name = op.attr("sym_name")
            obj = DataObject(
                name=name,
                size_bytes=_value_size(op.results[0].type),
                locality=locality.get(
                    name, op.attr("locality", "") or ""
                ),
            )
            if obj.locality in ("any",):
                obj.locality = ""
            graph.add_object(obj)
            value_names[id(op.results[0])] = name
        elif op.name == "workflow.task":
            task_name = op.attr("sym_name")
            kernel = op.attr("kernel")
            variant = variant_for(kernel)
            inputs = [
                value_names[id(operand)] for operand in op.operands
            ]
            outputs = []
            for index, result in enumerate(op.results):
                output_name = f"{task_name}.out{index}"
                outputs.append(output_name)
                value_names[id(result)] = output_name
            task = WorkflowTask(
                name=task_name,
                inputs=inputs,
                outputs=outputs,
                duration_s=variant.cost.latency_s,
                kernel=kernel,
            )
            graph.add_task(task)
            for index, result in enumerate(op.results):
                graph.set_object_size(
                    outputs[index], _value_size(result.type)
                )
        elif op.name in ("workflow.sink", "workflow.yield"):
            continue
    graph.validate()
    return graph
