"""Spec-to-traced-run harness for the observability CLI.

``python -m repro trace SPEC`` needs a whole Fig.-1 journey — compile,
explore, place, execute — from nothing but a kernel-DSL file. This
module synthesizes that journey: every kernel in the spec becomes one
pipeline task fed by fresh sources typed from the kernel's signature,
the pipeline is compiled by :class:`~repro.core.compiler.EverestCompiler`
and deployed on the reference ecosystem by the
:class:`~repro.runtime.orchestrator.Orchestrator`, all under an
observation session whose tracer and metrics the caller then exports.

With the default logical clock the resulting Chrome trace is
byte-identical across runs of the same spec; ``clock="wall"`` profiles
real time instead.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional

from repro.core.analysis.specs import extract_kernel_sources
from repro.core.compiler import CompiledApplication, EverestCompiler
from repro.core.dsl.kernel_dsl import compile_kernel, kernel_names
from repro.core.dsl.workflow import Pipeline
from repro.errors import SpecificationError
from repro.obs.context import Observation, observe, session


def load_kernel_sources(path: str) -> List[str]:
    """Kernel-DSL source blocks found in a ``.edsl`` or ``.py`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if path.endswith(".py"):
        sources = extract_kernel_sources(text)
    else:
        sources = [text]
    if not sources:
        raise SpecificationError(
            f"{path}: no kernel-DSL source found"
        )
    return sources


def pipeline_from_sources(name: str,
                          sources: List[str]) -> Pipeline:
    """One-task-per-kernel pipeline over the given DSL sources.

    Each kernel gets sources typed from its signature and a sink per
    result, so the generated workflow exercises every kernel exactly
    once. Kernels appearing in several source blocks are taken from
    the first.
    """
    pipeline = Pipeline(name)
    seen = set()
    for source_text in sources:
        module = compile_kernel(source_text)
        for kernel in kernel_names(source_text):
            if kernel in seen:
                continue
            seen.add(kernel)
            function = module.find_function(kernel)
            if function is None:
                continue
            inputs = [
                pipeline.source(f"{kernel}_in{index}", input_type)
                for index, input_type in enumerate(
                    function.type.inputs
                )
            ]
            task = pipeline.task(kernel, source_text, inputs=inputs)
            for index in range(len(function.type.results)):
                pipeline.sink(f"{kernel}_out{index}",
                              task.output(index))
    if not pipeline.tasks:
        raise SpecificationError(
            f"{name}: sources define no kernels"
        )
    return pipeline


@dataclass
class TracedRun:
    """Everything one observed end-to-end run produced."""

    observation: Observation
    app: CompiledApplication
    report: "DeploymentReport"


def run_traced(
    path: str,
    clock: str = "logical",
    strategy: str = "exhaustive",
    emit_artifacts: bool = False,
    workers: int = 1,
    workers_mode: str = "thread",
    journal: Optional["RunJournal"] = None,
    resume: Optional["ReplayState"] = None,
) -> TracedRun:
    """Compile and deploy a spec under an observation session.

    ``clock`` is ``"logical"`` (deterministic trace, the default) or
    ``"wall"`` (real profiling). Artifact emission is off by default —
    synthesizing every variant's bitstream dominates runtime and adds
    nothing to the trace shape. ``workers`` widens the DSE evaluation
    pool and ``workers_mode`` picks threads or processes, without
    changing any output (including the trace digest).
    ``journal``/``resume`` make the workflow stage durable and
    resumable (see :mod:`repro.workflow.journal`).
    """
    from repro.platform.topology import build_reference_ecosystem
    from repro.runtime.orchestrator import Orchestrator

    if clock not in ("logical", "wall"):
        raise SpecificationError(
            f"unknown trace clock {clock!r}; use logical or wall"
        )
    name = os.path.splitext(os.path.basename(path))[0]
    pipeline = pipeline_from_sources(name, load_kernel_sources(path))
    obs = session(deterministic=clock == "logical")
    with observe(obs):
        compiler = EverestCompiler(
            strategy=strategy, emit_artifacts=emit_artifacts,
            workers=workers, workers_mode=workers_mode,
        )
        app = compiler.compile(pipeline)
        ecosystem = build_reference_ecosystem()
        report = Orchestrator(ecosystem).deploy(
            app, journal=journal, resume=resume,
        )
    return TracedRun(observation=obs, app=app, report=report)
