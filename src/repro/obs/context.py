"""The ambient observation context.

Instrumented code across the SDK (compiler passes, DSE, workflow
servers, the autotuner, the platform) reports to whatever
:class:`Observation` is currently installed, OpenTelemetry-style:

    from repro.obs import observe, session
    obs = session()                  # enabled tracer + fresh metrics
    with observe(obs):
        app = EverestCompiler().compile(pipeline)
    obs.tracer.write("trace.json")

By default the ambient tracer is *disabled* (every call a cheap no-op)
and the ambient metrics registry is a real one, so counters accumulate
even outside a session. Nothing here is thread-local: the SDK is
single-threaded by design (the platform is a discrete-event simulator).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.obs.clock import Clock, LogicalClock, WallClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


@dataclass
class Observation:
    """One observation session: a tracer plus a metrics registry."""

    tracer: Tracer = field(
        default_factory=lambda: Tracer(enabled=False)
    )
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)


_ambient = Observation()


def current() -> Observation:
    """The currently installed observation context."""
    return _ambient


def current_tracer() -> Tracer:
    """The ambient tracer (disabled unless a session is installed)."""
    return _ambient.tracer


def current_metrics() -> MetricsRegistry:
    """The ambient metrics registry."""
    return _ambient.metrics


@contextmanager
def observe(observation: Observation) -> Iterator[Observation]:
    """Install ``observation`` as the ambient context for the block."""
    global _ambient
    previous = _ambient
    _ambient = observation
    try:
        yield observation
    finally:
        _ambient = previous


def session(clock: Optional[Clock] = None,
            deterministic: bool = False,
            detailed: bool = False) -> Observation:
    """Create an enabled observation session.

    ``deterministic`` selects a :class:`~repro.obs.clock.LogicalClock`
    so the resulting trace is byte-identical across runs of the same
    seeded workload; otherwise the tracer profiles wall time.
    ``detailed`` enables the expensive probes (per-pass IR op counts,
    Pareto-front growth) that cost more than the 5% overhead budget
    of default tracing.
    """
    if clock is None:
        clock = LogicalClock() if deterministic else WallClock()
    return Observation(
        tracer=Tracer(clock=clock, enabled=True, detailed=detailed),
        metrics=MetricsRegistry(),
    )
