"""Clock sources for the tracer.

Every :class:`~repro.obs.tracer.Tracer` reads timestamps from exactly
one clock so a trace lives in a single, monotonic time domain:

* :class:`WallClock` — ``time.perf_counter`` relative to construction;
  the profiling clock for compile-time work.
* :class:`SimClock` — reads ``sim.now`` of a discrete-event
  :class:`~repro.platform.simulator.Simulator`; fully deterministic, so
  workflow traces replay byte-identically.
* :class:`LogicalClock` — a monotonic tick counter that advances on
  every read; deterministic ordering when no meaningful time base
  exists (e.g. a traced compile that must be reproducible).

Each clock carries ``scale``, the factor that converts its raw units
into the microseconds Chrome ``trace_event`` JSON expects. Raw values
are kept unscaled inside the tracer so deterministic consumers (the
workflow's :class:`~repro.workflow.tracing.ExecutionTrace` view) never
see a lossy unit round-trip.
"""

from __future__ import annotations

import time


class Clock:
    """Interface: a monotonic time source for one tracer."""

    #: Multiplier converting raw readings to microseconds.
    scale: float = 1e6

    def now(self) -> float:
        """Return the current raw reading (monotonic)."""
        raise NotImplementedError


class WallClock(Clock):
    """Wall time in seconds since the clock was created."""

    scale = 1e6

    def __init__(self) -> None:
        """Zero the clock at construction."""
        self._origin = time.perf_counter()

    def now(self) -> float:
        """Seconds of wall time since construction."""
        return time.perf_counter() - self._origin


class SimClock(Clock):
    """Simulated seconds read from a discrete-event simulator.

    Deterministic: two replays of the same seeded scenario read the
    same sequence of timestamps.
    """

    scale = 1e6

    def __init__(self, sim) -> None:
        """Bind to ``sim``, any object exposing a ``now`` attribute."""
        self._sim = sim

    def now(self) -> float:
        """Current simulated time in seconds."""
        return float(self._sim.now)


class LogicalClock(Clock):
    """A deterministic tick counter that advances on every read.

    One tick is exported as one microsecond, so spans remain visibly
    ordered (and strictly nested) in Perfetto without depending on
    wall time.
    """

    scale = 1.0

    def __init__(self) -> None:
        """Start at tick zero."""
        self._tick = 0

    def now(self) -> float:
        """Return the next tick (each call advances the clock)."""
        self._tick += 1
        return float(self._tick)
