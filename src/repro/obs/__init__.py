"""Unified observability: structured tracing, metrics, profiling.

The one subsystem every layer of the SDK reports into (the runtime
"monitoring of data and resources" the paper promises in §IV, applied
to the whole stack):

* :mod:`repro.obs.tracer` — nested spans, instants and counters with
  deterministic ids and Chrome ``trace_event`` JSON export (open the
  file in Perfetto or ``chrome://tracing``);
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms with labeled series and deterministic snapshots;
* :mod:`repro.obs.clock` — wall, simulated and logical time sources;
* :mod:`repro.obs.context` — the ambient :class:`Observation` that
  instrumented code reports to (install one with :func:`observe`);
* :mod:`repro.obs.driver` — spec-to-traced-run harness behind
  ``python -m repro trace`` / ``run`` / ``metrics``.

Quick start::

    from repro.obs import observe, session
    obs = session(deterministic=True)
    with observe(obs):
        ...  # compile / explore / deploy as usual
    obs.tracer.write("trace.json")
    print(obs.metrics.render_text())
"""

from repro.obs.clock import Clock, LogicalClock, SimClock, WallClock
from repro.obs.context import (
    Observation,
    current,
    current_metrics,
    current_tracer,
    observe,
    session,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import (
    MAIN_TRACK,
    Span,
    TraceEvent,
    Tracer,
    validate_chrome_trace,
)

__all__ = [
    "Clock",
    "WallClock",
    "SimClock",
    "LogicalClock",
    "Observation",
    "observe",
    "session",
    "current",
    "current_tracer",
    "current_metrics",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "Tracer",
    "TraceEvent",
    "Span",
    "MAIN_TRACK",
    "validate_chrome_trace",
]
