"""Metrics registry: counters, gauges and histograms with labels.

Prometheus-shaped, dependency-free. Instruments are created through a
:class:`MetricsRegistry` (one per observation session) and identified
by name; each holds independent series per label set:

* :class:`Counter` — monotonically increasing totals (tasks executed,
  DSE points evaluated, vFPGA reconfigurations);
* :class:`Gauge` — last-write-wins levels (Pareto-front size, queue
  depth);
* :class:`Histogram` — observations bucketed at **fixed** boundaries
  chosen at creation, with cumulative ``le`` semantics (a value lands
  in every bucket whose upper bound is >= the value, Prometheus-style)
  plus total count and sum.

Snapshots are plain data (:meth:`MetricsRegistry.snapshot`), rendered
as sorted, deterministic JSON (:meth:`MetricsRegistry.to_json`) or an
aligned text table (:meth:`MetricsRegistry.render_text`): identical
seeded runs produce identical snapshots.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import EverestError

#: Default histogram buckets: exponential seconds-ish decades.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_text(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in key)
    return "{" + inner + "}"


class Instrument:
    """Base class: a named instrument holding labeled series."""

    kind = "abstract"

    def __init__(self, name: str, help: str = ""):
        """Create the instrument; registries call this, not users."""
        self.name = name
        self.help = help

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data state of every series."""
        raise NotImplementedError


class Counter(Instrument):
    """A monotonically increasing total per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        """Create an empty counter."""
        super().__init__(name, help)
        self._series: Dict[LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        """Add ``value`` (must be >= 0) to the labeled series."""
        if value < 0:
            raise EverestError(
                f"counter {self.name!r}: negative increment {value}"
            )
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        """Current total of the labeled series (0 if never touched)."""
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._series.values())

    def snapshot(self) -> Dict[str, Any]:
        """Series totals keyed by rendered label text."""
        return {
            _label_text(key) or "total": value
            for key, value in sorted(self._series.items())
        }


class Gauge(Instrument):
    """A last-write-wins level per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        """Create an empty gauge."""
        super().__init__(name, help)
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        """Set the labeled series to ``value``."""
        self._series[_label_key(labels)] = float(value)

    def add(self, delta: float, **labels: Any) -> None:
        """Adjust the labeled series by ``delta`` (may be negative)."""
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + delta

    def value(self, **labels: Any) -> float:
        """Current level of the labeled series (0 if never set)."""
        return self._series.get(_label_key(labels), 0.0)

    def snapshot(self) -> Dict[str, Any]:
        """Series levels keyed by rendered label text."""
        return {
            _label_text(key) or "value": value
            for key, value in sorted(self._series.items())
        }


class Histogram(Instrument):
    """Bucketed observations with fixed boundaries per label set.

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches the rest. Cumulative semantics:
    ``counts[i]`` is the number of observations ``<= buckets[i]``.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        """Create the histogram with its fixed bucket boundaries."""
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise EverestError(
                f"histogram {name!r}: needs at least one bucket bound"
            )
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise EverestError(
                f"histogram {name!r}: bucket bounds must be strictly "
                f"increasing, got {bounds}"
            )
        if any(math.isnan(b) or math.isinf(b) for b in bounds):
            raise EverestError(
                f"histogram {name!r}: bucket bounds must be finite"
            )
        super().__init__(name, help)
        self.buckets = bounds
        # label key -> (per-bound cumulative counts + inf, count, sum)
        self._series: Dict[LabelKey, List[float]] = {}

    def _cells(self, key: LabelKey) -> List[float]:
        cells = self._series.get(key)
        if cells is None:
            cells = [0.0] * (len(self.buckets) + 3)
            self._series[key] = cells
        return cells

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation into the labeled series."""
        cells = self._cells(_label_key(labels))
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                cells[index] += 1
        cells[len(self.buckets)] += 1       # +Inf bucket
        cells[len(self.buckets) + 1] += 1   # count
        cells[len(self.buckets) + 2] += value  # sum

    def count(self, **labels: Any) -> float:
        """Number of observations in the labeled series."""
        cells = self._series.get(_label_key(labels))
        return cells[len(self.buckets) + 1] if cells else 0.0

    def sum(self, **labels: Any) -> float:
        """Sum of observations in the labeled series."""
        cells = self._series.get(_label_key(labels))
        return cells[len(self.buckets) + 2] if cells else 0.0

    def bucket_counts(self, **labels: Any) -> Dict[str, float]:
        """Cumulative count per bucket bound (including ``+Inf``)."""
        cells = self._series.get(_label_key(labels))
        if cells is None:
            cells = [0.0] * (len(self.buckets) + 3)
        rendered = {
            repr(bound): cells[index]
            for index, bound in enumerate(self.buckets)
        }
        rendered["+Inf"] = cells[len(self.buckets)]
        return rendered

    def snapshot(self) -> Dict[str, Any]:
        """Bucket counts, count and sum per label set."""
        out: Dict[str, Any] = {}
        for key in sorted(self._series):
            cells = self._series[key]
            out[_label_text(key) or "series"] = {
                "buckets": self.bucket_counts(**dict(key)),
                "count": cells[len(self.buckets) + 1],
                "sum": cells[len(self.buckets) + 2],
            }
        return out


class MetricsRegistry:
    """Creates and holds instruments; the snapshot/export surface."""

    def __init__(self):
        """Create an empty registry."""
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, name: str, kind: type, help: str,
             **kwargs: Any) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, help, **kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise EverestError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, not {kind.kind}"
            )
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the named counter."""
        return self._get(name, Counter, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the named gauge."""
        return self._get(name, Gauge, help)  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """Get or create the named histogram (fixed buckets)."""
        return self._get(  # type: ignore[return-value]
            name, Histogram, help,
            buckets=tuple(buckets) if buckets else DEFAULT_BUCKETS,
        )

    def names(self) -> List[str]:
        """Sorted names of every registered instrument."""
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data state of the whole registry, sorted by name."""
        return {
            name: {
                "kind": self._instruments[name].kind,
                "help": self._instruments[name].help,
                "series": self._instruments[name].snapshot(),
            }
            for name in self.names()
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Deterministic JSON rendering of :meth:`snapshot`."""
        return json.dumps(self.snapshot(), sort_keys=True,
                          indent=indent,
                          separators=None if indent else (",", ":"))

    def render_text(self, title: str = "metrics") -> str:
        """Aligned, human-readable snapshot."""
        lines = [f"# {title}"]
        for name in self.names():
            instrument = self._instruments[name]
            lines.append(f"{name} ({instrument.kind})")
            series = instrument.snapshot()
            for label, value in series.items():
                if isinstance(value, dict):  # histogram series
                    lines.append(
                        f"  {label}: count={value['count']:g} "
                        f"sum={value['sum']:.6g}"
                    )
                    for bound, count in value["buckets"].items():
                        lines.append(f"    le {bound}: {count:g}")
                else:
                    lines.append(f"  {label}: {value:g}")
        return "\n".join(lines)
