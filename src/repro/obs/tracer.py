"""Structured span/event tracing with Chrome ``trace_event`` export.

The tracer records three event shapes, all timestamped by a single
:class:`~repro.obs.clock.Clock`:

* **spans** — nested intervals (``with tracer.span("explore")``), each
  with a deterministic sequential id and a parent id taken from the
  enclosing span on the same track;
* **instants** — point events (a fault fired, the autotuner switched);
* **counters** — sampled numeric series (queue depth, front size).

Events live on *tracks* (exported as Chrome thread lanes) inside
*processes* (Chrome pids); :meth:`Tracer.absorb` merges another
tracer's events in as a new process, which is how a simulated-time
workflow trace joins a compile-time trace in one file.

Export with :meth:`Tracer.to_chrome` / :meth:`Tracer.to_json` /
:meth:`Tracer.write`; the JSON is deterministic (sorted keys, no
whitespace) so traces of seeded runs are byte-identical. Open the file
in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

A disabled tracer (``Tracer(enabled=False)``) turns every call into a
cheap no-op, so instrumented code never needs an ``if``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.clock import Clock, WallClock

#: Default track (Chrome thread) for events that name none.
MAIN_TRACK = "main"


@dataclass
class TraceEvent:
    """One recorded event in raw clock units.

    ``phase`` follows the Chrome ``trace_event`` phase letters: ``X``
    (complete span), ``i`` (instant), ``C`` (counter). ``ts`` and
    ``dur`` are raw clock readings; ``scale`` converts them to
    microseconds at export time.
    """

    phase: str
    name: str
    category: str
    ts: float
    pid: int
    tid: int
    scale: float
    dur: float = 0.0
    span_id: int = 0
    parent_id: int = 0
    args: Dict[str, Any] = field(default_factory=dict)


class Span:
    """Handle yielded by :meth:`Tracer.span`; collects extra args."""

    __slots__ = ("_tracer", "name", "category", "_track", "_start",
                 "span_id", "parent_id", "args")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 track: str, start: float, span_id: int,
                 parent_id: int, args: Dict[str, Any]):
        """Record the open interval; closed by the context manager."""
        self._tracer = tracer
        self.name = name
        self.category = category
        self._track = track
        self._start = start
        self.span_id = span_id
        self.parent_id = parent_id
        self.args = args

    def note(self, **args: Any) -> "Span":
        """Attach extra args to the span before it closes."""
        self.args.update(args)
        return self

    def __enter__(self) -> "Span":
        """Return the handle (the interval opened at creation)."""
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Close the span and emit its complete event."""
        self._tracer._close_span(self)
        return False


class _NullSpan:
    """No-op stand-in returned by a disabled tracer."""

    __slots__ = ()

    def note(self, **args: Any) -> "_NullSpan":
        """Ignore the args."""
        return self

    def __enter__(self) -> "_NullSpan":
        """Return self."""
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Do nothing."""
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans, instants and counters from one clock domain."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        enabled: bool = True,
        process: str = "repro",
        detailed: bool = False,
    ):
        """Create a tracer reading ``clock`` (default: wall time).

        ``detailed`` opts into probes whose *collection* is itself
        expensive (per-pass IR op counts, Pareto-front growth
        sampling). Default tracing stays cheap enough to leave on.
        """
        self.enabled = enabled
        self.detailed = detailed
        self.clock = clock or WallClock()
        self.events: List[TraceEvent] = []
        #: Optional callback invoked synchronously with every event
        #: this tracer records itself (not absorbed ones) — the hook a
        #: write-ahead journal uses to persist transitions before
        #: execution proceeds.
        self.sink: Optional[Any] = None
        self._next_span_id = 1
        self._next_pid = 2
        self._pid = 1
        self._process_names: Dict[int, str] = {1: process}
        # (pid, track name) -> tid, assigned in first-use order
        self._tids: Dict[Tuple[int, str], int] = {}
        # open-span stack per (pid, tid)
        self._stacks: Dict[Tuple[int, int], List[int]] = {}

    # -- recording -----------------------------------------------------

    def _tid(self, track: str) -> int:
        key = (self._pid, track)
        tid = self._tids.get(key)
        if tid is None:
            tid = len([k for k in self._tids if k[0] == self._pid])
            self._tids[key] = tid
        return tid

    def _emit(self, event: TraceEvent) -> None:
        """Record an event and feed the sink, if one is attached."""
        self.events.append(event)
        if self.sink is not None:
            self.sink(event)

    def span(self, name: str, category: str = "",
             track: str = MAIN_TRACK, **args: Any):
        """Open a nested span; use as a context manager.

        Returns a :class:`Span` whose :meth:`Span.note` adds args
        before the span closes. On a disabled tracer this is a shared
        no-op object.
        """
        if not self.enabled:
            return _NULL_SPAN
        tid = self._tid(track)
        stack = self._stacks.setdefault((self._pid, tid), [])
        span_id = self._next_span_id
        self._next_span_id += 1
        parent_id = stack[-1] if stack else 0
        stack.append(span_id)
        return Span(self, name, category, track, self.clock.now(),
                    span_id, parent_id, dict(args))

    def _close_span(self, span: Span) -> None:
        end = self.clock.now()
        tid = self._tid(span._track)
        stack = self._stacks.get((self._pid, tid), [])
        if stack and stack[-1] == span.span_id:
            stack.pop()
        self._emit(TraceEvent(
            phase="X", name=span.name, category=span.category,
            ts=span._start, dur=end - span._start, pid=self._pid,
            tid=tid, scale=self.clock.scale, span_id=span.span_id,
            parent_id=span.parent_id, args=span.args,
        ))

    def complete(self, name: str, start_ts: float, end_ts: float,
                 category: str = "", track: str = MAIN_TRACK,
                 **args: Any) -> None:
        """Record a span with explicit raw start/end timestamps.

        Used when the interval is known only at completion (a workflow
        task that started staging at ``start_ts`` and finished now).
        The parameter names leave ``start``/``end`` free for callers to
        pass as extra ``args``.
        """
        if not self.enabled:
            return
        span_id = self._next_span_id
        self._next_span_id += 1
        self._emit(TraceEvent(
            phase="X", name=name, category=category, ts=start_ts,
            dur=end_ts - start_ts, pid=self._pid, tid=self._tid(track),
            scale=self.clock.scale, span_id=span_id, args=dict(args),
        ))

    def instant(self, name: str, category: str = "",
                track: str = MAIN_TRACK, ts: Optional[float] = None,
                **args: Any) -> None:
        """Record a point event (at ``ts``, or the clock's now)."""
        if not self.enabled:
            return
        self._emit(TraceEvent(
            phase="i", name=name, category=category,
            ts=self.clock.now() if ts is None else ts,
            pid=self._pid, tid=self._tid(track),
            scale=self.clock.scale, args=dict(args),
        ))

    def counter(self, name: str, value: float, category: str = "",
                track: str = MAIN_TRACK) -> None:
        """Sample a numeric series (rendered as a counter lane)."""
        if not self.enabled:
            return
        self._emit(TraceEvent(
            phase="C", name=name, category=category,
            ts=self.clock.now(), pid=self._pid,
            tid=self._tid(track), scale=self.clock.scale,
            args={name: value},
        ))

    def absorb(self, other: "Tracer", process: str) -> None:
        """Merge another tracer's events in as a new process.

        The events keep their own clock units (and ``scale``), so a
        simulated-time trace nests untouched inside a wall-clock
        session. Track names and numbering carry over. Only the other
        tracer's own events are merged (not processes it absorbed
        itself).
        """
        if not self.enabled or not other.events:
            return
        pid = self._next_pid
        self._next_pid += 1
        self._process_names[pid] = process
        for (other_pid, track), tid in sorted(
            other._tids.items(), key=lambda item: item[1]
        ):
            if other_pid == other._pid:
                self._tids[(pid, track)] = tid
        for event in other.events:
            if event.pid != other._pid:
                continue
            absorbed = TraceEvent(
                phase=event.phase, name=event.name,
                category=event.category, ts=event.ts, pid=pid,
                tid=event.tid, scale=event.scale, dur=event.dur,
                span_id=event.span_id, parent_id=event.parent_id,
                args=dict(event.args),
            )
            self.events.append(absorbed)

    # -- queries -------------------------------------------------------

    def spans(self, category: Optional[str] = None
              ) -> Iterator[TraceEvent]:
        """Iterate complete spans, optionally of one category."""
        for event in self.events:
            if event.phase != "X":
                continue
            if category is None or event.category == category:
                yield event

    def instants(self, category: Optional[str] = None
                 ) -> Iterator[TraceEvent]:
        """Iterate instant events, optionally of one category."""
        for event in self.events:
            if event.phase != "i":
                continue
            if category is None or event.category == category:
                yield event

    def total_durations(self, category: str) -> Dict[str, float]:
        """Total raw span duration per name within a category."""
        totals: Dict[str, float] = {}
        for event in self.spans(category):
            totals[event.name] = totals.get(event.name, 0.0) + event.dur
        return totals

    # -- export --------------------------------------------------------

    def to_chrome(self) -> Dict[str, Any]:
        """Render as a Chrome ``trace_event`` JSON object."""
        trace_events: List[Dict[str, Any]] = []
        for pid in sorted(self._process_names):
            trace_events.append({
                "ph": "M", "name": "process_name", "pid": pid,
                "tid": 0, "args": {"name": self._process_names[pid]},
            })
        for (pid, track), tid in sorted(self._tids.items()):
            trace_events.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": tid, "args": {"name": track},
            })
        for event in self.events:
            rendered: Dict[str, Any] = {
                "ph": event.phase, "name": event.name,
                "cat": event.category or "default",
                "ts": event.ts * event.scale,
                "pid": event.pid, "tid": event.tid,
                "args": dict(event.args),
            }
            if event.phase == "X":
                rendered["dur"] = event.dur * event.scale
                rendered["args"].setdefault("span_id", event.span_id)
                if event.parent_id:
                    rendered["args"].setdefault(
                        "parent_span_id", event.parent_id
                    )
            elif event.phase == "i":
                rendered["s"] = "t"
            trace_events.append(rendered)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.obs"},
        }

    def to_json(self) -> str:
        """Deterministic serialization of :meth:`to_chrome`."""
        return json.dumps(self.to_chrome(), sort_keys=True,
                          separators=(",", ":"))

    def write(self, path: str) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())


def validate_chrome_trace(trace: Dict[str, Any]) -> List[str]:
    """Check a dict against the Chrome ``trace_event`` JSON schema.

    Returns a list of problems (empty when the trace is valid): the
    object must carry a ``traceEvents`` list whose entries have the
    required keys per phase — ``name``/``ph``/``pid``/``tid`` always,
    ``ts`` for timed phases, a non-negative ``dur`` for complete
    events, and numeric ``args`` for counter events.
    """
    problems: List[str] = []
    if not isinstance(trace, dict):
        return ["trace is not an object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        phase = event.get("ph")
        if phase not in ("X", "i", "C", "M", "B", "E"):
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)):
                problems.append(f"{where}: missing numeric ts")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"{where}: complete event needs dur >= 0"
                )
        if phase == "C":
            args = event.get("args", {})
            if not args or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(
                    f"{where}: counter args must be numeric"
                )
    return problems
