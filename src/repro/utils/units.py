"""Unit constants and human-readable formatting.

The platform simulator works in SI base units: seconds, bytes, joules,
hertz. These helpers keep configuration code readable.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

MHZ = 1_000_000.0
GHZ = 1_000_000_000.0

US = 1e-6
MS = 1e-3
NS = 1e-9


def format_bytes(num_bytes: float) -> str:
    """Format a byte count with a binary suffix, e.g. ``1.5 MiB``."""
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    value = float(num_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or suffix == "TiB":
            if suffix == "B":
                return f"{int(value)} B"
            return f"{value:.2f} {suffix}"
        value /= 1024
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Format a duration picking the most readable unit."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds == 0:
        return "0 s"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.2f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120:
        return f"{seconds:.2f} s"
    return f"{seconds / 60:.2f} min"
