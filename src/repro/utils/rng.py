"""Deterministic random-number helpers.

All stochastic components of the SDK (workload generators, Monte Carlo
routing, exploration heuristics) draw from :func:`deterministic_rng` so
that experiments are reproducible run to run. Seeds are derived from
string keys with :func:`stable_hash`, which is stable across processes
(unlike the built-in ``hash``).
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_hash(*keys: object) -> int:
    """Return a process-stable 63-bit hash of the given keys.

    The keys are converted with ``repr`` and concatenated, so any mix of
    strings, numbers and tuples can be used.
    """
    payload = "\x1f".join(repr(key) for key in keys).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") & (2**63 - 1)


def deterministic_rng(*keys: object) -> np.random.Generator:
    """Create a numpy :class:`~numpy.random.Generator` seeded from keys.

    Two calls with the same keys return independent generators producing
    identical streams.
    """
    return np.random.default_rng(stable_hash(*keys))
