"""Small argument-validation helpers used across the SDK.

These raise ``ValueError``/``TypeError`` (not SDK errors) because they
guard programming mistakes at API boundaries, mirroring how numpy and
networkx validate their inputs.
"""

from __future__ import annotations

from typing import Tuple, Type, Union


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0`` and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0`` and return it."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_in_range(
    name: str, value: float, low: float, high: float
) -> float:
    """Require ``low <= value <= high`` and return it."""
    if not low <= value <= high:
        raise ValueError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )
    return value


def check_type(
    name: str,
    value: object,
    expected: Union[Type, Tuple[Type, ...]],
) -> object:
    """Require ``isinstance(value, expected)`` and return the value."""
    if not isinstance(value, expected):
        if isinstance(expected, tuple):
            names = ", ".join(t.__name__ for t in expected)
        else:
            names = expected.__name__
        raise TypeError(
            f"{name} must be of type {names}, got {type(value).__name__}"
        )
    return value
