"""Plain-text table rendering for benchmark reports.

Benchmarks print the rows a paper table/figure would contain; this module
renders them with aligned columns so the harness output is readable in a
terminal and in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


class Table:
    """An append-only table with a title and fixed column headers."""

    def __init__(self, title: str, columns: Sequence[str]):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values: object) -> None:
        """Append one row; the number of values must match the headers."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([_render_cell(value) for value in values])

    def extend(self, rows: Iterable[Sequence[object]]) -> None:
        """Append many rows at once."""
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        """Render the table as aligned monospace text."""
        widths = [len(header) for header in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return "  ".join(
                cell.ljust(width) for cell, width in zip(cells, widths)
            ).rstrip()

        separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
        lines = [self.title, separator, fmt(self.columns), separator]
        lines.extend(fmt(row) for row in self.rows)
        lines.append(separator)
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendered table surrounded by blank lines."""
        print()
        print(self.render())
        print()
