"""Shared utilities: deterministic RNG, unit helpers, table formatting."""

from repro.utils.rng import deterministic_rng, stable_hash
from repro.utils.tables import Table
from repro.utils.units import (
    GB,
    GHZ,
    KB,
    MB,
    MHZ,
    format_bytes,
    format_seconds,
)
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
)

__all__ = [
    "deterministic_rng",
    "stable_hash",
    "Table",
    "KB",
    "MB",
    "GB",
    "MHZ",
    "GHZ",
    "format_bytes",
    "format_seconds",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
]
