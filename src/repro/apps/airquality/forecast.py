"""Forecast-mode air-quality impact assessment.

"In forecast mode, it can be used as a decision tool for an industrial
site to adapt its activity" (§VI-B). For the next 24 hours, the
forecaster runs the plume model under every weather-ensemble member,
computes the probability of exceeding the regulatory threshold
anywhere in a protected zone, and recommends an action per hour:
operate normally, reduce activity, or activate abatement.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.airquality.emissions import IndustrialSite
from repro.apps.airquality.plume import (
    StabilityClass,
    concentration_grid,
    stability_from_weather,
)
from repro.utils.rng import deterministic_rng
from repro.utils.validation import check_in_range, check_positive


class ForecastDecision(enum.Enum):
    """Recommended site action for one hour."""

    NORMAL = "normal"
    REDUCE = "reduce"
    ABATE = "abate"


@dataclass
class HourlyAssessment:
    """Forecast output for one hour."""

    hour: int
    exceedance_probability: float
    peak_concentration: float
    decision: ForecastDecision


@dataclass(frozen=True)
class WeatherMember:
    """One ensemble member's surface weather for one hour."""

    wind_ms: float
    wind_dir_rad: float
    solar: float


def synth_weather_members(
    hour: int, members: int = 8, seed: str = "aq-weather"
) -> List[WeatherMember]:
    """Synthetic hourly weather ensemble for the dispersion model."""
    check_positive("members", members)
    rng = deterministic_rng("aq-weather", seed, hour)
    solar = max(0.0, math.sin(math.pi * (hour - 6) / 12.0))
    base_wind = 3.0 + 2.0 * math.sin(2 * math.pi * (hour - 14) / 24.0)
    base_dir = math.pi / 3 + 0.4 * math.sin(2 * math.pi * hour / 24.0)
    result = []
    for _ in range(members):
        result.append(WeatherMember(
            wind_ms=float(max(0.5, base_wind + rng.normal(0, 0.8))),
            wind_dir_rad=float(base_dir + rng.normal(0, 0.25)),
            solar=float(np.clip(solar + rng.normal(0, 0.1), 0, 1)),
        ))
    return result


class AirQualityForecast:
    """24-hour probabilistic impact forecast for one site."""

    def __init__(
        self,
        site: IndustrialSite,
        threshold_ug_m3: float = 350.0,
        reduce_probability: float = 0.25,
        abate_probability: float = 0.6,
        grid_cells: int = 60,
        extent_m: float = 10_000.0,
        exclusion_radius_m: float = 800.0,
    ):
        check_positive("threshold_ug_m3", threshold_ug_m3)
        check_in_range("reduce_probability", reduce_probability, 0, 1)
        check_in_range("abate_probability", abate_probability, 0, 1)
        if abate_probability < reduce_probability:
            raise ValueError(
                "abate threshold must not be below reduce threshold"
            )
        self.site = site
        self.threshold = threshold_ug_m3
        self.reduce_probability = reduce_probability
        self.abate_probability = abate_probability
        self.grid_cells = grid_cells
        self.extent_m = extent_m
        self.exclusion_radius_m = exclusion_radius_m

    # ------------------------------------------------------------------

    def assess_hour(
        self,
        hour: int,
        members: Sequence[WeatherMember],
        throttle: float = 1.0,
    ) -> HourlyAssessment:
        """Run the plume under every member; aggregate to a decision."""
        sources = self.site.sources_at_hour(hour, throttle)
        exceed = 0
        peak = 0.0
        for member in members:
            stability = stability_from_weather(
                member.wind_ms, member.solar
            )
            grid_x, grid_y, field = concentration_grid(
                sources,
                wind_ms=member.wind_ms,
                wind_dir_rad=member.wind_dir_rad,
                stability=stability,
                extent_m=self.extent_m,
                cells=self.grid_cells,
            )
            # Regulatory receptors start beyond the site fence line;
            # the near-field singularity of the analytic plume is not
            # a protected location.
            distance = np.hypot(grid_x, grid_y)
            protected = field[distance >= self.exclusion_radius_m]
            member_peak = float(protected.max()) if protected.size \
                else 0.0
            peak = max(peak, member_peak)
            if member_peak > self.threshold:
                exceed += 1
        probability = exceed / len(members)
        if probability >= self.abate_probability:
            decision = ForecastDecision.ABATE
        elif probability >= self.reduce_probability:
            decision = ForecastDecision.REDUCE
        else:
            decision = ForecastDecision.NORMAL
        return HourlyAssessment(
            hour=hour,
            exceedance_probability=probability,
            peak_concentration=peak,
            decision=decision,
        )

    def forecast_day(
        self,
        members_per_hour: int = 8,
        seed: str = "aq",
    ) -> List[HourlyAssessment]:
        """Assess all 24 hours."""
        return [
            self.assess_hour(
                hour,
                synth_weather_members(hour, members_per_hour, seed),
            )
            for hour in range(24)
        ]

    # ------------------------------------------------------------------

    def apply_decisions(
        self,
        assessments: Sequence[HourlyAssessment],
        reduce_factor: float = 0.6,
        abate_factor: float = 0.25,
    ) -> Tuple[float, float]:
        """Simulate following the recommendations.

        Returns (exceedance hours avoided fraction proxy, lost
        production fraction): re-assess each flagged hour with the
        throttled emissions and count remaining exceedances.
        """
        avoided = 0
        flagged = 0
        lost = 0.0
        for assessment in assessments:
            if assessment.decision is ForecastDecision.NORMAL:
                continue
            flagged += 1
            throttle = (
                reduce_factor
                if assessment.decision is ForecastDecision.REDUCE
                else abate_factor
            )
            lost += 1.0 - throttle
            members = synth_weather_members(assessment.hour)
            mitigated = self.assess_hour(
                assessment.hour, members, throttle=throttle
            )
            if mitigated.exceedance_probability < \
                    assessment.exceedance_probability:
                avoided += 1
        avoided_fraction = avoided / flagged if flagged else 1.0
        lost_fraction = lost / 24.0
        return avoided_fraction, lost_fraction
