"""Gaussian plume dispersion model.

The standard steady-state point-source model used by local-scale
regulatory tools (the physics inside a Plum'air-class service):
ground-level concentration downwind of an elevated source under
Pasquill-Gifford stability classes, with ground reflection.

C(x, y, 0) = Q / (2 pi u sy sz) * exp(-y^2 / 2 sy^2)
             * 2 exp(-H^2 / 2 sz^2)

with sigma curves sy(x), sz(x) from Briggs' rural fits.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.apps.airquality.emissions import EmissionSource
from repro.utils.validation import check_positive


class StabilityClass(enum.Enum):
    """Pasquill-Gifford atmospheric stability classes."""

    A = "A"  # very unstable
    B = "B"
    C = "C"
    D = "D"  # neutral
    E = "E"
    F = "F"  # very stable


# Briggs (rural) sigma parameterizations: sigma = a*x / sqrt(1+b*x)
# for sigma_y, and specific forms for sigma_z.
_SIGMA_Y = {
    StabilityClass.A: (0.22, 0.0001),
    StabilityClass.B: (0.16, 0.0001),
    StabilityClass.C: (0.11, 0.0001),
    StabilityClass.D: (0.08, 0.0001),
    StabilityClass.E: (0.06, 0.0001),
    StabilityClass.F: (0.04, 0.0001),
}
_SIGMA_Z = {
    StabilityClass.A: (0.20, 0.0),
    StabilityClass.B: (0.12, 0.0),
    StabilityClass.C: (0.08, 0.0002),
    StabilityClass.D: (0.06, 0.0015),
    StabilityClass.E: (0.03, 0.0003),
    StabilityClass.F: (0.016, 0.0003),
}


def sigma_y(x_m: np.ndarray, stability: StabilityClass) -> np.ndarray:
    """Lateral dispersion coefficient (m)."""
    a, b = _SIGMA_Y[stability]
    x = np.maximum(x_m, 1.0)
    return a * x / np.sqrt(1.0 + b * x)


def sigma_z(x_m: np.ndarray, stability: StabilityClass) -> np.ndarray:
    """Vertical dispersion coefficient (m)."""
    a, b = _SIGMA_Z[stability]
    x = np.maximum(x_m, 1.0)
    if stability in (StabilityClass.A, StabilityClass.B):
        return a * x
    if stability in (StabilityClass.C,):
        return a * x / np.sqrt(1.0 + b * x)
    return a * x / (1.0 + b * x) ** 0.5


def stability_from_weather(wind_ms: float, solar: float
                           ) -> StabilityClass:
    """Crude Pasquill classification from wind speed and insolation.

    ``solar`` in [0, 1]: 0 = night, 1 = strong midday sun.
    """
    if wind_ms < 2:
        return StabilityClass.A if solar > 0.5 else StabilityClass.F
    if wind_ms < 4:
        return StabilityClass.B if solar > 0.5 else StabilityClass.E
    if wind_ms < 6:
        return StabilityClass.C if solar > 0.3 else StabilityClass.D
    return StabilityClass.D


@dataclass(frozen=True)
class GaussianPlume:
    """Dispersion of one source under one weather condition."""

    source: EmissionSource
    wind_ms: float
    wind_dir_rad: float  # direction the wind blows TOWARD
    stability: StabilityClass = StabilityClass.D

    def __post_init__(self):
        check_positive("wind_ms", self.wind_ms)

    def concentration(self, x_m: np.ndarray, y_m: np.ndarray
                      ) -> np.ndarray:
        """Ground-level concentration (µg/m³) at receptor points.

        ``x_m, y_m`` are absolute coordinates; the plume's own frame
        (downwind distance, crosswind offset) is derived internally.
        """
        x = np.asarray(x_m, dtype=float)
        y = np.asarray(y_m, dtype=float)
        dx = x - self.source.x_m
        dy = y - self.source.y_m
        cos_d = math.cos(self.wind_dir_rad)
        sin_d = math.sin(self.wind_dir_rad)
        downwind = dx * cos_d + dy * sin_d
        crosswind = -dx * sin_d + dy * cos_d

        concentration = np.zeros_like(downwind)
        mask = downwind > 1.0
        if not mask.any():
            return concentration
        sy = sigma_y(downwind[mask], self.stability)
        sz = sigma_z(downwind[mask], self.stability)
        q_ug = self.source.rate_g_per_s * 1e6
        height = self.source.stack_height_m
        base = q_ug / (
            2.0 * math.pi * self.wind_ms * sy * sz
        )
        lateral = np.exp(-0.5 * (crosswind[mask] / sy) ** 2)
        vertical = 2.0 * np.exp(-0.5 * (height / sz) ** 2)
        concentration[mask] = base * lateral * vertical
        return concentration


def concentration_grid(
    sources: Sequence[EmissionSource],
    wind_ms: float,
    wind_dir_rad: float,
    stability: StabilityClass,
    extent_m: float = 10_000.0,
    cells: int = 100,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Total concentration field on a square grid centered at origin.

    Returns (x, y, field) with field shape (cells, cells). The 10 km
    default extent matches the paper's "local scale (within 10 km from
    emission sources)".
    """
    check_positive("extent_m", extent_m)
    check_positive("cells", cells)
    coords = np.linspace(-extent_m / 2, extent_m / 2, cells)
    grid_x, grid_y = np.meshgrid(coords, coords)
    total = np.zeros_like(grid_x)
    for source in sources:
        plume = GaussianPlume(
            source=source,
            wind_ms=wind_ms,
            wind_dir_rad=wind_dir_rad,
            stability=stability,
        )
        total += plume.concentration(grid_x, grid_y)
    return grid_x, grid_y, total


def plume_flops(sources: int, cells: int) -> float:
    """Arithmetic cost of one grid evaluation (exp-heavy)."""
    # per receptor-source pair: ~2 exp (30 flops each) + ~20 arithmetic
    return float(sources) * cells * cells * 80.0
