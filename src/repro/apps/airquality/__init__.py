"""Air-quality monitoring of industrial sites (paper §VI-B).

A Plum'air-like service: Gaussian-plume dispersion of an industrial
site's stack emissions under forecast weather, a low-cost sensor
network producing massive but noisy observations, and a forecast mode
that estimates exceedance probabilities within 10 km of the sources so
the site can delay production or activate abatement.
"""

from repro.apps.airquality.emissions import (
    EmissionSource,
    IndustrialSite,
)
from repro.apps.airquality.plume import (
    GaussianPlume,
    StabilityClass,
    concentration_grid,
)
from repro.apps.airquality.sensors import SensorNetwork
from repro.apps.airquality.forecast import (
    AirQualityForecast,
    ForecastDecision,
)

__all__ = [
    "EmissionSource",
    "IndustrialSite",
    "GaussianPlume",
    "StabilityClass",
    "concentration_grid",
    "SensorNetwork",
    "AirQualityForecast",
    "ForecastDecision",
]
