"""Industrial emission sources."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class EmissionSource:
    """One stack: position (m), release height, emission rate."""

    name: str
    x_m: float
    y_m: float
    stack_height_m: float
    rate_g_per_s: float
    pollutant: str = "SO2"

    def __post_init__(self):
        check_positive("stack_height_m", self.stack_height_m)
        check_non_negative("rate_g_per_s", self.rate_g_per_s)

    def scaled(self, factor: float) -> "EmissionSource":
        """Source with the emission rate scaled (production level)."""
        check_non_negative("factor", factor)
        return EmissionSource(
            name=self.name,
            x_m=self.x_m,
            y_m=self.y_m,
            stack_height_m=self.stack_height_m,
            rate_g_per_s=self.rate_g_per_s * factor,
            pollutant=self.pollutant,
        )


@dataclass
class IndustrialSite:
    """A site with several stacks and an hourly activity profile."""

    name: str
    sources: List[EmissionSource]
    activity_profile: np.ndarray = field(
        default_factory=lambda: np.ones(24)
    )

    def __post_init__(self):
        if not self.sources:
            raise ValueError("site needs at least one source")
        profile = np.asarray(self.activity_profile, dtype=float)
        if profile.shape != (24,):
            raise ValueError("activity profile must have 24 entries")
        if (profile < 0).any():
            raise ValueError("activity must be non-negative")
        self.activity_profile = profile

    def sources_at_hour(self, hour: int,
                        throttle: float = 1.0) -> List[EmissionSource]:
        """Sources scaled by the hour's activity and a throttle."""
        factor = float(self.activity_profile[hour % 24]) * throttle
        return [source.scaled(factor) for source in self.sources]

    def total_rate_g_per_s(self, hour: int) -> float:
        """Aggregate emission rate at an hour."""
        return sum(
            source.rate_g_per_s
            for source in self.sources_at_hour(hour)
        )


def default_site(name: str = "steelworks") -> IndustrialSite:
    """A representative three-stack site with a day-shift profile."""
    profile = np.array(
        [0.4] * 6 + [1.0] * 12 + [0.7] * 4 + [0.4] * 2
    )
    return IndustrialSite(
        name=name,
        sources=[
            EmissionSource("stack-a", 0.0, 0.0, 45.0, 15.0),
            EmissionSource("stack-b", 150.0, 40.0, 30.0, 8.0),
            EmissionSource("stack-c", -80.0, 120.0, 60.0, 25.0),
        ],
        activity_profile=profile,
    )
