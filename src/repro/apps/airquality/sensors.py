"""Low-cost air-quality sensor network.

"...the development of low-cost air-quality sensors providing massive
amounts of (low quality) spatial information" (§VI-B). Each sensor
samples the true field with multiplicative gain error, additive bias
and noise; the network supports bias calibration against a reference
station and inverse-distance-weighted field estimation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.rng import deterministic_rng
from repro.utils.validation import check_positive


@dataclass
class Sensor:
    """One low-cost sensor with imperfect response."""

    name: str
    x_m: float
    y_m: float
    gain: float = 1.0
    bias_ug_m3: float = 0.0
    noise_std: float = 5.0
    calibration_offset: float = 0.0

    def measure(self, true_value: float,
                rng: np.random.Generator) -> float:
        """One reading of the true concentration."""
        raw = (
            self.gain * true_value
            + self.bias_ug_m3
            + rng.normal(0.0, self.noise_std)
        )
        return max(0.0, raw - self.calibration_offset)


class SensorNetwork:
    """A deployment of low-cost sensors around a site."""

    def __init__(self, sensors: List[Sensor], seed: str = "sensors"):
        if not sensors:
            raise ValueError("network needs at least one sensor")
        self.sensors = sensors
        self._rng = deterministic_rng("sensor-net", seed)

    @classmethod
    def deploy_ring(
        cls,
        count: int = 24,
        radius_m: float = 2_000.0,
        seed: str = "ring",
    ) -> "SensorNetwork":
        """Sensors on a ring around the site, with unit-to-unit spread."""
        check_positive("count", count)
        rng = deterministic_rng("sensor-deploy", seed)
        sensors = []
        for index in range(count):
            angle = 2 * np.pi * index / count
            sensors.append(Sensor(
                name=f"s{index}",
                x_m=float(radius_m * np.cos(angle)),
                y_m=float(radius_m * np.sin(angle)),
                gain=float(rng.normal(1.0, 0.15)),
                bias_ug_m3=float(rng.normal(8.0, 4.0)),
                noise_std=float(abs(rng.normal(5.0, 1.5))),
            ))
        return cls(sensors, seed=seed)

    # ------------------------------------------------------------------

    def observe(self, field_fn) -> List[Tuple[Sensor, float]]:
        """Sample every sensor; ``field_fn(x, y) -> true value``."""
        readings = []
        for sensor in self.sensors:
            true_value = float(field_fn(sensor.x_m, sensor.y_m))
            readings.append(
                (sensor, sensor.measure(true_value, self._rng))
            )
        return readings

    def calibrate(self, field_fn, samples: int = 32) -> None:
        """Estimate and remove each sensor's bias against truth.

        Models co-location calibration against a reference monitor:
        repeated sampling of a known field estimates the additive bias.
        """
        check_positive("samples", samples)
        for sensor in self.sensors:
            true_value = float(field_fn(sensor.x_m, sensor.y_m))
            errors = []
            for _ in range(samples):
                raw = (
                    sensor.gain * true_value
                    + sensor.bias_ug_m3
                    + self._rng.normal(0.0, sensor.noise_std)
                )
                errors.append(raw - true_value)
            sensor.calibration_offset = float(np.mean(errors))

    def estimate_at(
        self,
        x_m: float,
        y_m: float,
        readings: List[Tuple[Sensor, float]],
        power: float = 2.0,
    ) -> float:
        """Inverse-distance-weighted estimate from readings."""
        weights = []
        values = []
        for sensor, value in readings:
            distance = np.hypot(sensor.x_m - x_m, sensor.y_m - y_m)
            if distance < 1.0:
                return value
            weights.append(distance ** (-power))
            values.append(value)
        weights_arr = np.asarray(weights)
        return float(
            np.average(np.asarray(values), weights=weights_arr)
        )

    def mean_absolute_error(self, field_fn,
                            readings=None) -> float:
        """Network MAE against the true field at sensor positions."""
        if readings is None:
            readings = self.observe(field_fn)
        errors = [
            abs(value - float(field_fn(sensor.x_m, sensor.y_m)))
            for sensor, value in readings
        ]
        return float(np.mean(errors))
