"""Energy-market imbalance costing.

"In EVEREST, we aim at reducing the cost of imbalance in case of
severe meteorological ramp-up/down events" (§VI-A). A producer commits
a day-ahead hourly schedule; deviations settle at penalty prices that
are worse than the day-ahead price in both directions, and ramp events
(fast production changes the forecast missed) are where the money is
lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class ImbalanceMarket:
    """Simple two-price imbalance settlement."""

    day_ahead_eur_mwh: float = 55.0
    shortfall_penalty_eur_mwh: float = 38.0  # paid on missing MWh
    surplus_discount_eur_mwh: float = 30.0  # lost on excess MWh

    def __post_init__(self):
        check_positive("day_ahead_eur_mwh", self.day_ahead_eur_mwh)
        check_non_negative("shortfall_penalty_eur_mwh",
                           self.shortfall_penalty_eur_mwh)
        check_non_negative("surplus_discount_eur_mwh",
                           self.surplus_discount_eur_mwh)

    def revenue(self, committed_mwh: Sequence[float],
                actual_mwh: Sequence[float]) -> float:
        """Settlement revenue for one day (EUR)."""
        committed = np.asarray(committed_mwh, dtype=float)
        actual = np.asarray(actual_mwh, dtype=float)
        if committed.shape != actual.shape:
            raise ValueError("schedules must have equal length")
        base = committed.sum() * self.day_ahead_eur_mwh
        shortfall = np.clip(committed - actual, 0.0, None)
        surplus = np.clip(actual - committed, 0.0, None)
        penalty = shortfall.sum() * (
            self.day_ahead_eur_mwh + self.shortfall_penalty_eur_mwh
        )
        credit = surplus.sum() * max(
            self.day_ahead_eur_mwh - self.surplus_discount_eur_mwh, 0.0
        )
        return float(base - penalty + credit)

    def imbalance_cost(self, committed_mwh: Sequence[float],
                       actual_mwh: Sequence[float]) -> float:
        """EUR lost against a perfect forecast of the same day."""
        actual = np.asarray(actual_mwh, dtype=float)
        perfect = self.revenue(actual, actual)
        realized = self.revenue(committed_mwh, actual_mwh)
        return float(perfect - realized)

    def cost_per_mwh(self, committed_mwh: Sequence[float],
                     actual_mwh: Sequence[float]) -> float:
        """Imbalance cost normalized by produced energy."""
        produced = float(np.asarray(actual_mwh).sum())
        if produced <= 0:
            return 0.0
        return self.imbalance_cost(committed_mwh, actual_mwh) / produced


def ramp_events(actual_mwh: Sequence[float],
                threshold_mwh: float = 10.0) -> int:
    """Count hour-to-hour production swings above a threshold."""
    actual = np.asarray(actual_mwh, dtype=float)
    if actual.size < 2:
        return 0
    return int(np.sum(np.abs(np.diff(actual)) > threshold_mwh))
