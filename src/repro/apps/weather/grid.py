"""Gridded weather fields with controllable spatial correlation.

The synthetic "atmosphere": a ground-truth wind-speed field at fine
resolution, built as a sum of smooth large-scale structure and
correlated small-scale variability. Coarse forecasts are produced by
*degrading* the truth (block-averaging plus phase noise), which gives
the resolution-vs-error relationship the energy use case measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.utils.rng import deterministic_rng
from repro.utils.validation import check_positive


@dataclass
class WeatherField:
    """One scalar field on a regular grid."""

    name: str
    data: np.ndarray  # (ny, nx)
    resolution_km: float

    def __post_init__(self):
        check_positive("resolution_km", self.resolution_km)
        if self.data.ndim != 2:
            raise ValueError("weather fields are 2-D")

    @property
    def shape(self) -> Tuple[int, int]:
        """Grid shape (ny, nx)."""
        return self.data.shape  # type: ignore[return-value]

    @property
    def extent_km(self) -> Tuple[float, float]:
        """Physical extent covered by the grid."""
        ny, nx = self.data.shape
        return ny * self.resolution_km, nx * self.resolution_km

    def value_at_km(self, y_km: float, x_km: float) -> float:
        """Nearest-cell sample at a physical location."""
        ny, nx = self.data.shape
        row = min(ny - 1, max(0, int(y_km / self.resolution_km)))
        col = min(nx - 1, max(0, int(x_km / self.resolution_km)))
        return float(self.data[row, col])

    def block_average(self, factor: int) -> "WeatherField":
        """Coarsen by integer block averaging."""
        check_positive("factor", factor)
        ny, nx = self.data.shape
        if ny % factor or nx % factor:
            raise ValueError(
                f"grid {self.data.shape} not divisible by {factor}"
            )
        coarse = self.data.reshape(
            ny // factor, factor, nx // factor, factor
        ).mean(axis=(1, 3))
        return WeatherField(
            name=self.name,
            data=coarse,
            resolution_km=self.resolution_km * factor,
        )

    def rmse_against(self, other: "WeatherField") -> float:
        """RMSE against another field on the same grid."""
        if self.data.shape != other.data.shape:
            raise ValueError("fields have different shapes")
        return float(np.sqrt(np.mean((self.data - other.data) ** 2)))


def _correlated_noise(shape: Tuple[int, int], length_cells: float,
                      rng: np.random.Generator) -> np.ndarray:
    """Spatially correlated Gaussian noise via FFT filtering."""
    white = rng.normal(size=shape)
    ky = np.fft.fftfreq(shape[0])[:, None]
    kx = np.fft.fftfreq(shape[1])[None, :]
    k2 = ky**2 + kx**2
    spectrum = np.exp(-0.5 * k2 * (2 * np.pi * length_cells) ** 2)
    filtered = np.real(np.fft.ifft2(np.fft.fft2(white) * spectrum))
    filtered -= filtered.mean()
    std = filtered.std()
    if std > 0:
        filtered /= std
    return filtered


def synth_truth(
    size_cells: int = 120,
    resolution_km: float = 2.5,
    base_wind_ms: float = 8.0,
    hour: int = 12,
    seed: str = "truth",
) -> WeatherField:
    """Fine-resolution ground-truth wind-speed field for one hour.

    Large-scale synoptic structure (100 km correlation) plus mesoscale
    variability (15 km) plus a diurnal modulation; values clipped to
    physical wind speeds.
    """
    rng = deterministic_rng("weather-truth", seed, hour)
    shape = (size_cells, size_cells)
    synoptic = _correlated_noise(
        shape, 100.0 / resolution_km, rng
    ) * 2.5
    mesoscale = _correlated_noise(
        shape, 15.0 / resolution_km, rng
    ) * 1.5
    diurnal = 1.0 + 0.25 * np.sin(2 * np.pi * (hour - 9) / 24.0)
    data = np.clip(
        (base_wind_ms + synoptic + mesoscale) * diurnal, 0.0, 40.0
    )
    return WeatherField("wind_speed", data, resolution_km)
