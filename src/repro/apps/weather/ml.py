"""A small numpy MLP for forecast correction.

Stands in for the paper's "deep learning model trying to characterize
the complex input/output relationship of the given power plant"
(§VI-A). Dense layers with ReLU hidden activations, trained with
mini-batch Adam on MSE. Weights export to the model-exchange JSON of
:mod:`repro.core.frontend`, so the same network can be compiled into
an accelerator by the SDK.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import deterministic_rng
from repro.utils.validation import check_positive


@dataclass
class _Layer:
    weight: np.ndarray
    bias: np.ndarray
    activation: str  # "relu" | "none"


class MLP:
    """Multi-layer perceptron with Adam training."""

    def __init__(self, layer_sizes: Sequence[int], seed: str = "mlp"):
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output sizes")
        rng = deterministic_rng("mlp-init", seed)
        self.layers: List[_Layer] = []
        for index, (fan_in, fan_out) in enumerate(
            zip(layer_sizes, layer_sizes[1:])
        ):
            scale = np.sqrt(2.0 / fan_in)
            activation = (
                "relu" if index < len(layer_sizes) - 2 else "none"
            )
            self.layers.append(_Layer(
                weight=rng.normal(0, scale, size=(fan_in, fan_out)),
                bias=np.zeros(fan_out),
                activation=activation,
            ))
        self._adam_state: Optional[List[Dict[str, np.ndarray]]] = None
        self._adam_t = 0

    # ------------------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Predict; ``x`` is (batch, features)."""
        out = np.asarray(x, dtype=float)
        for layer in self.layers:
            out = out @ layer.weight + layer.bias
            if layer.activation == "relu":
                out = np.maximum(out, 0.0)
        return out

    def _forward_cached(self, x):
        activations = [np.asarray(x, dtype=float)]
        pre_activations = []
        out = activations[0]
        for layer in self.layers:
            z = out @ layer.weight + layer.bias
            pre_activations.append(z)
            out = np.maximum(z, 0.0) if layer.activation == "relu" \
                else z
            activations.append(out)
        return activations, pre_activations

    def _backward(self, x, y):
        activations, pre_activations = self._forward_cached(x)
        batch = x.shape[0]
        grads = []
        delta = 2.0 * (activations[-1] - y) / batch
        for index in reversed(range(len(self.layers))):
            layer = self.layers[index]
            if layer.activation == "relu":
                delta = delta * (pre_activations[index] > 0)
            grad_w = activations[index].T @ delta
            grad_b = delta.sum(axis=0)
            grads.append((grad_w, grad_b))
            if index > 0:
                delta = delta @ layer.weight.T
        grads.reverse()
        return grads

    # ------------------------------------------------------------------

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 200,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        seed: str = "fit",
    ) -> List[float]:
        """Train with Adam; returns the per-epoch training loss."""
        check_positive("epochs", epochs)
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y[:, None]
        rng = deterministic_rng("mlp-fit", seed)
        if self._adam_state is None:
            self._adam_state = [
                {
                    "mw": np.zeros_like(layer.weight),
                    "vw": np.zeros_like(layer.weight),
                    "mb": np.zeros_like(layer.bias),
                    "vb": np.zeros_like(layer.bias),
                }
                for layer in self.layers
            ]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        losses = []
        for _epoch in range(epochs):
            order = rng.permutation(len(x))
            epoch_loss = 0.0
            batches = 0
            for start in range(0, len(x), batch_size):
                index = order[start:start + batch_size]
                grads = self._backward(x[index], y[index])
                self._adam_t += 1
                for layer, grad, state in zip(
                    self.layers, grads, self._adam_state
                ):
                    for param, g, mk, vk in (
                        (layer.weight, grad[0], "mw", "vw"),
                        (layer.bias, grad[1], "mb", "vb"),
                    ):
                        state[mk] = beta1 * state[mk] + (1 - beta1) * g
                        state[vk] = (
                            beta2 * state[vk] + (1 - beta2) * g * g
                        )
                        m_hat = state[mk] / (1 - beta1**self._adam_t)
                        v_hat = state[vk] / (1 - beta2**self._adam_t)
                        param -= learning_rate * m_hat / (
                            np.sqrt(v_hat) + eps
                        )
                prediction = self.forward(x[index])
                epoch_loss += float(np.mean(
                    (prediction - y[index]) ** 2))
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
        return losses

    def mse(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean squared error on a dataset."""
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y[:, None]
        return float(np.mean((self.forward(x) - y) ** 2))

    # ------------------------------------------------------------------

    def to_exchange_spec(self, name: str, batch: int) -> Dict:
        """Model-exchange description for the SDK frontend."""
        layers = []
        for layer in self.layers:
            layers.append({
                "type": "dense",
                "units": int(layer.weight.shape[1]),
                "activation": (
                    "relu" if layer.activation == "relu" else "none"
                ),
            })
        return {
            "name": name,
            "batch": batch,
            "input_features": int(self.layers[0].weight.shape[0]),
            "layers": layers,
        }
