"""Statistical downscaling of coarse forecasts.

The EVEREST energy case "increase[s] the resolution of weather
forecast ensembles to better predict high-localized meteorological
variations" [39, 40]. The downscaler interpolates the coarse field to
the target grid and re-injects calibrated small-scale variability with
the climatological spectrum — it cannot recover the exact missing
detail (no model can), but it removes the smoothing bias of block
averages, which is what improves point forecasts at hub sites.

This is the compute-heavy kernel of the pipeline: cost scales with
the output grid squared, which is why the paper accelerates it.
"""

from __future__ import annotations

import numpy as np

from repro.apps.weather.grid import WeatherField, _correlated_noise
from repro.utils.rng import deterministic_rng
from repro.utils.validation import check_positive


def _bilinear_upsample(data: np.ndarray, factor: int) -> np.ndarray:
    """Bilinear interpolation by an integer factor."""
    ny, nx = data.shape
    y_coords = (np.arange(ny * factor) + 0.5) / factor - 0.5
    x_coords = (np.arange(nx * factor) + 0.5) / factor - 0.5
    y0 = np.clip(np.floor(y_coords).astype(int), 0, ny - 1)
    x0 = np.clip(np.floor(x_coords).astype(int), 0, nx - 1)
    y1 = np.clip(y0 + 1, 0, ny - 1)
    x1 = np.clip(x0 + 1, 0, nx - 1)
    wy = np.clip(y_coords - y0, 0.0, 1.0)[:, None]
    wx = np.clip(x_coords - x0, 0.0, 1.0)[None, :]
    top = data[np.ix_(y0, x0)] * (1 - wx) + data[np.ix_(y0, x1)] * wx
    bottom = data[np.ix_(y1, x0)] * (1 - wx) + data[np.ix_(y1, x1)] * wx
    return top * (1 - wy) + bottom * wy


def downscale_field(
    field: WeatherField,
    target_resolution_km: float,
    detail_amplitude: float = 0.9,
    seed: str = "downscale",
) -> WeatherField:
    """Downscale to a finer grid with stochastic detail injection."""
    check_positive("target_resolution_km", target_resolution_km)
    factor = int(round(field.resolution_km / target_resolution_km))
    if factor < 1 or abs(
        field.resolution_km / factor - target_resolution_km
    ) > 1e-9:
        raise ValueError(
            f"cannot downscale {field.resolution_km} km to "
            f"{target_resolution_km} km (non-integer factor)"
        )
    if factor == 1:
        return field
    smooth = _bilinear_upsample(field.data, factor)
    rng = deterministic_rng("downscale", seed, field.name)
    detail = _correlated_noise(
        smooth.shape, 15.0 / target_resolution_km, rng
    )
    # Calibrate the injected variance to the variance removed by the
    # coarse representation (estimated from the smooth field's local
    # gradients).
    local_variability = np.abs(np.gradient(smooth)[0]) + np.abs(
        np.gradient(smooth)[1]
    )
    amplitude = detail_amplitude * (
        0.4 + 0.6 * local_variability / (local_variability.mean() + 1e-9)
    )
    data = np.clip(smooth + amplitude * detail, 0.0, 40.0)
    return WeatherField(
        name=field.name, data=data,
        resolution_km=target_resolution_km,
    )


def downscaling_flops(input_cells: int, factor: int) -> float:
    """Arithmetic cost model of one downscaling call.

    Bilinear interpolation (~8 flops/output cell) plus the spectral
    detail synthesis (two FFTs over the output grid).
    """
    output_cells = input_cells * factor * factor
    fft_cost = 10.0 * output_cells * np.log2(max(output_cells, 2))
    return 8.0 * output_cells + 2 * fft_cost
