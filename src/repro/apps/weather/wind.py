"""Wind-farm power modeling."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.apps.weather.ensemble import Ensemble
from repro.apps.weather.grid import WeatherField
from repro.utils.validation import check_positive


def power_curve(wind_ms, cut_in: float = 3.0, rated_ms: float = 12.0,
                cut_out: float = 25.0) -> np.ndarray:
    """Normalized turbine power curve (0..1), vectorized.

    Cubic region between cut-in and rated speed, flat at rated output
    until cut-out, zero elsewhere.
    """
    wind = np.asarray(wind_ms, dtype=float)
    power = np.zeros_like(wind)
    ramp = (wind >= cut_in) & (wind < rated_ms)
    power[ramp] = (
        (wind[ramp] ** 3 - cut_in**3) / (rated_ms**3 - cut_in**3)
    )
    power[(wind >= rated_ms) & (wind < cut_out)] = 1.0
    return power


@dataclass
class WindFarm:
    """A wind farm: turbine positions and ratings."""

    name: str
    turbine_positions_km: List[Tuple[float, float]]
    rated_mw_per_turbine: float = 3.0
    hub_loss_factor: float = 0.88  # wake + electrical losses

    def __post_init__(self):
        check_positive("rated_mw_per_turbine", self.rated_mw_per_turbine)
        if not self.turbine_positions_km:
            raise ValueError("farm needs at least one turbine")

    @property
    def capacity_mw(self) -> float:
        """Nameplate capacity."""
        return len(self.turbine_positions_km) * self.rated_mw_per_turbine

    def production_mw(self, wind: WeatherField) -> float:
        """Farm output for one wind field."""
        speeds = np.array([
            wind.value_at_km(y, x)
            for y, x in self.turbine_positions_km
        ])
        normalized = power_curve(speeds)
        return float(
            normalized.sum()
            * self.rated_mw_per_turbine
            * self.hub_loss_factor
        )

    def production_distribution_mw(self, ensemble: Ensemble
                                   ) -> np.ndarray:
        """Per-member production for one forecast hour."""
        return np.array([
            self.production_mw(member) for member in ensemble.members
        ])

    def day_ahead_schedule_mw(
        self, hourly_ensembles: Sequence[Ensemble],
        quantile: float = 0.5,
    ) -> np.ndarray:
        """Commitment per hour: a quantile of the forecast distribution."""
        schedule = []
        for ensemble in hourly_ensembles:
            distribution = self.production_distribution_mw(ensemble)
            schedule.append(float(np.quantile(distribution, quantile)))
        return np.array(schedule)


def default_farm(extent_km: float = 300.0, turbines: int = 24,
                 seed: int = 7) -> WindFarm:
    """A clustered offshore-style farm inside the model domain."""
    rng = np.random.default_rng(seed)
    center_y = extent_km * 0.6
    center_x = extent_km * 0.4
    positions = [
        (
            float(center_y + rng.normal(0, 4.0)),
            float(center_x + rng.normal(0, 4.0)),
        )
        for _ in range(turbines)
    ]
    return WindFarm("synthetic-farm", positions)
