"""Weather-based renewable-energy prediction (paper §VI-A).

Pipeline: a global-circulation surrogate produces coarse ensemble
forecasts; downscaling raises the resolution (the paper's
hardware-accelerated step [39, 40]); a wind-farm power model plus an
MLP correction turn weather into day-ahead energy; the market model
prices the imbalance between commitment and actual production.
"""

from repro.apps.weather.grid import WeatherField, synth_truth
from repro.apps.weather.ensemble import Ensemble, generate_ensemble
from repro.apps.weather.downscaling import downscale_field
from repro.apps.weather.wind import WindFarm, power_curve
from repro.apps.weather.ml import MLP
from repro.apps.weather.market import ImbalanceMarket

__all__ = [
    "WeatherField",
    "synth_truth",
    "Ensemble",
    "generate_ensemble",
    "downscale_field",
    "WindFarm",
    "power_curve",
    "MLP",
    "ImbalanceMarket",
]
