"""Ensemble forecast generation (global-circulation surrogate).

Production systems run an ensemble of perturbed global forecasts at
15-25 km spacing (paper §VI-A). The surrogate degrades the synthetic
truth: block-average to the forecast resolution, then add member-
specific correlated errors that grow with lead time — reproducing the
two properties the use case depends on: coarse grids miss local wind
features, and spread grows with horizon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.apps.weather.grid import (
    WeatherField,
    _correlated_noise,
    synth_truth,
)
from repro.utils.rng import deterministic_rng
from repro.utils.validation import check_positive


@dataclass
class Ensemble:
    """One forecast hour: members on a common grid."""

    hour: int
    members: List[WeatherField]

    @property
    def size(self) -> int:
        """Number of members."""
        return len(self.members)

    @property
    def resolution_km(self) -> float:
        """Grid spacing of the members."""
        return self.members[0].resolution_km

    def mean_field(self) -> WeatherField:
        """Ensemble mean."""
        stacked = np.stack([m.data for m in self.members])
        return WeatherField(
            name=self.members[0].name,
            data=stacked.mean(axis=0),
            resolution_km=self.resolution_km,
        )

    def spread(self) -> float:
        """Mean ensemble standard deviation (forecast uncertainty)."""
        stacked = np.stack([m.data for m in self.members])
        return float(stacked.std(axis=0).mean())

    def value_distribution_at_km(self, y_km: float, x_km: float
                                 ) -> np.ndarray:
        """Member values at one location."""
        return np.array([
            member.value_at_km(y_km, x_km) for member in self.members
        ])


def generate_ensemble(
    truth: WeatherField,
    resolution_km: float,
    members: int = 10,
    lead_hours: int = 24,
    seed: str = "ens",
) -> Ensemble:
    """Degrade the truth into a coarse, perturbed ensemble.

    ``resolution_km`` must be an integer multiple of the truth's
    resolution. Error magnitude grows with lead time (~0.08 m/s per
    hour) on top of a representativeness error that grows with the
    coarsening factor.
    """
    check_positive("members", members)
    factor = int(round(resolution_km / truth.resolution_km))
    if factor < 1 or abs(
        factor * truth.resolution_km - resolution_km
    ) > 1e-9:
        raise ValueError(
            f"resolution {resolution_km} km is not a multiple of the "
            f"truth resolution {truth.resolution_km} km"
        )
    coarse = truth.block_average(factor) if factor > 1 else truth
    # Model error grows with both lead time and grid spacing: coarse
    # configurations resolve less physics, not just less detail.
    lead_error = (0.30 + 0.05 * lead_hours) * (
        1.0 + 0.05 * resolution_km
    )
    member_fields: List[WeatherField] = []
    for index in range(members):
        rng = deterministic_rng("ensemble", seed, index, lead_hours)
        error = _correlated_noise(
            coarse.data.shape,
            max(1.0, 60.0 / coarse.resolution_km),
            rng,
        ) * lead_error
        bias = rng.normal(0.0, 0.15)
        data = np.clip(coarse.data + error + bias, 0.0, 40.0)
        member_fields.append(WeatherField(
            name=coarse.name, data=data,
            resolution_km=coarse.resolution_km,
        ))
    return Ensemble(hour=lead_hours, members=member_fields)


def daily_ensembles(
    resolution_km: float,
    members: int = 10,
    hours: int = 24,
    truth_size_cells: int = 120,
    seed: str = "day",
) -> List[Ensemble]:
    """24 hourly ensembles plus matching truths (see weather.grid).

    Returns the list of hourly ensembles; regenerate the truths with
    :func:`repro.apps.weather.grid.synth_truth` for verification.
    """
    ensembles = []
    for hour in range(hours):
        truth = synth_truth(
            size_cells=truth_size_cells, hour=hour, seed=seed
        )
        ensembles.append(generate_ensemble(
            truth, resolution_km, members=members,
            lead_hours=hour + 1, seed=f"{seed}-{hour}",
        ))
    return ensembles
