"""Origin-destination demand matrices.

"As the main data input into the system we will use provisioned
origin-destination matrix (O/D)" (§VI-C). Demand between zones follows
a gravity model — proportional to zone weights, decaying with
distance — modulated by a double-peaked diurnal profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.apps.traffic.road_graph import CityGraph
from repro.utils.rng import deterministic_rng
from repro.utils.validation import check_non_negative, check_positive


@dataclass
class ODMatrix:
    """Hourly trip demand between node pairs."""

    pairs: Dict[Tuple[object, object], float] = field(
        default_factory=dict
    )

    def demand(self, origin, destination) -> float:
        """Trips per hour for one pair."""
        return self.pairs.get((origin, destination), 0.0)

    def total_trips(self) -> float:
        """Total hourly demand."""
        return sum(self.pairs.values())

    def scaled(self, factor: float) -> "ODMatrix":
        """Matrix with all demands multiplied."""
        check_non_negative("factor", factor)
        return ODMatrix({
            pair: trips * factor for pair, trips in self.pairs.items()
        })

    def top_pairs(self, count: int = 10
                  ) -> List[Tuple[Tuple[object, object], float]]:
        """Heaviest origin-destination pairs."""
        return sorted(
            self.pairs.items(), key=lambda item: -item[1]
        )[:count]


def diurnal_profile(hour: int) -> float:
    """Demand multiplier: morning and evening peaks over a base."""
    morning = 1.6 * math.exp(-0.5 * ((hour - 8.0) / 1.4) ** 2)
    evening = 1.8 * math.exp(-0.5 * ((hour - 17.5) / 1.6) ** 2)
    night_base = 0.15 + 0.35 * math.exp(
        -0.5 * ((hour - 13.0) / 4.0) ** 2
    )
    return night_base + morning + evening


def gravity_demand(
    city: CityGraph,
    zones: int = 12,
    daily_trips: float = 300_000.0,
    decay_m: float = 2_500.0,
    seed: str = "od",
) -> ODMatrix:
    """Gravity-model hourly base demand between sampled zones.

    Zone weights are lognormal (a few heavy attractors — the business
    district, the industrial park); the returned matrix is the *base*
    hourly rate to be scaled by :func:`diurnal_profile`.
    """
    check_positive("zones", zones)
    check_positive("daily_trips", daily_trips)
    rng = deterministic_rng("gravity", seed)
    nodes = list(city.graph.nodes)
    if zones > len(nodes):
        raise ValueError("more zones than intersections")
    chosen_indices = rng.choice(len(nodes), size=zones, replace=False)
    chosen = [nodes[int(index)] for index in chosen_indices]
    weights = rng.lognormal(mean=0.0, sigma=0.8, size=zones)

    raw: Dict[Tuple[object, object], float] = {}
    for i, origin in enumerate(chosen):
        for j, destination in enumerate(chosen):
            if origin == destination:
                continue
            pos_o = city.position(origin)
            pos_d = city.position(destination)
            distance = math.hypot(
                pos_d[0] - pos_o[0], pos_d[1] - pos_o[1]
            )
            raw[(origin, destination)] = (
                weights[i] * weights[j]
                * math.exp(-distance / decay_m)
            )
    total_raw = sum(raw.values())
    hourly_base = daily_trips / 24.0
    return ODMatrix({
        pair: value / total_raw * hourly_base
        for pair, value in raw.items()
    })
