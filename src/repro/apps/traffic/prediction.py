"""Per-segment speed prediction from historical FCD.

"traffic prediction model which learns from the training data set"
(§VI-C). The model keeps, per segment and hour-of-day, the running
mean and variance of observed probe speeds; prediction blends the
historical profile with the latest real-time observation (exponential
recency weighting). The *distributions* (mean, std) are exactly what
the PTDR router samples from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apps.traffic.fcd import FCDPoint, aggregate_speeds
from repro.apps.traffic.road_graph import CityGraph
from repro.utils.validation import check_in_range

EdgeKey = Tuple[object, object]


@dataclass
class _Profile:
    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def update(self, value: float, weight: int = 1) -> None:
        for _ in range(max(1, weight)):
            self.count += 1
            delta = value - self.mean
            self.mean += delta / self.count
            self.m2 += delta * (value - self.mean)

    def merge(self, mean: float, variance: float, count: int) -> None:
        """Fold a batch's (mean, variance, count) into the profile.

        Chan's parallel-variance merge: preserves the *within-batch*
        spread, so stop-and-go segments keep their wide distributions
        instead of collapsing to the variance of batch means.
        """
        if count <= 0:
            return
        total = self.count + count
        delta = mean - self.mean
        self.m2 += variance * count + (
            delta * delta * self.count * count / total
        )
        self.mean += delta * count / total
        self.count = total

    @property
    def std(self) -> float:
        if self.count < 2:
            return 0.5
        return math.sqrt(self.m2 / (self.count - 1))


class SpeedModel:
    """Historical + real-time segment speed estimator."""

    def __init__(self, city: CityGraph, recency_weight: float = 0.4):
        check_in_range("recency_weight", recency_weight, 0.0, 1.0)
        self.city = city
        self.recency_weight = recency_weight
        self._profiles: Dict[Tuple[EdgeKey, int], _Profile] = {}
        self._live: Dict[EdgeKey, float] = {}
        self.training_points = 0

    # ------------------------------------------------------------------

    def train(self, hour: int, points: List[FCDPoint]) -> None:
        """Fold one hour of probe data into the historical profiles."""
        aggregated = aggregate_speeds(points)
        for edge, (mean, std, count) in aggregated.items():
            profile = self._profiles.setdefault(
                (edge, hour % 24), _Profile()
            )
            profile.merge(mean, std * std, min(count, 50))
        self.training_points += len(points)

    def observe_live(self, edge: EdgeKey, speed_ms: float) -> None:
        """Record a real-time observation for blending."""
        self._live[edge] = speed_ms

    def clear_live(self) -> None:
        """Drop real-time observations (new prediction window)."""
        self._live.clear()

    # ------------------------------------------------------------------

    def predict(self, edge: EdgeKey, hour: int) -> Tuple[float, float]:
        """(mean, std) of the speed on a segment at an hour."""
        profile = self._profiles.get((edge, hour % 24))
        if profile is None or profile.count == 0:
            segment = self.city.segment(*edge)
            # untrained: free-flow prior with generous spread
            base_mean = segment.free_speed_ms * 0.85
            base_std = segment.free_speed_ms * 0.25
        else:
            base_mean = profile.mean
            base_std = max(profile.std, 0.3)
        live = self._live.get(edge)
        if live is not None:
            base_mean = (
                self.recency_weight * live
                + (1 - self.recency_weight) * base_mean
            )
        return base_mean, base_std

    def predict_time(self, edge: EdgeKey, hour: int) -> float:
        """Expected traversal time of a segment."""
        mean, _std = self.predict(edge, hour)
        segment = self.city.segment(*edge)
        return segment.length_m / max(mean, 0.5)

    def mean_absolute_error(
        self, hour: int,
        true_speeds: Dict[EdgeKey, float],
    ) -> float:
        """MAE of predictions against true congested speeds."""
        errors = [
            abs(self.predict(edge, hour)[0] - true_speed)
            for edge, true_speed in true_speeds.items()
        ]
        return float(np.mean(errors)) if errors else 0.0
