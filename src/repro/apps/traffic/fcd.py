"""Floating car data generation.

"FCD is represented by geo position and the speed of vehicle sensed
approximately each 5 seconds from navigation devices" (§VI-C). The
generator drives synthetic vehicles along congested shortest paths and
emits 5-second probe points with GPS position noise and speed
measurement error — the raw feed the speed model aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.apps.traffic.road_graph import CityGraph
from repro.apps.traffic.simulator import HourState
from repro.utils.rng import deterministic_rng
from repro.utils.validation import check_positive

#: Probe period in seconds.
PROBE_PERIOD_S = 5.0


@dataclass(frozen=True)
class FCDPoint:
    """One probe report."""

    vehicle_id: int
    timestamp_s: float
    x_m: float
    y_m: float
    speed_ms: float
    edge: Tuple[object, object]


class FCDGenerator:
    """Drives probe vehicles through one hour's congested state."""

    def __init__(self, city: CityGraph, seed: str = "fcd",
                 gps_noise_m: float = 8.0,
                 speed_noise_ms: float = 0.6):
        self.city = city
        self.seed = seed
        self.gps_noise_m = gps_noise_m
        self.speed_noise_ms = speed_noise_ms

    def drive(
        self,
        state: HourState,
        path: List,
        vehicle_id: int,
        depart_s: float = 0.0,
    ) -> List[FCDPoint]:
        """Emit probe points for one vehicle along a path."""
        rng = deterministic_rng(
            "fcd-drive", self.seed, vehicle_id, state.hour
        )
        points: List[FCDPoint] = []
        clock = depart_s
        next_probe = depart_s
        for edge in self.city.path_segments(path):
            segment = self.city.segment(*edge)
            edge_time = state.times_s[edge]
            speed = segment.length_m / edge_time
            # Congested segments show stop-and-go variability: the
            # speed spread grows with the deficit below free flow.
            spread = self.speed_noise_ms + 0.45 * max(
                0.0, segment.free_speed_ms - speed
            )
            pos_a = self.city.position(edge[0])
            pos_b = self.city.position(edge[1])
            while next_probe < clock + edge_time:
                progress = (next_probe - clock) / edge_time
                x = pos_a[0] + progress * (pos_b[0] - pos_a[0])
                y = pos_a[1] + progress * (pos_b[1] - pos_a[1])
                points.append(FCDPoint(
                    vehicle_id=vehicle_id,
                    timestamp_s=next_probe,
                    x_m=float(x + rng.normal(0, self.gps_noise_m)),
                    y_m=float(y + rng.normal(0, self.gps_noise_m)),
                    speed_ms=float(max(0.0, speed + rng.normal(
                        0, spread))),
                    edge=edge,
                ))
                next_probe += PROBE_PERIOD_S
            clock += edge_time
        return points

    def generate_hour(
        self,
        state: HourState,
        vehicles: int = 200,
        seed_offset: int = 0,
    ) -> List[FCDPoint]:
        """Probe data for many random trips in one hour."""
        check_positive("vehicles", vehicles)
        rng = deterministic_rng(
            "fcd-hour", self.seed, state.hour, seed_offset
        )
        nodes = list(self.city.graph.nodes)
        points: List[FCDPoint] = []
        for vehicle in range(vehicles):
            origin, destination = rng.choice(
                len(nodes), size=2, replace=False
            )
            try:
                path = self.city.shortest_path(
                    nodes[int(origin)], nodes[int(destination)]
                )
            except Exception:
                continue
            if len(path) < 2:
                continue
            depart = float(rng.uniform(0, 3600))
            points.extend(self.drive(
                state, path, vehicle_id=vehicle + seed_offset,
                depart_s=depart,
            ))
        return points


def aggregate_speeds(
    points: List[FCDPoint],
) -> Dict[Tuple[object, object], Tuple[float, float, int]]:
    """Per-edge (mean speed, std, count) from probe points."""
    by_edge: Dict[Tuple[object, object], List[float]] = {}
    for point in points:
        by_edge.setdefault(point.edge, []).append(point.speed_ms)
    result = {}
    for edge, speeds in by_edge.items():
        arr = np.asarray(speeds)
        result[edge] = (
            float(arr.mean()),
            float(arr.std()),
            int(arr.size),
        )
    return result
