"""Synthetic city road networks.

A Vienna-like layout: a dense inner grid, ring roads and radial
arterials. Segments carry length, free-flow speed and capacity —
everything the volume-delay simulator and the router need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from repro.errors import SpecificationError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Segment:
    """Static attributes of one directed road segment."""

    length_m: float
    free_speed_ms: float
    capacity_veh_h: float
    kind: str  # "street" | "arterial" | "ring"

    @property
    def free_flow_time_s(self) -> float:
        """Traversal time at free-flow speed."""
        return self.length_m / self.free_speed_ms


class CityGraph:
    """Directed road graph with typed segments."""

    def __init__(self, graph: nx.DiGraph):
        self.graph = graph

    @property
    def num_nodes(self) -> int:
        """Intersection count."""
        return self.graph.number_of_nodes()

    @property
    def num_segments(self) -> int:
        """Directed segment count."""
        return self.graph.number_of_edges()

    def segment(self, a, b) -> Segment:
        """Static data of one segment."""
        if not self.graph.has_edge(a, b):
            raise SpecificationError(f"no segment {a!r}->{b!r}")
        return self.graph.edges[a, b]["segment"]

    def segments(self) -> List[Tuple[object, object, Segment]]:
        """All (from, to, segment) triples."""
        return [
            (a, b, data["segment"])
            for a, b, data in self.graph.edges(data=True)
        ]

    def position(self, node) -> Tuple[float, float]:
        """Planar coordinates of an intersection (meters)."""
        return self.graph.nodes[node]["pos"]

    def shortest_path(self, source, target,
                      weight: str = "free_time") -> List:
        """Free-flow shortest path (node list)."""
        return nx.shortest_path(
            self.graph, source, target, weight=weight
        )

    def k_shortest_paths(self, source, target, k: int = 3) -> List[List]:
        """Up to ``k`` loop-free alternatives by free-flow time."""
        check_positive("k", k)
        generator = nx.shortest_simple_paths(
            self.graph, source, target, weight="free_time"
        )
        paths = []
        for path in generator:
            paths.append(path)
            if len(paths) >= k:
                break
        return paths

    def path_segments(self, path: List) -> List[Tuple[object, object]]:
        """Edge list of a node path."""
        return list(zip(path, path[1:]))


def build_city(
    grid: int = 8,
    block_m: float = 400.0,
    with_ring: bool = True,
    with_radials: bool = True,
) -> CityGraph:
    """Construct the synthetic city.

    ``grid`` x ``grid`` intersections of surface streets (50 km/h),
    an orbital ring (70 km/h) around the perimeter and diagonal
    arterials (60 km/h) through the center.
    """
    check_positive("grid", grid)
    check_positive("block_m", block_m)
    if grid < 3:
        raise SpecificationError("grid must be at least 3")
    graph = nx.DiGraph()

    def add_two_way(a, b, speed, capacity, kind):
        pos_a = graph.nodes[a]["pos"]
        pos_b = graph.nodes[b]["pos"]
        length = math.hypot(pos_b[0] - pos_a[0], pos_b[1] - pos_a[1])
        for src, dst in ((a, b), (b, a)):
            segment = Segment(
                length_m=length,
                free_speed_ms=speed,
                capacity_veh_h=capacity,
                kind=kind,
            )
            graph.add_edge(
                src, dst,
                segment=segment,
                free_time=segment.free_flow_time_s,
            )

    for row in range(grid):
        for col in range(grid):
            graph.add_node(
                (row, col), pos=(col * block_m, row * block_m)
            )
    for row in range(grid):
        for col in range(grid):
            if col + 1 < grid:
                add_two_way((row, col), (row, col + 1),
                            13.9, 900.0, "street")
            if row + 1 < grid:
                add_two_way((row, col), (row + 1, col),
                            13.9, 900.0, "street")

    if with_ring:
        perimeter = (
            [(0, col) for col in range(grid)]
            + [(row, grid - 1) for row in range(1, grid)]
            + [(grid - 1, col) for col in range(grid - 2, -1, -1)]
            + [(row, 0) for row in range(grid - 2, 0, -1)]
        )
        for a, b in zip(perimeter, perimeter[1:] + perimeter[:1]):
            # upgrade existing perimeter streets to ring quality
            pos_a = graph.nodes[a]["pos"]
            pos_b = graph.nodes[b]["pos"]
            length = math.hypot(
                pos_b[0] - pos_a[0], pos_b[1] - pos_a[1]
            )
            for src, dst in ((a, b), (b, a)):
                segment = Segment(
                    length_m=length,
                    free_speed_ms=19.4,
                    capacity_veh_h=1800.0,
                    kind="ring",
                )
                graph.add_edge(
                    src, dst,
                    segment=segment,
                    free_time=segment.free_flow_time_s,
                )

    if with_radials:
        center = (grid // 2, grid // 2)
        for corner in (
            (0, 0), (0, grid - 1), (grid - 1, 0), (grid - 1, grid - 1)
        ):
            add_two_way(corner, center, 16.7, 1400.0, "arterial")

    return CityGraph(graph)
