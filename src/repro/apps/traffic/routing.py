"""Probabilistic time-dependent routing (PTDR).

The Monte Carlo routing of Vitali et al. [37] and Golasowski et al.
[41]: for each candidate path, sample per-segment speeds from the
prediction model's time-dependent distributions, advance a virtual
clock across hour boundaries, and score paths by a travel-time
percentile rather than the mean — risk-aware routing. The Monte Carlo
sample count is the paper's accuracy/latency knob (the kernel EVEREST
accelerates server-side).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apps.traffic.prediction import SpeedModel
from repro.apps.traffic.road_graph import CityGraph
from repro.utils.rng import deterministic_rng
from repro.utils.validation import check_in_range, check_positive


@dataclass
class RouteChoice:
    """Scored candidate route."""

    path: List
    samples: np.ndarray  # travel-time samples (seconds)
    percentile_s: float
    mean_s: float

    @property
    def std_s(self) -> float:
        """Spread of the sampled travel times."""
        return float(self.samples.std())

    def on_time_probability(self, budget_s: float) -> float:
        """P(travel time <= budget)."""
        return float(np.mean(self.samples <= budget_s))


class PTDRRouter:
    """Monte Carlo risk-aware router over a speed model."""

    def __init__(
        self,
        city: CityGraph,
        model: SpeedModel,
        percentile: float = 0.9,
        seed: str = "ptdr",
    ):
        check_in_range("percentile", percentile, 0.0, 1.0)
        self.city = city
        self.model = model
        self.percentile = percentile
        self.seed = seed

    # ------------------------------------------------------------------

    def sample_path_times(
        self,
        path: List,
        depart_hour: float,
        samples: int,
        seed_key: object = 0,
    ) -> np.ndarray:
        """Monte Carlo travel-time samples for one path.

        Each sample draws truncated-normal segment speeds; the clock
        advances through hour boundaries so later segments use the
        distribution of the hour they are actually traversed in.
        """
        check_positive("samples", samples)
        rng = deterministic_rng(
            "ptdr", self.seed, seed_key, repr(path[0]), repr(path[-1])
        )
        edges = self.city.path_segments(path)
        result = np.zeros(samples)
        for sample_index in range(samples):
            clock_h = depart_hour
            total_s = 0.0
            for edge in edges:
                hour = int(clock_h) % 24
                mean, std = self.model.predict(edge, hour)
                speed = rng.normal(mean, std)
                floor = 0.15 * max(mean, 0.5)
                speed = max(speed, floor)
                segment = self.city.segment(*edge)
                time_s = segment.length_m / speed
                total_s += time_s
                clock_h += time_s / 3600.0
            result[sample_index] = total_s
        return result

    def candidate_paths(
        self, origin, destination, depart_hour: float, k: int
    ) -> List[List]:
        """K loop-free alternatives by *predicted* congested time.

        Routing on the traffic model (not free-flow geometry) is what
        surfaces structurally different alternatives around congested
        areas — e.g. the stable ring versus the stop-and-go center.
        """
        import networkx as nx

        hour = int(depart_hour) % 24
        working = self.city.graph.copy()
        for a, b in working.edges:
            working.edges[a, b]["predicted"] = self.model.predict_time(
                (a, b), hour
            )
        generator = nx.shortest_simple_paths(
            working, origin, destination, weight="predicted"
        )
        paths = []
        for path in generator:
            paths.append(path)
            if len(paths) >= k:
                break
        return paths

    def route(
        self,
        origin,
        destination,
        depart_hour: float,
        k_alternatives: int = 3,
        samples: int = 200,
    ) -> List[RouteChoice]:
        """Score k alternatives; best (lowest percentile) first."""
        paths = self.candidate_paths(
            origin, destination, depart_hour, k_alternatives
        )
        choices = []
        for index, path in enumerate(paths):
            sampled = self.sample_path_times(
                path, depart_hour, samples, seed_key=index
            )
            choices.append(RouteChoice(
                path=path,
                samples=sampled,
                percentile_s=float(
                    np.quantile(sampled, self.percentile)
                ),
                mean_s=float(sampled.mean()),
            ))
        choices.sort(key=lambda choice: choice.percentile_s)
        return choices

    def best_route(self, origin, destination, depart_hour: float,
                   samples: int = 200) -> RouteChoice:
        """The top-ranked alternative."""
        return self.route(
            origin, destination, depart_hour, samples=samples
        )[0]

    # ------------------------------------------------------------------

    def percentile_convergence(
        self,
        path: List,
        depart_hour: float,
        sample_counts: List[int],
        reference_samples: int = 20_000,
        repeats: int = 1,
    ) -> Dict[int, float]:
        """Mean |percentile estimate - reference| per sample count.

        The accuracy-vs-samples curve that motivates hardware
        acceleration: more samples, better tail estimates, more
        compute per request. ``repeats`` averages the error over
        independent estimates (one Monte Carlo draw of the error is
        itself noisy).
        """
        check_positive("repeats", repeats)
        reference = float(np.quantile(
            self.sample_path_times(
                path, depart_hour, reference_samples, seed_key="ref"
            ),
            self.percentile,
        ))
        errors = {}
        for count in sample_counts:
            trials = []
            for repeat in range(repeats):
                estimate = float(np.quantile(
                    self.sample_path_times(
                        path, depart_hour, count,
                        seed_key=f"c{count}r{repeat}",
                    ),
                    self.percentile,
                ))
                trials.append(abs(estimate - reference))
            errors[count] = float(np.mean(trials))
        return errors


def ptdr_flops(samples: int, segments: int) -> float:
    """Arithmetic cost of one PTDR request (per-sample per-segment)."""
    return float(samples) * segments * 25.0
