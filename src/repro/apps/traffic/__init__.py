"""Traffic modeling for intelligent transportation (paper §VI-C).

The Sygic-style ecosystem: a synthetic city road network, an
origin/destination demand matrix, a floating-car-data generator
standing in for "millions of devices every day", a mesoscopic traffic
simulator that "boosts the raw sensory data into rich training
sequences", per-segment speed prediction, and probabilistic
time-dependent routing (PTDR, [37, 41]) with Monte Carlo travel-time
sampling.
"""

from repro.apps.traffic.road_graph import CityGraph, build_city
from repro.apps.traffic.od_matrix import ODMatrix, gravity_demand
from repro.apps.traffic.fcd import FCDGenerator, FCDPoint
from repro.apps.traffic.simulator import TrafficSimulator
from repro.apps.traffic.prediction import SpeedModel
from repro.apps.traffic.routing import (
    PTDRRouter,
    RouteChoice,
)

__all__ = [
    "CityGraph",
    "build_city",
    "ODMatrix",
    "gravity_demand",
    "FCDGenerator",
    "FCDPoint",
    "TrafficSimulator",
    "SpeedModel",
    "PTDRRouter",
    "RouteChoice",
]
