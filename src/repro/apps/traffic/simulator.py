"""Mesoscopic traffic simulator.

"Traffic simulator simulates individual clients driving around the
smart city by combining both macro and microscopic approaches"
(§VI-C, [42]). This model is mesoscopic: demand is assigned to
shortest paths under *current* congested travel times (one-shot
incremental assignment per hour), and segment speeds follow the BPR
volume-delay function

    t = t0 * (1 + alpha * (v / c) ^ beta)

The simulator produces per-segment, per-hour congested speeds — the
"rich training sequences" the prediction model learns from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.apps.traffic.od_matrix import ODMatrix, diurnal_profile
from repro.apps.traffic.road_graph import CityGraph
from repro.utils.rng import deterministic_rng
from repro.utils.validation import check_positive

_BPR_ALPHA = 0.55
_BPR_BETA = 4.0


def bpr_time(free_time_s: float, volume: float, capacity: float
             ) -> float:
    """BPR congested traversal time."""
    ratio = volume / max(capacity, 1e-9)
    return free_time_s * (1.0 + _BPR_ALPHA * ratio**_BPR_BETA)


@dataclass
class HourState:
    """Simulated state of one hour."""

    hour: int
    volumes: Dict[Tuple[object, object], float]
    times_s: Dict[Tuple[object, object], float]

    def speed_ms(self, city: CityGraph, edge: Tuple[object, object]
                 ) -> float:
        """Congested speed on a segment."""
        segment = city.segment(*edge)
        return segment.length_m / self.times_s[edge]

    def congestion_index(self, city: CityGraph) -> float:
        """Mean ratio of congested to free-flow time."""
        ratios = []
        for edge, time_s in self.times_s.items():
            segment = city.segment(*edge)
            ratios.append(time_s / segment.free_flow_time_s)
        return float(np.mean(ratios))


class TrafficSimulator:
    """Hour-by-hour incremental assignment over a city."""

    def __init__(self, city: CityGraph, od: ODMatrix,
                 increments: int = 4, seed: str = "sim"):
        check_positive("increments", increments)
        self.city = city
        self.od = od
        self.increments = increments
        self.seed = seed

    def simulate_hour(self, hour: int,
                      demand_scale: float = 1.0) -> HourState:
        """Assign one hour's demand; returns the congested state."""
        scale = diurnal_profile(hour) * demand_scale
        graph = self.city.graph
        volumes: Dict[Tuple[object, object], float] = {
            (a, b): 0.0 for a, b in graph.edges
        }
        times: Dict[Tuple[object, object], float] = {
            (a, b): self.city.segment(a, b).free_flow_time_s
            for a, b in graph.edges
        }

        working = graph.copy()
        for (a, b), time_s in times.items():
            working.edges[a, b]["congested"] = time_s

        demand_items = sorted(
            self.od.pairs.items(), key=lambda item: repr(item[0])
        )
        for _increment in range(self.increments):
            fraction = 1.0 / self.increments
            for (origin, destination), base_rate in demand_items:
                trips = base_rate * scale * fraction
                if trips <= 0:
                    continue
                try:
                    path = nx.shortest_path(
                        working, origin, destination,
                        weight="congested",
                    )
                except nx.NetworkXNoPath:
                    continue
                for edge in zip(path, path[1:]):
                    volumes[edge] += trips
            # update congested times after each increment
            for edge in volumes:
                segment = self.city.segment(*edge)
                times[edge] = bpr_time(
                    segment.free_flow_time_s,
                    volumes[edge],
                    segment.capacity_veh_h,
                )
                working.edges[edge]["congested"] = times[edge]
        return HourState(hour=hour, volumes=volumes, times_s=times)

    def simulate_day(self, demand_scale: float = 1.0
                     ) -> List[HourState]:
        """All 24 hourly states."""
        return [
            self.simulate_hour(hour, demand_scale)
            for hour in range(24)
        ]

    def congested_travel_time(self, state: HourState,
                              path: List) -> float:
        """Travel time of a path under one hour's state."""
        return sum(
            state.times_s[edge]
            for edge in self.city.path_segments(path)
        )
