"""Industrial use-case substrates (paper Section VI).

Three applications drive EVEREST; the paper's production data feeds
(meteorological ensembles, Plum'air sensing, Sygic floating-car data)
are not available offline, so each package pairs the *real algorithms*
(plume physics, power curves, Monte Carlo routing) with synthetic
generators reproducing the statistical structure of the inputs:

* :mod:`repro.apps.weather` — weather-based renewable-energy
  prediction for the trading market (§VI-A);
* :mod:`repro.apps.airquality` — air-quality monitoring of industrial
  sites (§VI-B);
* :mod:`repro.apps.traffic` — traffic modeling for intelligent
  transportation (§VI-C).
"""
