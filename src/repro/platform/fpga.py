"""FPGA device model with a cloudFPGA-style shell-role architecture.

The cloudFPGA platform (paper Section V, [8]) splits the fabric into a
privileged **shell** — network stack, management, memory controllers —
and one or more **role** slots holding user logic, swapped at run time by
partial reconfiguration. This module models:

* resource accounting (shell is pre-subtracted from the device capacity),
* role slots with bitstream loading and reconfiguration latency,
* clock scaling for synthesized accelerators,
* power states (static fabric power plus per-role dynamic power).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import CapacityError, PlatformError, ReconfigurationError
from repro.obs import current_metrics
from repro.platform.memory import MemoryModel
from repro.platform.resources import FPGAResources
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class Bitstream:
    """A synthesized accelerator image targeting one role slot.

    Produced by the HLS backend (:mod:`repro.core.backend.binary`); the
    platform model only needs its footprint, clock and power figures.
    """

    name: str
    footprint: FPGAResources
    clock_hz: float
    dynamic_watts: float = 2.0
    size_bytes: int = 30 * 1024 * 1024
    partial: bool = True

    def __post_init__(self):
        check_positive("clock_hz", self.clock_hz)
        check_non_negative("dynamic_watts", self.dynamic_watts)
        check_positive("size_bytes", self.size_bytes)


@dataclass
class Role:
    """One partially-reconfigurable slot in the fabric."""

    name: str
    capacity: FPGAResources
    loaded: Optional[Bitstream] = None
    reconfigurations: int = field(default=0, init=False)
    busy: bool = field(default=False, init=False)

    def can_host(self, bitstream: Bitstream) -> bool:
        """True if the bitstream's footprint fits this slot."""
        return bitstream.footprint.fits_in(self.capacity)


@dataclass
class Shell:
    """The privileged static region: management + network + memory."""

    name: str = "shell"
    footprint: FPGAResources = field(
        default_factory=lambda: FPGAResources(
            luts=120_000, ffs=180_000, bram_kb=4_000, dsps=100
        )
    )
    static_watts: float = 18.0
    supports_network: bool = True


# Reconfiguration throughput of the ICAP-style configuration port.
_RECONFIG_BYTES_PER_SECOND = 400e6


class FPGADevice:
    """A single FPGA card: shell + role slots + attached memories.

    ``role_slots`` partitions the user region evenly; cloudFPGA uses a
    single role per device, while larger bus-attached cards can host
    several independent accelerators.
    """

    def __init__(
        self,
        name: str,
        capacity: FPGAResources,
        shell: Optional[Shell] = None,
        role_slots: int = 1,
        memories: Optional[List[MemoryModel]] = None,
    ):
        check_positive("role_slots", role_slots)
        self.name = name
        self.capacity = capacity
        self.shell = shell or Shell()
        if not self.shell.footprint.fits_in(capacity):
            raise CapacityError(
                f"device {name!r}: shell footprint exceeds fabric capacity"
            )
        user_region = capacity - self.shell.footprint
        per_slot = FPGAResources(
            luts=user_region.luts // role_slots,
            ffs=user_region.ffs // role_slots,
            bram_kb=user_region.bram_kb // role_slots,
            dsps=user_region.dsps // role_slots,
        )
        self.roles: List[Role] = [
            Role(name=f"{name}/role{i}", capacity=per_slot)
            for i in range(role_slots)
        ]
        self.memories: Dict[str, MemoryModel] = {
            memory.name: memory for memory in (memories or [])
        }
        self.total_reconfig_time = 0.0
        self.failed_reconfigurations = 0
        self._pending_reconfig_faults = 0

    @property
    def user_capacity(self) -> FPGAResources:
        """Fabric available to user logic across all role slots."""
        total = FPGAResources()
        for role in self.roles:
            total = total + role.capacity
        return total

    def free_role(self) -> Optional[Role]:
        """First role slot with no loaded bitstream, or ``None``."""
        for role in self.roles:
            if role.loaded is None:
                return role
        return None

    def find_role(self, bitstream_name: str) -> Optional[Role]:
        """Role currently hosting the named bitstream, if any."""
        for role in self.roles:
            if role.loaded is not None and role.loaded.name == bitstream_name:
                return role
        return None

    def reconfiguration_time(self, bitstream: Bitstream) -> float:
        """Seconds of partial (or full) reconfiguration for the image."""
        size = bitstream.size_bytes
        if not bitstream.partial:
            size *= 3  # full-device image
        return size / _RECONFIG_BYTES_PER_SECOND

    def inject_reconfig_failures(self, count: int) -> None:
        """Arm the configuration port to fail the next ``count`` loads.

        Models the transient partial-reconfiguration errors (bitstream
        CRC, ICAP timeout) that a chaos schedule injects; each armed
        failure makes one subsequent :meth:`load` raise
        :class:`ReconfigurationError` and leaves the role unchanged.
        """
        check_non_negative("count", count)
        self._pending_reconfig_faults += int(count)

    def load(self, bitstream: Bitstream, role: Optional[Role] = None) -> Role:
        """Load a bitstream into a role slot, evicting nothing.

        Returns the role used. Raises :class:`CapacityError` when the
        image does not fit, :class:`PlatformError` when every slot is
        occupied and none was named, and :class:`ReconfigurationError`
        when an injected configuration-port fault is armed.
        """
        target = role or self.free_role()
        if target is None:
            raise PlatformError(
                f"device {self.name!r}: all {len(self.roles)} role slots "
                f"occupied; unload one first"
            )
        if target.busy:
            raise PlatformError(
                f"role {target.name!r} is busy; cannot reconfigure"
            )
        if not target.can_host(bitstream):
            raise CapacityError(
                f"bitstream {bitstream.name!r} footprint "
                f"{bitstream.footprint} does not fit role "
                f"{target.name!r} capacity {target.capacity}"
            )
        if self._pending_reconfig_faults > 0:
            self._pending_reconfig_faults -= 1
            self.failed_reconfigurations += 1
            # time was spent streaming the image before the fault hit
            self.total_reconfig_time += self.reconfiguration_time(bitstream)
            current_metrics().counter(
                "fpga.reconfigurations_failed",
                "partial reconfigurations aborted by faults",
            ).inc(device=self.name)
            raise ReconfigurationError(
                f"device {self.name!r}: partial reconfiguration of "
                f"{bitstream.name!r} failed (injected fault); retry the load"
            )
        target.loaded = bitstream
        target.reconfigurations += 1
        self.total_reconfig_time += self.reconfiguration_time(bitstream)
        current_metrics().counter(
            "fpga.reconfigurations",
            "successful partial reconfigurations",
        ).inc(device=self.name)
        return target

    def unload(self, role: Role) -> None:
        """Clear a role slot."""
        if role.busy:
            raise PlatformError(f"role {role.name!r} is busy; cannot unload")
        role.loaded = None

    def power_watts(self) -> float:
        """Current draw: shell static power plus active role power."""
        dynamic = sum(
            role.loaded.dynamic_watts
            for role in self.roles
            if role.loaded is not None and role.busy
        )
        return self.shell.static_watts + dynamic


def make_vu9p(name: str, memories: Optional[List[MemoryModel]] = None,
              role_slots: int = 1) -> FPGADevice:
    """A Virtex UltraScale+ VU9P class datacenter FPGA."""
    return FPGADevice(
        name=name,
        capacity=FPGAResources(
            luts=1_182_000, ffs=2_364_000, bram_kb=75_900, dsps=6_840
        ),
        role_slots=role_slots,
        memories=memories,
    )


def make_ku060(name: str, memories: Optional[List[MemoryModel]] = None
               ) -> FPGADevice:
    """A Kintex UltraScale KU060 class FPGA (cloudFPGA module device)."""
    return FPGADevice(
        name=name,
        capacity=FPGAResources(
            luts=331_680, ffs=663_360, bram_kb=38_000, dsps=2_760
        ),
        shell=Shell(
            footprint=FPGAResources(
                luts=60_000, ffs=90_000, bram_kb=2_500, dsps=40
            ),
            static_watts=9.0,
        ),
        role_slots=1,
        memories=memories,
    )


def make_edge_fpga(name: str, memories: Optional[List[MemoryModel]] = None
                   ) -> FPGADevice:
    """A small Zynq-class edge FPGA."""
    return FPGADevice(
        name=name,
        capacity=FPGAResources(
            luts=117_000, ffs=234_000, bram_kb=5_000, dsps=1_248
        ),
        shell=Shell(
            footprint=FPGAResources(
                luts=20_000, ffs=30_000, bram_kb=500, dsps=10
            ),
            static_watts=2.5,
            supports_network=False,
        ),
        role_slots=1,
        memories=memories,
    )
