"""Minimal generator-based discrete-event simulation engine.

This is the substrate that stands in for the physical EVEREST testbed
(see DESIGN.md, *Substitutions*). Processes are Python generators that
yield :class:`Timeout` or :class:`Request` objects; the engine advances
virtual time and resumes them, in the style of SimPy but with only the
features the SDK needs:

* ``Simulator.process(gen)`` — register a process.
* ``yield sim.timeout(delay)`` — suspend for simulated seconds.
* ``yield resource.request()`` / ``resource.release()`` — contend for a
  finite-capacity resource (FPGA role slot, memory channel, link).
* ``yield event`` — wait for an explicit :class:`Event` to be triggered.

Determinism: events scheduled at the same timestamp fire in insertion
order (a monotonically increasing sequence number breaks heap ties).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import PlatformError
from repro.utils.validation import check_non_negative, check_positive

#: Tracer category for resource occupancy / queue-depth counters.
RESOURCE_CATEGORY = "platform.resource"


def _diagnosed_error(code: str, message: str, anchor: str
                     ) -> PlatformError:
    """A :class:`PlatformError` carrying a SIM00x diagnostic.

    The exception type and message stay what they always were; the
    attached ``diagnostics`` collection gives tooling the stable code
    and anchor (same contract as :func:`~repro.core.analysis.
    diagnostics.raise_if_errors`).
    """
    # imported lazily: the simulator must stay importable without
    # pulling the whole analysis stack in
    from repro.core.analysis.diagnostics import Diagnostics

    diagnostics = Diagnostics()
    diagnostics.error(
        code, message, anchor=anchor, analysis="simulator"
    )
    exc = PlatformError(message)
    exc.diagnostics = diagnostics
    return exc


class Event:
    """A one-shot event processes can wait on.

    An event is *triggered* at most once with an optional value; every
    process waiting on it resumes with that value.
    """

    def __init__(self, sim: "Simulator"):
        self._sim = sim
        self.triggered = False
        self.value: Any = None
        self._waiters: List["Process"] = []

    def trigger(self, value: Any = None) -> None:
        """Fire the event, resuming all waiters at the current time."""
        if self.triggered:
            raise PlatformError("event already triggered")
        self.triggered = True
        self.value = value
        for process in self._waiters:
            self._sim._schedule(0.0, process, value)
        self._waiters.clear()

    def _subscribe(self, process: "Process") -> None:
        if self.triggered:
            self._sim._schedule(0.0, process, self.value)
        else:
            self._waiters.append(process)


class Timeout:
    """Suspend the yielding process for ``delay`` simulated seconds."""

    def __init__(self, delay: float):
        self.delay = check_non_negative("delay", delay)


class Request:
    """Acquire one unit of a :class:`SimResource` (FIFO queuing)."""

    def __init__(self, resource: "SimResource"):
        self.resource = resource


class Process:
    """A running generator inside the simulator."""

    def __init__(self, sim: "Simulator", gen: Generator, name: str):
        self._sim = sim
        self._gen = gen
        self.name = name
        self.finished = False
        self.result: Any = None
        self.done_event = Event(sim)

    def _step(self, value: Any) -> None:
        if self.finished:
            return
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.done_event.trigger(stop.value)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self._sim._schedule(yielded.delay, self, None)
        elif isinstance(yielded, Request):
            yielded.resource._enqueue(self)
        elif isinstance(yielded, Event):
            yielded._subscribe(self)
        elif isinstance(yielded, Process):
            yielded.done_event._subscribe(self)
        else:
            raise PlatformError(
                f"process {self.name!r} yielded unsupported object "
                f"{yielded!r}"
            )


class SimResource:
    """A finite-capacity resource with FIFO admission.

    Models contended platform entities: FPGA role slots, DMA engines,
    memory channels, network links. ``capacity`` units can be held at
    once; further requesters queue.
    """

    def __init__(self, sim: "Simulator", capacity: int, name: str = ""):
        self._sim = sim
        self.capacity = int(check_positive("capacity", capacity))
        self.name = name or f"resource@{id(self):x}"
        self.in_use = 0
        self._queue: List[Process] = []
        self.total_waits = 0
        self.total_grants = 0

    def _record_occupancy(self) -> None:
        """Emit busy/queue counters into the simulator's tracer."""
        tracer = self._sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.counter(
                f"resource:{self.name}",
                float(self.in_use),
                category=RESOURCE_CATEGORY,
                track=self.name,
            )
            tracer.counter(
                f"queue:{self.name}",
                float(len(self._queue)),
                category=RESOURCE_CATEGORY,
                track=self.name,
            )

    def request(self) -> Request:
        """Return a request object to ``yield`` from a process."""
        return Request(self)

    def release(self) -> None:
        """Return one unit; wakes the head of the queue if any."""
        if self.in_use <= 0:
            raise _diagnosed_error(
                "SIM001",
                f"release of {self.name!r} without matching request",
                anchor=self.name,
            )
        self.in_use -= 1
        if self._queue:
            process = self._queue.pop(0)
            self.in_use += 1
            self.total_grants += 1
            self._sim._schedule(0.0, process, None)
        self._record_occupancy()

    def _enqueue(self, process: Process) -> None:
        if self.in_use < self.capacity:
            self.in_use += 1
            self.total_grants += 1
            self._sim._schedule(0.0, process, None)
        else:
            self.total_waits += 1
            self._queue.append(process)
        self._record_occupancy()

    @property
    def queue_length(self) -> int:
        """Number of processes currently waiting."""
        return len(self._queue)


class Simulator:
    """The discrete-event engine: a clock and an ordered event heap."""

    def __init__(self):
        self.now = 0.0
        self._heap: List[Tuple[float, int, Process, Any]] = []
        self._sequence = 0
        self._processes: List[Process] = []
        #: Optional :class:`repro.obs.Tracer` observing this run;
        #: resources report occupancy into it when one is attached.
        self.tracer: Optional[Any] = None

    def process(
        self, gen: Generator, name: str = ""
    ) -> Process:
        """Register a generator as a process starting at the current time."""
        process = Process(self, gen, name or f"process-{len(self._processes)}")
        self._processes.append(process)
        self._schedule(0.0, process, None)
        return process

    def timeout(self, delay: float) -> Timeout:
        """Create a timeout to ``yield`` from a process."""
        return Timeout(delay)

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def resource(self, capacity: int, name: str = "") -> SimResource:
        """Create a finite-capacity resource owned by this simulator."""
        return SimResource(self, capacity, name)

    def _schedule(self, delay: float, process: Process, value: Any) -> None:
        heapq.heappush(
            self._heap, (self.now + delay, self._sequence, process, value)
        )
        self._sequence += 1

    def run(self, until: Optional[float] = None) -> float:
        """Advance the clock until the heap drains or ``until`` is reached.

        Returns the final simulated time.
        """
        while self._heap:
            time, _seq, process, value = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = time
            process._step(value)
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Convenience: register ``gen``, run to completion, return result."""
        process = self.process(gen, name)
        self.run()
        if not process.finished:
            raise _diagnosed_error(
                "SIM002",
                f"process {process.name!r} deadlocked "
                f"(simulation drained at t={self.now})",
                anchor=process.name,
            )
        return process.result


def all_of(sim: Simulator, processes: List[Process]) -> Generator:
    """A process body that waits for all given processes to finish."""
    for process in processes:
        if not process.finished:
            yield process
    return [process.result for process in processes]


def delayed_call(
    sim: Simulator, delay: float, func: Callable[[], Any]
) -> Process:
    """Schedule ``func`` to run as a process after ``delay`` seconds."""

    def body() -> Generator:
        yield sim.timeout(delay)
        return func()

    return sim.process(body(), name=f"delayed:{func!r}")
