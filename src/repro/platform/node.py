"""Node models for the EVEREST target system (paper Fig. 4).

Three experimental node classes are modeled:

* :class:`Power9Node` — an IBM POWER9 server with one or more
  bus-attached FPGAs reached over a coherent OpenCAPI link;
* :class:`CloudFPGANode` — a stand-alone, network-attached FPGA
  (cloudFPGA style) with no host CPU, reached over datacenter Ethernet;
* :class:`EdgeNode` — an ARM/RISC-V edge gateway with a small FPGA;
* :class:`GPUNode` — an industry-established CPU+GPU node used as a
  baseline.

A node exposes uniform queries (compute time for a kernel descriptor,
data access time, power draw) that the compiler cost model and the
runtime scheduler consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import PlatformError
from repro.platform.fpga import (
    FPGADevice,
    make_edge_fpga,
    make_ku060,
    make_vu9p,
)
from repro.platform.interconnect import (
    EthernetLink,
    Link,
    OpenCAPILink,
    PCIeLink,
)
from repro.platform.memory import MemoryModel, MemoryTechnology
from repro.platform.resources import CPUDescription, GPUDescription
from repro.utils.units import GB


@dataclass
class Node:
    """A platform node: compute devices, memories and attachment links."""

    name: str
    cpu: Optional[CPUDescription] = None
    gpu: Optional[GPUDescription] = None
    fpgas: List[FPGADevice] = field(default_factory=list)
    memories: Dict[str, MemoryModel] = field(default_factory=dict)
    fpga_links: Dict[str, Link] = field(default_factory=dict)
    network_link: Optional[Link] = None
    arch: str = "x86"
    #: >1.0 while the node is degraded (thermal throttling, noisy
    #: neighbour, failing DIMM); multiplies every execution time.
    slowdown: float = 1.0

    def apply_slowdown(self, factor: float) -> None:
        """Degrade the node: execution times are multiplied by ``factor``."""
        if factor < 1.0:
            raise PlatformError(
                f"node {self.name!r}: slowdown factor must be >= 1.0, "
                f"got {factor}"
            )
        self.slowdown = factor

    def clear_slowdown(self) -> None:
        """Restore nominal node performance."""
        self.slowdown = 1.0

    def add_memory(self, memory: MemoryModel) -> None:
        """Register a node-level memory."""
        if memory.name in self.memories:
            raise PlatformError(
                f"node {self.name!r}: duplicate memory {memory.name!r}"
            )
        self.memories[memory.name] = memory

    def attach_fpga(self, fpga: FPGADevice, link: Link) -> None:
        """Attach an FPGA device over a host link."""
        self.fpgas.append(fpga)
        self.fpga_links[fpga.name] = link

    @property
    def has_fpga(self) -> bool:
        """True if the node has at least one FPGA device."""
        return bool(self.fpgas)

    @property
    def has_coherent_fpga(self) -> bool:
        """True if any FPGA is attached over a coherent link."""
        return any(link.coherent for link in self.fpga_links.values())

    def host_memory(self) -> Optional[MemoryModel]:
        """The node's main (host) memory, if any."""
        for memory in self.memories.values():
            if memory.technology in (
                MemoryTechnology.HOST_DDR,
                MemoryTechnology.DDR4,
            ):
                return memory
        return None

    def idle_watts(self) -> float:
        """Idle power of the whole node."""
        watts = 0.0
        if self.cpu is not None:
            watts += self.cpu.idle_watts
        if self.gpu is not None:
            watts += self.gpu.idle_watts
        for fpga in self.fpgas:
            watts += fpga.shell.static_watts
        return watts

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = [f"{self.name} ({self.arch})"]
        if self.cpu:
            parts.append(f"cpu={self.cpu.name}x{self.cpu.cores}")
        if self.gpu:
            parts.append(f"gpu={self.gpu.name}")
        if self.fpgas:
            kinds = "coherent" if self.has_coherent_fpga else "network/pcie"
            parts.append(f"fpgas={len(self.fpgas)}({kinds})")
        return " ".join(parts)


class Power9Node(Node):
    """POWER9 host with coherent bus-attached FPGAs (scale-up node)."""


class CloudFPGANode(Node):
    """Disaggregated network-attached FPGA: no host CPU (scale-out node)."""

    def __post_check(self):
        if self.cpu is not None:
            raise PlatformError("a cloudFPGA node has no host CPU")


class EdgeNode(Node):
    """ARM/RISC-V edge gateway, optionally with a small FPGA."""


class GPUNode(Node):
    """Baseline CPU+GPU server (industry-established node)."""


def build_power9_node(
    name: str = "power9-0", num_fpgas: int = 1, role_slots: int = 2
) -> Power9Node:
    """A POWER9 node with ``num_fpgas`` coherent bus-attached VU9P cards."""
    node = Power9Node(
        name=name,
        cpu=CPUDescription(
            name="POWER9",
            cores=16,
            frequency_hz=3.1e9,
            flops_per_cycle=8.0,
            tdp_watts=190.0,
            idle_watts=60.0,
        ),
        arch="ppc64le",
    )
    node.add_memory(
        MemoryModel(
            name=f"{name}/host-ddr",
            technology=MemoryTechnology.HOST_DDR,
            capacity_bytes=512 * GB,
            channels=8,
        )
    )
    for index in range(num_fpgas):
        card_memory = MemoryModel(
            name=f"{name}/fpga{index}-ddr",
            technology=MemoryTechnology.DDR4,
            capacity_bytes=64 * GB,
            channels=2,
        )
        fpga = make_vu9p(
            f"{name}/fpga{index}",
            memories=[card_memory],
            role_slots=role_slots,
        )
        node.attach_fpga(fpga, OpenCAPILink(f"{name}/capi{index}"))
    return node


def build_cloudfpga_node(
    name: str = "cloudfpga-0", protocol: str = "udp"
) -> CloudFPGANode:
    """A stand-alone network-attached cloudFPGA module."""
    card_memory = MemoryModel(
        name=f"{name}/ddr",
        technology=MemoryTechnology.DDR4,
        capacity_bytes=8 * GB,
        channels=2,
    )
    node = CloudFPGANode(
        name=name,
        cpu=None,
        arch="fpga",
        network_link=EthernetLink(f"{name}/net", gbps=10.0, protocol=protocol),
    )
    node.fpgas.append(make_ku060(f"{name}/fpga", memories=[card_memory]))
    node.memories[card_memory.name] = card_memory
    return node


def build_edge_node(
    name: str = "edge-0", arch: str = "arm", with_fpga: bool = True
) -> EdgeNode:
    """An edge gateway: 4-core ARM or RISC-V SoC plus a small FPGA."""
    if arch not in ("arm", "riscv"):
        raise PlatformError(f"edge arch must be arm or riscv, got {arch!r}")
    frequency = 1.5e9 if arch == "arm" else 1.2e9
    node = EdgeNode(
        name=name,
        cpu=CPUDescription(
            name=arch.upper(),
            cores=4,
            frequency_hz=frequency,
            flops_per_cycle=2.0,
            tdp_watts=8.0,
            idle_watts=1.5,
        ),
        arch=arch,
    )
    node.add_memory(
        MemoryModel(
            name=f"{name}/lpddr",
            technology=MemoryTechnology.DDR4,
            capacity_bytes=4 * GB,
            channels=1,
            bandwidth_per_channel=12.8e9,
        )
    )
    if with_fpga:
        fpga = make_edge_fpga(f"{name}/fpga")
        node.attach_fpga(fpga, PCIeLink(f"{name}/axi", lanes=4))
    return node


def build_gpu_node(name: str = "gpu-0") -> GPUNode:
    """A baseline x86 + datacenter-GPU node."""
    node = GPUNode(
        name=name,
        cpu=CPUDescription(
            name="x86-server",
            cores=24,
            frequency_hz=2.8e9,
            flops_per_cycle=16.0,
            tdp_watts=205.0,
            idle_watts=55.0,
        ),
        gpu=GPUDescription(
            name="dc-gpu",
            peak_flops=14e12,
            memory_bandwidth=900e9,
            tdp_watts=300.0,
        ),
        arch="x86",
    )
    node.add_memory(
        MemoryModel(
            name=f"{name}/host-ddr",
            technology=MemoryTechnology.HOST_DDR,
            capacity_bytes=256 * GB,
            channels=6,
        )
    )
    return node
