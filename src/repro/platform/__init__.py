"""Simulated EVEREST target system (paper Section V, Figs. 3 and 4).

The real EVEREST platform combines IBM POWER9 servers with bus-attached
OpenCAPI FPGAs and network-attached cloudFPGA devices. That hardware is
not available here, so this package provides a cycle-approximate,
discrete-event model of it: devices with explicit resource capacities,
memories and interconnects with latency/bandwidth/energy parameters, and
an ecosystem topology spanning end-point, inner-edge and cloud tiers.
"""

from repro.platform.simulator import Simulator, SimResource, Timeout
from repro.platform.resources import (
    CPUDescription,
    FPGAResources,
    GPUDescription,
)
from repro.platform.memory import MemoryModel, MemoryTechnology
from repro.platform.interconnect import (
    EthernetLink,
    Link,
    OpenCAPILink,
    PCIeLink,
)
from repro.platform.fpga import Bitstream, FPGADevice, Role, Shell
from repro.platform.node import (
    CloudFPGANode,
    EdgeNode,
    GPUNode,
    Node,
    Power9Node,
    build_power9_node,
    build_cloudfpga_node,
    build_edge_node,
)
from repro.platform.topology import Ecosystem, Tier
from repro.platform.power import EnergyMeter

__all__ = [
    "Simulator",
    "SimResource",
    "Timeout",
    "CPUDescription",
    "GPUDescription",
    "FPGAResources",
    "MemoryModel",
    "MemoryTechnology",
    "Link",
    "OpenCAPILink",
    "PCIeLink",
    "EthernetLink",
    "FPGADevice",
    "Shell",
    "Role",
    "Bitstream",
    "Node",
    "Power9Node",
    "CloudFPGANode",
    "EdgeNode",
    "GPUNode",
    "build_power9_node",
    "build_cloudfpga_node",
    "build_edge_node",
    "Ecosystem",
    "Tier",
    "EnergyMeter",
]
