"""Interconnect models: OpenCAPI coherent links, PCIe, and TCP/UDP Ethernet.

Paper Fig. 4 shows the two attachment styles EVEREST studies:

* **bus-attached FPGAs** reached over a cache-coherent OpenCAPI link —
  low latency, no software network stack, shared address space;
* **network-attached FPGAs** (cloudFPGA) reached over datacenter
  Ethernet with TCP or UDP framing — higher latency and per-message
  overhead, but scale-out to arbitrarily many devices.

Each link computes transfer time and energy for a payload; the DES layer
adds queueing when links are contended.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_non_negative, check_positive


@dataclass
class Link:
    """A point-to-point interconnect with latency/bandwidth/energy.

    ``per_message_overhead`` models protocol processing (e.g. TCP stack
    traversal) paid once per transfer regardless of size.
    """

    name: str
    latency_s: float
    bandwidth: float  # bytes/second
    per_message_overhead: float = 0.0
    energy_pj_per_byte: float = 10.0
    coherent: bool = False
    bytes_transferred: int = field(default=0, init=False)
    messages: int = field(default=0, init=False)

    def __post_init__(self):
        check_non_negative("latency_s", self.latency_s)
        check_positive("bandwidth", self.bandwidth)
        check_non_negative("per_message_overhead", self.per_message_overhead)

    def transfer_time(self, num_bytes: int) -> float:
        """Seconds to move ``num_bytes`` across the link (one message)."""
        check_non_negative("num_bytes", num_bytes)
        return (
            self.latency_s
            + self.per_message_overhead
            + num_bytes / self.bandwidth
        )

    def transfer_energy(self, num_bytes: int) -> float:
        """Joules for the transfer."""
        check_non_negative("num_bytes", num_bytes)
        return num_bytes * self.energy_pj_per_byte * 1e-12

    def record_transfer(self, num_bytes: int) -> float:
        """Account a transfer in the link statistics and return its time."""
        self.bytes_transferred += num_bytes
        self.messages += 1
        return self.transfer_time(num_bytes)


def OpenCAPILink(name: str = "opencapi") -> Link:
    """Cache-coherent OpenCAPI 3.0 link (25 GB/s class, sub-µs latency).

    Coherence means the accelerator sees host memory directly: no
    explicit staging copies and negligible per-message software cost.
    """
    return Link(
        name=name,
        latency_s=0.75e-6,
        bandwidth=22e9,
        per_message_overhead=0.2e-6,
        energy_pj_per_byte=5.0,
        coherent=True,
    )


def PCIeLink(name: str = "pcie-gen4-x16", lanes: int = 16) -> Link:
    """A PCIe Gen4 link; non-coherent, DMA-style transfers."""
    check_positive("lanes", lanes)
    return Link(
        name=name,
        latency_s=1.0e-6,
        bandwidth=lanes * 1.9e9,
        per_message_overhead=2.0e-6,
        energy_pj_per_byte=8.0,
        coherent=False,
    )


def EthernetLink(
    name: str = "dc-ethernet",
    gbps: float = 100.0,
    protocol: str = "tcp",
) -> Link:
    """Datacenter Ethernet carrying TCP or UDP (cloudFPGA attachment).

    TCP pays a larger per-message overhead (stack, acks) than UDP; UDP
    is what the cloudFPGA shell terminates in hardware.
    """
    check_positive("gbps", gbps)
    if protocol not in ("tcp", "udp"):
        raise ValueError(f"protocol must be 'tcp' or 'udp', got {protocol!r}")
    overhead = 25e-6 if protocol == "tcp" else 3e-6
    return Link(
        name=f"{name}-{protocol}",
        latency_s=10e-6,
        bandwidth=gbps * 1e9 / 8 * 0.94,  # 94% goodput after framing
        per_message_overhead=overhead,
        energy_pj_per_byte=30.0,
        coherent=False,
    )


def EdgeUplink(name: str = "edge-uplink", mbps: float = 100.0) -> Link:
    """WAN uplink from an end-point/edge site to the cloud."""
    check_positive("mbps", mbps)
    return Link(
        name=name,
        latency_s=15e-3,
        bandwidth=mbps * 1e6 / 8,
        per_message_overhead=100e-6,
        energy_pj_per_byte=200.0,
        coherent=False,
    )


def SensorLink(name: str = "sensor-link", kbps: float = 250.0) -> Link:
    """Low-power link from an end-point sensor to its edge gateway."""
    check_positive("kbps", kbps)
    return Link(
        name=name,
        latency_s=5e-3,
        bandwidth=kbps * 1e3 / 8,
        per_message_overhead=1e-3,
        energy_pj_per_byte=5000.0,
        coherent=False,
    )
