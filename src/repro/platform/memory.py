"""Memory models for the simulated platform.

EVEREST nodes carry several physical memories (paper Fig. 4): host DDR on
the POWER9, DDR/HBM attached to the FPGA card, and on-fabric BRAM. Each is
described by capacity, per-channel bandwidth, access latency and energy
per byte so that the compiler's cost model and the runtime's placement
decisions can reason about data locality.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import CapacityError
from repro.utils.validation import check_non_negative, check_positive


class MemoryTechnology(enum.Enum):
    """Technology class, ordered roughly by distance from the datapath."""

    BRAM = "bram"
    HBM = "hbm"
    DDR4 = "ddr4"
    HOST_DDR = "host_ddr"
    REMOTE = "remote"


_DEFAULTS = {
    # technology: (latency_s, bandwidth_per_channel_B/s, energy_pJ/byte)
    MemoryTechnology.BRAM: (5e-9, 32e9, 0.5),
    MemoryTechnology.HBM: (120e-9, 32e9, 4.0),
    MemoryTechnology.DDR4: (90e-9, 19.2e9, 20.0),
    MemoryTechnology.HOST_DDR: (100e-9, 25.6e9, 25.0),
    MemoryTechnology.REMOTE: (5e-6, 10e9, 60.0),
}


@dataclass
class MemoryModel:
    """One physical memory: capacity, channels, timing and energy.

    Allocation is tracked in bytes so placement code can detect
    capacity exhaustion; bandwidth contention across channels is modeled
    by the effective-bandwidth helper, with queuing handled by the DES
    layer where it matters.
    """

    name: str
    technology: MemoryTechnology
    capacity_bytes: int
    channels: int = 1
    latency_s: float = field(default=0.0)
    bandwidth_per_channel: float = field(default=0.0)
    energy_pj_per_byte: float = field(default=0.0)
    allocated_bytes: int = field(default=0, init=False)

    def __post_init__(self):
        check_positive("capacity_bytes", self.capacity_bytes)
        check_positive("channels", self.channels)
        defaults = _DEFAULTS[self.technology]
        if not self.latency_s:
            self.latency_s = defaults[0]
        if not self.bandwidth_per_channel:
            self.bandwidth_per_channel = defaults[1]
        if not self.energy_pj_per_byte:
            self.energy_pj_per_byte = defaults[2]

    @property
    def peak_bandwidth(self) -> float:
        """Aggregate bandwidth across all channels (B/s)."""
        return self.channels * self.bandwidth_per_channel

    @property
    def free_bytes(self) -> int:
        """Capacity not yet allocated."""
        return self.capacity_bytes - self.allocated_bytes

    def allocate(self, num_bytes: int) -> None:
        """Reserve ``num_bytes``; raises :class:`CapacityError` if full."""
        check_non_negative("num_bytes", num_bytes)
        if num_bytes > self.free_bytes:
            raise CapacityError(
                f"memory {self.name!r}: requested {num_bytes} B but only "
                f"{self.free_bytes} B free of {self.capacity_bytes} B"
            )
        self.allocated_bytes += num_bytes

    def free(self, num_bytes: int) -> None:
        """Release a previous allocation."""
        check_non_negative("num_bytes", num_bytes)
        if num_bytes > self.allocated_bytes:
            raise CapacityError(
                f"memory {self.name!r}: freeing {num_bytes} B exceeds "
                f"allocated {self.allocated_bytes} B"
            )
        self.allocated_bytes -= num_bytes

    def access_time(
        self, num_bytes: int, parallel_streams: int = 1
    ) -> float:
        """Seconds to move ``num_bytes``, given concurrent streams.

        Streams beyond the channel count share bandwidth; each transfer
        pays the access latency once (streaming model, not per-word).
        """
        check_non_negative("num_bytes", num_bytes)
        check_positive("parallel_streams", parallel_streams)
        effective_channels = min(parallel_streams, self.channels)
        bandwidth = (
            self.bandwidth_per_channel
            * effective_channels
            / parallel_streams
        )
        return self.latency_s + num_bytes / bandwidth

    def access_energy(self, num_bytes: int) -> float:
        """Joules consumed moving ``num_bytes``."""
        check_non_negative("num_bytes", num_bytes)
        return num_bytes * self.energy_pj_per_byte * 1e-12
