"""Ecosystem topology: end-point devices, inner edge, core cloud (Fig. 3).

The :class:`Ecosystem` holds nodes assigned to tiers and the links
between them, backed by a networkx graph. It answers the questions the
runtime scheduler asks: what does it cost (time, energy) to move a data
object from where it is to where a task wants to run, and which nodes
sit in which tier.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.errors import PlatformError
from repro.platform.interconnect import (
    EdgeUplink,
    EthernetLink,
    Link,
    SensorLink,
)
from repro.platform.node import (
    Node,
    build_cloudfpga_node,
    build_edge_node,
    build_gpu_node,
    build_power9_node,
)


class Tier(enum.Enum):
    """Processing tiers of the EVEREST ecosystem, outermost first."""

    ENDPOINT = "endpoint"
    INNER_EDGE = "inner_edge"
    CLOUD = "cloud"


class Ecosystem:
    """A multi-tier deployment of nodes connected by typed links."""

    def __init__(self, name: str = "everest"):
        self.name = name
        self.graph = nx.Graph()
        self.nodes: Dict[str, Node] = {}
        self.tiers: Dict[str, Tier] = {}
        # Chaos overlay: transient link state keyed by the unordered
        # node pair. Degradations scale bandwidth and add latency;
        # partitioned links are excluded from routing entirely.
        self._degradations: Dict[Tuple[str, str], Tuple[float, float]] = {}
        self._partitioned: set = set()

    def add_node(self, node: Node, tier: Tier) -> Node:
        """Register a node in a tier."""
        if node.name in self.nodes:
            raise PlatformError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        self.tiers[node.name] = tier
        self.graph.add_node(node.name, tier=tier)
        return node

    def connect(self, a: str, b: str, link: Link) -> None:
        """Connect two registered nodes with a link."""
        for name in (a, b):
            if name not in self.nodes:
                raise PlatformError(f"unknown node {name!r}")
        self.graph.add_edge(a, b, link=link)

    def nodes_in_tier(self, tier: Tier) -> List[Node]:
        """All nodes assigned to ``tier``."""
        return [
            self.nodes[name]
            for name, node_tier in self.tiers.items()
            if node_tier is tier
        ]

    def link_between(self, a: str, b: str) -> Link:
        """The direct link between two nodes."""
        if not self.graph.has_edge(a, b):
            raise PlatformError(f"no direct link between {a!r} and {b!r}")
        return self.graph.edges[a, b]["link"]

    # -- chaos overlay: degradation and partition ----------------------

    @staticmethod
    def _pair(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def degrade_link(self, a: str, b: str, bandwidth_factor: float = 1.0,
                     latency_add_s: float = 0.0) -> None:
        """Degrade a link: scale its bandwidth, add latency per hop.

        ``bandwidth_factor`` must be in (0, 1]; use
        :meth:`partition_link` to sever a link completely.
        """
        self.link_between(a, b)  # validates the edge exists
        if not 0.0 < bandwidth_factor <= 1.0:
            raise PlatformError(
                f"bandwidth_factor must be in (0, 1], got {bandwidth_factor}"
            )
        if latency_add_s < 0.0:
            raise PlatformError(
                f"latency_add_s must be >= 0, got {latency_add_s}"
            )
        self._degradations[self._pair(a, b)] = (
            bandwidth_factor, latency_add_s
        )

    def partition_link(self, a: str, b: str) -> None:
        """Sever a link: routing treats it as absent until healed."""
        self.link_between(a, b)
        self._partitioned.add(self._pair(a, b))

    def restore_link(self, a: str, b: str) -> None:
        """Clear any degradation and partition on the link."""
        self._degradations.pop(self._pair(a, b), None)
        self._partitioned.discard(self._pair(a, b))

    def link_state(self, a: str, b: str) -> Tuple[float, float]:
        """(bandwidth_factor, latency_add_s) currently on the link."""
        return self._degradations.get(self._pair(a, b), (1.0, 0.0))

    def is_partitioned(self, a: str, b: str) -> bool:
        """True while the direct link is severed."""
        return self._pair(a, b) in self._partitioned

    def _routing_graph(self) -> nx.Graph:
        if not self._partitioned:
            return self.graph
        return nx.restricted_view(
            self.graph, [], [tuple(pair) for pair in self._partitioned]
        )

    def _hop_time(self, a: str, b: str, num_bytes: int) -> float:
        link = self.link_between(a, b)
        factor, extra_latency = self.link_state(a, b)
        if factor == 1.0 and extra_latency == 0.0:
            return link.transfer_time(num_bytes)
        return (
            link.latency_s
            + extra_latency
            + link.per_message_overhead
            + num_bytes / (link.bandwidth * factor)
        )

    # ------------------------------------------------------------------

    def path(self, source: str, target: str) -> List[str]:
        """Shortest (fewest-hops) node path avoiding partitioned links."""
        try:
            return nx.shortest_path(
                self._routing_graph(), source, target
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise PlatformError(
                f"no path between {source!r} and {target!r}"
            ) from exc

    def transfer_time(self, source: str, target: str, num_bytes: int
                      ) -> float:
        """End-to-end time to move ``num_bytes`` along the hop path."""
        if source == target:
            return 0.0
        total = 0.0
        hops = self.path(source, target)
        for a, b in zip(hops, hops[1:]):
            total += self._hop_time(a, b, num_bytes)
        return total

    def transfer_energy(self, source: str, target: str, num_bytes: int
                        ) -> float:
        """Energy to move ``num_bytes`` along the hop path."""
        if source == target:
            return 0.0
        total = 0.0
        hops = self.path(source, target)
        for a, b in zip(hops, hops[1:]):
            total += self.link_between(a, b).transfer_energy(num_bytes)
        return total

    def record_transfer(self, source: str, target: str, num_bytes: int
                        ) -> float:
        """Account the transfer on every hop link; returns total time."""
        if source == target:
            return 0.0
        total = 0.0
        hops = self.path(source, target)
        for a, b in zip(hops, hops[1:]):
            link = self.link_between(a, b)
            link.bytes_transferred += num_bytes
            link.messages += 1
            total += self._hop_time(a, b, num_bytes)
        return total

    def bottleneck_bandwidth(self, source: str, target: str) -> float:
        """Minimum link bandwidth along the path (B/s)."""
        if source == target:
            return float("inf")
        hops = self.path(source, target)
        return min(
            self.link_between(a, b).bandwidth * self.link_state(a, b)[0]
            for a, b in zip(hops, hops[1:])
        )

    def all_links(self) -> Iterable[Tuple[str, str, Link]]:
        """Iterate over (a, b, link) triples."""
        for a, b, data in self.graph.edges(data=True):
            yield a, b, data["link"]


def build_reference_ecosystem(
    num_endpoints: int = 8,
    num_edge_nodes: int = 2,
    num_power9: int = 1,
    num_cloudfpga: int = 4,
    num_gpu_nodes: int = 1,
    uplink_mbps: float = 100.0,
) -> Ecosystem:
    """The EVEREST demonstrator topology of Figs. 3 and 4.

    End-point sensors feed edge gateways over low-power links; gateways
    reach the cloud over a WAN uplink; inside the datacenter, POWER9
    nodes, GPU baseline nodes and cloudFPGA modules share the Ethernet
    fabric through a leaf switch (modeled as a star around ``dc-switch``).
    """
    eco = Ecosystem("everest-demonstrator")

    switch = Node(name="dc-switch", arch="switch")
    eco.add_node(switch, Tier.CLOUD)

    for index in range(num_power9):
        node = eco.add_node(
            build_power9_node(f"power9-{index}"), Tier.CLOUD
        )
        eco.connect(
            node.name, "dc-switch", EthernetLink(f"{node.name}/net", 100.0)
        )

    for index in range(num_gpu_nodes):
        node = eco.add_node(build_gpu_node(f"gpu-{index}"), Tier.CLOUD)
        eco.connect(
            node.name, "dc-switch", EthernetLink(f"{node.name}/net", 100.0)
        )

    for index in range(num_cloudfpga):
        node = eco.add_node(
            build_cloudfpga_node(f"cloudfpga-{index}"), Tier.CLOUD
        )
        eco.connect(
            node.name,
            "dc-switch",
            EthernetLink(f"{node.name}/net", 10.0, protocol="udp"),
        )

    edge_names: List[str] = []
    for index in range(num_edge_nodes):
        arch = "arm" if index % 2 == 0 else "riscv"
        node = eco.add_node(
            build_edge_node(f"edge-{index}", arch=arch), Tier.INNER_EDGE
        )
        eco.connect(
            node.name, "dc-switch", EdgeUplink(f"{node.name}/wan",
                                               mbps=uplink_mbps)
        )
        edge_names.append(node.name)

    for index in range(num_endpoints):
        endpoint = Node(name=f"endpoint-{index}", arch="mcu")
        eco.add_node(endpoint, Tier.ENDPOINT)
        gateway = edge_names[index % len(edge_names)] if edge_names \
            else "dc-switch"
        eco.connect(
            endpoint.name,
            gateway,
            SensorLink(f"{endpoint.name}/radio", kbps=250.0),
        )

    return eco
