"""Energy accounting for simulated executions.

The paper's Section VI-D claims hinge on *energy efficiency* as much as
raw speed; the :class:`EnergyMeter` accumulates joules per device so
benchmarks can report both.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

from repro.utils.validation import check_non_negative


class EnergyMeter:
    """Accumulates energy per named device and per category.

    Categories distinguish compute, data movement and static (idle)
    energy so ablation benches can attribute savings.
    """

    def __init__(self):
        self._by_device: Dict[str, float] = defaultdict(float)
        self._by_category: Dict[str, float] = defaultdict(float)

    def add(self, device: str, joules: float, category: str = "compute"
            ) -> None:
        """Record ``joules`` consumed by ``device``."""
        check_non_negative("joules", joules)
        self._by_device[device] += joules
        self._by_category[category] += joules

    def add_power(
        self,
        device: str,
        watts: float,
        seconds: float,
        category: str = "compute",
    ) -> None:
        """Record a power draw integrated over a duration."""
        check_non_negative("watts", watts)
        check_non_negative("seconds", seconds)
        self.add(device, watts * seconds, category)

    def device_total(self, device: str) -> float:
        """Joules attributed to one device."""
        return self._by_device.get(device, 0.0)

    def category_total(self, category: str) -> float:
        """Joules attributed to one category."""
        return self._by_category.get(category, 0.0)

    @property
    def total_joules(self) -> float:
        """Total energy across all devices."""
        return sum(self._by_device.values())

    def breakdown(self) -> Dict[str, float]:
        """Copy of the per-category totals."""
        return dict(self._by_category)

    def merge(self, other: "EnergyMeter") -> None:
        """Fold another meter's totals into this one."""
        for device, joules in other._by_device.items():
            self._by_device[device] += joules
        for category, joules in other._by_category.items():
            self._by_category[category] += joules
