"""Descriptions of compute resources: FPGA fabric, CPUs, GPUs.

These are *capacity* descriptions. Occupancy bookkeeping lives in
:mod:`repro.platform.fpga` (for reconfigurable fabric) and in the runtime
scheduler (for cores).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class FPGAResources:
    """A bundle of FPGA fabric resources (LUTs, FFs, BRAM, DSP slices).

    Immutable; arithmetic returns new bundles. Used both as device
    capacity and as the footprint of a synthesized accelerator.
    """

    luts: int = 0
    ffs: int = 0
    bram_kb: int = 0
    dsps: int = 0

    def __post_init__(self):
        for field in ("luts", "ffs", "bram_kb", "dsps"):
            check_non_negative(field, getattr(self, field))

    def __add__(self, other: "FPGAResources") -> "FPGAResources":
        return FPGAResources(
            luts=self.luts + other.luts,
            ffs=self.ffs + other.ffs,
            bram_kb=self.bram_kb + other.bram_kb,
            dsps=self.dsps + other.dsps,
        )

    def __sub__(self, other: "FPGAResources") -> "FPGAResources":
        result = FPGAResources(
            luts=self.luts - other.luts,
            ffs=self.ffs - other.ffs,
            bram_kb=self.bram_kb - other.bram_kb,
            dsps=self.dsps - other.dsps,
        )
        return result

    def scaled(self, factor: int) -> "FPGAResources":
        """Footprint of ``factor`` replicated instances."""
        check_non_negative("factor", factor)
        return FPGAResources(
            luts=self.luts * factor,
            ffs=self.ffs * factor,
            bram_kb=self.bram_kb * factor,
            dsps=self.dsps * factor,
        )

    def fits_in(self, capacity: "FPGAResources") -> bool:
        """True if this footprint fits within ``capacity``."""
        return (
            self.luts <= capacity.luts
            and self.ffs <= capacity.ffs
            and self.bram_kb <= capacity.bram_kb
            and self.dsps <= capacity.dsps
        )

    def utilization_of(self, capacity: "FPGAResources") -> float:
        """Max fractional utilization across resource classes in [0, inf)."""
        fractions = []
        for mine, theirs in (
            (self.luts, capacity.luts),
            (self.ffs, capacity.ffs),
            (self.bram_kb, capacity.bram_kb),
            (self.dsps, capacity.dsps),
        ):
            if mine and not theirs:
                raise CapacityError(
                    f"footprint {self} needs a resource the device "
                    f"{capacity} lacks entirely"
                )
            if theirs:
                fractions.append(mine / theirs)
        return max(fractions) if fractions else 0.0

    def is_empty(self) -> bool:
        """True if every resource count is zero."""
        return not (self.luts or self.ffs or self.bram_kb or self.dsps)


@dataclass(frozen=True)
class CPUDescription:
    """A CPU socket: core count, clock, issue width, power envelope."""

    name: str
    cores: int
    frequency_hz: float
    flops_per_cycle: float = 4.0
    tdp_watts: float = 100.0
    idle_watts: float = 20.0

    def __post_init__(self):
        check_positive("cores", self.cores)
        check_positive("frequency_hz", self.frequency_hz)
        check_positive("flops_per_cycle", self.flops_per_cycle)
        check_positive("tdp_watts", self.tdp_watts)
        check_non_negative("idle_watts", self.idle_watts)

    @property
    def peak_flops(self) -> float:
        """Aggregate peak floating-point throughput (FLOP/s)."""
        return self.cores * self.frequency_hz * self.flops_per_cycle

    def time_for_flops(self, flops: float, efficiency: float = 0.25) -> float:
        """Seconds to execute ``flops`` at a sustained efficiency."""
        check_non_negative("flops", flops)
        check_positive("efficiency", efficiency)
        return flops / (self.peak_flops * efficiency)


@dataclass(frozen=True)
class GPUDescription:
    """A GPU co-processor, modeled only at the throughput level."""

    name: str
    peak_flops: float
    memory_bandwidth: float
    tdp_watts: float = 250.0
    idle_watts: float = 30.0
    kernel_launch_latency: float = 10e-6

    def __post_init__(self):
        check_positive("peak_flops", self.peak_flops)
        check_positive("memory_bandwidth", self.memory_bandwidth)

    def time_for_flops(self, flops: float, efficiency: float = 0.5) -> float:
        """Seconds of GPU compute for ``flops`` plus launch latency."""
        check_non_negative("flops", flops)
        return self.kernel_launch_latency + flops / (
            self.peak_flops * efficiency
        )
