"""Exception hierarchy for the EVEREST SDK reproduction.

Every subsystem raises a subclass of :class:`EverestError` so that callers
can catch SDK-level failures without masking programming errors.
"""

from __future__ import annotations


class EverestError(Exception):
    """Base class for all errors raised by the SDK."""


class SpecificationError(EverestError):
    """An application specification (DSL, workflow, annotation) is invalid."""


class ParseError(SpecificationError):
    """A DSL source string could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class TypeCheckError(SpecificationError):
    """A DSL program failed type checking."""


class IRError(EverestError):
    """The intermediate representation is malformed."""


class VerificationError(IRError):
    """An IR module failed structural verification."""


class PassError(EverestError):
    """A compiler pass could not be applied."""


class AnalysisError(EverestError):
    """Static analysis reported blocking diagnostics.

    When raised by the analysis driver the ``diagnostics`` attribute
    holds the full :class:`~repro.core.analysis.diagnostics.Diagnostics`
    collection that triggered it.
    """


class HLSError(EverestError):
    """High-level synthesis failed."""


class SchedulingError(HLSError):
    """The HLS scheduler could not produce a legal schedule."""


class AllocationError(HLSError):
    """Resource allocation/binding failed (e.g. device too small)."""


class DSEError(EverestError):
    """Design-space exploration failed.

    When raised for an empty feasible set (DSE001) the ``diagnostics``
    attribute holds the
    :class:`~repro.core.analysis.diagnostics.Diagnostics` collection
    describing the finding.
    """


class BackendError(EverestError):
    """Code generation or packaging failed."""


class PlatformError(EverestError):
    """The simulated platform was misconfigured or misused."""


class CapacityError(PlatformError):
    """A resource request exceeded the capacity of a device."""


class ReconfigurationError(PlatformError):
    """A (partial) FPGA reconfiguration failed and must be retried."""


class ChaosError(EverestError):
    """A fault-injection schedule is invalid or exhausted all retries."""


class RuntimeSystemError(EverestError):
    """The EVEREST runtime (autotuner, virtualization, executor) failed."""


class VirtualizationError(RuntimeSystemError):
    """Hypervisor or VM management failure."""


class SecurityError(RuntimeSystemError):
    """A data-protection policy was violated or an attack was detected."""


class WorkflowError(EverestError):
    """The distributed workflow engine rejected a graph or execution."""


class JournalError(WorkflowError):
    """A workflow run journal or snapshot is unusable.

    Raised for mid-file corruption (WF007), format version skew
    (WF008) and resume/recipe mismatches (WF009). When raised with a
    stable code the ``code`` attribute carries it and ``diagnostics``
    holds the matching collection.
    """

    code: str = ""


class JobStoreError(WorkflowError):
    """The multi-tenant job store rejected a request.

    Raised for illegal state-machine transitions (JOB002), unknown
    jobs (JOB001), stale lease completions (JOB003) and schema
    version skew (JOB004). The ``code`` attribute carries the stable
    code.
    """

    code: str = ""
