"""End-to-end orchestration: compiled application → distributed run.

The integration seam the paper's Section II promises ("an integrated
execution environment for the applications"): one object that takes a
:class:`~repro.core.compiler.CompiledApplication` and

1. builds the executable task graph from the pipeline IR,
2. places tasks across the ecosystem tiers (move compute to data),
3. selects a variant per kernel *per assigned node class* with the
   autotuner (an edge node and a POWER9 node prefer different
   variants),
4. executes on the distributed workflow engine — optionally with
   crash recovery — and accounts energy.

This is what `examples/` compose by hand; the orchestrator packages it
for downstream users.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.compiler import CompiledApplication
from repro.errors import RuntimeSystemError
from repro.obs import current_metrics, current_tracer
from repro.platform.power import EnergyMeter
from repro.platform.topology import Ecosystem, Tier
from repro.runtime.autotuner.goals import Goal
from repro.runtime.autotuner.knowledge import KnowledgeBase
from repro.runtime.autotuner.manager import (
    ApplicationManager,
    SystemState,
)
from repro.runtime.scheduler import TierPlacer
from repro.workflow.graph import TaskGraph
from repro.workflow.journal import RunJournal
from repro.workflow.plan import build_task_graph
from repro.workflow.recovery import (
    FailureInjection,
    RecoveryStats,
    ResilientServer,
)
from repro.workflow.replay import ReplayState
from repro.workflow.scheduler import LocalityScheduler
from repro.workflow.tracing import ExecutionTrace
from repro.workflow.worker import Worker

#: Tracer category for orchestration phase spans and decisions.
RUNTIME_CATEGORY = "runtime.orchestrate"

#: Worker slots granted per node class.
_SLOTS = {"ppc64le": 8, "x86": 8, "arm": 2, "riscv": 2, "fpga": 1}
_SPEED = {"ppc64le": 1.0, "x86": 1.0, "arm": 0.3, "riscv": 0.25,
          "fpga": 0.8}


@dataclass
class DeploymentReport:
    """Everything one distributed run produced."""

    trace: ExecutionTrace
    placement: Dict[str, str]
    selections: Dict[str, str]
    energy: EnergyMeter
    recovery: Optional[RecoveryStats] = None

    @property
    def makespan(self) -> float:
        """Wall time of the run."""
        return self.trace.makespan


class Orchestrator:
    """Deploys compiled applications onto an ecosystem."""

    def __init__(
        self,
        ecosystem: Ecosystem,
        goal: Goal = Goal(),
    ):
        self.ecosystem = ecosystem
        self.goal = goal

    # ------------------------------------------------------------------

    def _workers_for(self, node_names: List[str]) -> List[Worker]:
        # placed nodes plus the cloud tier as standby capacity (fault
        # tolerance needs somewhere to re-run work)
        standby = [
            node.name
            for node in self.ecosystem.nodes_in_tier(Tier.CLOUD)
            if node.cpu is not None
        ]
        workers = []
        for name in sorted(set(node_names) | set(standby)):
            node = self.ecosystem.nodes[name]
            arch = node.arch
            if arch == "switch" or (node.cpu is None
                                    and not node.has_fpga):
                continue
            workers.append(Worker(
                name=f"{name}/worker",
                node_name=name,
                cpus=_SLOTS.get(arch, 4),
                speed_factor=_SPEED.get(arch, 0.5),
                node=node,
            ))
        if not workers:
            raise RuntimeSystemError("placement used no usable nodes")
        return workers

    def _select_variants(
        self, app: CompiledApplication,
        placement: Dict[str, str], graph: TaskGraph,
    ) -> Dict[str, str]:
        """Pick a variant per task given its assigned node."""
        tracer = current_tracer()
        knowledge = KnowledgeBase()
        knowledge.load_package(app.package)
        manager = ApplicationManager(knowledge, goal=self.goal)
        selections: Dict[str, str] = {}
        for task_name, node_name in placement.items():
            node = self.ecosystem.nodes[node_name]
            kernel = graph.tasks[task_name].kernel
            state = SystemState(fpga_available=node.has_fpga)
            point = manager.select(kernel, state)
            selections[task_name] = point.variant.knobs.describe()
            tracer.instant(
                "variant-selected", category=RUNTIME_CATEGORY,
                task=task_name, node=node_name, kernel=kernel,
                variant=point.variant.knobs.describe(),
                expected_latency_s=point.expected_latency_s,
            )
            # the selected variant's expected latency refines the
            # task duration used by the engine
            graph.tasks[task_name].duration_s = (
                point.expected_latency_s
            )
        return selections

    # ------------------------------------------------------------------

    def deploy(
        self,
        app: CompiledApplication,
        data_locality: Optional[Dict[str, str]] = None,
        failures: Optional[List[FailureInjection]] = None,
        rounds: int = 1,
        journal: Optional[RunJournal] = None,
        resume: Optional[ReplayState] = None,
    ) -> DeploymentReport:
        """Place, select and execute; returns the deployment report.

        ``journal``/``resume`` make the workflow execution durable and
        resumable (see :mod:`repro.workflow.journal`); they apply to
        the first round only — later rounds are warm re-runs.
        """
        if rounds < 1:
            raise RuntimeSystemError("rounds must be >= 1")
        tracer = current_tracer()
        metrics = current_metrics()
        with tracer.span(f"deploy:{app.name}",
                         category=RUNTIME_CATEGORY) as deploy_span:
            with tracer.span("placement",
                             category=RUNTIME_CATEGORY) as span:
                graph = build_task_graph(app, locality=data_locality)
                placer = TierPlacer(self.ecosystem)
                placement = placer.place(graph)
                span.note(tasks=len(placement.assignments))

            with tracer.span("variant-selection",
                             category=RUNTIME_CATEGORY):
                selections = self._select_variants(
                    app, placement.assignments, graph
                )
            workers = self._workers_for(
                list(placement.assignments.values())
            )
            # pin external inputs to their locality
            for obj in graph.external_inputs():
                if data_locality and obj.name in data_locality:
                    obj.locality = data_locality[obj.name]

            server = ResilientServer(
                workers,
                ecosystem=self.ecosystem,
                policy=LocalityScheduler(),
            )
            energy = EnergyMeter()
            trace = None
            stats = None
            for _round in range(rounds):
                trace, stats = server.run(
                    graph,
                    failures=failures if _round == 0 else None,
                    journal=journal if _round == 0 else None,
                    resume=resume if _round == 0 else None,
                )
                for record in trace.records:
                    worker = next(
                        w for w in workers if w.name == record.worker
                    )
                    node = worker.node
                    watts = 20.0
                    if node is not None and node.cpu is not None:
                        watts = node.cpu.tdp_watts * 0.5
                    energy.add_power(
                        record.worker, watts, record.duration,
                        "compute",
                    )
            deploy_span.note(
                rounds=rounds, makespan=trace.makespan,
                workers=len(workers),
            )
        metrics.counter(
            "runtime.deployments", "applications deployed",
        ).inc(application=app.name)
        metrics.gauge(
            "runtime.last_makespan_seconds",
            "makespan of the most recent deployment",
        ).set(trace.makespan, application=app.name)
        return DeploymentReport(
            trace=trace,
            placement=dict(placement.assignments),
            selections=selections,
            energy=energy,
            recovery=stats,
        )
