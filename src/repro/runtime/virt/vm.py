"""Virtual machine model."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.errors import VirtualizationError
from repro.utils.validation import check_positive


class VMState(enum.Enum):
    """Lifecycle states of a guest."""

    DEFINED = "defined"
    RUNNING = "running"
    PAUSED = "paused"
    STOPPED = "stopped"


@dataclass
class VM:
    """A guest virtual machine."""

    name: str
    vcpus: int
    memory_bytes: int
    arch: str = "x86"
    guest_os: str = "linux"
    state: VMState = VMState.DEFINED
    devices: List[str] = field(default_factory=list)

    def __post_init__(self):
        check_positive("vcpus", self.vcpus)
        check_positive("memory_bytes", self.memory_bytes)

    def start(self) -> None:
        """DEFINED/STOPPED → RUNNING."""
        if self.state is VMState.RUNNING:
            raise VirtualizationError(f"VM {self.name!r} already running")
        self.state = VMState.RUNNING

    def pause(self) -> None:
        """RUNNING → PAUSED."""
        if self.state is not VMState.RUNNING:
            raise VirtualizationError(
                f"VM {self.name!r} is {self.state.value}, cannot pause"
            )
        self.state = VMState.PAUSED

    def resume(self) -> None:
        """PAUSED → RUNNING."""
        if self.state is not VMState.PAUSED:
            raise VirtualizationError(
                f"VM {self.name!r} is {self.state.value}, cannot resume"
            )
        self.state = VMState.RUNNING

    def stop(self) -> None:
        """Any → STOPPED."""
        self.state = VMState.STOPPED

    def attach_device(self, device: str) -> None:
        """Record a passthrough device assignment."""
        if device in self.devices:
            raise VirtualizationError(
                f"device {device!r} already attached to {self.name!r}"
            )
        self.devices.append(device)

    def detach_device(self, device: str) -> None:
        """Remove a passthrough device assignment."""
        if device not in self.devices:
            raise VirtualizationError(
                f"device {device!r} not attached to {self.name!r}"
            )
        self.devices.remove(device)
