"""API remoting: the guest-to-accelerator invocation path.

"API remoting techniques will improve data exchanges" (paper §IV).
Three paths with different costs:

* ``PASSTHROUGH`` — the device is mapped into the guest (SR-IOV /
  coherent attach): per-call overhead is a doorbell write;
* ``VIRTIO`` — paravirtualized split driver: one vmexit plus a bounce
  copy of the payload through shared rings;
* ``REMOTE`` — the accelerator lives on another node (cloudFPGA):
  the payload crosses the network link.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import VirtualizationError
from repro.platform.interconnect import Link
from repro.utils.validation import check_non_negative

_VMEXIT_S = 4e-6
_DOORBELL_S = 0.3e-6
_BOUNCE_BANDWIDTH = 12e9  # bytes/second for guest<->host copies


class RemotingMode(enum.Enum):
    """How the guest reaches the accelerator."""

    PASSTHROUGH = "passthrough"
    VIRTIO = "virtio"
    REMOTE = "remote"


@dataclass
class APIRemoting:
    """Cost model + accounting for one remoting channel."""

    mode: RemotingMode
    link: Optional[Link] = None  # required for REMOTE
    calls: int = field(default=0, init=False)
    bytes_forwarded: int = field(default=0, init=False)
    overhead_seconds: float = field(default=0.0, init=False)

    def __post_init__(self):
        if self.mode is RemotingMode.REMOTE and self.link is None:
            raise VirtualizationError(
                "REMOTE remoting requires a network link"
            )

    def invocation_overhead(self, payload_bytes: int) -> float:
        """Seconds of overhead for one accelerator call."""
        check_non_negative("payload_bytes", payload_bytes)
        if self.mode is RemotingMode.PASSTHROUGH:
            return _DOORBELL_S
        if self.mode is RemotingMode.VIRTIO:
            return 2 * _VMEXIT_S + payload_bytes / _BOUNCE_BANDWIDTH
        # REMOTE: request + response over the link
        return 2 * self.link.transfer_time(payload_bytes // 2)

    def call(self, payload_bytes: int) -> float:
        """Account one call; returns its overhead in seconds."""
        overhead = self.invocation_overhead(payload_bytes)
        self.calls += 1
        self.bytes_forwarded += payload_bytes
        self.overhead_seconds += overhead
        return overhead

    def mean_overhead(self) -> float:
        """Average per-call overhead so far."""
        if self.calls == 0:
            return 0.0
        return self.overhead_seconds / self.calls
