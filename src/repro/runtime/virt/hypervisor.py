"""Hypervisor: VM lifecycle and resource admission on one node.

Models the host-side extensions of Fig. 2: guests get vCPUs and memory
from the node envelope (with a configurable overcommit ratio for
vCPUs, none for memory), and live migration between hypervisors pays a
downtime proportional to guest memory over the connecting link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import VirtualizationError
from repro.platform.interconnect import Link
from repro.platform.node import Node
from repro.runtime.virt.vm import VM, VMState
from repro.utils.validation import check_positive

#: Fixed hypervisor reserve of host memory.
_HOST_RESERVE_FRACTION = 0.05


class Hypervisor:
    """One hypervisor instance managing a node's guests."""

    def __init__(self, node: Node, vcpu_overcommit: float = 2.0):
        if node.cpu is None:
            raise VirtualizationError(
                f"node {node.name!r} has no CPU to virtualize"
            )
        check_positive("vcpu_overcommit", vcpu_overcommit)
        self.node = node
        self.vcpu_overcommit = vcpu_overcommit
        self.vms: Dict[str, VM] = {}

    # ------------------------------------------------------------------

    @property
    def vcpu_capacity(self) -> int:
        """Total vCPUs the admission control allows."""
        return int(self.node.cpu.cores * self.vcpu_overcommit)

    @property
    def vcpus_committed(self) -> int:
        """vCPUs assigned to non-stopped guests."""
        return sum(
            vm.vcpus for vm in self.vms.values()
            if vm.state is not VMState.STOPPED
        )

    @property
    def memory_capacity(self) -> int:
        """Guest-assignable host memory in bytes."""
        host = self.node.host_memory()
        if host is None:
            raise VirtualizationError(
                f"node {self.node.name!r} has no host memory"
            )
        return int(host.capacity_bytes * (1 - _HOST_RESERVE_FRACTION))

    @property
    def memory_committed(self) -> int:
        """Bytes promised to non-stopped guests."""
        return sum(
            vm.memory_bytes for vm in self.vms.values()
            if vm.state is not VMState.STOPPED
        )

    # ------------------------------------------------------------------

    def create_vm(self, name: str, vcpus: int, memory_bytes: int,
                  arch: Optional[str] = None) -> VM:
        """Define and admit a guest; raises when over capacity."""
        if name in self.vms:
            raise VirtualizationError(f"duplicate VM name {name!r}")
        if self.vcpus_committed + vcpus > self.vcpu_capacity:
            raise VirtualizationError(
                f"node {self.node.name!r}: vCPU admission failed "
                f"({self.vcpus_committed}+{vcpus} > "
                f"{self.vcpu_capacity})"
            )
        if self.memory_committed + memory_bytes > self.memory_capacity:
            raise VirtualizationError(
                f"node {self.node.name!r}: memory admission failed"
            )
        vm = VM(
            name=name,
            vcpus=vcpus,
            memory_bytes=memory_bytes,
            arch=arch or self.node.arch,
        )
        self.vms[name] = vm
        return vm

    def destroy_vm(self, name: str) -> None:
        """Remove a guest entirely."""
        if name not in self.vms:
            raise VirtualizationError(f"no VM named {name!r}")
        del self.vms[name]

    def boot_time_s(self, vm: VM) -> float:
        """Guest boot latency model."""
        base = 1.5  # kernel + init
        return base + vm.memory_bytes / 64e9

    # ------------------------------------------------------------------

    def migrate(self, name: str, target: "Hypervisor",
                link: Link) -> float:
        """Live-migrate a guest; returns the downtime in seconds.

        Pre-copy model: one full memory pass over the link plus a stop
        and-copy of 5% dirty pages; the VM keeps its name and devices
        must be detached first (passthrough blocks migration).
        """
        if name not in self.vms:
            raise VirtualizationError(f"no VM named {name!r}")
        vm = self.vms[name]
        if vm.devices:
            raise VirtualizationError(
                f"VM {name!r} has passthrough devices "
                f"{vm.devices}; detach before migration"
            )
        if target.vcpus_committed + vm.vcpus > target.vcpu_capacity:
            raise VirtualizationError(
                f"target {target.node.name!r} cannot admit {name!r}"
            )
        precopy = link.transfer_time(vm.memory_bytes)
        downtime = link.transfer_time(int(vm.memory_bytes * 0.05))
        del self.vms[name]
        target.vms[name] = vm
        return precopy + downtime
