"""vFPGA management: multiplexing FPGA role slots among VMs.

Models vFPGAmanager [33]: each role slot of a node's FPGAs can be
leased to exactly one VM; the shell (privileged region) stays under
host control, so guests can only reach their own role — attempts to
touch another VM's role raise :class:`SecurityError`. Reconfigurations
are accounted with the platform model's timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SecurityError, VirtualizationError
from repro.obs import current_metrics
from repro.platform.fpga import Bitstream, FPGADevice, Role
from repro.platform.node import Node
from repro.runtime.virt.vm import VM


@dataclass
class RoleLease:
    """One role slot leased to one VM."""

    role: Role
    device: FPGADevice
    vm_name: str
    bitstream_name: str


class VFPGAManager:
    """Host-side broker of a node's FPGA role slots."""

    def __init__(self, node: Node):
        if not node.fpgas:
            raise VirtualizationError(
                f"node {node.name!r} has no FPGA devices"
            )
        self.node = node
        self.leases: Dict[str, RoleLease] = {}  # role name -> lease
        self.total_reconfig_seconds = 0.0

    # ------------------------------------------------------------------

    def free_slots(self) -> List[Tuple[FPGADevice, Role]]:
        """Unleased role slots across the node's devices."""
        result = []
        for device in self.node.fpgas:
            for role in device.roles:
                if role.name not in self.leases:
                    result.append((device, role))
        return result

    def lease_for(self, vm: VM) -> List[RoleLease]:
        """All leases held by a VM."""
        return [
            lease for lease in self.leases.values()
            if lease.vm_name == vm.name
        ]

    # ------------------------------------------------------------------

    def allocate(self, vm: VM, bitstream: Bitstream) -> RoleLease:
        """Lease a free slot to the VM and load the bitstream.

        Returns the lease; reconfiguration time is accumulated in
        ``total_reconfig_seconds``.
        """
        for device, role in self.free_slots():
            if role.can_host(bitstream):
                device.load(bitstream, role)
                self.total_reconfig_seconds += (
                    device.reconfiguration_time(bitstream)
                )
                lease = RoleLease(
                    role=role,
                    device=device,
                    vm_name=vm.name,
                    bitstream_name=bitstream.name,
                )
                self.leases[role.name] = lease
                vm.attach_device(role.name)
                current_metrics().counter(
                    "vfpga.leases", "role slots leased to VMs",
                ).inc(node=self.node.name)
                return lease
        raise VirtualizationError(
            f"no free role slot fits bitstream {bitstream.name!r} on "
            f"node {self.node.name!r}"
        )

    def reconfigure(self, vm: VM, lease: RoleLease,
                    bitstream: Bitstream) -> None:
        """Swap the bitstream in a lease the VM already holds."""
        self._check_owner(vm, lease)
        lease.device.unload(lease.role)
        lease.device.load(bitstream, lease.role)
        self.total_reconfig_seconds += (
            lease.device.reconfiguration_time(bitstream)
        )
        lease.bitstream_name = bitstream.name
        current_metrics().counter(
            "vfpga.reconfigurations", "leased-role bitstream swaps",
        ).inc(node=self.node.name)

    def release(self, vm: VM, lease: RoleLease) -> None:
        """Return a leased slot."""
        self._check_owner(vm, lease)
        lease.device.unload(lease.role)
        del self.leases[lease.role.name]
        vm.detach_device(lease.role.name)

    def access(self, vm: VM, role_name: str) -> RoleLease:
        """Guest access check: the shell isolates foreign roles."""
        lease = self.leases.get(role_name)
        if lease is None:
            raise VirtualizationError(
                f"role {role_name!r} is not leased"
            )
        if lease.vm_name != vm.name:
            raise SecurityError(
                f"VM {vm.name!r} attempted to access role "
                f"{role_name!r} owned by {lease.vm_name!r}"
            )
        return lease

    def _check_owner(self, vm: VM, lease: RoleLease) -> None:
        if lease.vm_name != vm.name:
            raise SecurityError(
                f"VM {vm.name!r} does not own role {lease.role.name!r}"
            )

    # ------------------------------------------------------------------

    def utilization(self) -> float:
        """Fraction of role slots currently leased."""
        total = sum(len(device.roles) for device in self.node.fpgas)
        if total == 0:
            return 0.0
        return len(self.leases) / total
