"""Virtualization layer (paper §IV item 3, [32, 33]).

A cooperative model of the EVEREST virtualized environment: a
:class:`~repro.runtime.virt.hypervisor.Hypervisor` per node hosts
:class:`~repro.runtime.virt.vm.VM` guests; the
:class:`~repro.runtime.virt.vfpga.VFPGAManager` multiplexes FPGA role
slots among VMs with isolation (vFPGAmanager [33]); and
:class:`~repro.runtime.virt.remoting.APIRemoting` models the cost of
guest-to-device invocation paths.
"""

from repro.runtime.virt.vm import VM, VMState
from repro.runtime.virt.hypervisor import Hypervisor
from repro.runtime.virt.vfpga import VFPGAManager
from repro.runtime.virt.remoting import APIRemoting, RemotingMode

__all__ = [
    "VM",
    "VMState",
    "Hypervisor",
    "VFPGAManager",
    "APIRemoting",
    "RemotingMode",
]
