"""Flexible memory management: buffer placement across node memories.

Paper §II: "Flexible memory managers will enable to co-optimize
computation, communication, and storage, to move the computation
closer to the data." Within one node, a kernel's buffers can live in
host DDR, the FPGA card's DDR, or on-fabric BRAM; each placement
changes the accelerator's effective access time and the staging cost.

The :class:`MemoryManager` solves the placement greedily: buffers are
ranked by access intensity (accesses x bytes) and placed into the
fastest memory with room, falling back outward. It returns a
:class:`PlacementPlan` with per-buffer assignments and the predicted
access/staging cost that the DSE and executor can compare against
alternatives (e.g. everything-in-host-DDR).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CapacityError, RuntimeSystemError
from repro.platform.interconnect import Link
from repro.platform.memory import MemoryModel, MemoryTechnology
from repro.utils.validation import check_non_negative, check_positive

#: Preference order: closest to the datapath first.
_SPEED_ORDER = [
    MemoryTechnology.BRAM,
    MemoryTechnology.HBM,
    MemoryTechnology.DDR4,
    MemoryTechnology.HOST_DDR,
    MemoryTechnology.REMOTE,
]


@dataclass(frozen=True)
class BufferRequest:
    """One buffer a kernel wants placed."""

    name: str
    size_bytes: int
    accesses_per_invocation: int
    resident: bool = False  # True: stays across invocations (weights)

    def __post_init__(self):
        check_positive("size_bytes", self.size_bytes)
        check_non_negative("accesses_per_invocation",
                           self.accesses_per_invocation)

    @property
    def intensity(self) -> float:
        """Traffic generated per invocation (bytes touched)."""
        return float(self.accesses_per_invocation) * self.size_bytes


@dataclass
class PlacementPlan:
    """Result of placing one kernel's buffers."""

    assignments: Dict[str, str] = field(default_factory=dict)
    access_seconds: float = 0.0
    staging_seconds: float = 0.0
    energy_j: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Access plus per-invocation staging."""
        return self.access_seconds + self.staging_seconds

    def memory_of(self, buffer_name: str) -> str:
        """Assigned memory of one buffer."""
        if buffer_name not in self.assignments:
            raise RuntimeSystemError(
                f"buffer {buffer_name!r} was not placed"
            )
        return self.assignments[buffer_name]


class MemoryManager:
    """Places kernel buffers across a node's memory hierarchy."""

    def __init__(
        self,
        memories: Sequence[MemoryModel],
        host_link: Optional[Link] = None,
    ):
        if not memories:
            raise RuntimeSystemError("no memories to manage")
        self.memories = sorted(
            memories,
            key=lambda m: _SPEED_ORDER.index(m.technology),
        )
        self.host_link = host_link

    # ------------------------------------------------------------------

    def _access_cost(self, memory: MemoryModel,
                     request: BufferRequest) -> Tuple[float, float]:
        """(seconds, joules) of one invocation's accesses."""
        bytes_touched = request.intensity
        seconds = (
            request.accesses_per_invocation * memory.latency_s
            + bytes_touched / memory.peak_bandwidth
        )
        joules = memory.access_energy(int(bytes_touched))
        return seconds, joules

    def _staging_cost(self, memory: MemoryModel,
                      request: BufferRequest) -> float:
        """Per-invocation cost of getting the data into ``memory``.

        Host-resident data is free to use from host DDR; any other
        memory pays a copy over the host link. Resident buffers
        amortize their staging and are charged nothing here.
        """
        if request.resident:
            return 0.0
        if memory.technology is MemoryTechnology.HOST_DDR:
            return 0.0
        if self.host_link is None:
            return 0.0
        return self.host_link.transfer_time(request.size_bytes)

    # ------------------------------------------------------------------

    def place(self, requests: Sequence[BufferRequest]) -> PlacementPlan:
        """Greedy intensity-first placement.

        The hottest buffers take the fastest memories; everything is
        guaranteed a slot in the outermost memory or a
        :class:`CapacityError` is raised.
        """
        plan = PlacementPlan()
        free: Dict[str, int] = {
            memory.name: memory.free_bytes for memory in self.memories
        }
        ordered = sorted(requests, key=lambda r: -r.intensity)
        for request in ordered:
            best: Optional[Tuple[float, MemoryModel]] = None
            for memory in self.memories:
                if free[memory.name] < request.size_bytes:
                    continue
                access_s, _energy = self._access_cost(memory, request)
                staging = self._staging_cost(memory, request)
                cost = access_s + staging
                if best is None or cost < best[0]:
                    best = (cost, memory)
            if best is None:
                raise CapacityError(
                    f"buffer {request.name!r} ({request.size_bytes} B) "
                    f"fits no managed memory"
                )
            memory = best[1]
            free[memory.name] -= request.size_bytes
            plan.assignments[request.name] = memory.name
            access_s, energy = self._access_cost(memory, request)
            plan.access_seconds += access_s
            plan.staging_seconds += self._staging_cost(memory, request)
            plan.energy_j += energy
        return plan

    def place_all_in(self, requests: Sequence[BufferRequest],
                     technology: MemoryTechnology) -> PlacementPlan:
        """Baseline: force every buffer into one memory class."""
        memory = next(
            (m for m in self.memories if m.technology is technology),
            None,
        )
        if memory is None:
            raise RuntimeSystemError(
                f"no memory of technology {technology.value!r}"
            )
        plan = PlacementPlan()
        total = sum(r.size_bytes for r in requests)
        if total > memory.free_bytes:
            raise CapacityError(
                f"{total} B do not fit in {memory.name!r}"
            )
        for request in requests:
            plan.assignments[request.name] = memory.name
            access_s, energy = self._access_cost(memory, request)
            plan.access_seconds += access_s
            plan.staging_seconds += self._staging_cost(memory, request)
            plan.energy_j += energy
        return plan


def requests_from_design(design) -> List[BufferRequest]:
    """Derive buffer requests from an accelerator design's memory plan.

    Interface buffers (function arguments) are non-resident streams;
    local allocs are resident scratch.
    """
    requests: List[BufferRequest] = []
    for plan in design.memory_plan.buffers.values():
        value = plan.value
        is_local = (
            value.producer is not None
            and value.producer.name == "kernel.alloc"
        )
        requests.append(BufferRequest(
            name=value.name,
            size_bytes=max(1, plan.memref.size_bytes),
            accesses_per_invocation=plan.accesses_per_iteration * 64,
            resident=is_local,
        ))
    return requests
