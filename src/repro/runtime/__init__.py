"""The EVEREST virtualized runtime system (paper Section IV, Fig. 2).

Three pillars, matching the figure:

1. **Data protection layer** — :mod:`repro.runtime.dataprotection`:
   runtime information-flow tracking, anomaly-detecting hardware
   monitors, and auto-protection reactions.
2. **Dynamic hardware/software adaptation** —
   :mod:`repro.runtime.autotuner` (mARGOt [11]): goal-driven selection
   among the compile-time variants, reacting to workload and data
   features.
3. **Virtualization support** — :mod:`repro.runtime.virt`: hypervisor,
   VMs, vFPGA management and API remoting.

:mod:`repro.runtime.executor` drives a compiled application over the
simulated platform using all three.
"""

from repro.runtime.autotuner.manager import ApplicationManager
from repro.runtime.autotuner.goals import Goal, GoalKind
from repro.runtime.executor import ExecutionReport, RuntimeExecutor
from repro.runtime.memory_manager import BufferRequest, MemoryManager
from repro.runtime.orchestrator import DeploymentReport, Orchestrator
from repro.runtime.scheduler import TierPlacer

__all__ = [
    "ApplicationManager",
    "Goal",
    "GoalKind",
    "RuntimeExecutor",
    "ExecutionReport",
    "MemoryManager",
    "BufferRequest",
    "Orchestrator",
    "DeploymentReport",
    "TierPlacer",
]
