"""Optimization goals for the autotuner.

A goal is an objective (minimize latency, minimize energy, maximize
throughput) plus optional hard constraints, mirroring mARGOt's
goal/constraint model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.utils.validation import check_positive


class GoalKind(enum.Enum):
    """What the application currently optimizes for."""

    PERFORMANCE = "performance"  # minimize latency
    ENERGY = "energy"  # minimize energy per invocation
    BALANCED = "balanced"  # minimize latency * energy product


@dataclass(frozen=True)
class Goal:
    """An objective with optional hard constraints.

    ``min_accuracy`` is mARGOt's approximate-computing constraint: the
    manager may pick degraded variants (fewer samples, smaller
    models) as long as the quality floor holds.
    """

    kind: GoalKind = GoalKind.PERFORMANCE
    max_latency_s: Optional[float] = None
    max_energy_j: Optional[float] = None
    min_accuracy: Optional[float] = None

    def __post_init__(self):
        if self.max_latency_s is not None:
            check_positive("max_latency_s", self.max_latency_s)
        if self.max_energy_j is not None:
            check_positive("max_energy_j", self.max_energy_j)
        if self.min_accuracy is not None:
            check_positive("min_accuracy", self.min_accuracy)

    def satisfied(self, latency_s: float, energy_j: float,
                  accuracy: float = 1.0) -> bool:
        """Check the hard constraints."""
        if self.max_latency_s is not None and \
                latency_s > self.max_latency_s:
            return False
        if self.max_energy_j is not None and \
                energy_j > self.max_energy_j:
            return False
        if self.min_accuracy is not None and \
                accuracy < self.min_accuracy:
            return False
        return True

    def objective(self, latency_s: float, energy_j: float) -> float:
        """Scalar score to minimize under this goal."""
        if self.kind is GoalKind.PERFORMANCE:
            return latency_s
        if self.kind is GoalKind.ENERGY:
            return energy_j
        return latency_s * energy_j
