"""Runtime monitors: sliding-window measurement providers.

mARGOt attaches monitors (time, throughput, custom) to the managed
application; the decision maker reads them to detect drift. This
implementation keeps a bounded window per metric and exposes mean /
percentile / trend queries. System-state monitors (device contention,
available accelerators) use the same mechanism.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro.utils.validation import check_positive


@dataclass
class MetricWindow:
    """Bounded window of observations for one metric."""

    capacity: int = 32
    values: Deque[float] = field(default_factory=deque)

    def push(self, value: float) -> None:
        """Append an observation, evicting the oldest beyond capacity."""
        self.values.append(value)
        while len(self.values) > self.capacity:
            self.values.popleft()

    @property
    def count(self) -> int:
        """Observations currently held."""
        return len(self.values)

    def mean(self) -> float:
        """Window mean (0 when empty)."""
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    def percentile(self, fraction: float) -> float:
        """Window percentile by nearest-rank (0 when empty)."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = min(
            len(ordered) - 1, max(0, int(fraction * len(ordered)))
        )
        return ordered[rank]

    def trend(self) -> float:
        """Second-half mean minus first-half mean (drift signal)."""
        if len(self.values) < 4:
            return 0.0
        values = list(self.values)
        half = len(values) // 2
        first = sum(values[:half]) / half
        second = sum(values[half:]) / (len(values) - half)
        return second - first


class RuntimeMonitor:
    """A set of named metric windows."""

    def __init__(self, window: int = 32):
        check_positive("window", window)
        self.window = window
        self._metrics: Dict[str, MetricWindow] = {}

    def record(self, metric: str, value: float) -> None:
        """Record one observation of a metric."""
        if metric not in self._metrics:
            self._metrics[metric] = MetricWindow(capacity=self.window)
        self._metrics[metric].push(value)

    def mean(self, metric: str) -> float:
        """Window mean of a metric (0 when unseen)."""
        window = self._metrics.get(metric)
        return window.mean() if window else 0.0

    def percentile(self, metric: str, fraction: float) -> float:
        """Window percentile of a metric."""
        window = self._metrics.get(metric)
        return window.percentile(fraction) if window else 0.0

    def trend(self, metric: str) -> float:
        """Drift of a metric within the window."""
        window = self._metrics.get(metric)
        return window.trend() if window else 0.0

    def count(self, metric: str) -> int:
        """Observation count."""
        window = self._metrics.get(metric)
        return window.count if window else 0

    def metrics(self) -> list:
        """Names of observed metrics."""
        return sorted(self._metrics)
