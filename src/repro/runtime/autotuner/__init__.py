"""mARGOt-style dynamic autotuning (paper §IV, [11]).

The decision maker selects, per kernel invocation, the code variant
matching the current goal (performance or energy), the observed system
state (device availability, contention) and the input data features —
the "intelligent policy to select the code variant or hardware
configuration" of Fig. 2.
"""

from repro.runtime.autotuner.goals import Goal, GoalKind
from repro.runtime.autotuner.knowledge import (
    KnowledgeBase,
    OperatingPoint,
)
from repro.runtime.autotuner.monitor import RuntimeMonitor
from repro.runtime.autotuner.data_features import DataFeatures
from repro.runtime.autotuner.manager import ApplicationManager

__all__ = [
    "Goal",
    "GoalKind",
    "OperatingPoint",
    "KnowledgeBase",
    "RuntimeMonitor",
    "DataFeatures",
    "ApplicationManager",
]
