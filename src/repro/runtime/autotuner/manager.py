"""The application manager: mARGOt's decision maker.

Selects an operating point per invocation from

1. the current goal (performance / energy, with constraints),
2. system state (FPGA availability, CPU contention) from the system
   monitor,
3. input data features,
4. runtime feedback folded into the operating points' corrections.

The selection generalizes "affinity between the code variants and the
available system configurations" (paper §IV): variants whose target
device is unavailable are filtered; contention inflates the
expectations of variants sharing the contended resource.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import RuntimeSystemError
from repro.obs import current_metrics, current_tracer
from repro.runtime.autotuner.data_features import (
    NOMINAL,
    DataFeatures,
)
from repro.runtime.autotuner.goals import Goal, GoalKind
from repro.runtime.autotuner.knowledge import (
    KnowledgeBase,
    OperatingPoint,
)
from repro.runtime.autotuner.monitor import RuntimeMonitor

#: Tracer category for autotuner adaptation decisions.
TUNER_CATEGORY = "autotuner.decision"


@dataclass
class SystemState:
    """What the hardware monitors report right now."""

    fpga_available: bool = True
    fpga_contention: float = 0.0  # queued work on the device, 0..1
    cpu_load: float = 0.0  # background load on host cores, 0..1
    security_alert: bool = False

    def clamp(self) -> "SystemState":
        """Return a copy with values forced into range."""
        return SystemState(
            fpga_available=self.fpga_available,
            fpga_contention=min(1.0, max(0.0, self.fpga_contention)),
            cpu_load=min(1.0, max(0.0, self.cpu_load)),
            security_alert=self.security_alert,
        )


class ApplicationManager:
    """Per-application autotuner instance."""

    def __init__(
        self,
        knowledge: KnowledgeBase,
        goal: Goal = Goal(),
        monitor: Optional[RuntimeMonitor] = None,
    ):
        self.knowledge = knowledge
        self.goal = goal
        self.monitor = monitor or RuntimeMonitor()
        self.selections: Dict[str, int] = {}  # kernel -> variant_id
        self.switches = 0

    def set_goal(self, goal: Goal) -> None:
        """Change the optimization goal at run time."""
        self.goal = goal

    # ------------------------------------------------------------------

    def _expected(
        self,
        point: OperatingPoint,
        state: SystemState,
        features: DataFeatures,
    ) -> tuple:
        is_hw = point.variant.is_hardware
        latency = point.expected_latency_s * features.latency_factor(
            is_hw)
        energy = point.expected_energy_j * features.energy_factor(is_hw)
        if is_hw:
            latency *= 1.0 + 3.0 * state.fpga_contention
        else:
            latency *= 1.0 + 2.0 * state.cpu_load
        return latency, energy

    def select(
        self,
        kernel: str,
        state: Optional[SystemState] = None,
        features: Optional[DataFeatures] = None,
    ) -> OperatingPoint:
        """Pick the operating point for the next invocation."""
        state = (state or SystemState()).clamp()
        features = features or NOMINAL
        points = self.knowledge.points_for(kernel)

        candidates: List[OperatingPoint] = []
        for point in points:
            if point.variant.is_hardware and not state.fpga_available:
                continue
            if state.security_alert and not point.variant.knobs.dift:
                # auto-protection: under attack, only tracked variants
                continue
            candidates.append(point)
        if not candidates:
            # fall back to the full list rather than dying
            candidates = list(points)

        def score(point: OperatingPoint) -> tuple:
            latency, energy = self._expected(point, state, features)
            feasible = self.goal.satisfied(
                latency, energy, point.accuracy
            )
            return (not feasible, self.goal.objective(latency, energy))

        best = min(candidates, key=score)
        previous = self.selections.get(kernel)
        switched = (
            previous is not None
            and previous != best.variant.variant_id
        )
        if switched:
            self.switches += 1
        self.selections[kernel] = best.variant.variant_id
        metrics = current_metrics()
        metrics.counter(
            "autotuner.selections", "operating-point selections",
        ).inc(kernel=kernel)
        if switched:
            metrics.counter(
                "autotuner.switches", "variant switches at run time",
            ).inc(kernel=kernel)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.instant(
                "switch" if switched else "select",
                category=TUNER_CATEGORY, kernel=kernel,
                variant=best.variant.knobs.describe(),
                previous=-1 if previous is None else previous,
                fpga_available=state.fpga_available,
                security_alert=state.security_alert,
            )
        return best

    # ------------------------------------------------------------------

    def report(
        self,
        kernel: str,
        point: OperatingPoint,
        latency_s: float,
        energy_j: float,
    ) -> None:
        """Feed a measurement back into knowledge and monitors."""
        if self.knowledge.find(kernel, point.variant.variant_id) is None:
            raise RuntimeSystemError(
                f"reporting for unknown point of kernel {kernel!r}"
            )
        point.observe(latency_s, energy_j)
        self.monitor.record(f"{kernel}.latency", latency_s)
        self.monitor.record(f"{kernel}.energy", energy_j)

    def regret_against_oracle(
        self,
        kernel: str,
        state: SystemState,
        features: DataFeatures,
        true_latency,
    ) -> float:
        """Latency excess of the current selection over the oracle.

        ``true_latency(point)`` returns the ground-truth latency; used
        by the adaptation benchmark.
        """
        chosen = self.select(kernel, state, features)
        points = self.knowledge.points_for(kernel)
        best = min(true_latency(point) for point in points)
        return true_latency(chosen) - best
