"""Application knowledge: operating points per kernel.

mARGOt's *application knowledge* is the list of operating points —
(variant, predicted metrics) pairs produced at design time. At run
time, observed measurements refine the predictions through per-variant
correction factors (observed / predicted exponential moving average),
so a variant whose prediction was optimistic loses its edge after a
few invocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.variants import Variant
from repro.errors import RuntimeSystemError
from repro.utils.validation import check_in_range, check_positive


@dataclass
class OperatingPoint:
    """One selectable configuration of a kernel."""

    variant: Variant
    predicted_latency_s: float
    predicted_energy_j: float
    latency_correction: float = 1.0
    energy_correction: float = 1.0
    invocations: int = 0

    @property
    def expected_latency_s(self) -> float:
        """Prediction adjusted by runtime feedback."""
        return self.predicted_latency_s * self.latency_correction

    @property
    def expected_energy_j(self) -> float:
        """Prediction adjusted by runtime feedback."""
        return self.predicted_energy_j * self.energy_correction

    @property
    def accuracy(self) -> float:
        """Output quality of this variant (1.0 = exact)."""
        return self.variant.cost.accuracy

    def observe(self, latency_s: float, energy_j: float,
                smoothing: float = 0.3) -> None:
        """Fold one measurement into the correction factors."""
        check_in_range("smoothing", smoothing, 0.0, 1.0)
        if self.predicted_latency_s > 0:
            ratio = latency_s / self.predicted_latency_s
            self.latency_correction = (
                (1 - smoothing) * self.latency_correction
                + smoothing * ratio
            )
        if self.predicted_energy_j > 0:
            ratio = energy_j / self.predicted_energy_j
            self.energy_correction = (
                (1 - smoothing) * self.energy_correction
                + smoothing * ratio
            )
        self.invocations += 1


class KnowledgeBase:
    """Operating points for every kernel of an application."""

    def __init__(self):
        self._points: Dict[str, List[OperatingPoint]] = {}

    def add_variant(self, variant: Variant) -> OperatingPoint:
        """Register a compile-time variant as an operating point."""
        point = OperatingPoint(
            variant=variant,
            predicted_latency_s=variant.cost.latency_s,
            predicted_energy_j=variant.cost.energy_j,
        )
        self._points.setdefault(variant.kernel, []).append(point)
        return point

    def load_package(self, package) -> None:
        """Ingest every variant of a VariantPackage."""
        for kernel in package.kernels():
            for variant in package.variants_for(kernel):
                self.add_variant(variant)

    def points_for(self, kernel: str) -> List[OperatingPoint]:
        """All operating points of one kernel."""
        if kernel not in self._points or not self._points[kernel]:
            raise RuntimeSystemError(
                f"no operating points for kernel {kernel!r}"
            )
        return self._points[kernel]

    def kernels(self) -> List[str]:
        """Kernels with registered points."""
        return sorted(self._points)

    def find(self, kernel: str, variant_id: int) -> Optional[OperatingPoint]:
        """Locate the point wrapping a specific variant."""
        for point in self._points.get(kernel, []):
            if point.variant.variant_id == variant_id:
                return point
        return None
