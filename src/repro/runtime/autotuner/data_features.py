"""Data features: input characteristics driving variant selection.

The paper lists "data features [37]" among the selection inputs: the
best variant depends on the invocation's input (size, sparsity,
value range). Features scale the latency/energy predictions of the
operating points, whose design-time estimates assume the nominal
input the compiler saw.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class DataFeatures:
    """Characteristics of one invocation's input data."""

    size_scale: float = 1.0  # input size relative to compile-time shape
    sparsity: float = 0.0  # fraction of zero elements
    burstiness: float = 0.0  # 0 = steady stream, 1 = extremely bursty

    def __post_init__(self):
        check_positive("size_scale", self.size_scale)
        check_in_range("sparsity", self.sparsity, 0.0, 1.0)
        check_in_range("burstiness", self.burstiness, 0.0, 1.0)

    def latency_factor(self, is_hardware: bool) -> float:
        """Scale a variant's predicted latency for this input.

        Work scales with input size for both targets. Sparsity helps
        software (branchy early-exits) more than fixed-function
        pipelines. Burstiness penalizes hardware less: the accelerator
        absorbs bursts at line rate while software queues.
        """
        factor = self.size_scale
        if is_hardware:
            factor *= 1.0 - 0.2 * self.sparsity
            factor *= 1.0 + 0.05 * self.burstiness
        else:
            factor *= 1.0 - 0.5 * self.sparsity
            factor *= 1.0 + 0.4 * self.burstiness
        return max(factor, 1e-6)

    def energy_factor(self, is_hardware: bool) -> float:
        """Scale a variant's predicted energy for this input."""
        factor = self.size_scale
        if not is_hardware:
            factor *= 1.0 - 0.4 * self.sparsity
        else:
            factor *= 1.0 - 0.15 * self.sparsity
        return max(factor, 1e-6)


NOMINAL = DataFeatures()
