"""Auto-protection: turning detections into reactions.

"Dedicated hardware monitors will detect anomalies ... activating
proper dynamic adaptation in the form of 'auto-protection'" (paper
§III-B). The engine maps incident classes to mitigations and keeps an
audit log; the runtime executor consults it to adjust the autotuner's
system state (forcing DIFT variants), rotate keys, or quarantine a
node.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.runtime.dataprotection.anomaly import Anomaly

_incident_ids = itertools.count(1)


class Reaction(enum.Enum):
    """Available mitigations."""

    LOG_ONLY = "log_only"
    FORCE_DIFT_VARIANTS = "force_dift_variants"
    REKEY = "rekey"
    QUARANTINE_NODE = "quarantine_node"
    THROTTLE = "throttle"


@dataclass
class Incident:
    """One recorded security event and its reaction."""

    kind: str
    detail: str
    reaction: Reaction
    node: str = ""
    incident_id: int = field(default_factory=lambda: next(_incident_ids))


#: Default escalation table: incident kind -> reaction.
_DEFAULT_RULES: Dict[str, Reaction] = {
    "timing-anomaly": Reaction.FORCE_DIFT_VARIANTS,
    "access-pattern-anomaly": Reaction.FORCE_DIFT_VARIANTS,
    "size-anomaly": Reaction.THROTTLE,
    "flow-violation": Reaction.QUARANTINE_NODE,
    "tag-mismatch": Reaction.REKEY,
    "unknown": Reaction.LOG_ONLY,
}


class AutoProtection:
    """The reaction engine."""

    def __init__(self, rules: Optional[Dict[str, Reaction]] = None):
        self.rules = dict(_DEFAULT_RULES)
        if rules:
            self.rules.update(rules)
        self.incidents: List[Incident] = []
        self.quarantined: Set[str] = set()
        self.key_generation = 0
        self.dift_forced = False
        self.throttled = False

    # ------------------------------------------------------------------

    def report(self, kind: str, detail: str, node: str = "") -> Incident:
        """Record an incident and apply its reaction."""
        reaction = self.rules.get(kind, self.rules["unknown"])
        incident = Incident(
            kind=kind, detail=detail, reaction=reaction, node=node
        )
        self.incidents.append(incident)
        self._apply(incident)
        return incident

    def report_anomaly(self, anomaly: Anomaly, node: str = ""
                       ) -> Incident:
        """Classify and record an anomaly from a hardware monitor."""
        metric = anomaly.metric
        if "timing" in metric or "latency" in metric:
            kind = "timing-anomaly"
        elif "access" in metric or "stride" in metric:
            kind = "access-pattern-anomaly"
        elif "size" in metric or "volume" in metric:
            kind = "size-anomaly"
        else:
            kind = "unknown"
        return self.report(
            kind,
            f"{metric}={anomaly.value:.4g} "
            f"(z={anomaly.z_score:.1f})",
            node,
        )

    def _apply(self, incident: Incident) -> None:
        reaction = incident.reaction
        if reaction is Reaction.FORCE_DIFT_VARIANTS:
            self.dift_forced = True
        elif reaction is Reaction.REKEY:
            self.key_generation += 1
        elif reaction is Reaction.QUARANTINE_NODE and incident.node:
            self.quarantined.add(incident.node)
        elif reaction is Reaction.THROTTLE:
            self.throttled = True

    # ------------------------------------------------------------------

    def node_allowed(self, node: str) -> bool:
        """False when the node is quarantined."""
        return node not in self.quarantined

    def stand_down(self) -> None:
        """Clear transient mitigations after an all-clear."""
        self.dift_forced = False
        self.throttled = False

    def release_node(self, node: str) -> None:
        """Lift a quarantine."""
        self.quarantined.discard(node)

    def summary(self) -> Dict[str, int]:
        """Incident counts by reaction."""
        counts: Dict[str, int] = {}
        for incident in self.incidents:
            key = incident.reaction.value
            counts[key] = counts.get(key, 0) + 1
        return counts
