"""Hardware-monitor models for anomaly detection.

"Dedicated hardware monitors will detect anomalies with respect to the
expected data behaviors (timing patterns, access patterns, typical
sizes and ranges)" (paper §III-B). A :class:`HardwareMonitor` learns a
baseline per metric with Welford's online mean/variance, then flags
observations whose z-score exceeds a threshold; a minimum training
count prevents firing before the baseline stabilizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Anomaly:
    """One detection."""

    metric: str
    value: float
    z_score: float
    baseline_mean: float
    baseline_std: float


@dataclass
class _Baseline:
    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    @property
    def std(self) -> float:
        if self.count < 2:
            return 0.0
        return math.sqrt(self.m2 / (self.count - 1))


class HardwareMonitor:
    """Per-metric baseline learner and z-score detector."""

    def __init__(self, threshold_sigma: float = 4.0,
                 min_training: int = 16):
        check_positive("threshold_sigma", threshold_sigma)
        check_positive("min_training", min_training)
        self.threshold_sigma = threshold_sigma
        self.min_training = min_training
        self._baselines: Dict[str, _Baseline] = {}
        self.detections: List[Anomaly] = []
        self.frozen = False

    # ------------------------------------------------------------------

    def train(self, metric: str, value: float) -> None:
        """Feed a known-good observation into the baseline."""
        baseline = self._baselines.setdefault(metric, _Baseline())
        baseline.update(value)

    def freeze(self) -> None:
        """Stop adapting baselines (deployment mode).

        While unfrozen, non-anomalous observations keep refining the
        baseline; frozen monitors only detect.
        """
        self.frozen = True

    def observe(self, metric: str, value: float) -> Optional[Anomaly]:
        """Check an observation; returns the anomaly if flagged."""
        baseline = self._baselines.setdefault(metric, _Baseline())
        if baseline.count < self.min_training:
            baseline.update(value)
            return None
        std = baseline.std
        if std == 0:
            anomalous = value != baseline.mean
            z_score = math.inf if anomalous else 0.0
        else:
            z_score = abs(value - baseline.mean) / std
            anomalous = z_score > self.threshold_sigma
        if anomalous:
            anomaly = Anomaly(
                metric=metric,
                value=value,
                z_score=z_score,
                baseline_mean=baseline.mean,
                baseline_std=std,
            )
            self.detections.append(anomaly)
            return anomaly
        if not self.frozen:
            baseline.update(value)
        return None

    # ------------------------------------------------------------------

    def baseline_of(self, metric: str) -> Optional[Dict[str, float]]:
        """Snapshot of a metric's learned baseline."""
        baseline = self._baselines.get(metric)
        if baseline is None:
            return None
        return {
            "count": baseline.count,
            "mean": baseline.mean,
            "std": baseline.std,
        }

    def detection_count(self, metric: Optional[str] = None) -> int:
        """Detections so far (optionally for one metric)."""
        if metric is None:
            return len(self.detections)
        return sum(1 for a in self.detections if a.metric == metric)
