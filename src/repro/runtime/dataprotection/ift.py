"""Runtime information-flow tracking across the task graph.

Complements the intra-kernel DIFT of TaintHLS with inter-task
tracking: data objects carry label sets, tasks propagate the union of
their input labels to their outputs, and egress points (sinks,
network transfers) are checked against a policy — tainted data may
only leave through an encrypting or declassifying edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import SecurityError
from repro.workflow.graph import TaskGraph


@dataclass
class FlowViolation:
    """A blocked egress."""

    egress: str
    labels: Set[str]
    reason: str


class FlowTracker:
    """Label propagation over a workflow task graph."""

    def __init__(self, graph: TaskGraph):
        self.graph = graph
        self.labels: Dict[str, Set[str]] = {
            name: set() for name in graph.objects
        }
        self.declassified: Set[str] = set()
        self.violations: List[FlowViolation] = []

    # ------------------------------------------------------------------

    def taint_source(self, object_name: str, label: str) -> None:
        """Attach a label to an external input object."""
        if object_name not in self.labels:
            raise SecurityError(f"unknown object {object_name!r}")
        self.labels[object_name].add(label)

    def propagate(self) -> None:
        """Push labels through the graph in topological order."""
        for task_name in self.graph.topological_order():
            task = self.graph.tasks[task_name]
            gathered: Set[str] = set()
            for input_name in task.inputs:
                gathered |= self.labels[input_name]
            sanitizer = bool(task.constraints.get("declassifies"))
            for output_name in task.outputs:
                if sanitizer:
                    self.declassified.add(output_name)
                    self.labels[output_name] = set()
                else:
                    self.labels[output_name] = set(gathered)

    def labels_of(self, object_name: str) -> Set[str]:
        """Current labels of an object."""
        if object_name not in self.labels:
            raise SecurityError(f"unknown object {object_name!r}")
        return set(self.labels[object_name])

    # ------------------------------------------------------------------

    def check_egress(
        self,
        object_name: str,
        encrypted: bool = False,
        egress: str = "sink",
    ) -> bool:
        """May this object leave the trust boundary?

        Tainted data may egress only when encrypted (or previously
        declassified). Returns True when allowed; records a
        violation and raises otherwise.
        """
        labels = self.labels_of(object_name)
        if not labels or encrypted or object_name in self.declassified:
            return True
        violation = FlowViolation(
            egress=egress,
            labels=labels,
            reason=(
                f"object {object_name!r} carries labels "
                f"{sorted(labels)} and is not encrypted"
            ),
        )
        self.violations.append(violation)
        raise SecurityError(violation.reason)

    def audit(self) -> List[Tuple[str, Set[str]]]:
        """All currently tainted objects and their labels."""
        return sorted(
            (
                (name, set(labels))
                for name, labels in self.labels.items()
                if labels
            ),
            key=lambda item: item[0],
        )
