"""Software authenticated encryption and cipher cost models.

A real (if simple) AEAD built from SHA-256: a counter-mode keystream
for confidentiality and a keyed tag over nonce+ciphertext for
integrity. It is functionally correct (encrypt/decrypt round-trips,
tampering is detected) and deterministic, which the tests rely on; the
point here is exercising the data-protection code paths, not
cryptographic novelty — the paper's library would use hardened cores.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import SecurityError

#: Software cost of each cipher in CPU cycles per byte (order-of-
#: magnitude figures for scalar implementations).
SOFTWARE_CYCLES_PER_BYTE: Dict[str, float] = {
    "aes128-gcm": 2.5,  # with AES-NI
    "aes256-gcm": 3.5,
    "chacha20-poly1305": 4.0,
    "ascon128": 12.0,
    "sha3-256": 10.0,
}

_TAG_BYTES = 16
_BLOCK = 32  # SHA-256 output size


@dataclass
class SoftwareAEAD:
    """Authenticated encryption with a named key."""

    key: bytes
    cipher: str = "aes128-gcm"

    def __post_init__(self):
        if not self.key:
            raise SecurityError("empty key")
        if self.cipher not in SOFTWARE_CYCLES_PER_BYTE:
            raise SecurityError(f"unknown cipher {self.cipher!r}")

    # ------------------------------------------------------------------

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        blocks = []
        counter = 0
        while sum(len(b) for b in blocks) < length:
            blocks.append(hashlib.sha256(
                self.key + nonce + counter.to_bytes(8, "big")
            ).digest())
            counter += 1
        return b"".join(blocks)[:length]

    def _tag(self, nonce: bytes, ciphertext: bytes) -> bytes:
        return hmac.new(
            self.key, b"tag" + nonce + ciphertext, hashlib.sha256
        ).digest()[:_TAG_BYTES]

    # ------------------------------------------------------------------

    def encrypt(self, plaintext: bytes, nonce: bytes) -> bytes:
        """Return ciphertext || tag."""
        if len(nonce) < 8:
            raise SecurityError("nonce must be at least 8 bytes")
        stream = self._keystream(nonce, len(plaintext))
        ciphertext = bytes(
            p ^ s for p, s in zip(plaintext, stream)
        )
        return ciphertext + self._tag(nonce, ciphertext)

    def decrypt(self, payload: bytes, nonce: bytes) -> bytes:
        """Verify the tag and return the plaintext.

        Raises :class:`SecurityError` on tampering or wrong key/nonce.
        """
        if len(payload) < _TAG_BYTES:
            raise SecurityError("payload too short")
        ciphertext, tag = payload[:-_TAG_BYTES], payload[-_TAG_BYTES:]
        expected = self._tag(nonce, ciphertext)
        if not hmac.compare_digest(tag, expected):
            raise SecurityError("authentication tag mismatch")
        stream = self._keystream(nonce, len(ciphertext))
        return bytes(c ^ s for c, s in zip(ciphertext, stream))

    # ------------------------------------------------------------------

    def software_seconds(self, num_bytes: int,
                         cpu_hz: float = 3e9) -> float:
        """Software-encryption time for a payload."""
        cycles = SOFTWARE_CYCLES_PER_BYTE[self.cipher] * num_bytes
        return cycles / cpu_hz + 1e-6  # per-call setup


def derive_key(master: bytes, context: str) -> bytes:
    """Domain-separated subkey derivation."""
    if not master:
        raise SecurityError("empty master key")
    return hashlib.sha256(master + b"|" + context.encode()).digest()
