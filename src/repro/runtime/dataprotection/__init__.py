"""Data protection layer (paper §IV item 1, §III-A).

Runtime counterpart of the compile-time security passes:

* :mod:`crypto` — a working software AEAD (SHA-256 keystream +
  MAC) for data at rest / in transit, plus per-cipher cost models;
* :mod:`anomaly` — hardware-monitor models that learn the expected
  data behaviour (timing, access patterns, sizes, ranges) and flag
  deviations;
* :mod:`ift` — information-flow tracking across the task graph with
  egress policy enforcement;
* :mod:`policy` — the "auto-protection" reaction engine turning
  detections into mitigations.
"""

from repro.runtime.dataprotection.crypto import SoftwareAEAD
from repro.runtime.dataprotection.anomaly import (
    Anomaly,
    HardwareMonitor,
)
from repro.runtime.dataprotection.ift import FlowTracker
from repro.runtime.dataprotection.policy import (
    AutoProtection,
    Incident,
    Reaction,
)

__all__ = [
    "SoftwareAEAD",
    "HardwareMonitor",
    "Anomaly",
    "FlowTracker",
    "AutoProtection",
    "Incident",
    "Reaction",
]
