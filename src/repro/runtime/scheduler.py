"""Tier-aware task placement over the ecosystem (paper Fig. 3).

Decides, per workflow task, which node of the end-point / inner-edge /
cloud hierarchy runs it: a greedy minimization of staging time (data
movement from where the inputs currently live) plus estimated compute
time on the candidate node. This is the placement half of "move the
computation closer to the data"; variant selection on the chosen node
is the autotuner's job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import RuntimeSystemError
from repro.platform.node import Node
from repro.platform.topology import Ecosystem
from repro.workflow.graph import TaskGraph

#: Relative compute speed by node class (reference = cloud server).
_SPEED = {
    "ppc64le": 1.0,
    "x86": 1.0,
    "arm": 0.12,
    "riscv": 0.09,
    "fpga": 0.8,
    "mcu": 0.01,
    "switch": 0.0,
}


@dataclass
class Placement:
    """Result of placing one graph."""

    assignments: Dict[str, str] = field(default_factory=dict)
    transfer_seconds: float = 0.0
    compute_seconds: float = 0.0
    bytes_moved: int = 0

    @property
    def total_seconds(self) -> float:
        """Serial estimate of the placed execution."""
        return self.transfer_seconds + self.compute_seconds


class TierPlacer:
    """Greedy placement of tasks onto ecosystem nodes."""

    def __init__(self, ecosystem: Ecosystem,
                 candidates: Optional[List[str]] = None):
        self.ecosystem = ecosystem
        if candidates is None:
            candidates = [
                name for name, node in ecosystem.nodes.items()
                if node.cpu is not None or node.has_fpga
            ]
        if not candidates:
            raise RuntimeSystemError("no candidate nodes for placement")
        self.candidates = candidates

    def _speed(self, node: Node) -> float:
        speed = _SPEED.get(node.arch, 0.5)
        if speed <= 0:
            return 0.0
        if node.has_fpga and node.cpu is not None:
            speed *= 1.5  # accelerator headroom
        return speed

    def place(self, graph: TaskGraph) -> Placement:
        """Assign every task to a node, propagating data locations."""
        graph.validate()
        placement = Placement()
        locations: Dict[str, str] = {}
        for obj in graph.external_inputs():
            home = obj.locality or self.candidates[0]
            if home not in self.ecosystem.nodes:
                home = self.candidates[0]
            locations[obj.name] = home

        for task_name in graph.topological_order():
            task = graph.tasks[task_name]
            best_node = None
            best_cost = None
            best_staging = None
            for candidate in self.candidates:
                node = self.ecosystem.nodes[candidate]
                speed = self._speed(node)
                if speed <= 0:
                    continue
                staging = 0.0
                for input_name in task.inputs:
                    staging += self.ecosystem.transfer_time(
                        locations[input_name], candidate,
                        graph.objects[input_name].size_bytes,
                    )
                compute = task.duration_s / speed
                cost = staging + compute
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_node = candidate
                    best_staging = staging
            if best_node is None:
                raise RuntimeSystemError(
                    f"no node can run task {task_name!r}"
                )
            placement.assignments[task_name] = best_node
            placement.transfer_seconds += best_staging
            placement.compute_seconds += (
                task.duration_s / self._speed(
                    self.ecosystem.nodes[best_node])
            )
            for input_name in task.inputs:
                source = locations[input_name]
                if source != best_node:
                    placement.bytes_moved += (
                        graph.objects[input_name].size_bytes
                    )
            for output_name in task.outputs:
                locations[output_name] = best_node
        return placement

    def place_fixed(self, graph: TaskGraph, node_name: str) -> Placement:
        """Force every task onto one node (baseline strategy)."""
        if node_name not in self.ecosystem.nodes:
            raise RuntimeSystemError(f"unknown node {node_name!r}")
        saved = self.candidates
        try:
            self.candidates = [node_name]
            return self.place(graph)
        finally:
            self.candidates = saved
