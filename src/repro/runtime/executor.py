"""The runtime executor: compiled application → adaptive execution.

Drives repeated invocations of an application's pipeline on a
simulated node, wiring together all of Fig. 2:

* the **autotuner** selects a variant per kernel per round from the
  packaged operating points, the current system state and the data
  features;
* the **vFPGA manager** loads/reconfigures bitstreams when hardware
  variants are chosen (first use pays reconfiguration);
* **hardware monitors** watch observed latencies; anomalies feed the
  **auto-protection** engine, whose alert state constrains subsequent
  selections to DIFT-instrumented variants;
* a configurable **reality model** produces ground-truth latencies and
  energies that deviate from the compiler's predictions (noise, drift,
  contention), which is what makes adaptation measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.compiler import CompiledApplication
from repro.errors import RuntimeSystemError
from repro.platform.node import Node, build_power9_node
from repro.platform.power import EnergyMeter
from repro.runtime.autotuner.data_features import (
    NOMINAL,
    DataFeatures,
)
from repro.runtime.autotuner.goals import Goal
from repro.runtime.autotuner.knowledge import (
    KnowledgeBase,
    OperatingPoint,
)
from repro.runtime.autotuner.manager import (
    ApplicationManager,
    SystemState,
)
from repro.runtime.dataprotection.anomaly import HardwareMonitor
from repro.runtime.dataprotection.policy import AutoProtection
from repro.runtime.virt.hypervisor import Hypervisor
from repro.runtime.virt.vfpga import VFPGAManager
from repro.utils.rng import deterministic_rng
from repro.utils.units import GB
from repro.workflow.plan import build_task_graph

RealityModel = Callable[
    [OperatingPoint, SystemState, DataFeatures], Tuple[float, float]
]


@dataclass
class RoundResult:
    """Outcome of one pipeline round."""

    index: int
    latency_s: float
    energy_j: float
    selections: Dict[str, str] = field(default_factory=dict)
    reconfig_s: float = 0.0
    alerts: int = 0


@dataclass
class ExecutionReport:
    """Aggregate of a full execution."""

    rounds: List[RoundResult] = field(default_factory=list)
    energy: EnergyMeter = field(default_factory=EnergyMeter)
    switches: int = 0
    incidents: int = 0
    reconfigurations: int = 0

    @property
    def total_latency_s(self) -> float:
        """Sum of round latencies."""
        return sum(r.latency_s for r in self.rounds)

    @property
    def total_energy_j(self) -> float:
        """Sum of round energies."""
        return sum(r.energy_j for r in self.rounds)

    def mean_latency_s(self) -> float:
        """Average round latency."""
        if not self.rounds:
            return 0.0
        return self.total_latency_s / len(self.rounds)

    def selections_timeline(self, kernel: str) -> List[str]:
        """Chosen variant description per round for one kernel."""
        return [
            r.selections.get(kernel, "") for r in self.rounds
        ]


def default_reality(seed: str = "reality") -> RealityModel:
    """Truth = prediction × lognormal noise × state effects.

    The contention/load coefficients intentionally differ from the
    decision maker's internal model, so feedback learning matters.
    """
    rng = deterministic_rng("executor-reality", seed)

    def model(point: OperatingPoint, state: SystemState,
              features: DataFeatures) -> Tuple[float, float]:
        is_hw = point.variant.is_hardware
        latency = point.predicted_latency_s
        energy = point.predicted_energy_j
        latency *= features.latency_factor(is_hw)
        energy *= features.energy_factor(is_hw)
        if is_hw:
            latency *= 1.0 + 3.5 * state.fpga_contention
        else:
            latency *= 1.0 + 2.4 * state.cpu_load
        noise = float(rng.lognormal(mean=0.0, sigma=0.08))
        return latency * noise, energy * noise

    return model


class RuntimeExecutor:
    """Executes a compiled application adaptively."""

    def __init__(
        self,
        app: CompiledApplication,
        node: Optional[Node] = None,
        goal: Goal = Goal(),
        reality: Optional[RealityModel] = None,
        adaptive: bool = True,
    ):
        self.app = app
        self.node = node or build_power9_node()
        self.knowledge = KnowledgeBase()
        self.knowledge.load_package(app.package)
        self.manager = ApplicationManager(self.knowledge, goal=goal)
        self.reality = reality or default_reality(app.name)
        self.adaptive = adaptive
        self.graph = build_task_graph(app)
        self.monitor = HardwareMonitor(threshold_sigma=4.0,
                                       min_training=12)
        self.protection = AutoProtection()
        self.vfpga: Optional[VFPGAManager] = (
            VFPGAManager(self.node) if self.node.fpgas else None
        )
        self.hypervisor = Hypervisor(self.node)
        self.vm = self.hypervisor.create_vm(
            f"{app.name}-vm", vcpus=4, memory_bytes=8 * GB
        )
        self.vm.start()
        self._loaded: Dict[str, object] = {}  # kernel -> lease
        self._static_selection: Dict[str, OperatingPoint] = {}

    # ------------------------------------------------------------------

    def _select(self, kernel: str, state: SystemState,
                features: DataFeatures) -> OperatingPoint:
        if self.adaptive:
            return self.manager.select(kernel, state, features)
        if kernel not in self._static_selection:
            self._static_selection[kernel] = self.manager.select(
                kernel, SystemState(), NOMINAL
            )
        return self._static_selection[kernel]

    def _ensure_loaded(self, kernel: str,
                       point: OperatingPoint) -> float:
        """Load/reconfigure the bitstream for a hardware variant."""
        if not point.variant.is_hardware or self.vfpga is None:
            return 0.0
        artifact = self.app.package.artifact_for(point.variant)
        bitstream = (
            artifact.payload if artifact is not None
            and artifact.kind == "bitstream"
            else point.variant.bitstream
        )
        if bitstream is None:
            return 0.0
        lease = self._loaded.get(kernel)
        if lease is not None and \
                lease.bitstream_name == bitstream.name:
            return 0.0
        before = self.vfpga.total_reconfig_seconds
        if lease is None:
            lease = self.vfpga.allocate(self.vm, bitstream)
            self._loaded[kernel] = lease
        else:
            self.vfpga.reconfigure(self.vm, lease, bitstream)
        return self.vfpga.total_reconfig_seconds - before

    # ------------------------------------------------------------------

    def run_round(
        self,
        index: int,
        state: Optional[SystemState] = None,
        features: Optional[DataFeatures] = None,
    ) -> RoundResult:
        """Execute every pipeline task once, sequentially."""
        state = (state or SystemState()).clamp()
        features = features or NOMINAL
        if self.protection.dift_forced:
            state = SystemState(
                fpga_available=state.fpga_available,
                fpga_contention=state.fpga_contention,
                cpu_load=state.cpu_load,
                security_alert=True,
            )
        result = RoundResult(index=index, latency_s=0.0, energy_j=0.0)
        for task_name in self.graph.topological_order():
            kernel = self.graph.tasks[task_name].kernel
            point = self._select(kernel, state, features)
            reconfig = self._ensure_loaded(kernel, point)
            result.reconfig_s += reconfig
            latency, energy = self.reality(point, state, features)
            self.manager.report(kernel, point, latency, energy)
            anomaly = self.monitor.observe(
                f"{kernel}.timing", latency
            )
            if anomaly is not None:
                self.protection.report_anomaly(anomaly,
                                               node=self.node.name)
                result.alerts += 1
            result.latency_s += latency + reconfig
            result.energy_j += energy
            result.selections[kernel] = point.variant.knobs.describe()
        return result

    def run(
        self,
        rounds: int,
        schedule: Optional[Callable[[int],
                                    Tuple[SystemState,
                                          DataFeatures]]] = None,
    ) -> ExecutionReport:
        """Run many rounds under a workload schedule."""
        if rounds <= 0:
            raise RuntimeSystemError("rounds must be positive")
        report = ExecutionReport()
        for index in range(rounds):
            if schedule is not None:
                state, features = schedule(index)
            else:
                state, features = SystemState(), NOMINAL
            round_result = self.run_round(index, state, features)
            report.rounds.append(round_result)
            report.energy.add(
                self.node.name, round_result.energy_j, "compute"
            )
        report.switches = self.manager.switches
        report.incidents = len(self.protection.incidents)
        if self.vfpga is not None:
            report.reconfigurations = sum(
                role.reconfigurations
                for device in self.node.fpgas
                for role in device.roles
            )
        return report
